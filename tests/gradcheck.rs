//! Property-based gradient verification: for randomly shaped/valued
//! computation graphs, analytic gradients from `cosmo-nn`'s tape must
//! match central finite differences.

use cosmo::nn::{ParamStore, Tape, Tensor};
use proptest::prelude::*;

fn finite_diff(
    store: &mut ParamStore,
    id: cosmo::nn::ParamId,
    f: &dyn Fn(&ParamStore) -> f32,
) -> Tensor {
    let eps = 1e-3f32;
    let (r, c) = store.value(id).shape();
    let mut out = Tensor::zeros(r, c);
    for i in 0..r * c {
        let orig = store.value(id).data()[i];
        store.value_mut(id).data_mut()[i] = orig + eps;
        let plus = f(store);
        store.value_mut(id).data_mut()[i] = orig - eps;
        let minus = f(store);
        store.value_mut(id).data_mut()[i] = orig;
        out.data_mut()[i] = (plus - minus) / (2.0 * eps);
    }
    out
}

fn check(store: &mut ParamStore, build: &dyn Fn(&mut Tape, &ParamStore) -> cosmo::nn::Var) {
    let mut tape = Tape::new();
    let loss = build(&mut tape, store);
    tape.backward(loss);
    store.zero_grads();
    tape.accumulate_param_grads(store);
    for id in store.ids() {
        let analytic = store.grad(id).clone();
        let numeric = finite_diff(store, id, &|s| {
            let mut t = Tape::new();
            let l = build(&mut t, s);
            t.value(l).item()
        });
        for (a, n) in analytic.data().iter().zip(numeric.data().iter()) {
            prop_assert_close(*a, *n);
        }
    }
}

fn prop_assert_close(a: f32, b: f32) {
    let tol = 2e-2 * (1.0 + a.abs().max(b.abs()));
    assert!((a - b).abs() < tol, "analytic {a} vs numeric {b}");
}

fn small_vals() -> impl Strategy<Value = f32> {
    // keep activations in the well-conditioned range for finite differences
    (-0.9f32..0.9).prop_map(|x| (x * 100.0).round() / 100.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn affine_softmax_ce_gradients(
        w_vals in prop::collection::vec(small_vals(), 12),
        x_vals in prop::collection::vec(small_vals(), 6),
        target in 0usize..4,
    ) {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::from_vec(3, 4, w_vals));
        check(&mut store, &move |tape, s| {
            let x = tape.input(Tensor::from_vec(2, 3, x_vals.clone()));
            let wv = tape.param(s, w);
            let h = tape.matmul(x, wv);
            let h = tape.tanh(h);
            tape.cross_entropy(h, &[target, (target + 1) % 4])
        });
    }

    #[test]
    fn gather_segment_mean_bce_gradients(
        e_vals in prop::collection::vec(small_vals(), 12),
        idx in prop::collection::vec(0usize..6, 4..9),
        label in prop::bool::ANY,
    ) {
        let mut store = ParamStore::new();
        let e = store.add("e", Tensor::from_vec(6, 2, e_vals));
        let w = store.add("w", Tensor::from_vec(2, 1, vec![0.3, -0.4]));
        let idx2 = idx.clone();
        check(&mut store, &move |tape, s| {
            let ev = tape.param(s, e);
            let wv = tape.param(s, w);
            let g = tape.gather(ev, &idx2);
            let segs: Vec<usize> = (0..idx2.len()).map(|i| i % 2).collect();
            let m = tape.segment_mean(g, &segs, 2);
            let logits = tape.matmul(m, wv);
            tape.bce_with_logits(logits, &[f32::from(label), f32::from(!label)])
        });
    }

    #[test]
    fn attention_softmax_gradients(
        q_vals in prop::collection::vec(small_vals(), 3),
        k_vals in prop::collection::vec(small_vals(), 12),
    ) {
        let mut store = ParamStore::new();
        let q = store.add("q", Tensor::from_vec(1, 3, q_vals));
        let k = store.add("k", Tensor::from_vec(4, 3, k_vals));
        check(&mut store, &move |tape, s| {
            let qv = tape.param(s, q);
            let kv = tape.param(s, k);
            let scores = tape.matmul_nt(qv, kv);
            let w = tape.softmax(scores);
            let ctx = tape.matmul(w, kv);
            let sq = tape.mul(ctx, ctx);
            tape.mean_all(sq)
        });
    }

    #[test]
    fn elementwise_chain_gradients(
        vals in prop::collection::vec(small_vals(), 8),
    ) {
        let mut store = ParamStore::new();
        let p = store.add("p", Tensor::from_vec(2, 4, vals));
        check(&mut store, &move |tape, s| {
            let x = tape.param(s, p);
            let a = tape.sigmoid(x);
            let b = tape.one_minus(a);
            let m = tape.mul(a, b);
            let r = tape.relu(m);
            let sc = tape.scale(r, 1.5);
            let shifted = tape.add_scalar(sc, 0.5);
            let l = tape.log(shifted);
            tape.sum_all(l)
        });
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn broadcast_ops_gradients(
        a_vals in prop::collection::vec(small_vals(), 6),
        row_vals in prop::collection::vec(small_vals(), 3),
    ) {
        let mut store = ParamStore::new();
        let a = store.add("a", Tensor::from_vec(2, 3, a_vals));
        let row = store.add("row", Tensor::from_vec(1, 3, row_vals));
        check(&mut store, &move |tape, s| {
            let av = tape.param(s, a);
            let rv = tape.param(s, row);
            let added = tape.add_row(av, rv);
            let gated = tape.mul_row(added, rv);
            let d = tape.sub(gated, av);
            let m = tape.mean_rows(d);
            let sq = tape.mul(m, m);
            tape.sum_all(sq)
        });
    }

    #[test]
    fn concat_transpose_sumrows_gradients(
        a_vals in prop::collection::vec(small_vals(), 6),
        b_vals in prop::collection::vec(small_vals(), 4),
    ) {
        let mut store = ParamStore::new();
        let a = store.add("a", Tensor::from_vec(2, 3, a_vals));
        let b = store.add("b", Tensor::from_vec(2, 2, b_vals));
        check(&mut store, &move |tape, s| {
            let av = tape.param(s, a);
            let bv = tape.param(s, b);
            let cat = tape.concat_cols(av, bv);
            let t = tape.transpose(cat);
            let sums = tape.sum_rows(t);
            let sq = tape.mul(sums, sums);
            tape.mean_all(sq)
        });
    }

    #[test]
    fn bpr_loss_gradients(diff_vals in prop::collection::vec(small_vals(), 4)) {
        let mut store = ParamStore::new();
        let d = store.add("d", Tensor::from_vec(4, 1, diff_vals));
        check(&mut store, &move |tape, s| {
            let dv = tape.param(s, d);
            tape.bpr_loss(dv)
        });
    }
}
