//! Property-based gradient verification: for randomly shaped/valued
//! computation graphs, analytic gradients from `cosmo-nn`'s tape must
//! match central finite differences.

use cosmo::nn::{ParamStore, Tape, Tensor};
use proptest::prelude::*;

fn finite_diff(
    store: &mut ParamStore,
    id: cosmo::nn::ParamId,
    f: &dyn Fn(&ParamStore) -> f32,
) -> Tensor {
    let eps = 1e-3f32;
    let (r, c) = store.value(id).shape();
    let mut out = Tensor::zeros(r, c);
    for i in 0..r * c {
        let orig = store.value(id).data()[i];
        store.value_mut(id).data_mut()[i] = orig + eps;
        let plus = f(store);
        store.value_mut(id).data_mut()[i] = orig - eps;
        let minus = f(store);
        store.value_mut(id).data_mut()[i] = orig;
        out.data_mut()[i] = (plus - minus) / (2.0 * eps);
    }
    out
}

fn check(store: &mut ParamStore, build: &dyn Fn(&mut Tape, &ParamStore) -> cosmo::nn::Var) {
    let mut tape = Tape::new();
    let loss = build(&mut tape, store);
    tape.backward(loss);
    store.zero_grads();
    tape.accumulate_param_grads(store);
    for id in store.ids() {
        let analytic = store.grad(id).clone();
        let numeric = finite_diff(store, id, &|s| {
            let mut t = Tape::new();
            let l = build(&mut t, s);
            t.value(l).item()
        });
        for (a, n) in analytic.data().iter().zip(numeric.data().iter()) {
            prop_assert_close(*a, *n);
        }
    }
}

fn prop_assert_close(a: f32, b: f32) {
    let tol = 2e-2 * (1.0 + a.abs().max(b.abs()));
    assert!((a - b).abs() < tol, "analytic {a} vs numeric {b}");
}

fn small_vals() -> impl Strategy<Value = f32> {
    // keep activations in the well-conditioned range for finite differences
    (-0.9f32..0.9).prop_map(|x| (x * 100.0).round() / 100.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn affine_softmax_ce_gradients(
        w_vals in prop::collection::vec(small_vals(), 12),
        x_vals in prop::collection::vec(small_vals(), 6),
        target in 0usize..4,
    ) {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::from_vec(3, 4, w_vals));
        check(&mut store, &move |tape, s| {
            let x = tape.input(Tensor::from_vec(2, 3, x_vals.clone()));
            let wv = tape.param(s, w);
            let h = tape.matmul(x, wv);
            let h = tape.tanh(h);
            tape.cross_entropy(h, &[target, (target + 1) % 4])
        });
    }

    #[test]
    fn gather_segment_mean_bce_gradients(
        e_vals in prop::collection::vec(small_vals(), 12),
        idx in prop::collection::vec(0usize..6, 4..9),
        label in prop::bool::ANY,
    ) {
        let mut store = ParamStore::new();
        let e = store.add("e", Tensor::from_vec(6, 2, e_vals));
        let w = store.add("w", Tensor::from_vec(2, 1, vec![0.3, -0.4]));
        let idx2 = idx.clone();
        check(&mut store, &move |tape, s| {
            let ev = tape.param(s, e);
            let wv = tape.param(s, w);
            let g = tape.gather(ev, &idx2);
            let segs: Vec<usize> = (0..idx2.len()).map(|i| i % 2).collect();
            let m = tape.segment_mean(g, &segs, 2);
            let logits = tape.matmul(m, wv);
            tape.bce_with_logits(logits, &[f32::from(label), f32::from(!label)])
        });
    }

    #[test]
    fn attention_softmax_gradients(
        q_vals in prop::collection::vec(small_vals(), 3),
        k_vals in prop::collection::vec(small_vals(), 12),
    ) {
        let mut store = ParamStore::new();
        let q = store.add("q", Tensor::from_vec(1, 3, q_vals));
        let k = store.add("k", Tensor::from_vec(4, 3, k_vals));
        check(&mut store, &move |tape, s| {
            let qv = tape.param(s, q);
            let kv = tape.param(s, k);
            let scores = tape.matmul_nt(qv, kv);
            let w = tape.softmax(scores);
            let ctx = tape.matmul(w, kv);
            let sq = tape.mul(ctx, ctx);
            tape.mean_all(sq)
        });
    }

    #[test]
    fn elementwise_chain_gradients(
        vals in prop::collection::vec(small_vals(), 8),
    ) {
        let mut store = ParamStore::new();
        let p = store.add("p", Tensor::from_vec(2, 4, vals));
        check(&mut store, &move |tape, s| {
            let x = tape.param(s, p);
            let a = tape.sigmoid(x);
            let b = tape.one_minus(a);
            let m = tape.mul(a, b);
            let r = tape.relu(m);
            let sc = tape.scale(r, 1.5);
            let shifted = tape.add_scalar(sc, 0.5);
            let l = tape.log(shifted);
            tape.sum_all(l)
        });
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn broadcast_ops_gradients(
        a_vals in prop::collection::vec(small_vals(), 6),
        row_vals in prop::collection::vec(small_vals(), 3),
    ) {
        let mut store = ParamStore::new();
        let a = store.add("a", Tensor::from_vec(2, 3, a_vals));
        let row = store.add("row", Tensor::from_vec(1, 3, row_vals));
        check(&mut store, &move |tape, s| {
            let av = tape.param(s, a);
            let rv = tape.param(s, row);
            let added = tape.add_row(av, rv);
            let gated = tape.mul_row(added, rv);
            let d = tape.sub(gated, av);
            let m = tape.mean_rows(d);
            let sq = tape.mul(m, m);
            tape.sum_all(sq)
        });
    }

    #[test]
    fn concat_transpose_sumrows_gradients(
        a_vals in prop::collection::vec(small_vals(), 6),
        b_vals in prop::collection::vec(small_vals(), 4),
    ) {
        let mut store = ParamStore::new();
        let a = store.add("a", Tensor::from_vec(2, 3, a_vals));
        let b = store.add("b", Tensor::from_vec(2, 2, b_vals));
        check(&mut store, &move |tape, s| {
            let av = tape.param(s, a);
            let bv = tape.param(s, b);
            let cat = tape.concat_cols(av, bv);
            let t = tape.transpose(cat);
            let sums = tape.sum_rows(t);
            let sq = tape.mul(sums, sums);
            tape.mean_all(sq)
        });
    }

    #[test]
    fn bpr_loss_gradients(diff_vals in prop::collection::vec(small_vals(), 4)) {
        let mut store = ParamStore::new();
        let d = store.add("d", Tensor::from_vec(4, 1, diff_vals));
        check(&mut store, &move |tape, s| {
            let dv = tape.param(s, d);
            tape.bpr_loss(dv)
        });
    }
}

/// Deterministic well-conditioned values for the non-proptest checks below
/// (kept in [-0.9, 0.9] like `small_vals`).
fn hash_vals(n: usize, salt: u64) -> Vec<f32> {
    (0..n)
        .map(|i| {
            let h = (i as u64 + salt).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            ((h >> 33) % 1801) as f32 / 1000.0 - 0.9
        })
        .collect()
}

/// Shapes chosen to push the backward pass through the *tiled fast path*
/// of every matmul variant: the forward `[9×8]·[8×34]` matmul backward
/// computes `dW = Xᵀ·g` via `matmul_tn` with an `8×34` output (a full
/// 8-row register tile plus a column edge) and `dX = g·Wᵀ` via `matmul_nt`.
/// The proptest graphs above only cover the edge path (tiny shapes).
#[test]
fn tiled_matmul_backward_gradients() {
    let mut store = ParamStore::new();
    let x = store.add("x", Tensor::from_vec(9, 8, hash_vals(72, 1)));
    let w = store.add("w", Tensor::from_vec(8, 34, hash_vals(272, 2)));
    let targets: Vec<usize> = (0..9).map(|i| (i * 7) % 34).collect();
    let t2 = targets.clone();
    check(&mut store, &move |tape, s| {
        let xv = tape.param(s, x);
        let wv = tape.param(s, w);
        let h = tape.matmul(xv, wv);
        tape.cross_entropy(h, &t2)
    });
}

/// Transpose backward at tile-exceeding shapes (`transpose_into` runs the
/// blocked copy in both directions), composed with a tiled matmul.
#[test]
fn tiled_transpose_backward_gradients() {
    let mut store = ParamStore::new();
    let a = store.add("a", Tensor::from_vec(34, 9, hash_vals(306, 3)));
    let b = store.add("b", Tensor::from_vec(34, 5, hash_vals(170, 4)));
    check(&mut store, &move |tape, s| {
        let av = tape.param(s, a);
        let bv = tape.param(s, b);
        let at = tape.transpose(av);
        let h = tape.matmul(at, bv);
        let sq = tape.mul(h, h);
        tape.mean_all(sq)
    });
}

/// A reused-workspace tape (`reset()` between builds, buffers retained)
/// must produce gradients bitwise identical to a fresh tape — and they
/// must still pass the finite-difference check after several reuse cycles.
#[test]
fn reused_workspace_tape_matches_fresh_tape_bitwise() {
    let mut store = ParamStore::new();
    let x = store.add("x", Tensor::from_vec(9, 8, hash_vals(72, 5)));
    let w = store.add("w", Tensor::from_vec(8, 34, hash_vals(272, 6)));
    let targets: Vec<usize> = (0..9).map(|i| (i * 11) % 34).collect();

    let build = |tape: &mut Tape, s: &ParamStore| {
        let xv = tape.param(s, x);
        let wv = tape.param(s, w);
        let h = tape.matmul(xv, wv);
        let h = tape.tanh(h);
        tape.cross_entropy(h, &targets)
    };

    // Fresh tape: the baseline gradients.
    let mut fresh = Tape::new();
    let loss = build(&mut fresh, &store);
    fresh.backward(loss);
    store.zero_grads();
    fresh.accumulate_param_grads(&mut store);
    let base: Vec<(cosmo::nn::ParamId, Vec<f32>)> = store
        .ids()
        .into_iter()
        .map(|id| (id, store.grad(id).data().to_vec()))
        .collect();

    // One tape reused across cycles; graph sizes vary between resets so
    // the retained buffers get both grown and shrunk.
    let mut reused = Tape::new();
    for cycle in 0..4 {
        reused.reset();
        if cycle % 2 == 1 {
            // interleave a differently-shaped graph to perturb the pool
            let small = build_small(&mut reused, &store, x);
            reused.backward(small);
        }
        reused.reset();
        let loss = build(&mut reused, &store);
        reused.backward(loss);
        store.zero_grads();
        reused.accumulate_param_grads(&mut store);
        for (id, want) in &base {
            assert_eq!(
                store.grad(*id).data(),
                &want[..],
                "reused-tape gradients drifted on cycle {cycle}"
            );
        }
    }

    // And the reused tape's gradients are not just self-consistent but
    // numerically correct.
    store.zero_grads();
    reused.reset();
    let loss = build(&mut reused, &store);
    reused.backward(loss);
    reused.accumulate_param_grads(&mut store);
    for id in store.ids() {
        let analytic = store.grad(id).clone();
        let numeric = finite_diff(&mut store, id, &|s| {
            let mut t = Tape::new();
            let l = build(&mut t, s);
            t.value(l).item()
        });
        for (a, n) in analytic.data().iter().zip(numeric.data().iter()) {
            prop_assert_close(*a, *n);
        }
    }
}

fn build_small(tape: &mut Tape, s: &ParamStore, x: cosmo::nn::ParamId) -> cosmo::nn::Var {
    let xv = tape.param(s, x);
    let sq = tape.mul(xv, xv);
    tape.sum_all(sq)
}
