//! Cross-crate integration: the full COSMO loop — offline pipeline →
//! instruction tuning → online serving → navigation — on one shared
//! tiny-scale run.

use cosmo::core::{run, PipelineConfig, PipelineOutput};
use cosmo::kg::{BehaviorKind, NodeKind};
use cosmo::lm::{build_instructions, tail_vocab_from_pipeline, CosmoLm, StudentConfig};
use cosmo::nav::{NavSession, NavigationEngine};
use cosmo::serving::{ServingConfig, ServingSystem};
use std::sync::{Arc, OnceLock};

fn pipeline() -> &'static PipelineOutput {
    static OUT: OnceLock<PipelineOutput> = OnceLock::new();
    OUT.get_or_init(|| run(PipelineConfig::tiny(0xE2E)))
}

#[test]
fn pipeline_builds_a_multirelation_graph() {
    let out = pipeline();
    assert!(out.kg.num_nodes() > 100);
    assert!(out.kg.num_edges() > 200);
    assert!(
        out.kg.num_relations() >= 10,
        "relations: {}",
        out.kg.num_relations()
    );
    // both behaviour types contribute edges
    let (_, _, cb) = out.stats.totals(BehaviorKind::CoBuy);
    let (_, _, sb) = out.stats.totals(BehaviorKind::SearchBuy);
    assert!(cb > 0 && sb > 0);
}

#[test]
fn pipeline_is_deterministic_per_seed() {
    let a = run(PipelineConfig::tiny(123));
    let b = run(PipelineConfig::tiny(123));
    assert_eq!(a.kg.num_nodes(), b.kg.num_nodes());
    assert_eq!(a.kg.num_edges(), b.kg.num_edges());
    assert_eq!(a.report.candidates, b.report.candidates);
    assert_eq!(a.report.kept_after_filter, b.report.kept_after_filter);
}

#[test]
fn student_trains_from_pipeline_annotations() {
    let out = pipeline();
    let instructions = build_instructions(&out.world, &out.filtered, &out.annotation, 1);
    assert!(instructions.len() > 100);
    let mut student = CosmoLm::new(
        StudentConfig {
            epochs: 4,
            ..StudentConfig::default()
        },
        tail_vocab_from_pipeline(out),
    );
    let report = student.train(&instructions);
    assert!(report.n_generate > 0 && report.n_predict > 0);
    // the student produces non-empty generations for arbitrary queries
    let gens = student.generate("search query: camping gear for the lake", None, 3);
    assert_eq!(gens.len(), 3);
    assert!(gens.iter().all(|(t, _)| !t.is_empty()));
}

#[test]
fn serving_round_trip_over_pipeline_kg() {
    let out = pipeline();
    let instructions = build_instructions(&out.world, &out.filtered, &out.annotation, 2);
    let mut student = CosmoLm::new(
        StudentConfig {
            epochs: 2,
            ..StudentConfig::default()
        },
        tail_vocab_from_pipeline(out),
    );
    student.train(&instructions);
    // preload the queries that actually appear in the KG
    let preload: Vec<String> = out
        .kg
        .nodes()
        .filter(|(_, n)| n.kind == NodeKind::Query)
        .take(20)
        .map(|(_, n)| n.text.clone())
        .collect();
    assert!(!preload.is_empty());
    let system = ServingSystem::builder()
        .kg(Arc::new(out.kg.clone()))
        .lm(Arc::new(student))
        .preload(preload.clone())
        .config(ServingConfig {
            workers: 2,
            ..Default::default()
        })
        .build()
        .expect("serving config is valid");
    // hot path
    let r = system.handle_request(&preload[0]);
    let features = r.features.expect("preloaded query must hit");
    assert!(!features.intents.is_empty());
    // cold path: async miss → batch → hit
    assert!(system
        .handle_request("entirely novel query")
        .features
        .is_none());
    assert_eq!(system.run_batch_cycle().expect("healthy workers"), 1);
    assert!(system
        .handle_request("entirely novel query")
        .features
        .is_some());
}

#[test]
fn navigation_runs_over_pipeline_kg() {
    let out = pipeline();
    let engine = NavigationEngine::new(out.kg.clone());
    let mut navigable = 0;
    for q in out.world.queries.iter().take(400) {
        let (session, suggestions) = NavSession::start(&engine, &q.text, 5);
        if !suggestions.is_empty() && !session.candidates.is_empty() {
            navigable += 1;
        }
    }
    assert!(navigable > 10, "only {navigable} navigable queries");
}

#[test]
fn kg_snapshot_survives_serialisation() {
    let out = pipeline();
    let json = out.kg.to_json();
    let kg2 = cosmo::kg::KnowledgeGraph::from_json(&json).unwrap();
    assert_eq!(kg2.num_nodes(), out.kg.num_nodes());
    assert_eq!(kg2.num_edges(), out.kg.num_edges());
    // adjacency still works after round-trip
    let q = kg2
        .nodes()
        .find(|(_, n)| n.kind == NodeKind::Query)
        .map(|(id, _)| id)
        .unwrap();
    let _ = kg2.top_intents(q, 3);
}
