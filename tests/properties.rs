//! Property-based invariants across the workspace: KG index consistency,
//! n-gram probability normalisation, canonicalisation idempotence, metric
//! bounds, cache coherence.

use cosmo::kg::{BehaviorKind, Edge, GraphView, KgSnapshot, KnowledgeGraph, NodeKind, Relation};
use cosmo::text;
use proptest::prelude::*;

/// Build a graph from proptest-generated edge tuples
/// `(head text, relation index, tail text, is_cobuy, category)`.
fn graph_from(edges: &[(String, usize, String, bool, u8)]) -> KnowledgeGraph {
    let mut kg = KnowledgeGraph::new();
    for (i, (head_text, rel_idx, tail_text, is_cobuy, cat)) in edges.iter().enumerate() {
        let head = kg.intern_node(NodeKind::Product, head_text);
        let tail = kg.intern_node(NodeKind::Intention, tail_text);
        kg.add_edge(Edge {
            head,
            relation: Relation::from_index(*rel_idx).unwrap(),
            tail,
            behavior: if *is_cobuy {
                BehaviorKind::CoBuy
            } else {
                BehaviorKind::SearchBuy
            },
            category: *cat,
            plausibility: 0.5 + (i % 5) as f32 / 10.0,
            typicality: (i % 7) as f32 / 7.0,
            support: 1 + (i as u32 % 4),
        });
    }
    kg
}

fn word() -> impl Strategy<Value = String> {
    prop::sample::select(vec![
        "camping", "tent", "dog", "leash", "warm", "winter", "walking", "the", "holding", "snacks",
        "used", "for", "keeping", "mattress", "air",
    ])
    .prop_map(|s| s.to_string())
}

fn phrase() -> impl Strategy<Value = String> {
    prop::collection::vec(word(), 1..5).prop_map(|w| w.join(" "))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn canonicalize_tail_is_idempotent(raw in phrase()) {
        let once = text::canonicalize_tail(&raw);
        let twice = text::canonicalize_tail(&once);
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn tokenize_roundtrip_is_stable(raw in "[a-z0-9 ,.!-]{0,60}") {
        // tokenizing the detokenised form must be a fixed point
        let t1 = text::tokenize(&raw);
        let joined = t1.join(" ");
        let t2 = text::tokenize(&joined);
        prop_assert_eq!(t1, t2);
    }

    #[test]
    fn edit_distance_triangle_inequality(
        a in "[a-z]{0,10}", b in "[a-z]{0,10}", c in "[a-z]{0,10}",
    ) {
        let ab = text::edit_distance(&a, &b);
        let bc = text::edit_distance(&b, &c);
        let ac = text::edit_distance(&a, &c);
        prop_assert!(ac <= ab + bc, "d(a,c)={ac} > d(a,b)+d(b,c)={}", ab + bc);
        prop_assert_eq!(text::edit_distance(&a, &b), text::edit_distance(&b, &a));
    }

    #[test]
    fn ngram_next_token_distribution_normalises(
        sentences in prop::collection::vec(phrase(), 3..10),
        history in prop::collection::vec(word(), 0..3),
    ) {
        let (vocab, lm) = text::ngram::train_lm(&sentences, 3);
        let hist_ids: Vec<u32> = history.iter().map(|w| vocab.get(w)).collect();
        let mut sum = 0.0;
        for id in 0..vocab.len() as u32 {
            let p = lm.prob(&hist_ids, id);
            prop_assert!(p > 0.0 && p <= 1.0, "p={p}");
            sum += p;
        }
        prop_assert!((sum - 1.0).abs() < 0.12, "sum={sum}");
    }

    #[test]
    fn kg_indexes_stay_consistent(
        edges in prop::collection::vec(
            (phrase(), 0usize..15, phrase(), prop::bool::ANY, 0u8..18),
            1..40,
        ),
    ) {
        let kg = graph_from(&edges);
        // 1. out-degree sum equals in-degree sum equals edge count
        let out_sum: usize = kg.nodes().map(|(id, _)| kg.out_degree(id)).sum();
        let in_sum: usize = kg.nodes().map(|(id, _)| kg.in_degree(id)).sum();
        prop_assert_eq!(out_sum, kg.num_edges());
        prop_assert_eq!(in_sum, kg.num_edges());
        // 2. every edge reachable via its head's adjacency
        for (_, e) in kg.edges() {
            prop_assert!(kg.tails_of(e.head).any(|e2| e2.tail == e.tail && e2.relation == e.relation));
        }
        // 3. JSON round-trip preserves everything
        let kg2 = KnowledgeGraph::from_json(&kg.to_json()).unwrap();
        prop_assert_eq!(kg2.num_nodes(), kg.num_nodes());
        prop_assert_eq!(kg2.num_edges(), kg.num_edges());
        let out_sum2: usize = kg2.nodes().map(|(id, _)| kg2.out_degree(id)).sum();
        prop_assert_eq!(out_sum2, out_sum);
    }

    /// Every adjacency answer from the frozen CSR snapshot equals the
    /// mutable store's answer (order-normalised), for every node and every
    /// relation.
    #[test]
    fn snapshot_answers_match_store(
        edges in prop::collection::vec(
            (phrase(), 0usize..15, phrase(), prop::bool::ANY, 0u8..18),
            1..40,
        ),
    ) {
        let kg = graph_from(&edges);
        let snap = kg.freeze();
        prop_assert_eq!(snap.num_nodes(), kg.num_nodes());
        prop_assert_eq!(snap.num_edges(), kg.num_edges());
        let key = |e: &Edge| (e.relation.index(), e.head.0, e.tail.0, e.support);
        let norm = |mut v: Vec<(usize, u32, u32, u32)>| { v.sort_unstable(); v };
        for (id, node) in kg.nodes() {
            prop_assert_eq!(snap.node_kind(id), node.kind);
            prop_assert_eq!(snap.node_text(id), node.text.as_str());
            prop_assert_eq!(snap.find_node(node.kind, &node.text), Some(id));
            prop_assert_eq!(
                norm(kg.tails_of(id).map(key).collect()),
                norm(GraphView::tails_of(&snap, id).map(key).collect())
            );
            prop_assert_eq!(
                norm(kg.heads_of(id).map(key).collect()),
                norm(GraphView::heads_of(&snap, id).map(key).collect())
            );
            for &rel in &Relation::ALL {
                prop_assert_eq!(
                    norm(kg.tails_of_rel(id, rel).map(key).collect()),
                    norm(snap.tails_of_rel_slice(id, rel).iter().map(key).collect())
                );
            }
        }
    }

    /// `save` → `load` is lossless and byte-stable: re-serialising the
    /// loaded snapshot reproduces the original bytes exactly.
    #[test]
    fn snapshot_binary_roundtrip_byte_stable(
        edges in prop::collection::vec(
            (phrase(), 0usize..15, phrase(), prop::bool::ANY, 0u8..18),
            0..40,
        ),
    ) {
        let snap = graph_from(&edges).freeze();
        let bytes = snap.to_bytes();
        let reloaded = KgSnapshot::from_bytes(&bytes).unwrap();
        prop_assert_eq!(&reloaded, &snap);
        prop_assert_eq!(reloaded.to_bytes(), bytes);
    }

    #[test]
    fn rank_metrics_are_bounded_and_ordered(
        scores in prop::collection::vec(-10.0f32..10.0, 2..30),
        target_seed in 0usize..1000,
    ) {
        let target = target_seed % scores.len();
        let mut m = cosmo::sessrec::RankMetrics::default();
        m.record(&scores, target, 10);
        prop_assert!(m.hits() >= 0.0 && m.hits() <= 100.0);
        prop_assert!(m.ndcg() <= m.hits() + 1e-9, "NDCG {} > Hits {}", m.ndcg(), m.hits());
        prop_assert!(m.mrr() <= m.hits() + 1e-9);
    }

    #[test]
    fn confusion_micro_macro_bounds(
        pairs in prop::collection::vec((0usize..4, 0usize..4), 1..60),
    ) {
        let mut c = cosmo::relevance::Confusion::new(4);
        for (t, p) in &pairs {
            c.record(*t, *p);
        }
        prop_assert!(c.micro_f1() >= 0.0 && c.micro_f1() <= 1.0);
        prop_assert!(c.macro_f1() >= 0.0 && c.macro_f1() <= 1.0);
        prop_assert_eq!(c.total() as usize, pairs.len());
    }

    #[test]
    fn embedder_similarity_is_symmetric_and_bounded(a in phrase(), b in phrase()) {
        let corpus: Vec<String> = vec![a.clone(), b.clone(), "used for camping".into()];
        let e = text::HashedEmbedder::fit(&corpus, 64);
        let s1 = e.similarity(&a, &b);
        let s2 = e.similarity(&b, &a);
        prop_assert!((s1 - s2).abs() < 1e-6);
        prop_assert!((-1.0001..=1.0001).contains(&s1), "s={s1}");
        prop_assert!(e.similarity(&a, &a) > 0.999 || a.trim().is_empty());
    }
}

#[test]
fn cache_coherent_under_concurrent_mixed_ops() {
    use cosmo::serving::{CacheConfig, CacheStore, StructuredFeatures};
    use std::sync::Arc;
    let cache = Arc::new(CacheStore::new(
        vec![],
        CacheConfig {
            l2_capacity: 256,
            ..CacheConfig::default()
        },
    ));
    let mut handles = Vec::new();
    for t in 0..4 {
        let c = cache.clone();
        handles.push(std::thread::spawn(move || {
            for i in 0..300 {
                let q = format!("q{}", (t * 31 + i) % 50);
                if c.get(&q).is_none() {
                    let drained = c.drain_pending(4);
                    let feats = drained
                        .into_iter()
                        .map(|query| {
                            Arc::new(StructuredFeatures {
                                query,
                                intents: vec![],
                                subcategory: vec![0.0; 4],
                                strong_intent: None,
                            })
                        })
                        .collect();
                    c.install(feats);
                }
                if i % 97 == 0 {
                    c.daily_refresh();
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    // every installed entry is retrievable and consistent
    for i in 0..50 {
        let q = format!("q{i}");
        if let Some((f, _)) = cache.get(&q) {
            assert_eq!(f.query, q);
        }
    }
}
