/root/repo/target/debug/examples/build_kg-486db73690672330.d: examples/build_kg.rs

/root/repo/target/debug/examples/libbuild_kg-486db73690672330.rmeta: examples/build_kg.rs

examples/build_kg.rs:
