/root/repo/target/debug/examples/snapshot_check-8dd55ece67209815.d: examples/snapshot_check.rs

/root/repo/target/debug/examples/libsnapshot_check-8dd55ece67209815.rmeta: examples/snapshot_check.rs

examples/snapshot_check.rs:
