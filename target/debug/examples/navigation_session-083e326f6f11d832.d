/root/repo/target/debug/examples/navigation_session-083e326f6f11d832.d: examples/navigation_session.rs

/root/repo/target/debug/examples/libnavigation_session-083e326f6f11d832.rmeta: examples/navigation_session.rs

examples/navigation_session.rs:
