/root/repo/target/debug/examples/serve_intents-0c275e2159c47279.d: examples/serve_intents.rs

/root/repo/target/debug/examples/libserve_intents-0c275e2159c47279.rmeta: examples/serve_intents.rs

examples/serve_intents.rs:
