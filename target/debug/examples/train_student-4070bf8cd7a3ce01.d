/root/repo/target/debug/examples/train_student-4070bf8cd7a3ce01.d: examples/train_student.rs

/root/repo/target/debug/examples/train_student-4070bf8cd7a3ce01: examples/train_student.rs

examples/train_student.rs:
