/root/repo/target/debug/examples/serve_intents-3e8d9f3706d4c361.d: examples/serve_intents.rs

/root/repo/target/debug/examples/serve_intents-3e8d9f3706d4c361: examples/serve_intents.rs

examples/serve_intents.rs:
