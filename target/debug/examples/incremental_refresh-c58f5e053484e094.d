/root/repo/target/debug/examples/incremental_refresh-c58f5e053484e094.d: examples/incremental_refresh.rs

/root/repo/target/debug/examples/libincremental_refresh-c58f5e053484e094.rmeta: examples/incremental_refresh.rs

examples/incremental_refresh.rs:
