/root/repo/target/debug/examples/incremental_refresh-475584b2bcf1e40f.d: examples/incremental_refresh.rs

/root/repo/target/debug/examples/incremental_refresh-475584b2bcf1e40f: examples/incremental_refresh.rs

examples/incremental_refresh.rs:
