/root/repo/target/debug/examples/navigation_session-1605052030d266d8.d: examples/navigation_session.rs

/root/repo/target/debug/examples/navigation_session-1605052030d266d8: examples/navigation_session.rs

examples/navigation_session.rs:
