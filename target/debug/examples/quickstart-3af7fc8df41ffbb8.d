/root/repo/target/debug/examples/quickstart-3af7fc8df41ffbb8.d: examples/quickstart.rs

/root/repo/target/debug/examples/libquickstart-3af7fc8df41ffbb8.rmeta: examples/quickstart.rs

examples/quickstart.rs:
