/root/repo/target/debug/examples/train_student-2f0fafc931d68b3d.d: examples/train_student.rs

/root/repo/target/debug/examples/libtrain_student-2f0fafc931d68b3d.rmeta: examples/train_student.rs

examples/train_student.rs:
