/root/repo/target/debug/deps/rand-527dcccd8478af78.d: .stubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-527dcccd8478af78.rmeta: .stubs/rand/src/lib.rs

.stubs/rand/src/lib.rs:
