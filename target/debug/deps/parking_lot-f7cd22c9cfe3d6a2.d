/root/repo/target/debug/deps/parking_lot-f7cd22c9cfe3d6a2.d: .stubs/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-f7cd22c9cfe3d6a2.rlib: .stubs/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-f7cd22c9cfe3d6a2.rmeta: .stubs/parking_lot/src/lib.rs

.stubs/parking_lot/src/lib.rs:
