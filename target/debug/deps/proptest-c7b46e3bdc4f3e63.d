/root/repo/target/debug/deps/proptest-c7b46e3bdc4f3e63.d: .stubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-c7b46e3bdc4f3e63.rlib: .stubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-c7b46e3bdc4f3e63.rmeta: .stubs/proptest/src/lib.rs

.stubs/proptest/src/lib.rs:
