/root/repo/target/debug/deps/cosmo_synth-aaccf76a317414a7.d: crates/synth/src/lib.rs crates/synth/src/behavior.rs crates/synth/src/corpus.rs crates/synth/src/domain.rs crates/synth/src/oracle.rs crates/synth/src/util.rs crates/synth/src/world.rs Cargo.toml

/root/repo/target/debug/deps/libcosmo_synth-aaccf76a317414a7.rmeta: crates/synth/src/lib.rs crates/synth/src/behavior.rs crates/synth/src/corpus.rs crates/synth/src/domain.rs crates/synth/src/oracle.rs crates/synth/src/util.rs crates/synth/src/world.rs Cargo.toml

crates/synth/src/lib.rs:
crates/synth/src/behavior.rs:
crates/synth/src/corpus.rs:
crates/synth/src/domain.rs:
crates/synth/src/oracle.rs:
crates/synth/src/util.rs:
crates/synth/src/world.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
