/root/repo/target/debug/deps/cosmo_sessrec-9893173e93718a81.d: crates/sessrec/src/lib.rs crates/sessrec/src/dataset.rs crates/sessrec/src/metrics.rs crates/sessrec/src/models/mod.rs crates/sessrec/src/models/gnn.rs crates/sessrec/src/models/seq.rs crates/sessrec/src/rewrites.rs

/root/repo/target/debug/deps/libcosmo_sessrec-9893173e93718a81.rlib: crates/sessrec/src/lib.rs crates/sessrec/src/dataset.rs crates/sessrec/src/metrics.rs crates/sessrec/src/models/mod.rs crates/sessrec/src/models/gnn.rs crates/sessrec/src/models/seq.rs crates/sessrec/src/rewrites.rs

/root/repo/target/debug/deps/libcosmo_sessrec-9893173e93718a81.rmeta: crates/sessrec/src/lib.rs crates/sessrec/src/dataset.rs crates/sessrec/src/metrics.rs crates/sessrec/src/models/mod.rs crates/sessrec/src/models/gnn.rs crates/sessrec/src/models/seq.rs crates/sessrec/src/rewrites.rs

crates/sessrec/src/lib.rs:
crates/sessrec/src/dataset.rs:
crates/sessrec/src/metrics.rs:
crates/sessrec/src/models/mod.rs:
crates/sessrec/src/models/gnn.rs:
crates/sessrec/src/models/seq.rs:
crates/sessrec/src/rewrites.rs:
