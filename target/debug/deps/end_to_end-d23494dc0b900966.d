/root/repo/target/debug/deps/end_to_end-d23494dc0b900966.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-d23494dc0b900966: tests/end_to_end.rs

tests/end_to_end.rs:
