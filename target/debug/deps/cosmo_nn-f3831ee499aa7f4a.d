/root/repo/target/debug/deps/cosmo_nn-f3831ee499aa7f4a.d: crates/nn/src/lib.rs crates/nn/src/init.rs crates/nn/src/layers.rs crates/nn/src/opt.rs crates/nn/src/params.rs crates/nn/src/tape.rs crates/nn/src/tensor.rs crates/nn/src/train.rs

/root/repo/target/debug/deps/libcosmo_nn-f3831ee499aa7f4a.rmeta: crates/nn/src/lib.rs crates/nn/src/init.rs crates/nn/src/layers.rs crates/nn/src/opt.rs crates/nn/src/params.rs crates/nn/src/tape.rs crates/nn/src/tensor.rs crates/nn/src/train.rs

crates/nn/src/lib.rs:
crates/nn/src/init.rs:
crates/nn/src/layers.rs:
crates/nn/src/opt.rs:
crates/nn/src/params.rs:
crates/nn/src/tape.rs:
crates/nn/src/tensor.rs:
crates/nn/src/train.rs:
