/root/repo/target/debug/deps/proptest-6103370b117bd6bb.d: .stubs/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-6103370b117bd6bb.rmeta: .stubs/proptest/src/lib.rs Cargo.toml

.stubs/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
