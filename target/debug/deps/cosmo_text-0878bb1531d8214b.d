/root/repo/target/debug/deps/cosmo_text-0878bb1531d8214b.d: crates/text/src/lib.rs crates/text/src/canon.rs crates/text/src/distance.rs crates/text/src/embed.rs crates/text/src/hash.rs crates/text/src/ngram.rs crates/text/src/segment.rs crates/text/src/tfidf.rs crates/text/src/tokenize.rs crates/text/src/vocab.rs

/root/repo/target/debug/deps/libcosmo_text-0878bb1531d8214b.rlib: crates/text/src/lib.rs crates/text/src/canon.rs crates/text/src/distance.rs crates/text/src/embed.rs crates/text/src/hash.rs crates/text/src/ngram.rs crates/text/src/segment.rs crates/text/src/tfidf.rs crates/text/src/tokenize.rs crates/text/src/vocab.rs

/root/repo/target/debug/deps/libcosmo_text-0878bb1531d8214b.rmeta: crates/text/src/lib.rs crates/text/src/canon.rs crates/text/src/distance.rs crates/text/src/embed.rs crates/text/src/hash.rs crates/text/src/ngram.rs crates/text/src/segment.rs crates/text/src/tfidf.rs crates/text/src/tokenize.rs crates/text/src/vocab.rs

crates/text/src/lib.rs:
crates/text/src/canon.rs:
crates/text/src/distance.rs:
crates/text/src/embed.rs:
crates/text/src/hash.rs:
crates/text/src/ngram.rs:
crates/text/src/segment.rs:
crates/text/src/tfidf.rs:
crates/text/src/tokenize.rs:
crates/text/src/vocab.rs:
