/root/repo/target/debug/deps/cosmo_relevance-e30a9b9b83a04b95.d: crates/relevance/src/lib.rs crates/relevance/src/dataset.rs crates/relevance/src/metrics.rs crates/relevance/src/models.rs

/root/repo/target/debug/deps/libcosmo_relevance-e30a9b9b83a04b95.rmeta: crates/relevance/src/lib.rs crates/relevance/src/dataset.rs crates/relevance/src/metrics.rs crates/relevance/src/models.rs

crates/relevance/src/lib.rs:
crates/relevance/src/dataset.rs:
crates/relevance/src/metrics.rs:
crates/relevance/src/models.rs:
