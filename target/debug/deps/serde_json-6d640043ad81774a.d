/root/repo/target/debug/deps/serde_json-6d640043ad81774a.d: .stubs/serde_json/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde_json-6d640043ad81774a.rmeta: .stubs/serde_json/src/lib.rs Cargo.toml

.stubs/serde_json/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
