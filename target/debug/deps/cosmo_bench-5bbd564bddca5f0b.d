/root/repo/target/debug/deps/cosmo_bench-5bbd564bddca5f0b.d: crates/bench/src/lib.rs crates/bench/src/ablations.rs crates/bench/src/context.rs crates/bench/src/extensions.rs crates/bench/src/figures.rs crates/bench/src/kgstats.rs crates/bench/src/tables.rs

/root/repo/target/debug/deps/libcosmo_bench-5bbd564bddca5f0b.rmeta: crates/bench/src/lib.rs crates/bench/src/ablations.rs crates/bench/src/context.rs crates/bench/src/extensions.rs crates/bench/src/figures.rs crates/bench/src/kgstats.rs crates/bench/src/tables.rs

crates/bench/src/lib.rs:
crates/bench/src/ablations.rs:
crates/bench/src/context.rs:
crates/bench/src/extensions.rs:
crates/bench/src/figures.rs:
crates/bench/src/kgstats.rs:
crates/bench/src/tables.rs:
