/root/repo/target/debug/deps/cosmo_exec-a591e001ff6c06e5.d: crates/exec/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcosmo_exec-a591e001ff6c06e5.rmeta: crates/exec/src/lib.rs Cargo.toml

crates/exec/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
