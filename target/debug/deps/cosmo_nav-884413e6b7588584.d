/root/repo/target/debug/deps/cosmo_nav-884413e6b7588584.d: crates/nav/src/lib.rs crates/nav/src/abtest.rs crates/nav/src/engine.rs

/root/repo/target/debug/deps/libcosmo_nav-884413e6b7588584.rmeta: crates/nav/src/lib.rs crates/nav/src/abtest.rs crates/nav/src/engine.rs

crates/nav/src/lib.rs:
crates/nav/src/abtest.rs:
crates/nav/src/engine.rs:
