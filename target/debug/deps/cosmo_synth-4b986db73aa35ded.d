/root/repo/target/debug/deps/cosmo_synth-4b986db73aa35ded.d: crates/synth/src/lib.rs crates/synth/src/behavior.rs crates/synth/src/corpus.rs crates/synth/src/domain.rs crates/synth/src/oracle.rs crates/synth/src/util.rs crates/synth/src/world.rs

/root/repo/target/debug/deps/libcosmo_synth-4b986db73aa35ded.rlib: crates/synth/src/lib.rs crates/synth/src/behavior.rs crates/synth/src/corpus.rs crates/synth/src/domain.rs crates/synth/src/oracle.rs crates/synth/src/util.rs crates/synth/src/world.rs

/root/repo/target/debug/deps/libcosmo_synth-4b986db73aa35ded.rmeta: crates/synth/src/lib.rs crates/synth/src/behavior.rs crates/synth/src/corpus.rs crates/synth/src/domain.rs crates/synth/src/oracle.rs crates/synth/src/util.rs crates/synth/src/world.rs

crates/synth/src/lib.rs:
crates/synth/src/behavior.rs:
crates/synth/src/corpus.rs:
crates/synth/src/domain.rs:
crates/synth/src/oracle.rs:
crates/synth/src/util.rs:
crates/synth/src/world.rs:
