/root/repo/target/debug/deps/cosmo_core-d90d5d6c0de561c1.d: crates/core/src/lib.rs crates/core/src/annotation.rs crates/core/src/critic.rs crates/core/src/feedback.rs crates/core/src/filter.rs crates/core/src/pipeline.rs crates/core/src/sampling.rs

/root/repo/target/debug/deps/libcosmo_core-d90d5d6c0de561c1.rmeta: crates/core/src/lib.rs crates/core/src/annotation.rs crates/core/src/critic.rs crates/core/src/feedback.rs crates/core/src/filter.rs crates/core/src/pipeline.rs crates/core/src/sampling.rs

crates/core/src/lib.rs:
crates/core/src/annotation.rs:
crates/core/src/critic.rs:
crates/core/src/feedback.rs:
crates/core/src/filter.rs:
crates/core/src/pipeline.rs:
crates/core/src/sampling.rs:
