/root/repo/target/debug/deps/kg_queries-878162e7ed3d9bc6.d: crates/bench/benches/kg_queries.rs

/root/repo/target/debug/deps/libkg_queries-878162e7ed3d9bc6.rmeta: crates/bench/benches/kg_queries.rs

crates/bench/benches/kg_queries.rs:
