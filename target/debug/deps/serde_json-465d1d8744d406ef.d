/root/repo/target/debug/deps/serde_json-465d1d8744d406ef.d: .stubs/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-465d1d8744d406ef.rmeta: .stubs/serde_json/src/lib.rs

.stubs/serde_json/src/lib.rs:
