/root/repo/target/debug/deps/criterion-347a55a9a371020b.d: .stubs/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-347a55a9a371020b.rlib: .stubs/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-347a55a9a371020b.rmeta: .stubs/criterion/src/lib.rs

.stubs/criterion/src/lib.rs:
