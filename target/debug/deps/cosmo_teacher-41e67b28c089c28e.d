/root/repo/target/debug/deps/cosmo_teacher-41e67b28c089c28e.d: crates/teacher/src/lib.rs crates/teacher/src/cost.rs crates/teacher/src/generate.rs crates/teacher/src/prompts.rs crates/teacher/src/relations.rs

/root/repo/target/debug/deps/libcosmo_teacher-41e67b28c089c28e.rmeta: crates/teacher/src/lib.rs crates/teacher/src/cost.rs crates/teacher/src/generate.rs crates/teacher/src/prompts.rs crates/teacher/src/relations.rs

crates/teacher/src/lib.rs:
crates/teacher/src/cost.rs:
crates/teacher/src/generate.rs:
crates/teacher/src/prompts.rs:
crates/teacher/src/relations.rs:
