/root/repo/target/debug/deps/serde_derive-1d34bc0ba142c409.d: .stubs/serde_derive/src/lib.rs

/root/repo/target/debug/deps/libserde_derive-1d34bc0ba142c409.so: .stubs/serde_derive/src/lib.rs

.stubs/serde_derive/src/lib.rs:
