/root/repo/target/debug/deps/cosmo_nav-1f11a625e387e7d6.d: crates/nav/src/lib.rs crates/nav/src/abtest.rs crates/nav/src/engine.rs

/root/repo/target/debug/deps/libcosmo_nav-1f11a625e387e7d6.rlib: crates/nav/src/lib.rs crates/nav/src/abtest.rs crates/nav/src/engine.rs

/root/repo/target/debug/deps/libcosmo_nav-1f11a625e387e7d6.rmeta: crates/nav/src/lib.rs crates/nav/src/abtest.rs crates/nav/src/engine.rs

crates/nav/src/lib.rs:
crates/nav/src/abtest.rs:
crates/nav/src/engine.rs:
