/root/repo/target/debug/deps/cosmo_kg-8aaeedaa10ab48ac.d: crates/kg/src/lib.rs crates/kg/src/algo.rs crates/kg/src/hierarchy.rs crates/kg/src/schema.rs crates/kg/src/snapshot.rs crates/kg/src/stats.rs crates/kg/src/store.rs crates/kg/src/view.rs

/root/repo/target/debug/deps/libcosmo_kg-8aaeedaa10ab48ac.rmeta: crates/kg/src/lib.rs crates/kg/src/algo.rs crates/kg/src/hierarchy.rs crates/kg/src/schema.rs crates/kg/src/snapshot.rs crates/kg/src/stats.rs crates/kg/src/store.rs crates/kg/src/view.rs

crates/kg/src/lib.rs:
crates/kg/src/algo.rs:
crates/kg/src/hierarchy.rs:
crates/kg/src/schema.rs:
crates/kg/src/snapshot.rs:
crates/kg/src/stats.rs:
crates/kg/src/store.rs:
crates/kg/src/view.rs:
