/root/repo/target/debug/deps/cosmo_serving-6755fdfa0c82d140.d: crates/serving/src/lib.rs crates/serving/src/cache.rs crates/serving/src/error.rs crates/serving/src/features.rs crates/serving/src/histogram.rs crates/serving/src/sim.rs crates/serving/src/system.rs crates/serving/src/views.rs

/root/repo/target/debug/deps/libcosmo_serving-6755fdfa0c82d140.rlib: crates/serving/src/lib.rs crates/serving/src/cache.rs crates/serving/src/error.rs crates/serving/src/features.rs crates/serving/src/histogram.rs crates/serving/src/sim.rs crates/serving/src/system.rs crates/serving/src/views.rs

/root/repo/target/debug/deps/libcosmo_serving-6755fdfa0c82d140.rmeta: crates/serving/src/lib.rs crates/serving/src/cache.rs crates/serving/src/error.rs crates/serving/src/features.rs crates/serving/src/histogram.rs crates/serving/src/sim.rs crates/serving/src/system.rs crates/serving/src/views.rs

crates/serving/src/lib.rs:
crates/serving/src/cache.rs:
crates/serving/src/error.rs:
crates/serving/src/features.rs:
crates/serving/src/histogram.rs:
crates/serving/src/sim.rs:
crates/serving/src/system.rs:
crates/serving/src/views.rs:
