/root/repo/target/debug/deps/cosmo_teacher-9ab1c9eab56ee4fd.d: crates/teacher/src/lib.rs crates/teacher/src/cost.rs crates/teacher/src/generate.rs crates/teacher/src/prompts.rs crates/teacher/src/relations.rs Cargo.toml

/root/repo/target/debug/deps/libcosmo_teacher-9ab1c9eab56ee4fd.rmeta: crates/teacher/src/lib.rs crates/teacher/src/cost.rs crates/teacher/src/generate.rs crates/teacher/src/prompts.rs crates/teacher/src/relations.rs Cargo.toml

crates/teacher/src/lib.rs:
crates/teacher/src/cost.rs:
crates/teacher/src/generate.rs:
crates/teacher/src/prompts.rs:
crates/teacher/src/relations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
