/root/repo/target/debug/deps/rand-c502f77fe09ef229.d: .stubs/rand/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand-c502f77fe09ef229.rmeta: .stubs/rand/src/lib.rs Cargo.toml

.stubs/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
