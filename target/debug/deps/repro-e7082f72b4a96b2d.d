/root/repo/target/debug/deps/repro-e7082f72b4a96b2d.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/librepro-e7082f72b4a96b2d.rmeta: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
