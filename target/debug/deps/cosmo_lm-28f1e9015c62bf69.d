/root/repo/target/debug/deps/cosmo_lm-28f1e9015c62bf69.d: crates/lm/src/lib.rs crates/lm/src/efficiency.rs crates/lm/src/eval.rs crates/lm/src/instruction.rs crates/lm/src/student.rs

/root/repo/target/debug/deps/libcosmo_lm-28f1e9015c62bf69.rmeta: crates/lm/src/lib.rs crates/lm/src/efficiency.rs crates/lm/src/eval.rs crates/lm/src/instruction.rs crates/lm/src/student.rs

crates/lm/src/lib.rs:
crates/lm/src/efficiency.rs:
crates/lm/src/eval.rs:
crates/lm/src/instruction.rs:
crates/lm/src/student.rs:
