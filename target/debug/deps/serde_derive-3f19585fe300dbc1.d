/root/repo/target/debug/deps/serde_derive-3f19585fe300dbc1.d: .stubs/serde_derive/src/lib.rs

/root/repo/target/debug/deps/libserde_derive-3f19585fe300dbc1.rmeta: .stubs/serde_derive/src/lib.rs

.stubs/serde_derive/src/lib.rs:
