/root/repo/target/debug/deps/cosmo-10fadb84e85a0023.d: src/lib.rs

/root/repo/target/debug/deps/libcosmo-10fadb84e85a0023.rmeta: src/lib.rs

src/lib.rs:
