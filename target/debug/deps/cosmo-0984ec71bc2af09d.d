/root/repo/target/debug/deps/cosmo-0984ec71bc2af09d.d: src/lib.rs

/root/repo/target/debug/deps/libcosmo-0984ec71bc2af09d.rlib: src/lib.rs

/root/repo/target/debug/deps/libcosmo-0984ec71bc2af09d.rmeta: src/lib.rs

src/lib.rs:
