/root/repo/target/debug/deps/cosmo_nav-30f963f6d7deb300.d: crates/nav/src/lib.rs crates/nav/src/abtest.rs crates/nav/src/engine.rs

/root/repo/target/debug/deps/cosmo_nav-30f963f6d7deb300: crates/nav/src/lib.rs crates/nav/src/abtest.rs crates/nav/src/engine.rs

crates/nav/src/lib.rs:
crates/nav/src/abtest.rs:
crates/nav/src/engine.rs:
