/root/repo/target/debug/deps/proptest-ab952a08b859bf20.d: .stubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-ab952a08b859bf20.rmeta: .stubs/proptest/src/lib.rs

.stubs/proptest/src/lib.rs:
