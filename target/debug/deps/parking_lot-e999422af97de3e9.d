/root/repo/target/debug/deps/parking_lot-e999422af97de3e9.d: .stubs/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-e999422af97de3e9.rmeta: .stubs/parking_lot/src/lib.rs

.stubs/parking_lot/src/lib.rs:
