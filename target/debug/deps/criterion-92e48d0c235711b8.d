/root/repo/target/debug/deps/criterion-92e48d0c235711b8.d: .stubs/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-92e48d0c235711b8.rmeta: .stubs/criterion/src/lib.rs

.stubs/criterion/src/lib.rs:
