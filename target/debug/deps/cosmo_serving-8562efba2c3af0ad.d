/root/repo/target/debug/deps/cosmo_serving-8562efba2c3af0ad.d: crates/serving/src/lib.rs crates/serving/src/cache.rs crates/serving/src/error.rs crates/serving/src/features.rs crates/serving/src/histogram.rs crates/serving/src/sim.rs crates/serving/src/system.rs crates/serving/src/views.rs

/root/repo/target/debug/deps/cosmo_serving-8562efba2c3af0ad: crates/serving/src/lib.rs crates/serving/src/cache.rs crates/serving/src/error.rs crates/serving/src/features.rs crates/serving/src/histogram.rs crates/serving/src/sim.rs crates/serving/src/system.rs crates/serving/src/views.rs

crates/serving/src/lib.rs:
crates/serving/src/cache.rs:
crates/serving/src/error.rs:
crates/serving/src/features.rs:
crates/serving/src/histogram.rs:
crates/serving/src/sim.rs:
crates/serving/src/system.rs:
crates/serving/src/views.rs:
