/root/repo/target/debug/deps/repro-f25e4f9afcc8f601.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/librepro-f25e4f9afcc8f601.rmeta: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
