/root/repo/target/debug/deps/parking_lot-c3a62ca0c31cfcc6.d: .stubs/parking_lot/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libparking_lot-c3a62ca0c31cfcc6.rmeta: .stubs/parking_lot/src/lib.rs Cargo.toml

.stubs/parking_lot/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
