/root/repo/target/debug/deps/cosmo_exec-12284c782caebf0a.d: crates/exec/src/lib.rs

/root/repo/target/debug/deps/libcosmo_exec-12284c782caebf0a.rlib: crates/exec/src/lib.rs

/root/repo/target/debug/deps/libcosmo_exec-12284c782caebf0a.rmeta: crates/exec/src/lib.rs

crates/exec/src/lib.rs:
