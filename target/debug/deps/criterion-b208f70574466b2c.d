/root/repo/target/debug/deps/criterion-b208f70574466b2c.d: .stubs/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-b208f70574466b2c.rmeta: .stubs/criterion/src/lib.rs Cargo.toml

.stubs/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
