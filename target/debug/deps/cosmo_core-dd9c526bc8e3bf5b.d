/root/repo/target/debug/deps/cosmo_core-dd9c526bc8e3bf5b.d: crates/core/src/lib.rs crates/core/src/annotation.rs crates/core/src/critic.rs crates/core/src/feedback.rs crates/core/src/filter.rs crates/core/src/pipeline.rs crates/core/src/sampling.rs

/root/repo/target/debug/deps/libcosmo_core-dd9c526bc8e3bf5b.rmeta: crates/core/src/lib.rs crates/core/src/annotation.rs crates/core/src/critic.rs crates/core/src/feedback.rs crates/core/src/filter.rs crates/core/src/pipeline.rs crates/core/src/sampling.rs

crates/core/src/lib.rs:
crates/core/src/annotation.rs:
crates/core/src/critic.rs:
crates/core/src/feedback.rs:
crates/core/src/filter.rs:
crates/core/src/pipeline.rs:
crates/core/src/sampling.rs:
