/root/repo/target/debug/deps/cosmo_lm-032b688d22b27df4.d: crates/lm/src/lib.rs crates/lm/src/efficiency.rs crates/lm/src/eval.rs crates/lm/src/instruction.rs crates/lm/src/student.rs

/root/repo/target/debug/deps/libcosmo_lm-032b688d22b27df4.rlib: crates/lm/src/lib.rs crates/lm/src/efficiency.rs crates/lm/src/eval.rs crates/lm/src/instruction.rs crates/lm/src/student.rs

/root/repo/target/debug/deps/libcosmo_lm-032b688d22b27df4.rmeta: crates/lm/src/lib.rs crates/lm/src/efficiency.rs crates/lm/src/eval.rs crates/lm/src/instruction.rs crates/lm/src/student.rs

crates/lm/src/lib.rs:
crates/lm/src/efficiency.rs:
crates/lm/src/eval.rs:
crates/lm/src/instruction.rs:
crates/lm/src/student.rs:
