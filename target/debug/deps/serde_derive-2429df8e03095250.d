/root/repo/target/debug/deps/serde_derive-2429df8e03095250.d: .stubs/serde_derive/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde_derive-2429df8e03095250.rmeta: .stubs/serde_derive/src/lib.rs Cargo.toml

.stubs/serde_derive/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
