/root/repo/target/debug/deps/serde-abca5fc926650493.d: .stubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-abca5fc926650493.rmeta: .stubs/serde/src/lib.rs

.stubs/serde/src/lib.rs:
