/root/repo/target/debug/deps/repro-d4380406f40ff939.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/librepro-d4380406f40ff939.rmeta: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
