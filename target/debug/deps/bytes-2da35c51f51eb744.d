/root/repo/target/debug/deps/bytes-2da35c51f51eb744.d: .stubs/bytes/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbytes-2da35c51f51eb744.rmeta: .stubs/bytes/src/lib.rs Cargo.toml

.stubs/bytes/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
