/root/repo/target/debug/deps/bytes-671c25d1d7655a24.d: .stubs/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-671c25d1d7655a24.rmeta: .stubs/bytes/src/lib.rs

.stubs/bytes/src/lib.rs:
