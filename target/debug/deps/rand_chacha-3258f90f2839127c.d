/root/repo/target/debug/deps/rand_chacha-3258f90f2839127c.d: .stubs/rand_chacha/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand_chacha-3258f90f2839127c.rmeta: .stubs/rand_chacha/src/lib.rs Cargo.toml

.stubs/rand_chacha/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
