/root/repo/target/debug/deps/rand-1e7b1bb6fe9028cf.d: .stubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-1e7b1bb6fe9028cf.rlib: .stubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-1e7b1bb6fe9028cf.rmeta: .stubs/rand/src/lib.rs

.stubs/rand/src/lib.rs:
