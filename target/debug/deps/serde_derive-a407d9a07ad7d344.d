/root/repo/target/debug/deps/serde_derive-a407d9a07ad7d344.d: .stubs/serde_derive/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde_derive-a407d9a07ad7d344.so: .stubs/serde_derive/src/lib.rs Cargo.toml

.stubs/serde_derive/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
