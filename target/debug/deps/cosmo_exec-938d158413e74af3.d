/root/repo/target/debug/deps/cosmo_exec-938d158413e74af3.d: crates/exec/src/lib.rs

/root/repo/target/debug/deps/libcosmo_exec-938d158413e74af3.rmeta: crates/exec/src/lib.rs

crates/exec/src/lib.rs:
