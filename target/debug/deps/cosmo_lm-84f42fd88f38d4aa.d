/root/repo/target/debug/deps/cosmo_lm-84f42fd88f38d4aa.d: crates/lm/src/lib.rs crates/lm/src/efficiency.rs crates/lm/src/eval.rs crates/lm/src/instruction.rs crates/lm/src/student.rs

/root/repo/target/debug/deps/libcosmo_lm-84f42fd88f38d4aa.rmeta: crates/lm/src/lib.rs crates/lm/src/efficiency.rs crates/lm/src/eval.rs crates/lm/src/instruction.rs crates/lm/src/student.rs

crates/lm/src/lib.rs:
crates/lm/src/efficiency.rs:
crates/lm/src/eval.rs:
crates/lm/src/instruction.rs:
crates/lm/src/student.rs:
