/root/repo/target/debug/deps/rand_chacha-128989bc59f92d50.d: .stubs/rand_chacha/src/lib.rs

/root/repo/target/debug/deps/librand_chacha-128989bc59f92d50.rlib: .stubs/rand_chacha/src/lib.rs

/root/repo/target/debug/deps/librand_chacha-128989bc59f92d50.rmeta: .stubs/rand_chacha/src/lib.rs

.stubs/rand_chacha/src/lib.rs:
