/root/repo/target/debug/deps/cosmo_nn-ff4385ae01e963ea.d: crates/nn/src/lib.rs crates/nn/src/init.rs crates/nn/src/layers.rs crates/nn/src/opt.rs crates/nn/src/params.rs crates/nn/src/tape.rs crates/nn/src/tensor.rs crates/nn/src/train.rs

/root/repo/target/debug/deps/libcosmo_nn-ff4385ae01e963ea.rlib: crates/nn/src/lib.rs crates/nn/src/init.rs crates/nn/src/layers.rs crates/nn/src/opt.rs crates/nn/src/params.rs crates/nn/src/tape.rs crates/nn/src/tensor.rs crates/nn/src/train.rs

/root/repo/target/debug/deps/libcosmo_nn-ff4385ae01e963ea.rmeta: crates/nn/src/lib.rs crates/nn/src/init.rs crates/nn/src/layers.rs crates/nn/src/opt.rs crates/nn/src/params.rs crates/nn/src/tape.rs crates/nn/src/tensor.rs crates/nn/src/train.rs

crates/nn/src/lib.rs:
crates/nn/src/init.rs:
crates/nn/src/layers.rs:
crates/nn/src/opt.rs:
crates/nn/src/params.rs:
crates/nn/src/tape.rs:
crates/nn/src/tensor.rs:
crates/nn/src/train.rs:
