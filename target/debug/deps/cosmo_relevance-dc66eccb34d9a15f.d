/root/repo/target/debug/deps/cosmo_relevance-dc66eccb34d9a15f.d: crates/relevance/src/lib.rs crates/relevance/src/dataset.rs crates/relevance/src/metrics.rs crates/relevance/src/models.rs

/root/repo/target/debug/deps/libcosmo_relevance-dc66eccb34d9a15f.rlib: crates/relevance/src/lib.rs crates/relevance/src/dataset.rs crates/relevance/src/metrics.rs crates/relevance/src/models.rs

/root/repo/target/debug/deps/libcosmo_relevance-dc66eccb34d9a15f.rmeta: crates/relevance/src/lib.rs crates/relevance/src/dataset.rs crates/relevance/src/metrics.rs crates/relevance/src/models.rs

crates/relevance/src/lib.rs:
crates/relevance/src/dataset.rs:
crates/relevance/src/metrics.rs:
crates/relevance/src/models.rs:
