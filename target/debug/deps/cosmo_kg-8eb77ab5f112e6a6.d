/root/repo/target/debug/deps/cosmo_kg-8eb77ab5f112e6a6.d: crates/kg/src/lib.rs crates/kg/src/algo.rs crates/kg/src/hierarchy.rs crates/kg/src/schema.rs crates/kg/src/snapshot.rs crates/kg/src/stats.rs crates/kg/src/store.rs crates/kg/src/view.rs Cargo.toml

/root/repo/target/debug/deps/libcosmo_kg-8eb77ab5f112e6a6.rmeta: crates/kg/src/lib.rs crates/kg/src/algo.rs crates/kg/src/hierarchy.rs crates/kg/src/schema.rs crates/kg/src/snapshot.rs crates/kg/src/stats.rs crates/kg/src/store.rs crates/kg/src/view.rs Cargo.toml

crates/kg/src/lib.rs:
crates/kg/src/algo.rs:
crates/kg/src/hierarchy.rs:
crates/kg/src/schema.rs:
crates/kg/src/snapshot.rs:
crates/kg/src/stats.rs:
crates/kg/src/store.rs:
crates/kg/src/view.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
