/root/repo/target/debug/deps/cosmo_core-833101a63b537e38.d: crates/core/src/lib.rs crates/core/src/annotation.rs crates/core/src/critic.rs crates/core/src/feedback.rs crates/core/src/filter.rs crates/core/src/pipeline.rs crates/core/src/sampling.rs

/root/repo/target/debug/deps/libcosmo_core-833101a63b537e38.rlib: crates/core/src/lib.rs crates/core/src/annotation.rs crates/core/src/critic.rs crates/core/src/feedback.rs crates/core/src/filter.rs crates/core/src/pipeline.rs crates/core/src/sampling.rs

/root/repo/target/debug/deps/libcosmo_core-833101a63b537e38.rmeta: crates/core/src/lib.rs crates/core/src/annotation.rs crates/core/src/critic.rs crates/core/src/feedback.rs crates/core/src/filter.rs crates/core/src/pipeline.rs crates/core/src/sampling.rs

crates/core/src/lib.rs:
crates/core/src/annotation.rs:
crates/core/src/critic.rs:
crates/core/src/feedback.rs:
crates/core/src/filter.rs:
crates/core/src/pipeline.rs:
crates/core/src/sampling.rs:
