/root/repo/target/debug/deps/gradcheck-4336978c5a82bd6f.d: tests/gradcheck.rs

/root/repo/target/debug/deps/gradcheck-4336978c5a82bd6f: tests/gradcheck.rs

tests/gradcheck.rs:
