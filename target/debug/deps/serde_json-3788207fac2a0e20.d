/root/repo/target/debug/deps/serde_json-3788207fac2a0e20.d: .stubs/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-3788207fac2a0e20.rlib: .stubs/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-3788207fac2a0e20.rmeta: .stubs/serde_json/src/lib.rs

.stubs/serde_json/src/lib.rs:
