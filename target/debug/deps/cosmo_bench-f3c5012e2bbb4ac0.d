/root/repo/target/debug/deps/cosmo_bench-f3c5012e2bbb4ac0.d: crates/bench/src/lib.rs crates/bench/src/ablations.rs crates/bench/src/context.rs crates/bench/src/extensions.rs crates/bench/src/figures.rs crates/bench/src/kgstats.rs crates/bench/src/tables.rs

/root/repo/target/debug/deps/cosmo_bench-f3c5012e2bbb4ac0: crates/bench/src/lib.rs crates/bench/src/ablations.rs crates/bench/src/context.rs crates/bench/src/extensions.rs crates/bench/src/figures.rs crates/bench/src/kgstats.rs crates/bench/src/tables.rs

crates/bench/src/lib.rs:
crates/bench/src/ablations.rs:
crates/bench/src/context.rs:
crates/bench/src/extensions.rs:
crates/bench/src/figures.rs:
crates/bench/src/kgstats.rs:
crates/bench/src/tables.rs:
