/root/repo/target/debug/deps/serde-0cf9ac74c9776a68.d: .stubs/serde/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde-0cf9ac74c9776a68.rmeta: .stubs/serde/src/lib.rs Cargo.toml

.stubs/serde/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
