/root/repo/target/debug/deps/cosmo_core-eb1519601c0a9a3a.d: crates/core/src/lib.rs crates/core/src/annotation.rs crates/core/src/critic.rs crates/core/src/feedback.rs crates/core/src/filter.rs crates/core/src/pipeline.rs crates/core/src/sampling.rs

/root/repo/target/debug/deps/cosmo_core-eb1519601c0a9a3a: crates/core/src/lib.rs crates/core/src/annotation.rs crates/core/src/critic.rs crates/core/src/feedback.rs crates/core/src/filter.rs crates/core/src/pipeline.rs crates/core/src/sampling.rs

crates/core/src/lib.rs:
crates/core/src/annotation.rs:
crates/core/src/critic.rs:
crates/core/src/feedback.rs:
crates/core/src/filter.rs:
crates/core/src/pipeline.rs:
crates/core/src/sampling.rs:
