/root/repo/target/debug/deps/cosmo_teacher-879563e33cfd0f3d.d: crates/teacher/src/lib.rs crates/teacher/src/cost.rs crates/teacher/src/generate.rs crates/teacher/src/prompts.rs crates/teacher/src/relations.rs

/root/repo/target/debug/deps/libcosmo_teacher-879563e33cfd0f3d.rlib: crates/teacher/src/lib.rs crates/teacher/src/cost.rs crates/teacher/src/generate.rs crates/teacher/src/prompts.rs crates/teacher/src/relations.rs

/root/repo/target/debug/deps/libcosmo_teacher-879563e33cfd0f3d.rmeta: crates/teacher/src/lib.rs crates/teacher/src/cost.rs crates/teacher/src/generate.rs crates/teacher/src/prompts.rs crates/teacher/src/relations.rs

crates/teacher/src/lib.rs:
crates/teacher/src/cost.rs:
crates/teacher/src/generate.rs:
crates/teacher/src/prompts.rs:
crates/teacher/src/relations.rs:
