/root/repo/target/debug/deps/cosmo_nn-360c2894281ef0e4.d: crates/nn/src/lib.rs crates/nn/src/init.rs crates/nn/src/layers.rs crates/nn/src/opt.rs crates/nn/src/params.rs crates/nn/src/tape.rs crates/nn/src/tensor.rs crates/nn/src/train.rs Cargo.toml

/root/repo/target/debug/deps/libcosmo_nn-360c2894281ef0e4.rmeta: crates/nn/src/lib.rs crates/nn/src/init.rs crates/nn/src/layers.rs crates/nn/src/opt.rs crates/nn/src/params.rs crates/nn/src/tape.rs crates/nn/src/tensor.rs crates/nn/src/train.rs Cargo.toml

crates/nn/src/lib.rs:
crates/nn/src/init.rs:
crates/nn/src/layers.rs:
crates/nn/src/opt.rs:
crates/nn/src/params.rs:
crates/nn/src/tape.rs:
crates/nn/src/tensor.rs:
crates/nn/src/train.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
