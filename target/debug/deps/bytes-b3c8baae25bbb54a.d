/root/repo/target/debug/deps/bytes-b3c8baae25bbb54a.d: .stubs/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-b3c8baae25bbb54a.rlib: .stubs/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-b3c8baae25bbb54a.rmeta: .stubs/bytes/src/lib.rs

.stubs/bytes/src/lib.rs:
