/root/repo/target/debug/deps/cosmo_text-b88476cd8e2dc01d.d: crates/text/src/lib.rs crates/text/src/canon.rs crates/text/src/distance.rs crates/text/src/embed.rs crates/text/src/hash.rs crates/text/src/ngram.rs crates/text/src/segment.rs crates/text/src/tfidf.rs crates/text/src/tokenize.rs crates/text/src/vocab.rs Cargo.toml

/root/repo/target/debug/deps/libcosmo_text-b88476cd8e2dc01d.rmeta: crates/text/src/lib.rs crates/text/src/canon.rs crates/text/src/distance.rs crates/text/src/embed.rs crates/text/src/hash.rs crates/text/src/ngram.rs crates/text/src/segment.rs crates/text/src/tfidf.rs crates/text/src/tokenize.rs crates/text/src/vocab.rs Cargo.toml

crates/text/src/lib.rs:
crates/text/src/canon.rs:
crates/text/src/distance.rs:
crates/text/src/embed.rs:
crates/text/src/hash.rs:
crates/text/src/ngram.rs:
crates/text/src/segment.rs:
crates/text/src/tfidf.rs:
crates/text/src/tokenize.rs:
crates/text/src/vocab.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
