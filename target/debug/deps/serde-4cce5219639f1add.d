/root/repo/target/debug/deps/serde-4cce5219639f1add.d: .stubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-4cce5219639f1add.rlib: .stubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-4cce5219639f1add.rmeta: .stubs/serde/src/lib.rs

.stubs/serde/src/lib.rs:
