/root/repo/target/release/examples/serve_intents-e387334fbaa20664.d: examples/serve_intents.rs Cargo.toml

/root/repo/target/release/examples/libserve_intents-e387334fbaa20664.rmeta: examples/serve_intents.rs Cargo.toml

examples/serve_intents.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
