/root/repo/target/release/examples/serve_intents-5b543a61711c23b0.d: examples/serve_intents.rs

/root/repo/target/release/examples/serve_intents-5b543a61711c23b0: examples/serve_intents.rs

examples/serve_intents.rs:
