/root/repo/target/release/examples/navigation_session-6ad1d63464a640fb.d: examples/navigation_session.rs

/root/repo/target/release/examples/navigation_session-6ad1d63464a640fb: examples/navigation_session.rs

examples/navigation_session.rs:
