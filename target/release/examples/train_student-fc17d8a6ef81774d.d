/root/repo/target/release/examples/train_student-fc17d8a6ef81774d.d: examples/train_student.rs Cargo.toml

/root/repo/target/release/examples/libtrain_student-fc17d8a6ef81774d.rmeta: examples/train_student.rs Cargo.toml

examples/train_student.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
