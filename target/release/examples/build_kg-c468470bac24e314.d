/root/repo/target/release/examples/build_kg-c468470bac24e314.d: examples/build_kg.rs Cargo.toml

/root/repo/target/release/examples/libbuild_kg-c468470bac24e314.rmeta: examples/build_kg.rs Cargo.toml

examples/build_kg.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
