/root/repo/target/release/examples/quickstart-e9ced8ec6ac1c649.d: examples/quickstart.rs Cargo.toml

/root/repo/target/release/examples/libquickstart-e9ced8ec6ac1c649.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
