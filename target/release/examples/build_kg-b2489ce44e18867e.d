/root/repo/target/release/examples/build_kg-b2489ce44e18867e.d: examples/build_kg.rs

/root/repo/target/release/examples/build_kg-b2489ce44e18867e: examples/build_kg.rs

examples/build_kg.rs:
