/root/repo/target/release/examples/incremental_refresh-78c31fe5929005a3.d: examples/incremental_refresh.rs

/root/repo/target/release/examples/incremental_refresh-78c31fe5929005a3: examples/incremental_refresh.rs

examples/incremental_refresh.rs:
