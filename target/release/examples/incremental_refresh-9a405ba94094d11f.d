/root/repo/target/release/examples/incremental_refresh-9a405ba94094d11f.d: examples/incremental_refresh.rs Cargo.toml

/root/repo/target/release/examples/libincremental_refresh-9a405ba94094d11f.rmeta: examples/incremental_refresh.rs Cargo.toml

examples/incremental_refresh.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
