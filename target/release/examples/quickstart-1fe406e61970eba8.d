/root/repo/target/release/examples/quickstart-1fe406e61970eba8.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-1fe406e61970eba8: examples/quickstart.rs

examples/quickstart.rs:
