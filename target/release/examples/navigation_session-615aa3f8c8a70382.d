/root/repo/target/release/examples/navigation_session-615aa3f8c8a70382.d: examples/navigation_session.rs Cargo.toml

/root/repo/target/release/examples/libnavigation_session-615aa3f8c8a70382.rmeta: examples/navigation_session.rs Cargo.toml

examples/navigation_session.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
