/root/repo/target/release/examples/snapshot_check-7dc6983b0202226e.d: examples/snapshot_check.rs

/root/repo/target/release/examples/snapshot_check-7dc6983b0202226e: examples/snapshot_check.rs

examples/snapshot_check.rs:
