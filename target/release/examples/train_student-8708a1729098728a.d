/root/repo/target/release/examples/train_student-8708a1729098728a.d: examples/train_student.rs

/root/repo/target/release/examples/train_student-8708a1729098728a: examples/train_student.rs

examples/train_student.rs:
