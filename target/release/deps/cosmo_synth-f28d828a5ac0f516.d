/root/repo/target/release/deps/cosmo_synth-f28d828a5ac0f516.d: crates/synth/src/lib.rs crates/synth/src/behavior.rs crates/synth/src/corpus.rs crates/synth/src/domain.rs crates/synth/src/oracle.rs crates/synth/src/util.rs crates/synth/src/world.rs Cargo.toml

/root/repo/target/release/deps/libcosmo_synth-f28d828a5ac0f516.rmeta: crates/synth/src/lib.rs crates/synth/src/behavior.rs crates/synth/src/corpus.rs crates/synth/src/domain.rs crates/synth/src/oracle.rs crates/synth/src/util.rs crates/synth/src/world.rs Cargo.toml

crates/synth/src/lib.rs:
crates/synth/src/behavior.rs:
crates/synth/src/corpus.rs:
crates/synth/src/domain.rs:
crates/synth/src/oracle.rs:
crates/synth/src/util.rs:
crates/synth/src/world.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
