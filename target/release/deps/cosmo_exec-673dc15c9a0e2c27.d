/root/repo/target/release/deps/cosmo_exec-673dc15c9a0e2c27.d: crates/exec/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libcosmo_exec-673dc15c9a0e2c27.rmeta: crates/exec/src/lib.rs Cargo.toml

crates/exec/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
