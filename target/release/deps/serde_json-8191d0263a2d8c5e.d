/root/repo/target/release/deps/serde_json-8191d0263a2d8c5e.d: .stubs/serde_json/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libserde_json-8191d0263a2d8c5e.rmeta: .stubs/serde_json/src/lib.rs Cargo.toml

.stubs/serde_json/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
