/root/repo/target/release/deps/serde-d3b7484b847e1e70.d: .stubs/serde/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libserde-d3b7484b847e1e70.rmeta: .stubs/serde/src/lib.rs Cargo.toml

.stubs/serde/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
