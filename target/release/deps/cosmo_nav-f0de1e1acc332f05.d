/root/repo/target/release/deps/cosmo_nav-f0de1e1acc332f05.d: crates/nav/src/lib.rs crates/nav/src/abtest.rs crates/nav/src/engine.rs

/root/repo/target/release/deps/libcosmo_nav-f0de1e1acc332f05.rlib: crates/nav/src/lib.rs crates/nav/src/abtest.rs crates/nav/src/engine.rs

/root/repo/target/release/deps/libcosmo_nav-f0de1e1acc332f05.rmeta: crates/nav/src/lib.rs crates/nav/src/abtest.rs crates/nav/src/engine.rs

crates/nav/src/lib.rs:
crates/nav/src/abtest.rs:
crates/nav/src/engine.rs:
