/root/repo/target/release/deps/criterion-f535d0ba0c5937cc.d: .stubs/criterion/src/lib.rs

/root/repo/target/release/deps/criterion-f535d0ba0c5937cc: .stubs/criterion/src/lib.rs

.stubs/criterion/src/lib.rs:
