/root/repo/target/release/deps/gradcheck-975d6b21211eb602.d: tests/gradcheck.rs Cargo.toml

/root/repo/target/release/deps/libgradcheck-975d6b21211eb602.rmeta: tests/gradcheck.rs Cargo.toml

tests/gradcheck.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
