/root/repo/target/release/deps/cosmo_exec-1c21c1a6abe0617f.d: crates/exec/src/lib.rs

/root/repo/target/release/deps/libcosmo_exec-1c21c1a6abe0617f.rlib: crates/exec/src/lib.rs

/root/repo/target/release/deps/libcosmo_exec-1c21c1a6abe0617f.rmeta: crates/exec/src/lib.rs

crates/exec/src/lib.rs:
