/root/repo/target/release/deps/cosmo_nn-ca565bd1989caba3.d: crates/nn/src/lib.rs crates/nn/src/init.rs crates/nn/src/layers.rs crates/nn/src/opt.rs crates/nn/src/params.rs crates/nn/src/tape.rs crates/nn/src/tensor.rs crates/nn/src/train.rs

/root/repo/target/release/deps/libcosmo_nn-ca565bd1989caba3.rmeta: crates/nn/src/lib.rs crates/nn/src/init.rs crates/nn/src/layers.rs crates/nn/src/opt.rs crates/nn/src/params.rs crates/nn/src/tape.rs crates/nn/src/tensor.rs crates/nn/src/train.rs

crates/nn/src/lib.rs:
crates/nn/src/init.rs:
crates/nn/src/layers.rs:
crates/nn/src/opt.rs:
crates/nn/src/params.rs:
crates/nn/src/tape.rs:
crates/nn/src/tensor.rs:
crates/nn/src/train.rs:
