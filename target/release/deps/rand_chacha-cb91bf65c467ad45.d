/root/repo/target/release/deps/rand_chacha-cb91bf65c467ad45.d: .stubs/rand_chacha/src/lib.rs Cargo.toml

/root/repo/target/release/deps/librand_chacha-cb91bf65c467ad45.rmeta: .stubs/rand_chacha/src/lib.rs Cargo.toml

.stubs/rand_chacha/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
