/root/repo/target/release/deps/cosmo_core-f9b1ff9317e601c9.d: crates/core/src/lib.rs crates/core/src/annotation.rs crates/core/src/critic.rs crates/core/src/feedback.rs crates/core/src/filter.rs crates/core/src/pipeline.rs crates/core/src/sampling.rs Cargo.toml

/root/repo/target/release/deps/libcosmo_core-f9b1ff9317e601c9.rmeta: crates/core/src/lib.rs crates/core/src/annotation.rs crates/core/src/critic.rs crates/core/src/feedback.rs crates/core/src/filter.rs crates/core/src/pipeline.rs crates/core/src/sampling.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/annotation.rs:
crates/core/src/critic.rs:
crates/core/src/feedback.rs:
crates/core/src/filter.rs:
crates/core/src/pipeline.rs:
crates/core/src/sampling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
