/root/repo/target/release/deps/repro-1d6e8bb81f7bedbf.d: crates/bench/src/bin/repro.rs Cargo.toml

/root/repo/target/release/deps/librepro-1d6e8bb81f7bedbf.rmeta: crates/bench/src/bin/repro.rs Cargo.toml

crates/bench/src/bin/repro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
