/root/repo/target/release/deps/repro-7a7e1dd2beb739aa.d: crates/bench/src/bin/repro.rs Cargo.toml

/root/repo/target/release/deps/librepro-7a7e1dd2beb739aa.rmeta: crates/bench/src/bin/repro.rs Cargo.toml

crates/bench/src/bin/repro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
