/root/repo/target/release/deps/cosmo_teacher-e72fda056041108e.d: crates/teacher/src/lib.rs crates/teacher/src/cost.rs crates/teacher/src/generate.rs crates/teacher/src/prompts.rs crates/teacher/src/relations.rs

/root/repo/target/release/deps/cosmo_teacher-e72fda056041108e: crates/teacher/src/lib.rs crates/teacher/src/cost.rs crates/teacher/src/generate.rs crates/teacher/src/prompts.rs crates/teacher/src/relations.rs

crates/teacher/src/lib.rs:
crates/teacher/src/cost.rs:
crates/teacher/src/generate.rs:
crates/teacher/src/prompts.rs:
crates/teacher/src/relations.rs:
