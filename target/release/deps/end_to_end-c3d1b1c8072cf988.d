/root/repo/target/release/deps/end_to_end-c3d1b1c8072cf988.d: tests/end_to_end.rs

/root/repo/target/release/deps/end_to_end-c3d1b1c8072cf988: tests/end_to_end.rs

tests/end_to_end.rs:
