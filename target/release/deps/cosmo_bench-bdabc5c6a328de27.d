/root/repo/target/release/deps/cosmo_bench-bdabc5c6a328de27.d: crates/bench/src/lib.rs crates/bench/src/ablations.rs crates/bench/src/context.rs crates/bench/src/extensions.rs crates/bench/src/figures.rs crates/bench/src/kgstats.rs crates/bench/src/tables.rs

/root/repo/target/release/deps/cosmo_bench-bdabc5c6a328de27: crates/bench/src/lib.rs crates/bench/src/ablations.rs crates/bench/src/context.rs crates/bench/src/extensions.rs crates/bench/src/figures.rs crates/bench/src/kgstats.rs crates/bench/src/tables.rs

crates/bench/src/lib.rs:
crates/bench/src/ablations.rs:
crates/bench/src/context.rs:
crates/bench/src/extensions.rs:
crates/bench/src/figures.rs:
crates/bench/src/kgstats.rs:
crates/bench/src/tables.rs:
