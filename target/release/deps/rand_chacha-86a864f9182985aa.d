/root/repo/target/release/deps/rand_chacha-86a864f9182985aa.d: .stubs/rand_chacha/src/lib.rs Cargo.toml

/root/repo/target/release/deps/librand_chacha-86a864f9182985aa.rmeta: .stubs/rand_chacha/src/lib.rs Cargo.toml

.stubs/rand_chacha/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
