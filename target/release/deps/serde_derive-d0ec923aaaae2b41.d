/root/repo/target/release/deps/serde_derive-d0ec923aaaae2b41.d: .stubs/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-d0ec923aaaae2b41.so: .stubs/serde_derive/src/lib.rs

.stubs/serde_derive/src/lib.rs:
