/root/repo/target/release/deps/cosmo-5aab1129fb82e1df.d: src/lib.rs

/root/repo/target/release/deps/libcosmo-5aab1129fb82e1df.rmeta: src/lib.rs

src/lib.rs:
