/root/repo/target/release/deps/serde_derive-63c83d937684a325.d: .stubs/serde_derive/src/lib.rs

/root/repo/target/release/deps/serde_derive-63c83d937684a325: .stubs/serde_derive/src/lib.rs

.stubs/serde_derive/src/lib.rs:
