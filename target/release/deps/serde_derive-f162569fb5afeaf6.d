/root/repo/target/release/deps/serde_derive-f162569fb5afeaf6.d: .stubs/serde_derive/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libserde_derive-f162569fb5afeaf6.so: .stubs/serde_derive/src/lib.rs Cargo.toml

.stubs/serde_derive/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
