/root/repo/target/release/deps/cosmo_lm-8e039688da99009d.d: crates/lm/src/lib.rs crates/lm/src/efficiency.rs crates/lm/src/eval.rs crates/lm/src/instruction.rs crates/lm/src/student.rs

/root/repo/target/release/deps/cosmo_lm-8e039688da99009d: crates/lm/src/lib.rs crates/lm/src/efficiency.rs crates/lm/src/eval.rs crates/lm/src/instruction.rs crates/lm/src/student.rs

crates/lm/src/lib.rs:
crates/lm/src/efficiency.rs:
crates/lm/src/eval.rs:
crates/lm/src/instruction.rs:
crates/lm/src/student.rs:
