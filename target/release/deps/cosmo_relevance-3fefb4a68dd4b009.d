/root/repo/target/release/deps/cosmo_relevance-3fefb4a68dd4b009.d: crates/relevance/src/lib.rs crates/relevance/src/dataset.rs crates/relevance/src/metrics.rs crates/relevance/src/models.rs Cargo.toml

/root/repo/target/release/deps/libcosmo_relevance-3fefb4a68dd4b009.rmeta: crates/relevance/src/lib.rs crates/relevance/src/dataset.rs crates/relevance/src/metrics.rs crates/relevance/src/models.rs Cargo.toml

crates/relevance/src/lib.rs:
crates/relevance/src/dataset.rs:
crates/relevance/src/metrics.rs:
crates/relevance/src/models.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
