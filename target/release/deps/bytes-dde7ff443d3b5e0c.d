/root/repo/target/release/deps/bytes-dde7ff443d3b5e0c.d: .stubs/bytes/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libbytes-dde7ff443d3b5e0c.rmeta: .stubs/bytes/src/lib.rs Cargo.toml

.stubs/bytes/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
