/root/repo/target/release/deps/cosmo_nav-f9250a8ba07973f9.d: crates/nav/src/lib.rs crates/nav/src/abtest.rs crates/nav/src/engine.rs Cargo.toml

/root/repo/target/release/deps/libcosmo_nav-f9250a8ba07973f9.rmeta: crates/nav/src/lib.rs crates/nav/src/abtest.rs crates/nav/src/engine.rs Cargo.toml

crates/nav/src/lib.rs:
crates/nav/src/abtest.rs:
crates/nav/src/engine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
