/root/repo/target/release/deps/parking_lot-4f043b1e03ffe55d.d: .stubs/parking_lot/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libparking_lot-4f043b1e03ffe55d.rmeta: .stubs/parking_lot/src/lib.rs Cargo.toml

.stubs/parking_lot/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
