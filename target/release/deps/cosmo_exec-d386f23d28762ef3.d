/root/repo/target/release/deps/cosmo_exec-d386f23d28762ef3.d: crates/exec/src/lib.rs

/root/repo/target/release/deps/libcosmo_exec-d386f23d28762ef3.rmeta: crates/exec/src/lib.rs

crates/exec/src/lib.rs:
