/root/repo/target/release/deps/cosmo_kg-7bc162d0cae940eb.d: crates/kg/src/lib.rs crates/kg/src/algo.rs crates/kg/src/hierarchy.rs crates/kg/src/schema.rs crates/kg/src/snapshot.rs crates/kg/src/stats.rs crates/kg/src/store.rs crates/kg/src/view.rs

/root/repo/target/release/deps/libcosmo_kg-7bc162d0cae940eb.rlib: crates/kg/src/lib.rs crates/kg/src/algo.rs crates/kg/src/hierarchy.rs crates/kg/src/schema.rs crates/kg/src/snapshot.rs crates/kg/src/stats.rs crates/kg/src/store.rs crates/kg/src/view.rs

/root/repo/target/release/deps/libcosmo_kg-7bc162d0cae940eb.rmeta: crates/kg/src/lib.rs crates/kg/src/algo.rs crates/kg/src/hierarchy.rs crates/kg/src/schema.rs crates/kg/src/snapshot.rs crates/kg/src/stats.rs crates/kg/src/store.rs crates/kg/src/view.rs

crates/kg/src/lib.rs:
crates/kg/src/algo.rs:
crates/kg/src/hierarchy.rs:
crates/kg/src/schema.rs:
crates/kg/src/snapshot.rs:
crates/kg/src/stats.rs:
crates/kg/src/store.rs:
crates/kg/src/view.rs:
