/root/repo/target/release/deps/cosmo_exec-bd7e02d026fb2cda.d: crates/exec/src/lib.rs

/root/repo/target/release/deps/cosmo_exec-bd7e02d026fb2cda: crates/exec/src/lib.rs

crates/exec/src/lib.rs:
