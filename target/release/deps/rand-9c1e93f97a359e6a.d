/root/repo/target/release/deps/rand-9c1e93f97a359e6a.d: .stubs/rand/src/lib.rs

/root/repo/target/release/deps/librand-9c1e93f97a359e6a.rlib: .stubs/rand/src/lib.rs

/root/repo/target/release/deps/librand-9c1e93f97a359e6a.rmeta: .stubs/rand/src/lib.rs

.stubs/rand/src/lib.rs:
