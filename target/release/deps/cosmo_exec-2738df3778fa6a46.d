/root/repo/target/release/deps/cosmo_exec-2738df3778fa6a46.d: crates/exec/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libcosmo_exec-2738df3778fa6a46.rmeta: crates/exec/src/lib.rs Cargo.toml

crates/exec/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
