/root/repo/target/release/deps/cosmo_kg-ab7f25ac98afd953.d: crates/kg/src/lib.rs crates/kg/src/algo.rs crates/kg/src/hierarchy.rs crates/kg/src/schema.rs crates/kg/src/stats.rs crates/kg/src/store.rs

/root/repo/target/release/deps/cosmo_kg-ab7f25ac98afd953: crates/kg/src/lib.rs crates/kg/src/algo.rs crates/kg/src/hierarchy.rs crates/kg/src/schema.rs crates/kg/src/stats.rs crates/kg/src/store.rs

crates/kg/src/lib.rs:
crates/kg/src/algo.rs:
crates/kg/src/hierarchy.rs:
crates/kg/src/schema.rs:
crates/kg/src/stats.rs:
crates/kg/src/store.rs:
