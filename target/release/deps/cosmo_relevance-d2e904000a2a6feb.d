/root/repo/target/release/deps/cosmo_relevance-d2e904000a2a6feb.d: crates/relevance/src/lib.rs crates/relevance/src/dataset.rs crates/relevance/src/metrics.rs crates/relevance/src/models.rs

/root/repo/target/release/deps/libcosmo_relevance-d2e904000a2a6feb.rmeta: crates/relevance/src/lib.rs crates/relevance/src/dataset.rs crates/relevance/src/metrics.rs crates/relevance/src/models.rs

crates/relevance/src/lib.rs:
crates/relevance/src/dataset.rs:
crates/relevance/src/metrics.rs:
crates/relevance/src/models.rs:
