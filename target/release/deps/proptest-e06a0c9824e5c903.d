/root/repo/target/release/deps/proptest-e06a0c9824e5c903.d: .stubs/proptest/src/lib.rs

/root/repo/target/release/deps/proptest-e06a0c9824e5c903: .stubs/proptest/src/lib.rs

.stubs/proptest/src/lib.rs:
