/root/repo/target/release/deps/rand_chacha-6691845bd0cbe3b7.d: .stubs/rand_chacha/src/lib.rs

/root/repo/target/release/deps/rand_chacha-6691845bd0cbe3b7: .stubs/rand_chacha/src/lib.rs

.stubs/rand_chacha/src/lib.rs:
