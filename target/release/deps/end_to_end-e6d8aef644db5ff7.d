/root/repo/target/release/deps/end_to_end-e6d8aef644db5ff7.d: tests/end_to_end.rs Cargo.toml

/root/repo/target/release/deps/libend_to_end-e6d8aef644db5ff7.rmeta: tests/end_to_end.rs Cargo.toml

tests/end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
