/root/repo/target/release/deps/parking_lot-8b2e9706e92ebb6f.d: .stubs/parking_lot/src/lib.rs

/root/repo/target/release/deps/parking_lot-8b2e9706e92ebb6f: .stubs/parking_lot/src/lib.rs

.stubs/parking_lot/src/lib.rs:
