/root/repo/target/release/deps/serde_json-29ffef09952d95ba.d: .stubs/serde_json/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libserde_json-29ffef09952d95ba.rmeta: .stubs/serde_json/src/lib.rs Cargo.toml

.stubs/serde_json/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
