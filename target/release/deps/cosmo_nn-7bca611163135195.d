/root/repo/target/release/deps/cosmo_nn-7bca611163135195.d: crates/nn/src/lib.rs crates/nn/src/init.rs crates/nn/src/layers.rs crates/nn/src/opt.rs crates/nn/src/params.rs crates/nn/src/tape.rs crates/nn/src/tensor.rs crates/nn/src/train.rs Cargo.toml

/root/repo/target/release/deps/libcosmo_nn-7bca611163135195.rmeta: crates/nn/src/lib.rs crates/nn/src/init.rs crates/nn/src/layers.rs crates/nn/src/opt.rs crates/nn/src/params.rs crates/nn/src/tape.rs crates/nn/src/tensor.rs crates/nn/src/train.rs Cargo.toml

crates/nn/src/lib.rs:
crates/nn/src/init.rs:
crates/nn/src/layers.rs:
crates/nn/src/opt.rs:
crates/nn/src/params.rs:
crates/nn/src/tape.rs:
crates/nn/src/tensor.rs:
crates/nn/src/train.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
