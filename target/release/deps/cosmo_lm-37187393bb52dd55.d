/root/repo/target/release/deps/cosmo_lm-37187393bb52dd55.d: crates/lm/src/lib.rs crates/lm/src/efficiency.rs crates/lm/src/eval.rs crates/lm/src/instruction.rs crates/lm/src/student.rs

/root/repo/target/release/deps/libcosmo_lm-37187393bb52dd55.rmeta: crates/lm/src/lib.rs crates/lm/src/efficiency.rs crates/lm/src/eval.rs crates/lm/src/instruction.rs crates/lm/src/student.rs

crates/lm/src/lib.rs:
crates/lm/src/efficiency.rs:
crates/lm/src/eval.rs:
crates/lm/src/instruction.rs:
crates/lm/src/student.rs:
