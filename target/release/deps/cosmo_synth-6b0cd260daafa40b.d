/root/repo/target/release/deps/cosmo_synth-6b0cd260daafa40b.d: crates/synth/src/lib.rs crates/synth/src/behavior.rs crates/synth/src/corpus.rs crates/synth/src/domain.rs crates/synth/src/oracle.rs crates/synth/src/util.rs crates/synth/src/world.rs

/root/repo/target/release/deps/libcosmo_synth-6b0cd260daafa40b.rlib: crates/synth/src/lib.rs crates/synth/src/behavior.rs crates/synth/src/corpus.rs crates/synth/src/domain.rs crates/synth/src/oracle.rs crates/synth/src/util.rs crates/synth/src/world.rs

/root/repo/target/release/deps/libcosmo_synth-6b0cd260daafa40b.rmeta: crates/synth/src/lib.rs crates/synth/src/behavior.rs crates/synth/src/corpus.rs crates/synth/src/domain.rs crates/synth/src/oracle.rs crates/synth/src/util.rs crates/synth/src/world.rs

crates/synth/src/lib.rs:
crates/synth/src/behavior.rs:
crates/synth/src/corpus.rs:
crates/synth/src/domain.rs:
crates/synth/src/oracle.rs:
crates/synth/src/util.rs:
crates/synth/src/world.rs:
