/root/repo/target/release/deps/proptest-af00cc09d62db1db.d: .stubs/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-af00cc09d62db1db.rlib: .stubs/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-af00cc09d62db1db.rmeta: .stubs/proptest/src/lib.rs

.stubs/proptest/src/lib.rs:
