/root/repo/target/release/deps/proptest-e00107134b07a9df.d: .stubs/proptest/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libproptest-e00107134b07a9df.rmeta: .stubs/proptest/src/lib.rs Cargo.toml

.stubs/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
