/root/repo/target/release/deps/criterion-1f945bd6d3e113a4.d: .stubs/criterion/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libcriterion-1f945bd6d3e113a4.rmeta: .stubs/criterion/src/lib.rs Cargo.toml

.stubs/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
