/root/repo/target/release/deps/criterion-e81b6a62ff11a999.d: .stubs/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-e81b6a62ff11a999.rmeta: .stubs/criterion/src/lib.rs

.stubs/criterion/src/lib.rs:
