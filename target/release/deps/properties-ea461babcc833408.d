/root/repo/target/release/deps/properties-ea461babcc833408.d: tests/properties.rs Cargo.toml

/root/repo/target/release/deps/libproperties-ea461babcc833408.rmeta: tests/properties.rs Cargo.toml

tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
