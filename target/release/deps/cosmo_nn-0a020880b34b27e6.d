/root/repo/target/release/deps/cosmo_nn-0a020880b34b27e6.d: crates/nn/src/lib.rs crates/nn/src/init.rs crates/nn/src/layers.rs crates/nn/src/opt.rs crates/nn/src/params.rs crates/nn/src/tape.rs crates/nn/src/tensor.rs crates/nn/src/train.rs

/root/repo/target/release/deps/libcosmo_nn-0a020880b34b27e6.rlib: crates/nn/src/lib.rs crates/nn/src/init.rs crates/nn/src/layers.rs crates/nn/src/opt.rs crates/nn/src/params.rs crates/nn/src/tape.rs crates/nn/src/tensor.rs crates/nn/src/train.rs

/root/repo/target/release/deps/libcosmo_nn-0a020880b34b27e6.rmeta: crates/nn/src/lib.rs crates/nn/src/init.rs crates/nn/src/layers.rs crates/nn/src/opt.rs crates/nn/src/params.rs crates/nn/src/tape.rs crates/nn/src/tensor.rs crates/nn/src/train.rs

crates/nn/src/lib.rs:
crates/nn/src/init.rs:
crates/nn/src/layers.rs:
crates/nn/src/opt.rs:
crates/nn/src/params.rs:
crates/nn/src/tape.rs:
crates/nn/src/tensor.rs:
crates/nn/src/train.rs:
