/root/repo/target/release/deps/cosmo_serving-ec63c468ac3a26b0.d: crates/serving/src/lib.rs crates/serving/src/cache.rs crates/serving/src/error.rs crates/serving/src/features.rs crates/serving/src/histogram.rs crates/serving/src/sim.rs crates/serving/src/system.rs crates/serving/src/views.rs Cargo.toml

/root/repo/target/release/deps/libcosmo_serving-ec63c468ac3a26b0.rmeta: crates/serving/src/lib.rs crates/serving/src/cache.rs crates/serving/src/error.rs crates/serving/src/features.rs crates/serving/src/histogram.rs crates/serving/src/sim.rs crates/serving/src/system.rs crates/serving/src/views.rs Cargo.toml

crates/serving/src/lib.rs:
crates/serving/src/cache.rs:
crates/serving/src/error.rs:
crates/serving/src/features.rs:
crates/serving/src/histogram.rs:
crates/serving/src/sim.rs:
crates/serving/src/system.rs:
crates/serving/src/views.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
