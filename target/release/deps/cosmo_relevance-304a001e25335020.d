/root/repo/target/release/deps/cosmo_relevance-304a001e25335020.d: crates/relevance/src/lib.rs crates/relevance/src/dataset.rs crates/relevance/src/metrics.rs crates/relevance/src/models.rs

/root/repo/target/release/deps/libcosmo_relevance-304a001e25335020.rlib: crates/relevance/src/lib.rs crates/relevance/src/dataset.rs crates/relevance/src/metrics.rs crates/relevance/src/models.rs

/root/repo/target/release/deps/libcosmo_relevance-304a001e25335020.rmeta: crates/relevance/src/lib.rs crates/relevance/src/dataset.rs crates/relevance/src/metrics.rs crates/relevance/src/models.rs

crates/relevance/src/lib.rs:
crates/relevance/src/dataset.rs:
crates/relevance/src/metrics.rs:
crates/relevance/src/models.rs:
