/root/repo/target/release/deps/parking_lot-33e3f5cb000399e7.d: .stubs/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-33e3f5cb000399e7.rmeta: .stubs/parking_lot/src/lib.rs

.stubs/parking_lot/src/lib.rs:
