/root/repo/target/release/deps/cosmo_sessrec-c9e31796551672dd.d: crates/sessrec/src/lib.rs crates/sessrec/src/dataset.rs crates/sessrec/src/metrics.rs crates/sessrec/src/models/mod.rs crates/sessrec/src/models/gnn.rs crates/sessrec/src/models/seq.rs crates/sessrec/src/rewrites.rs

/root/repo/target/release/deps/cosmo_sessrec-c9e31796551672dd: crates/sessrec/src/lib.rs crates/sessrec/src/dataset.rs crates/sessrec/src/metrics.rs crates/sessrec/src/models/mod.rs crates/sessrec/src/models/gnn.rs crates/sessrec/src/models/seq.rs crates/sessrec/src/rewrites.rs

crates/sessrec/src/lib.rs:
crates/sessrec/src/dataset.rs:
crates/sessrec/src/metrics.rs:
crates/sessrec/src/models/mod.rs:
crates/sessrec/src/models/gnn.rs:
crates/sessrec/src/models/seq.rs:
crates/sessrec/src/rewrites.rs:
