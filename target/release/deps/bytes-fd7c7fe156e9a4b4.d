/root/repo/target/release/deps/bytes-fd7c7fe156e9a4b4.d: .stubs/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-fd7c7fe156e9a4b4.rmeta: .stubs/bytes/src/lib.rs

.stubs/bytes/src/lib.rs:
