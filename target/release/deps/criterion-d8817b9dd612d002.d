/root/repo/target/release/deps/criterion-d8817b9dd612d002.d: .stubs/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-d8817b9dd612d002.rlib: .stubs/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-d8817b9dd612d002.rmeta: .stubs/criterion/src/lib.rs

.stubs/criterion/src/lib.rs:
