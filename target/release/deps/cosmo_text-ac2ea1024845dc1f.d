/root/repo/target/release/deps/cosmo_text-ac2ea1024845dc1f.d: crates/text/src/lib.rs crates/text/src/canon.rs crates/text/src/distance.rs crates/text/src/embed.rs crates/text/src/hash.rs crates/text/src/ngram.rs crates/text/src/segment.rs crates/text/src/tfidf.rs crates/text/src/tokenize.rs crates/text/src/vocab.rs Cargo.toml

/root/repo/target/release/deps/libcosmo_text-ac2ea1024845dc1f.rmeta: crates/text/src/lib.rs crates/text/src/canon.rs crates/text/src/distance.rs crates/text/src/embed.rs crates/text/src/hash.rs crates/text/src/ngram.rs crates/text/src/segment.rs crates/text/src/tfidf.rs crates/text/src/tokenize.rs crates/text/src/vocab.rs Cargo.toml

crates/text/src/lib.rs:
crates/text/src/canon.rs:
crates/text/src/distance.rs:
crates/text/src/embed.rs:
crates/text/src/hash.rs:
crates/text/src/ngram.rs:
crates/text/src/segment.rs:
crates/text/src/tfidf.rs:
crates/text/src/tokenize.rs:
crates/text/src/vocab.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
