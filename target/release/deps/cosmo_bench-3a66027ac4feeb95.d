/root/repo/target/release/deps/cosmo_bench-3a66027ac4feeb95.d: crates/bench/src/lib.rs crates/bench/src/ablations.rs crates/bench/src/context.rs crates/bench/src/extensions.rs crates/bench/src/figures.rs crates/bench/src/kgstats.rs crates/bench/src/tables.rs Cargo.toml

/root/repo/target/release/deps/libcosmo_bench-3a66027ac4feeb95.rmeta: crates/bench/src/lib.rs crates/bench/src/ablations.rs crates/bench/src/context.rs crates/bench/src/extensions.rs crates/bench/src/figures.rs crates/bench/src/kgstats.rs crates/bench/src/tables.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/ablations.rs:
crates/bench/src/context.rs:
crates/bench/src/extensions.rs:
crates/bench/src/figures.rs:
crates/bench/src/kgstats.rs:
crates/bench/src/tables.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
