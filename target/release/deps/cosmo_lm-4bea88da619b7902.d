/root/repo/target/release/deps/cosmo_lm-4bea88da619b7902.d: crates/lm/src/lib.rs crates/lm/src/efficiency.rs crates/lm/src/eval.rs crates/lm/src/instruction.rs crates/lm/src/student.rs

/root/repo/target/release/deps/libcosmo_lm-4bea88da619b7902.rlib: crates/lm/src/lib.rs crates/lm/src/efficiency.rs crates/lm/src/eval.rs crates/lm/src/instruction.rs crates/lm/src/student.rs

/root/repo/target/release/deps/libcosmo_lm-4bea88da619b7902.rmeta: crates/lm/src/lib.rs crates/lm/src/efficiency.rs crates/lm/src/eval.rs crates/lm/src/instruction.rs crates/lm/src/student.rs

crates/lm/src/lib.rs:
crates/lm/src/efficiency.rs:
crates/lm/src/eval.rs:
crates/lm/src/instruction.rs:
crates/lm/src/student.rs:
