/root/repo/target/release/deps/bytes-2f693cbddbdcf2d1.d: .stubs/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-2f693cbddbdcf2d1.rlib: .stubs/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-2f693cbddbdcf2d1.rmeta: .stubs/bytes/src/lib.rs

.stubs/bytes/src/lib.rs:
