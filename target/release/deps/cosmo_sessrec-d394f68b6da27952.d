/root/repo/target/release/deps/cosmo_sessrec-d394f68b6da27952.d: crates/sessrec/src/lib.rs crates/sessrec/src/dataset.rs crates/sessrec/src/metrics.rs crates/sessrec/src/models/mod.rs crates/sessrec/src/models/gnn.rs crates/sessrec/src/models/seq.rs crates/sessrec/src/rewrites.rs

/root/repo/target/release/deps/libcosmo_sessrec-d394f68b6da27952.rmeta: crates/sessrec/src/lib.rs crates/sessrec/src/dataset.rs crates/sessrec/src/metrics.rs crates/sessrec/src/models/mod.rs crates/sessrec/src/models/gnn.rs crates/sessrec/src/models/seq.rs crates/sessrec/src/rewrites.rs

crates/sessrec/src/lib.rs:
crates/sessrec/src/dataset.rs:
crates/sessrec/src/metrics.rs:
crates/sessrec/src/models/mod.rs:
crates/sessrec/src/models/gnn.rs:
crates/sessrec/src/models/seq.rs:
crates/sessrec/src/rewrites.rs:
