/root/repo/target/release/deps/cosmo-3185f9bfe9f4a39e.d: src/lib.rs

/root/repo/target/release/deps/libcosmo-3185f9bfe9f4a39e.rlib: src/lib.rs

/root/repo/target/release/deps/libcosmo-3185f9bfe9f4a39e.rmeta: src/lib.rs

src/lib.rs:
