/root/repo/target/release/deps/cosmo_relevance-04d49686b3fca0de.d: crates/relevance/src/lib.rs crates/relevance/src/dataset.rs crates/relevance/src/metrics.rs crates/relevance/src/models.rs

/root/repo/target/release/deps/cosmo_relevance-04d49686b3fca0de: crates/relevance/src/lib.rs crates/relevance/src/dataset.rs crates/relevance/src/metrics.rs crates/relevance/src/models.rs

crates/relevance/src/lib.rs:
crates/relevance/src/dataset.rs:
crates/relevance/src/metrics.rs:
crates/relevance/src/models.rs:
