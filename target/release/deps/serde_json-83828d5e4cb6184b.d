/root/repo/target/release/deps/serde_json-83828d5e4cb6184b.d: .stubs/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-83828d5e4cb6184b.rlib: .stubs/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-83828d5e4cb6184b.rmeta: .stubs/serde_json/src/lib.rs

.stubs/serde_json/src/lib.rs:
