/root/repo/target/release/deps/repro-6bdbe8ffe78cd1ed.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-6bdbe8ffe78cd1ed: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
