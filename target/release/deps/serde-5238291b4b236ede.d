/root/repo/target/release/deps/serde-5238291b4b236ede.d: .stubs/serde/src/lib.rs

/root/repo/target/release/deps/libserde-5238291b4b236ede.rmeta: .stubs/serde/src/lib.rs

.stubs/serde/src/lib.rs:
