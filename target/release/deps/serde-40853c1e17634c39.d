/root/repo/target/release/deps/serde-40853c1e17634c39.d: .stubs/serde/src/lib.rs

/root/repo/target/release/deps/serde-40853c1e17634c39: .stubs/serde/src/lib.rs

.stubs/serde/src/lib.rs:
