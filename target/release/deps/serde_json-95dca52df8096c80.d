/root/repo/target/release/deps/serde_json-95dca52df8096c80.d: .stubs/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-95dca52df8096c80.rmeta: .stubs/serde_json/src/lib.rs

.stubs/serde_json/src/lib.rs:
