/root/repo/target/release/deps/cosmo-94f93ead6ef3d560.d: src/lib.rs Cargo.toml

/root/repo/target/release/deps/libcosmo-94f93ead6ef3d560.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
