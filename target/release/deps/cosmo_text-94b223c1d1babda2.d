/root/repo/target/release/deps/cosmo_text-94b223c1d1babda2.d: crates/text/src/lib.rs crates/text/src/canon.rs crates/text/src/distance.rs crates/text/src/embed.rs crates/text/src/hash.rs crates/text/src/ngram.rs crates/text/src/segment.rs crates/text/src/tfidf.rs crates/text/src/tokenize.rs crates/text/src/vocab.rs

/root/repo/target/release/deps/libcosmo_text-94b223c1d1babda2.rmeta: crates/text/src/lib.rs crates/text/src/canon.rs crates/text/src/distance.rs crates/text/src/embed.rs crates/text/src/hash.rs crates/text/src/ngram.rs crates/text/src/segment.rs crates/text/src/tfidf.rs crates/text/src/tokenize.rs crates/text/src/vocab.rs

crates/text/src/lib.rs:
crates/text/src/canon.rs:
crates/text/src/distance.rs:
crates/text/src/embed.rs:
crates/text/src/hash.rs:
crates/text/src/ngram.rs:
crates/text/src/segment.rs:
crates/text/src/tfidf.rs:
crates/text/src/tokenize.rs:
crates/text/src/vocab.rs:
