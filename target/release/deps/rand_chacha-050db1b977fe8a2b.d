/root/repo/target/release/deps/rand_chacha-050db1b977fe8a2b.d: .stubs/rand_chacha/src/lib.rs

/root/repo/target/release/deps/librand_chacha-050db1b977fe8a2b.rlib: .stubs/rand_chacha/src/lib.rs

/root/repo/target/release/deps/librand_chacha-050db1b977fe8a2b.rmeta: .stubs/rand_chacha/src/lib.rs

.stubs/rand_chacha/src/lib.rs:
