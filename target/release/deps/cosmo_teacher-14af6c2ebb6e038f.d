/root/repo/target/release/deps/cosmo_teacher-14af6c2ebb6e038f.d: crates/teacher/src/lib.rs crates/teacher/src/cost.rs crates/teacher/src/generate.rs crates/teacher/src/prompts.rs crates/teacher/src/relations.rs Cargo.toml

/root/repo/target/release/deps/libcosmo_teacher-14af6c2ebb6e038f.rmeta: crates/teacher/src/lib.rs crates/teacher/src/cost.rs crates/teacher/src/generate.rs crates/teacher/src/prompts.rs crates/teacher/src/relations.rs Cargo.toml

crates/teacher/src/lib.rs:
crates/teacher/src/cost.rs:
crates/teacher/src/generate.rs:
crates/teacher/src/prompts.rs:
crates/teacher/src/relations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
