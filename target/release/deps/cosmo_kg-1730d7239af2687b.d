/root/repo/target/release/deps/cosmo_kg-1730d7239af2687b.d: crates/kg/src/lib.rs crates/kg/src/algo.rs crates/kg/src/hierarchy.rs crates/kg/src/schema.rs crates/kg/src/stats.rs crates/kg/src/store.rs Cargo.toml

/root/repo/target/release/deps/libcosmo_kg-1730d7239af2687b.rmeta: crates/kg/src/lib.rs crates/kg/src/algo.rs crates/kg/src/hierarchy.rs crates/kg/src/schema.rs crates/kg/src/stats.rs crates/kg/src/store.rs Cargo.toml

crates/kg/src/lib.rs:
crates/kg/src/algo.rs:
crates/kg/src/hierarchy.rs:
crates/kg/src/schema.rs:
crates/kg/src/stats.rs:
crates/kg/src/store.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
