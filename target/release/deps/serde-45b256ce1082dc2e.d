/root/repo/target/release/deps/serde-45b256ce1082dc2e.d: .stubs/serde/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libserde-45b256ce1082dc2e.rmeta: .stubs/serde/src/lib.rs Cargo.toml

.stubs/serde/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
