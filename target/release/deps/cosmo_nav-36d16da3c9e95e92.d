/root/repo/target/release/deps/cosmo_nav-36d16da3c9e95e92.d: crates/nav/src/lib.rs crates/nav/src/abtest.rs crates/nav/src/engine.rs

/root/repo/target/release/deps/cosmo_nav-36d16da3c9e95e92: crates/nav/src/lib.rs crates/nav/src/abtest.rs crates/nav/src/engine.rs

crates/nav/src/lib.rs:
crates/nav/src/abtest.rs:
crates/nav/src/engine.rs:
