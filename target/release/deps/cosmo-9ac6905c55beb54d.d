/root/repo/target/release/deps/cosmo-9ac6905c55beb54d.d: src/lib.rs

/root/repo/target/release/deps/cosmo-9ac6905c55beb54d: src/lib.rs

src/lib.rs:
