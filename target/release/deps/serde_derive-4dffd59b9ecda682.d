/root/repo/target/release/deps/serde_derive-4dffd59b9ecda682.d: .stubs/serde_derive/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libserde_derive-4dffd59b9ecda682.so: .stubs/serde_derive/src/lib.rs Cargo.toml

.stubs/serde_derive/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
