/root/repo/target/release/deps/rand-d2b4c976df9e4810.d: .stubs/rand/src/lib.rs Cargo.toml

/root/repo/target/release/deps/librand-d2b4c976df9e4810.rmeta: .stubs/rand/src/lib.rs Cargo.toml

.stubs/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
