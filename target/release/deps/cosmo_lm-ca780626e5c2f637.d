/root/repo/target/release/deps/cosmo_lm-ca780626e5c2f637.d: crates/lm/src/lib.rs crates/lm/src/efficiency.rs crates/lm/src/eval.rs crates/lm/src/instruction.rs crates/lm/src/student.rs Cargo.toml

/root/repo/target/release/deps/libcosmo_lm-ca780626e5c2f637.rmeta: crates/lm/src/lib.rs crates/lm/src/efficiency.rs crates/lm/src/eval.rs crates/lm/src/instruction.rs crates/lm/src/student.rs Cargo.toml

crates/lm/src/lib.rs:
crates/lm/src/efficiency.rs:
crates/lm/src/eval.rs:
crates/lm/src/instruction.rs:
crates/lm/src/student.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
