/root/repo/target/release/deps/serde_json-669f5ef8218eea89.d: .stubs/serde_json/src/lib.rs

/root/repo/target/release/deps/serde_json-669f5ef8218eea89: .stubs/serde_json/src/lib.rs

.stubs/serde_json/src/lib.rs:
