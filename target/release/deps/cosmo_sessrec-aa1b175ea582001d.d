/root/repo/target/release/deps/cosmo_sessrec-aa1b175ea582001d.d: crates/sessrec/src/lib.rs crates/sessrec/src/dataset.rs crates/sessrec/src/metrics.rs crates/sessrec/src/models/mod.rs crates/sessrec/src/models/gnn.rs crates/sessrec/src/models/seq.rs crates/sessrec/src/rewrites.rs

/root/repo/target/release/deps/libcosmo_sessrec-aa1b175ea582001d.rlib: crates/sessrec/src/lib.rs crates/sessrec/src/dataset.rs crates/sessrec/src/metrics.rs crates/sessrec/src/models/mod.rs crates/sessrec/src/models/gnn.rs crates/sessrec/src/models/seq.rs crates/sessrec/src/rewrites.rs

/root/repo/target/release/deps/libcosmo_sessrec-aa1b175ea582001d.rmeta: crates/sessrec/src/lib.rs crates/sessrec/src/dataset.rs crates/sessrec/src/metrics.rs crates/sessrec/src/models/mod.rs crates/sessrec/src/models/gnn.rs crates/sessrec/src/models/seq.rs crates/sessrec/src/rewrites.rs

crates/sessrec/src/lib.rs:
crates/sessrec/src/dataset.rs:
crates/sessrec/src/metrics.rs:
crates/sessrec/src/models/mod.rs:
crates/sessrec/src/models/gnn.rs:
crates/sessrec/src/models/seq.rs:
crates/sessrec/src/rewrites.rs:
