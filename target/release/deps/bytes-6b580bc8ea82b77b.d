/root/repo/target/release/deps/bytes-6b580bc8ea82b77b.d: .stubs/bytes/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libbytes-6b580bc8ea82b77b.rmeta: .stubs/bytes/src/lib.rs Cargo.toml

.stubs/bytes/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
