/root/repo/target/release/deps/cosmo_teacher-2fe5e9d287b1bea4.d: crates/teacher/src/lib.rs crates/teacher/src/cost.rs crates/teacher/src/generate.rs crates/teacher/src/prompts.rs crates/teacher/src/relations.rs

/root/repo/target/release/deps/libcosmo_teacher-2fe5e9d287b1bea4.rmeta: crates/teacher/src/lib.rs crates/teacher/src/cost.rs crates/teacher/src/generate.rs crates/teacher/src/prompts.rs crates/teacher/src/relations.rs

crates/teacher/src/lib.rs:
crates/teacher/src/cost.rs:
crates/teacher/src/generate.rs:
crates/teacher/src/prompts.rs:
crates/teacher/src/relations.rs:
