/root/repo/target/release/deps/repro-d467c087a2a37979.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-d467c087a2a37979: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
