/root/repo/target/release/deps/rand-00c409b76fc5ff06.d: .stubs/rand/src/lib.rs

/root/repo/target/release/deps/librand-00c409b76fc5ff06.rmeta: .stubs/rand/src/lib.rs

.stubs/rand/src/lib.rs:
