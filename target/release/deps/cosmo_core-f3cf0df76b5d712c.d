/root/repo/target/release/deps/cosmo_core-f3cf0df76b5d712c.d: crates/core/src/lib.rs crates/core/src/annotation.rs crates/core/src/critic.rs crates/core/src/feedback.rs crates/core/src/filter.rs crates/core/src/pipeline.rs crates/core/src/sampling.rs

/root/repo/target/release/deps/cosmo_core-f3cf0df76b5d712c: crates/core/src/lib.rs crates/core/src/annotation.rs crates/core/src/critic.rs crates/core/src/feedback.rs crates/core/src/filter.rs crates/core/src/pipeline.rs crates/core/src/sampling.rs

crates/core/src/lib.rs:
crates/core/src/annotation.rs:
crates/core/src/critic.rs:
crates/core/src/feedback.rs:
crates/core/src/filter.rs:
crates/core/src/pipeline.rs:
crates/core/src/sampling.rs:
