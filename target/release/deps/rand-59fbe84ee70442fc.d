/root/repo/target/release/deps/rand-59fbe84ee70442fc.d: .stubs/rand/src/lib.rs

/root/repo/target/release/deps/rand-59fbe84ee70442fc: .stubs/rand/src/lib.rs

.stubs/rand/src/lib.rs:
