/root/repo/target/release/deps/cosmo_teacher-197e70056103233d.d: crates/teacher/src/lib.rs crates/teacher/src/cost.rs crates/teacher/src/generate.rs crates/teacher/src/prompts.rs crates/teacher/src/relations.rs

/root/repo/target/release/deps/libcosmo_teacher-197e70056103233d.rlib: crates/teacher/src/lib.rs crates/teacher/src/cost.rs crates/teacher/src/generate.rs crates/teacher/src/prompts.rs crates/teacher/src/relations.rs

/root/repo/target/release/deps/libcosmo_teacher-197e70056103233d.rmeta: crates/teacher/src/lib.rs crates/teacher/src/cost.rs crates/teacher/src/generate.rs crates/teacher/src/prompts.rs crates/teacher/src/relations.rs

crates/teacher/src/lib.rs:
crates/teacher/src/cost.rs:
crates/teacher/src/generate.rs:
crates/teacher/src/prompts.rs:
crates/teacher/src/relations.rs:
