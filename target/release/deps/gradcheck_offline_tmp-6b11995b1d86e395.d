/root/repo/target/release/deps/gradcheck_offline_tmp-6b11995b1d86e395.d: tests/gradcheck_offline_tmp.rs

/root/repo/target/release/deps/gradcheck_offline_tmp-6b11995b1d86e395: tests/gradcheck_offline_tmp.rs

tests/gradcheck_offline_tmp.rs:
