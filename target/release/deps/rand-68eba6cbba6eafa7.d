/root/repo/target/release/deps/rand-68eba6cbba6eafa7.d: .stubs/rand/src/lib.rs Cargo.toml

/root/repo/target/release/deps/librand-68eba6cbba6eafa7.rmeta: .stubs/rand/src/lib.rs Cargo.toml

.stubs/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
