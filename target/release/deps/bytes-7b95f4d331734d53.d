/root/repo/target/release/deps/bytes-7b95f4d331734d53.d: .stubs/bytes/src/lib.rs

/root/repo/target/release/deps/bytes-7b95f4d331734d53: .stubs/bytes/src/lib.rs

.stubs/bytes/src/lib.rs:
