/root/repo/target/release/deps/cosmo_sessrec-ce18616dd3794207.d: crates/sessrec/src/lib.rs crates/sessrec/src/dataset.rs crates/sessrec/src/metrics.rs crates/sessrec/src/models/mod.rs crates/sessrec/src/models/gnn.rs crates/sessrec/src/models/seq.rs crates/sessrec/src/rewrites.rs Cargo.toml

/root/repo/target/release/deps/libcosmo_sessrec-ce18616dd3794207.rmeta: crates/sessrec/src/lib.rs crates/sessrec/src/dataset.rs crates/sessrec/src/metrics.rs crates/sessrec/src/models/mod.rs crates/sessrec/src/models/gnn.rs crates/sessrec/src/models/seq.rs crates/sessrec/src/rewrites.rs Cargo.toml

crates/sessrec/src/lib.rs:
crates/sessrec/src/dataset.rs:
crates/sessrec/src/metrics.rs:
crates/sessrec/src/models/mod.rs:
crates/sessrec/src/models/gnn.rs:
crates/sessrec/src/models/seq.rs:
crates/sessrec/src/rewrites.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
