/root/repo/target/release/deps/cosmo_bench-83131dc39d1f17aa.d: crates/bench/src/lib.rs crates/bench/src/ablations.rs crates/bench/src/context.rs crates/bench/src/extensions.rs crates/bench/src/figures.rs crates/bench/src/kgstats.rs crates/bench/src/tables.rs Cargo.toml

/root/repo/target/release/deps/libcosmo_bench-83131dc39d1f17aa.rmeta: crates/bench/src/lib.rs crates/bench/src/ablations.rs crates/bench/src/context.rs crates/bench/src/extensions.rs crates/bench/src/figures.rs crates/bench/src/kgstats.rs crates/bench/src/tables.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/ablations.rs:
crates/bench/src/context.rs:
crates/bench/src/extensions.rs:
crates/bench/src/figures.rs:
crates/bench/src/kgstats.rs:
crates/bench/src/tables.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
