/root/repo/target/release/deps/serde-6bdcfabfdd2e273e.d: .stubs/serde/src/lib.rs

/root/repo/target/release/deps/libserde-6bdcfabfdd2e273e.rlib: .stubs/serde/src/lib.rs

/root/repo/target/release/deps/libserde-6bdcfabfdd2e273e.rmeta: .stubs/serde/src/lib.rs

.stubs/serde/src/lib.rs:
