/root/repo/target/release/deps/cosmo_core-e001a1ebeb232497.d: crates/core/src/lib.rs crates/core/src/annotation.rs crates/core/src/critic.rs crates/core/src/feedback.rs crates/core/src/filter.rs crates/core/src/pipeline.rs crates/core/src/sampling.rs

/root/repo/target/release/deps/libcosmo_core-e001a1ebeb232497.rmeta: crates/core/src/lib.rs crates/core/src/annotation.rs crates/core/src/critic.rs crates/core/src/feedback.rs crates/core/src/filter.rs crates/core/src/pipeline.rs crates/core/src/sampling.rs

crates/core/src/lib.rs:
crates/core/src/annotation.rs:
crates/core/src/critic.rs:
crates/core/src/feedback.rs:
crates/core/src/filter.rs:
crates/core/src/pipeline.rs:
crates/core/src/sampling.rs:
