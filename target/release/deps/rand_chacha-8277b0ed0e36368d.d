/root/repo/target/release/deps/rand_chacha-8277b0ed0e36368d.d: .stubs/rand_chacha/src/lib.rs

/root/repo/target/release/deps/librand_chacha-8277b0ed0e36368d.rmeta: .stubs/rand_chacha/src/lib.rs

.stubs/rand_chacha/src/lib.rs:
