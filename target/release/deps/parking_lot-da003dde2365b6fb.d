/root/repo/target/release/deps/parking_lot-da003dde2365b6fb.d: .stubs/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-da003dde2365b6fb.rlib: .stubs/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-da003dde2365b6fb.rmeta: .stubs/parking_lot/src/lib.rs

.stubs/parking_lot/src/lib.rs:
