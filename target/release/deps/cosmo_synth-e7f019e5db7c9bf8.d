/root/repo/target/release/deps/cosmo_synth-e7f019e5db7c9bf8.d: crates/synth/src/lib.rs crates/synth/src/behavior.rs crates/synth/src/corpus.rs crates/synth/src/domain.rs crates/synth/src/oracle.rs crates/synth/src/util.rs crates/synth/src/world.rs

/root/repo/target/release/deps/cosmo_synth-e7f019e5db7c9bf8: crates/synth/src/lib.rs crates/synth/src/behavior.rs crates/synth/src/corpus.rs crates/synth/src/domain.rs crates/synth/src/oracle.rs crates/synth/src/util.rs crates/synth/src/world.rs

crates/synth/src/lib.rs:
crates/synth/src/behavior.rs:
crates/synth/src/corpus.rs:
crates/synth/src/domain.rs:
crates/synth/src/oracle.rs:
crates/synth/src/util.rs:
crates/synth/src/world.rs:
