/root/repo/target/release/deps/experiments_smoke-8c6b3a649893cd82.d: crates/bench/tests/experiments_smoke.rs Cargo.toml

/root/repo/target/release/deps/libexperiments_smoke-8c6b3a649893cd82.rmeta: crates/bench/tests/experiments_smoke.rs Cargo.toml

crates/bench/tests/experiments_smoke.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
