/root/repo/target/release/deps/cosmo_nav-1ce4023eca71834d.d: crates/nav/src/lib.rs crates/nav/src/abtest.rs crates/nav/src/engine.rs

/root/repo/target/release/deps/libcosmo_nav-1ce4023eca71834d.rmeta: crates/nav/src/lib.rs crates/nav/src/abtest.rs crates/nav/src/engine.rs

crates/nav/src/lib.rs:
crates/nav/src/abtest.rs:
crates/nav/src/engine.rs:
