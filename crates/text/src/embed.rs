//! Hashed bag-of-n-gram sentence embeddings.
//!
//! The paper's similarity filter (§3.3.1, Eq. 1) embeds the generated
//! knowledge tail and the behaviour context (query / product title) with an
//! in-house e-commerce encoder and drops the tail when cosine similarity is
//! above a threshold — those generations are "essentially paraphrases of the
//! original user behaviour contexts with syntactic transformations".
//!
//! Our stand-in: each token contributes TF-IDF-weighted signed hash features
//! for (a) the word itself, (b) its character trigrams (for morphological
//! robustness: "camping" ≈ "camp"), and (c) word bigrams. This detects
//! lexical/syntactic paraphrases, the exact failure mode being filtered,
//! while orthogonal content (a true intention like "keep warm" for query
//! "winter clothes") stays dissimilar.

use crate::hash::hash_str_ns;
use crate::tfidf::TfIdf;
use crate::tokenize::{char_ngrams, tokenize};

/// Feature namespaces.
const NS_WORD: u32 = 1;
const NS_CHAR3: u32 = 2;
const NS_BIGRAM: u32 = 3;

/// A frozen sentence embedder producing dense `dim`-dimensional vectors.
#[derive(Debug, Clone)]
pub struct HashedEmbedder {
    dim: usize,
    idf: TfIdf,
    /// weight of char-trigram features relative to word features
    char_weight: f32,
    /// weight of bigram features relative to word features
    bigram_weight: f32,
}

impl HashedEmbedder {
    /// "Pre-train" the embedder on a corpus (fits document frequencies).
    pub fn fit(corpus: &[String], dim: usize) -> Self {
        assert!(dim >= 8, "embedding dimension too small");
        HashedEmbedder {
            dim,
            idf: TfIdf::fit(corpus),
            char_weight: 0.3,
            bigram_weight: 0.6,
        }
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    #[inline]
    fn bucket(&self, h: u64) -> (usize, f32) {
        let idx = (h % self.dim as u64) as usize;
        // one bit of the hash decides the sign, reducing collision bias
        let sign = if (h >> 63) & 1 == 0 { 1.0 } else { -1.0 };
        (idx, sign)
    }

    fn add_feature(&self, v: &mut [f32], key: u64, w: f32) {
        let (idx, sign) = self.bucket(key);
        v[idx] += sign * w;
    }

    /// Embed raw text into an L2-normalised vector.
    pub fn embed(&self, text: &str) -> Vec<f32> {
        let tokens = tokenize(text);
        self.embed_tokens(&tokens)
    }

    /// Embed a pre-tokenised document.
    pub fn embed_tokens(&self, tokens: &[String]) -> Vec<f32> {
        let mut v = vec![0.0f32; self.dim];
        for (i, tok) in tokens.iter().enumerate() {
            let w = self.idf.idf(tok);
            self.add_feature(&mut v, hash_str_ns(tok, NS_WORD), w);
            for cg in char_ngrams(tok, 3) {
                self.add_feature(&mut v, hash_str_ns(&cg, NS_CHAR3), w * self.char_weight);
            }
            if i + 1 < tokens.len() {
                let bg = format!("{tok} {}", tokens[i + 1]);
                self.add_feature(&mut v, hash_str_ns(&bg, NS_BIGRAM), w * self.bigram_weight);
            }
        }
        l2_normalize(&mut v);
        v
    }

    /// Cosine similarity of two raw texts (Eq. 1 of the paper).
    pub fn similarity(&self, a: &str, b: &str) -> f32 {
        crate::cosine(&self.embed(a), &self.embed(b))
    }
}

fn l2_normalize(v: &mut [f32]) {
    let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if norm > 0.0 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn embedder() -> HashedEmbedder {
        let corpus: Vec<String> = vec![
            "camping air mattress for outdoor use".into(),
            "winter clothes to keep warm".into(),
            "running shoes with arch support".into(),
            "dog leash for walking the dog".into(),
            "screen protector glass for camera".into(),
            "the product is used for many things".into(),
        ];
        HashedEmbedder::fit(&corpus, 256)
    }

    #[test]
    fn identical_texts_have_similarity_one() {
        let e = embedder();
        let s = e.similarity("camping air mattress", "camping air mattress");
        assert!((s - 1.0).abs() < 1e-5, "s={s}");
    }

    #[test]
    fn paraphrase_scores_higher_than_unrelated() {
        let e = embedder();
        let para = e.similarity("camping air mattress", "air mattress for camping");
        let unrelated = e.similarity("camping air mattress", "hydrating the skin");
        assert!(para > unrelated + 0.2, "para={para} unrelated={unrelated}");
    }

    #[test]
    fn morphological_variants_similar() {
        let e = embedder();
        let morph = e.similarity("used for camping", "used for camp");
        let diff = e.similarity("used for camping", "used for welding");
        assert!(morph > diff, "morph={morph} diff={diff}");
    }

    #[test]
    fn true_intention_not_a_paraphrase() {
        let e = embedder();
        // "keep warm" is a genuine intention for "winter clothes": it must
        // NOT be flagged as a paraphrase of the query itself.
        let intent = e.similarity("winter clothes", "capable of keeping you warm");
        let para = e.similarity("winter clothes", "clothes for the winter");
        assert!(para > intent, "para={para} intent={intent}");
    }

    #[test]
    fn embeddings_are_normalised() {
        let e = embedder();
        let v = e.embed("walking the dog");
        let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-5);
    }

    #[test]
    fn empty_text_embeds_to_zero() {
        let e = embedder();
        let v = e.embed("");
        assert!(v.iter().all(|&x| x == 0.0));
        assert_eq!(e.similarity("", "anything"), 0.0);
    }
}
