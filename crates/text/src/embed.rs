//! Hashed bag-of-n-gram sentence embeddings.
//!
//! The paper's similarity filter (§3.3.1, Eq. 1) embeds the generated
//! knowledge tail and the behaviour context (query / product title) with an
//! in-house e-commerce encoder and drops the tail when cosine similarity is
//! above a threshold — those generations are "essentially paraphrases of the
//! original user behaviour contexts with syntactic transformations".
//!
//! Our stand-in: each token contributes TF-IDF-weighted signed hash features
//! for (a) the word itself, (b) its character trigrams (for morphological
//! robustness: "camping" ≈ "camp"), and (c) word bigrams. This detects
//! lexical/syntactic paraphrases, the exact failure mode being filtered,
//! while orthogonal content (a true intention like "keep warm" for query
//! "winter clothes") stays dissimilar.

use crate::hash::{hash_bytes_ns, hash_pair_ns, hash_str_ns};
use crate::tfidf::TfIdf;
use crate::tokenize::tokenize_spans;

/// Feature namespaces.
const NS_WORD: u32 = 1;
const NS_CHAR3: u32 = 2;
const NS_BIGRAM: u32 = 3;

/// Reusable buffers for [`HashedEmbedder::embed_into`]. After a few calls the
/// buffers reach steady-state capacity and embedding stops allocating
/// entirely; keep one per worker thread and reuse it across texts.
#[derive(Debug, Default, Clone)]
pub struct EmbedScratch {
    /// lowercase text buffer shared by all token spans
    lower: String,
    /// byte spans of tokens into `lower`
    spans: Vec<(u32, u32)>,
    /// word-namespace hash of each token (also feeds bigram keys)
    word_hashes: Vec<u64>,
    /// IDF weight of each token
    word_idfs: Vec<f32>,
}

impl EmbedScratch {
    fn clear(&mut self) {
        self.lower.clear();
        self.spans.clear();
        self.word_hashes.clear();
        self.word_idfs.clear();
    }
}

/// Encode chars as UTF-8 into `buf`, returning the byte length. The bytes
/// equal those of the `String` the chars would collect into, so hashing them
/// matches hashing that string.
#[inline]
fn encode_chars(chars: &[char], buf: &mut [u8]) -> usize {
    let mut len = 0;
    for &c in chars {
        len += c.encode_utf8(&mut buf[len..]).len();
    }
    len
}

/// A frozen sentence embedder producing dense `dim`-dimensional vectors.
#[derive(Debug, Clone)]
pub struct HashedEmbedder {
    dim: usize,
    idf: TfIdf,
    /// weight of char-trigram features relative to word features
    char_weight: f32,
    /// weight of bigram features relative to word features
    bigram_weight: f32,
}

impl HashedEmbedder {
    /// "Pre-train" the embedder on a corpus (fits document frequencies).
    pub fn fit(corpus: &[String], dim: usize) -> Self {
        assert!(dim >= 8, "embedding dimension too small");
        HashedEmbedder {
            dim,
            idf: TfIdf::fit(corpus),
            char_weight: 0.3,
            bigram_weight: 0.6,
        }
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    #[inline]
    fn bucket(&self, h: u64) -> (usize, f32) {
        let idx = (h % self.dim as u64) as usize;
        // one bit of the hash decides the sign, reducing collision bias
        let sign = if (h >> 63) & 1 == 0 { 1.0 } else { -1.0 };
        (idx, sign)
    }

    fn add_feature(&self, v: &mut [f32], key: u64, w: f32) {
        let (idx, sign) = self.bucket(key);
        v[idx] += sign * w;
    }

    /// Embed raw text into an L2-normalised vector.
    ///
    /// Thin wrapper over [`HashedEmbedder::embed_into`]; both paths produce
    /// bitwise-identical vectors (pinned by tests).
    pub fn embed(&self, text: &str) -> Vec<f32> {
        let mut scratch = EmbedScratch::default();
        let mut out = vec![0.0f32; self.dim];
        self.embed_into(text, &mut scratch, &mut out);
        out
    }

    /// Embed a pre-tokenised document. Produces the same vector as
    /// [`HashedEmbedder::embed`] on the text the tokens came from.
    pub fn embed_tokens(&self, tokens: &[String]) -> Vec<f32> {
        let mut scratch = EmbedScratch::default();
        for tok in tokens {
            let start = scratch.lower.len() as u32;
            scratch.lower.push_str(tok);
            scratch.spans.push((start, scratch.lower.len() as u32));
        }
        let mut out = vec![0.0f32; self.dim];
        self.embed_spans_into(&mut scratch, &mut out);
        out
    }

    /// Allocation-free embedding: tokenise `text` into `scratch` (reused
    /// buffers, no per-token `String`s) and write the L2-normalised vector
    /// into `out`, which must be `dim()` long. Bigram features hash the two
    /// token hashes via [`hash_pair_ns`] instead of formatting a joined
    /// string; char-trigram features hash stack-encoded UTF-8 windows.
    pub fn embed_into(&self, text: &str, scratch: &mut EmbedScratch, out: &mut [f32]) {
        scratch.clear();
        tokenize_spans(text, &mut scratch.lower, &mut scratch.spans);
        self.embed_spans_into(scratch, out);
    }

    /// Shared feature-accumulation core over tokens already split into
    /// `scratch.lower` / `scratch.spans`. Feature order (word, trigrams,
    /// bigram — per token) is fixed so every entry point accumulates floats
    /// in the same order and stays bitwise-identical.
    fn embed_spans_into(&self, scratch: &mut EmbedScratch, out: &mut [f32]) {
        assert_eq!(out.len(), self.dim, "embed_into: output length != dim");
        out.fill(0.0);
        scratch.word_hashes.clear();
        scratch.word_idfs.clear();
        for &(s, e) in &scratch.spans {
            let tok = &scratch.lower[s as usize..e as usize];
            scratch.word_hashes.push(hash_str_ns(tok, NS_WORD));
            scratch.word_idfs.push(self.idf.idf(tok));
        }
        let n = scratch.spans.len();
        for i in 0..n {
            let (s, e) = scratch.spans[i];
            let tok = &scratch.lower[s as usize..e as usize];
            let w = scratch.word_idfs[i];
            self.add_feature(out, scratch.word_hashes[i], w);
            self.add_char3_features(out, tok, w * self.char_weight);
            if i + 1 < n {
                let key = hash_pair_ns(
                    scratch.word_hashes[i],
                    scratch.word_hashes[i + 1],
                    NS_BIGRAM,
                );
                self.add_feature(out, key, w * self.bigram_weight);
            }
        }
        l2_normalize(out);
    }

    /// Add one feature per char-trigram of `^tok$` without materialising the
    /// trigram strings: a rolling 3-char window is UTF-8-encoded into a stack
    /// buffer and hashed, yielding the same keys as hashing the equivalent
    /// `String`s.
    fn add_char3_features(&self, out: &mut [f32], tok: &str, w: f32) {
        let mut win = ['\0'; 3];
        let mut filled = 0usize;
        let mut buf = [0u8; 12]; // 3 chars x at most 4 UTF-8 bytes
        for c in std::iter::once('^')
            .chain(tok.chars())
            .chain(std::iter::once('$'))
        {
            if filled < 3 {
                win[filled] = c;
                filled += 1;
                if filled < 3 {
                    continue;
                }
            } else {
                win[0] = win[1];
                win[1] = win[2];
                win[2] = c;
            }
            let len = encode_chars(&win, &mut buf);
            self.add_feature(out, hash_bytes_ns(&buf[..len], NS_CHAR3), w);
        }
        if filled < 3 {
            // Fewer than 3 marked chars (empty token): single short n-gram,
            // matching `char_ngrams`' padding behaviour.
            let len = encode_chars(&win[..filled], &mut buf);
            self.add_feature(out, hash_bytes_ns(&buf[..len], NS_CHAR3), w);
        }
    }

    /// Cosine similarity of two raw texts (Eq. 1 of the paper).
    pub fn similarity(&self, a: &str, b: &str) -> f32 {
        crate::cosine(&self.embed(a), &self.embed(b))
    }

    /// Batched similarity of one text against many: the query is embedded
    /// once and the scratch/output buffers are reused across `others`,
    /// replacing N×2 embedding allocations with two. Returns exactly
    /// `similarity(text, other)` for each entry, bitwise.
    pub fn similarity_many<S: AsRef<str>>(&self, text: &str, others: &[S]) -> Vec<f32> {
        let mut scratch = EmbedScratch::default();
        let mut a = vec![0.0f32; self.dim];
        self.embed_into(text, &mut scratch, &mut a);
        let mut b = vec![0.0f32; self.dim];
        others
            .iter()
            .map(|o| {
                self.embed_into(o.as_ref(), &mut scratch, &mut b);
                crate::cosine(&a, &b)
            })
            .collect()
    }
}

fn l2_normalize(v: &mut [f32]) {
    let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if norm > 0.0 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn embedder() -> HashedEmbedder {
        let corpus: Vec<String> = vec![
            "camping air mattress for outdoor use".into(),
            "winter clothes to keep warm".into(),
            "running shoes with arch support".into(),
            "dog leash for walking the dog".into(),
            "screen protector glass for camera".into(),
            "the product is used for many things".into(),
        ];
        HashedEmbedder::fit(&corpus, 256)
    }

    #[test]
    fn identical_texts_have_similarity_one() {
        let e = embedder();
        let s = e.similarity("camping air mattress", "camping air mattress");
        assert!((s - 1.0).abs() < 1e-5, "s={s}");
    }

    #[test]
    fn paraphrase_scores_higher_than_unrelated() {
        let e = embedder();
        let para = e.similarity("camping air mattress", "air mattress for camping");
        let unrelated = e.similarity("camping air mattress", "hydrating the skin");
        assert!(para > unrelated + 0.2, "para={para} unrelated={unrelated}");
    }

    #[test]
    fn morphological_variants_similar() {
        let e = embedder();
        let morph = e.similarity("used for camping", "used for camp");
        let diff = e.similarity("used for camping", "used for welding");
        assert!(morph > diff, "morph={morph} diff={diff}");
    }

    #[test]
    fn true_intention_not_a_paraphrase() {
        let e = embedder();
        // "keep warm" is a genuine intention for "winter clothes": it must
        // NOT be flagged as a paraphrase of the query itself.
        let intent = e.similarity("winter clothes", "capable of keeping you warm");
        let para = e.similarity("winter clothes", "clothes for the winter");
        assert!(para > intent, "para={para} intent={intent}");
    }

    #[test]
    fn embeddings_are_normalised() {
        let e = embedder();
        let v = e.embed("walking the dog");
        let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-5);
    }

    #[test]
    fn empty_text_embeds_to_zero() {
        let e = embedder();
        let v = e.embed("");
        assert!(v.iter().all(|&x| x == 0.0));
        assert_eq!(e.similarity("", "anything"), 0.0);
    }

    #[test]
    fn embed_into_matches_embed_bitwise() {
        let e = embedder();
        let mut scratch = EmbedScratch::default();
        let mut out = vec![0.0f32; e.dim()];
        for text in [
            "camping air mattress",
            "the cat's toy — 4-person!",
            "Winter CLOTHES to keep warm",
            "",
            "ÜBER straße",
        ] {
            e.embed_into(text, &mut scratch, &mut out);
            let reference = e.embed(text);
            assert_eq!(
                out.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
                reference.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
                "text={text:?}"
            );
        }
    }

    #[test]
    fn embed_tokens_matches_embed_bitwise() {
        let e = embedder();
        for text in ["camping air mattress", "used for walking the dog", "a"] {
            let toks = crate::tokenize::tokenize(text);
            let via_tokens = e.embed_tokens(&toks);
            let via_text = e.embed(text);
            assert_eq!(
                via_tokens.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
                via_text.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
                "text={text:?}"
            );
        }
    }

    #[test]
    fn scratch_reuse_does_not_leak_state() {
        let e = embedder();
        let mut scratch = EmbedScratch::default();
        let mut out = vec![0.0f32; e.dim()];
        // Long text first, then a short one: stale buffer contents must not
        // bleed into the second embedding.
        e.embed_into(
            "a very long piece of text with many different tokens inside it",
            &mut scratch,
            &mut out,
        );
        e.embed_into("dog leash", &mut scratch, &mut out);
        let fresh = e.embed("dog leash");
        assert_eq!(
            out.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
            fresh.iter().map(|f| f.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn similarity_many_matches_similarity_bitwise() {
        let e = embedder();
        let contexts = [
            "camping air mattress".to_string(),
            "winter clothes".to_string(),
            "hydrating the skin".to_string(),
            String::new(),
        ];
        let many = e.similarity_many("air mattress for camping", &contexts);
        assert_eq!(many.len(), contexts.len());
        for (ctx, &got) in contexts.iter().zip(&many) {
            let single = e.similarity("air mattress for camping", ctx);
            assert_eq!(got.to_bits(), single.to_bits(), "ctx={ctx:?}");
        }
    }

    #[test]
    fn embedding_values_are_pinned() {
        // Golden bits lock the feature definition (hash namespaces, combine
        // function, weights, accumulation order). Any change to the embedding
        // scheme — intended or not — must update these constants explicitly.
        let corpus: Vec<String> = vec![
            "camping air mattress for outdoor use".into(),
            "winter clothes to keep warm".into(),
        ];
        let e = HashedEmbedder::fit(&corpus, 16);
        let got: Vec<u32> = e
            .embed("camping air mattress")
            .iter()
            .map(|f| f.to_bits())
            .collect();
        let expected: [u32; 16] = [
            0, 0, 1058262330, 3203814923, 1041485114, 1041485114, 0, 1056331275, 0, 1041485114, 0,
            0, 3197357370, 1044713889, 3188968762, 0,
        ];
        assert_eq!(got, expected);
        assert_eq!(
            crate::hash::hash_pair_ns(
                crate::hash::hash_str_ns("winter", 1),
                crate::hash::hash_str_ns("camping", 1),
                3,
            ),
            0x6c6e_7eac_8e41_b68b
        );
    }

    #[test]
    fn bigram_features_distinguish_order() {
        // The combine-based bigram key must still encode token order:
        // "air mattress" and "mattress air" share unigrams + trigrams but
        // not bigrams.
        let e = embedder();
        let s = e.similarity("camping air mattress", "camping mattress air");
        assert!(s < 1.0 - 1e-4, "s={s}");
    }
}
