//! Canonicalisation of knowledge tails.
//!
//! §3.1 of the paper: generations sharing a predicate pattern ("the product
//! is capable of being used \[Prep\] …") are canonicalised so the knowledge
//! graph is structured — e.g. "Used for walking the dogs." and "used for
//! walking the dog" become one tail node. We lowercase, strip punctuation
//! and leading auxiliary boilerplate, apply a light plural/inflection
//! stemmer to the final noun, and collapse whitespace.

use crate::tokenize::tokenize;

/// Boilerplate prefixes the teacher tends to emit before the actual tail.
const BOILERPLATE_PREFIXES: &[&[&str]] = &[
    &["they", "are"],
    &["it", "is"],
    &["this", "product", "is"],
    &["the", "product", "is"],
    &["because", "they", "are"],
    &["because", "it", "is"],
    &["because"],
    &["both", "are"],
];

/// A light suffix stemmer applied to the last token only (tails are short
/// noun/verb phrases; stemming every token would merge distinct meanings).
fn stem_last(token: &str) -> String {
    let t = token;
    if t.len() > 4 && t.ends_with("ies") {
        return format!("{}y", &t[..t.len() - 3]);
    }
    if t.len() > 3 && t.ends_with("es") && !t.ends_with("ses") && !t.ends_with("oes") {
        return t[..t.len() - 1].to_string(); // "boxes" -> "boxe"? keep simple: drop 's'
    }
    if t.len() > 3 && t.ends_with('s') && !t.ends_with("ss") && !t.ends_with("us") {
        return t[..t.len() - 1].to_string();
    }
    t.to_string()
}

/// Canonicalise a knowledge tail string.
pub fn canonicalize_tail(raw: &str) -> String {
    let mut toks = tokenize(raw);
    // strip boilerplate prefixes, longest first, repeatedly
    loop {
        let mut stripped = false;
        for prefix in BOILERPLATE_PREFIXES {
            if toks.len() > prefix.len()
                && toks[..prefix.len()]
                    .iter()
                    .map(|s| s.as_str())
                    .eq(prefix.iter().copied())
            {
                toks.drain(..prefix.len());
                stripped = true;
                break;
            }
        }
        if !stripped {
            break;
        }
    }
    if let Some(last) = toks.last_mut() {
        *last = stem_last(last);
    }
    toks.join(" ")
}

/// True when two raw tails canonicalise to the same node.
pub fn same_tail(a: &str, b: &str) -> bool {
    canonicalize_tail(a) == canonicalize_tail(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_case_and_punct() {
        assert_eq!(canonicalize_tail("Used for Camping!"), "used for camping");
    }

    #[test]
    fn strips_boilerplate() {
        assert_eq!(
            canonicalize_tail("they are used for camping"),
            "used for camping"
        );
        assert_eq!(
            canonicalize_tail("because they are capable of holding snacks"),
            "capable of holding snack"
        );
        assert_eq!(canonicalize_tail("it is a smart watch"), "a smart watch");
    }

    #[test]
    fn plural_merge() {
        assert!(same_tail(
            "used for walking the dogs",
            "used for walking the dog"
        ));
        assert!(same_tail("used by cat owners", "used by cat owner"));
    }

    #[test]
    fn distinct_tails_stay_distinct() {
        assert!(!same_tail("used for camping", "used for hiking"));
    }

    #[test]
    fn does_not_overstem() {
        // "ss"/"us" endings are not plurals
        assert_eq!(canonicalize_tail("used for fitness"), "used for fitness");
        assert_eq!(
            canonicalize_tail("protects the walrus"),
            "protects the walrus"
        );
    }

    #[test]
    fn empty_is_empty() {
        assert_eq!(canonicalize_tail(""), "");
        assert_eq!(canonicalize_tail("because"), "because");
    }
}
