//! Interpolated n-gram language model with Witten–Bell smoothing.
//!
//! Stands in for the GPT-2 perplexity scorer of §3.3.1. The model is trained
//! on the synthetic corpus (product titles, queries, well-formed knowledge
//! sentences) and assigns high perplexity to truncated or garbled
//! generations, which the rule-based filter then drops with a tuned
//! threshold — the same division of labour as in the paper.
//!
//! Witten–Bell interpolation: for each order `k`,
//! `p_k(w | h) = λ(h)·p_ml(w | h) + (1 − λ(h))·p_{k−1}(w | h')`
//! with `λ(h) = c(h) / (c(h) + T(h))` where `T(h)` is the number of distinct
//! continuations of history `h`. The base case is a uniform-smoothed unigram.

use crate::hash::FxHashMap;
#[cfg(test)]
use crate::vocab::EOS;
use crate::vocab::{Vocab, BOS};

/// Key for an n-gram history: the history token ids packed into a `u64`
/// hash. We additionally store the raw length to namespace different orders.
#[inline]
fn history_key(history: &[u32]) -> u64 {
    use std::hash::Hasher;
    let mut h = crate::hash::FxHasher::default();
    h.write_usize(history.len());
    for &t in history {
        h.write_u32(t);
    }
    h.finish()
}

#[derive(Debug, Default, Clone)]
struct HistoryStats {
    /// total count of tokens following this history
    total: u64,
    /// distinct continuation types
    distinct: u32,
    /// continuation counts
    conts: FxHashMap<u32, u64>,
}

/// Interpolated Witten–Bell n-gram language model.
#[derive(Debug, Clone)]
pub struct NgramLm {
    order: usize,
    /// per-order history tables; index 0 = unigram (empty history).
    tables: Vec<FxHashMap<u64, HistoryStats>>,
    vocab_size: usize,
    total_tokens: u64,
}

impl NgramLm {
    /// Create an untrained model of the given maximum order (≥ 1).
    pub fn new(order: usize) -> Self {
        assert!(order >= 1, "n-gram order must be >= 1");
        NgramLm {
            order,
            tables: vec![FxHashMap::default(); order],
            vocab_size: 0,
            total_tokens: 0,
        }
    }

    /// Maximum order of the model.
    pub fn order(&self) -> usize {
        self.order
    }

    /// Observe one sentence (already encoded with BOS/EOS by
    /// [`Vocab::encode_sentence`]).
    pub fn observe(&mut self, ids: &[u32]) {
        for i in 0..ids.len() {
            if ids[i] == BOS {
                continue; // BOS is only ever history, never predicted
            }
            self.total_tokens += 1;
            for k in 0..self.order {
                if i < k {
                    break;
                }
                let history = &ids[i - k..i];
                let key = history_key(history);
                let stats = self.tables[k].entry(key).or_default();
                let c = stats.conts.entry(ids[i]).or_insert(0);
                if *c == 0 {
                    stats.distinct += 1;
                }
                *c += 1;
                stats.total += 1;
            }
        }
    }

    /// Train from an iterator of token-id sentences and record the vocab size
    /// used for the uniform floor.
    pub fn train<'a>(&mut self, sentences: impl Iterator<Item = &'a [u32]>, vocab: &Vocab) {
        for s in sentences {
            self.observe(s);
        }
        self.vocab_size = vocab.len();
    }

    /// Set the vocabulary size used by the uniform smoothing floor.
    pub fn set_vocab_size(&mut self, v: usize) {
        self.vocab_size = v.max(1);
    }

    /// Interpolated probability of `word` given up to `order-1` tokens of
    /// history. Always strictly positive once trained on any data.
    pub fn prob(&self, history: &[u32], word: u32) -> f64 {
        let v = self.vocab_size.max(2) as f64;
        // base: unigram interpolated with uniform
        let mut p = 1.0 / v;
        for k in 0..self.order {
            if history.len() < k {
                break;
            }
            let h = &history[history.len() - k..];
            let key = history_key(h);
            let Some(stats) = self.tables[k].get(&key) else {
                // unseen history: lambda = 0, keep lower-order estimate
                continue;
            };
            let lambda = stats.total as f64 / (stats.total as f64 + stats.distinct as f64);
            let ml = stats.conts.get(&word).copied().unwrap_or(0) as f64 / stats.total as f64;
            p = lambda * ml + (1.0 - lambda) * p;
        }
        p
    }

    /// Log₂ probability of an encoded sentence (predicting every non-BOS
    /// token, including EOS).
    pub fn log2_prob(&self, ids: &[u32]) -> f64 {
        let mut lp = 0.0;
        for i in 0..ids.len() {
            if ids[i] == BOS {
                continue;
            }
            let start = i.saturating_sub(self.order - 1);
            let p = self.prob(&ids[start..i], ids[i]);
            lp += p.log2();
        }
        lp
    }

    /// Per-token perplexity of an encoded sentence: `2^(−log2P / n)`.
    /// Returns `f64::INFINITY` for empty input.
    pub fn perplexity(&self, ids: &[u32]) -> f64 {
        let n = ids.iter().filter(|&&t| t != BOS).count();
        if n == 0 {
            return f64::INFINITY;
        }
        let lp = self.log2_prob(ids);
        2f64.powf(-lp / n as f64)
    }

    /// Convenience: tokenize, encode with `vocab`, and return perplexity.
    pub fn perplexity_str(&self, text: &str, vocab: &Vocab) -> f64 {
        let toks = crate::tokenize::tokenize(text);
        let ids = vocab.encode_sentence(&toks);
        self.perplexity(&ids)
    }

    /// Number of distinct histories stored at each order (diagnostics).
    pub fn table_sizes(&self) -> Vec<usize> {
        self.tables.iter().map(|t| t.len()).collect()
    }
}

/// Train a vocabulary and n-gram LM jointly from raw sentences.
pub fn train_lm(sentences: &[String], order: usize) -> (Vocab, NgramLm) {
    let mut vocab = Vocab::new();
    let mut encoded = Vec::with_capacity(sentences.len());
    for s in sentences {
        let toks = crate::tokenize::tokenize(s);
        for t in &toks {
            vocab.add(t);
        }
        encoded.push(toks);
    }
    let mut lm = NgramLm::new(order);
    for toks in &encoded {
        let ids = vocab.encode_sentence(toks);
        lm.observe(&ids);
    }
    lm.set_vocab_size(vocab.len());
    (vocab, lm)
}

// EOS is used by tests below; silence unused warning in non-test builds.
#[allow(unused_imports)]
use crate::vocab::UNK as _UNK_FOR_DOCS;

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Vec<String> {
        vec![
            "they are used for camping in the mountains".to_string(),
            "they are used for hiking in the woods".to_string(),
            "it is capable of holding water".to_string(),
            "it is capable of keeping food warm".to_string(),
            "customers bought them because they are used for camping".to_string(),
            "used for walking the dog in the park".to_string(),
            "used for walking the dog every morning".to_string(),
        ]
    }

    #[test]
    fn probabilities_positive_and_le_one() {
        let (vocab, lm) = train_lm(&corpus(), 3);
        for (id, _, _) in vocab.iter() {
            let p = lm.prob(&[], id);
            assert!(p > 0.0 && p <= 1.0, "p={p}");
        }
    }

    #[test]
    fn unigram_distribution_sums_to_one() {
        let (vocab, lm) = train_lm(&corpus(), 3);
        let mut sum = 0.0;
        for id in 0..vocab.len() as u32 {
            sum += lm.prob(&[], id);
        }
        // BOS never predicted but still gets uniform floor mass; allow slack.
        assert!((sum - 1.0).abs() < 0.1, "sum={sum}");
    }

    #[test]
    fn seen_sentence_beats_garbled() {
        let (vocab, lm) = train_lm(&corpus(), 3);
        let fluent = lm.perplexity_str("they are used for camping", &vocab);
        let garbled = lm.perplexity_str("camping the of used for they", &vocab);
        assert!(
            fluent < garbled,
            "fluent={fluent} should be lower than garbled={garbled}"
        );
    }

    #[test]
    fn incomplete_sentence_has_high_eos_surprise() {
        let (vocab, lm) = train_lm(&corpus(), 3);
        let complete = lm.perplexity_str("used for walking the dog", &vocab);
        let truncated = lm.perplexity_str("used for walking the", &vocab);
        assert!(
            complete < truncated,
            "complete={complete} truncated={truncated}"
        );
    }

    #[test]
    fn empty_input_is_infinite() {
        let (_vocab, lm) = train_lm(&corpus(), 3);
        assert!(lm.perplexity(&[BOS]).is_infinite());
    }

    #[test]
    fn higher_order_fits_training_data_better() {
        let sents = corpus();
        let (vocab1, lm1) = train_lm(&sents, 1);
        let (vocab3, lm3) = train_lm(&sents, 3);
        let s = "they are used for camping in the mountains";
        assert!(lm3.perplexity_str(s, &vocab3) < lm1.perplexity_str(s, &vocab1));
    }

    #[test]
    fn eos_is_modelled() {
        let (vocab, lm) = train_lm(&corpus(), 2);
        // "dog" is followed by "in"/"every" in training; EOS after "dog"
        // should still have nonzero probability via interpolation.
        let dog = vocab.get("dog");
        assert!(lm.prob(&[dog], EOS) > 0.0);
    }
}
