//! # cosmo-text
//!
//! Text-processing substrate for the COSMO reproduction.
//!
//! The COSMO pipeline (SIGMOD 2024) relies on several text services that are
//! proprietary or external in the paper:
//!
//! * an **nltk sentence segmenter** used to extract the first sentence of a
//!   raw LLM generation (§3.3.1) — [`segment`];
//! * a **GPT-2 perplexity scorer** used to drop incomplete generations
//!   (§3.3.1) — replaced here by an interpolated n-gram language model in
//!   [`ngram`];
//! * an **in-house embedding model** pre-trained on e-commerce text, used to
//!   drop paraphrase generations by cosine similarity (§3.3.1, Eq. 1) —
//!   replaced by TF-IDF-weighted hashed bag-of-n-gram embeddings in
//!   [`embed`];
//! * assorted string utilities: tokenization, canonicalisation of knowledge
//!   tails, edit distance for the exact/near-duplicate filter.
//!
//! Everything here is deterministic and allocation-conscious; the hot paths
//! (tokenisation, hashing, n-gram scoring) are exercised by the Criterion
//! benches in `cosmo-bench`.

#![forbid(unsafe_code)]

pub mod canon;
pub mod distance;
pub mod embed;
pub mod hash;
pub mod ngram;
pub mod segment;
pub mod tfidf;
pub mod tokenize;
pub mod vocab;

pub use canon::canonicalize_tail;
pub use distance::{edit_distance, jaccard, normalized_edit_distance};
pub use embed::{EmbedScratch, HashedEmbedder};
pub use hash::{FxHashMap, FxHashSet, FxHasher};
pub use ngram::NgramLm;
pub use segment::first_sentence;
pub use tfidf::TfIdf;
pub use tokenize::{tokenize, tokenize_into, tokenize_spans};
pub use vocab::Vocab;

/// Shannon entropy (nats) of an empirical distribution given by counts.
///
/// Used by the generic-knowledge filter (§3.3.1): a tail such as
/// "used for the same reason" co-occurs with many *different* head products,
/// so the entropy of its head distribution is high.
pub fn entropy(counts: &[u64]) -> f64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let total = total as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / total;
            -p * p.ln()
        })
        .sum()
}

/// Cosine similarity between two dense vectors of equal length.
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "cosine: dimension mismatch");
    let mut dot = 0.0f64;
    let mut na = 0.0f64;
    let mut nb = 0.0f64;
    for (&x, &y) in a.iter().zip(b.iter()) {
        dot += x as f64 * y as f64;
        na += x as f64 * x as f64;
        nb += y as f64 * y as f64;
    }
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        (dot / (na.sqrt() * nb.sqrt())) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entropy_of_uniform_is_log_n() {
        let counts = [10u64, 10, 10, 10];
        let h = entropy(&counts);
        assert!((h - (4.0f64).ln()).abs() < 1e-9);
    }

    #[test]
    fn entropy_of_point_mass_is_zero() {
        assert_eq!(entropy(&[42]), 0.0);
        assert_eq!(entropy(&[]), 0.0);
        assert_eq!(entropy(&[0, 0, 7]), 0.0);
    }

    #[test]
    fn cosine_basic() {
        assert!((cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-6);
        assert!(cosine(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-6);
        assert!((cosine(&[1.0, 1.0], &[-1.0, -1.0]) + 1.0).abs() < 1e-6);
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 2.0]), 0.0);
    }
}
