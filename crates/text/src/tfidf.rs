//! TF-IDF statistics over a corpus of documents.
//!
//! Backs the similarity filter's embedder ([`crate::embed`]) and the
//! feature extraction of the critic classifiers in `cosmo-core`: rare,
//! content-bearing tokens should dominate similarity, while stop-ish tokens
//! ("used", "for", "the") — ubiquitous in knowledge tails — should not.

use crate::hash::FxHashMap;

/// Corpus-level document-frequency statistics with smoothed IDF.
#[derive(Debug, Clone, Default)]
pub struct TfIdf {
    doc_freq: FxHashMap<String, u32>,
    num_docs: u32,
}

impl TfIdf {
    /// Create empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Observe one document given as a token slice; each distinct token's
    /// document frequency is incremented once.
    pub fn observe_doc(&mut self, tokens: &[String]) {
        self.num_docs += 1;
        let mut seen: Vec<&str> = Vec::with_capacity(tokens.len());
        for t in tokens {
            if !seen.contains(&t.as_str()) {
                seen.push(t);
                *self.doc_freq.entry(t.clone()).or_insert(0) += 1;
            }
        }
    }

    /// Train from raw strings.
    pub fn fit(corpus: &[String]) -> Self {
        let mut s = Self::new();
        for doc in corpus {
            let toks = crate::tokenize::tokenize(doc);
            s.observe_doc(&toks);
        }
        s
    }

    /// Number of observed documents.
    pub fn num_docs(&self) -> u32 {
        self.num_docs
    }

    /// Smoothed inverse document frequency:
    /// `ln((1 + N) / (1 + df)) + 1`, always positive.
    pub fn idf(&self, token: &str) -> f32 {
        let df = self.doc_freq.get(token).copied().unwrap_or(0);
        (((1 + self.num_docs) as f32 / (1 + df) as f32).ln()) + 1.0
    }

    /// TF-IDF weights of a document's tokens (raw term frequency × IDF),
    /// returned as `(token, weight)` pairs with duplicates merged.
    pub fn weigh<'a>(&self, tokens: &'a [String]) -> Vec<(&'a str, f32)> {
        let mut tf: FxHashMap<&str, f32> = FxHashMap::default();
        for t in tokens {
            *tf.entry(t.as_str()).or_insert(0.0) += 1.0;
        }
        let mut out: Vec<(&str, f32)> = tf.into_iter().map(|(t, f)| (t, f * self.idf(t))).collect();
        out.sort_by(|a, b| a.0.cmp(b.0));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rare_tokens_have_higher_idf() {
        let corpus: Vec<String> = vec![
            "used for camping".into(),
            "used for hiking".into(),
            "used for swimming".into(),
            "capable of snorkeling".into(),
        ];
        let stats = TfIdf::fit(&corpus);
        assert!(stats.idf("snorkeling") > stats.idf("used"));
        assert!(stats.idf("for") < stats.idf("camping"));
    }

    #[test]
    fn unseen_token_gets_max_idf() {
        let stats = TfIdf::fit(&["a b c".into(), "a b".into()]);
        assert!(stats.idf("zzz") >= stats.idf("c"));
        assert!(stats.idf("zzz") > stats.idf("a"));
    }

    #[test]
    fn idf_always_positive() {
        let docs = vec!["common common".to_string(); 50];
        let stats = TfIdf::fit(&docs);
        assert!(stats.idf("common") > 0.0);
    }

    #[test]
    fn weigh_merges_duplicates() {
        let stats = TfIdf::fit(&["x y".into(), "x z".into()]);
        let toks = crate::tokenize::tokenize("x x y");
        let w = stats.weigh(&toks);
        assert_eq!(w.len(), 2);
        let x = w.iter().find(|(t, _)| *t == "x").unwrap().1;
        let y = w.iter().find(|(t, _)| *t == "y").unwrap().1;
        assert!(x > 0.0 && y > 0.0);
        // x appears twice in the doc; tf doubles its weight relative to its idf
        assert!(x / stats.idf("x") > y / stats.idf("y"));
    }

    #[test]
    fn empty_corpus_is_safe() {
        let stats = TfIdf::new();
        assert_eq!(stats.num_docs(), 0);
        assert!(stats.idf("anything") > 0.0);
    }
}
