//! String-interning vocabulary with frequency counts.
//!
//! Used for n-gram language models, the canonical tail vocabulary of the
//! knowledge graph, and the item/query vocabularies of the downstream
//! models. Interning keeps the hot paths integer-keyed.

use crate::hash::FxHashMap;
use serde::{Deserialize, Serialize};

/// Reserved id for the unknown token.
pub const UNK: u32 = 0;
/// Reserved id for beginning-of-sequence.
pub const BOS: u32 = 1;
/// Reserved id for end-of-sequence.
pub const EOS: u32 = 2;

/// A bidirectional token ↔ id mapping with occurrence counts.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Vocab {
    token_to_id: FxHashMap<String, u32>,
    id_to_token: Vec<String>,
    counts: Vec<u64>,
}

impl Default for Vocab {
    fn default() -> Self {
        Self::new()
    }
}

impl Vocab {
    /// Create a vocabulary pre-populated with the `<unk>`, `<s>`, `</s>`
    /// special tokens at ids [`UNK`], [`BOS`], [`EOS`].
    pub fn new() -> Self {
        let mut v = Vocab {
            token_to_id: FxHashMap::default(),
            id_to_token: Vec::new(),
            counts: Vec::new(),
        };
        for t in ["<unk>", "<s>", "</s>"] {
            v.add(t);
        }
        v
    }

    /// Intern `token`, incrementing its count; returns its id.
    pub fn add(&mut self, token: &str) -> u32 {
        if let Some(&id) = self.token_to_id.get(token) {
            self.counts[id as usize] += 1;
            return id;
        }
        let id = self.id_to_token.len() as u32;
        self.token_to_id.insert(token.to_string(), id);
        self.id_to_token.push(token.to_string());
        self.counts.push(1);
        id
    }

    /// Look up a token; returns [`UNK`] when absent.
    pub fn get(&self, token: &str) -> u32 {
        self.token_to_id.get(token).copied().unwrap_or(UNK)
    }

    /// Look up a token without UNK fallback.
    pub fn try_get(&self, token: &str) -> Option<u32> {
        self.token_to_id.get(token).copied()
    }

    /// The token string for `id`; panics on out-of-range ids.
    pub fn token(&self, id: u32) -> &str {
        &self.id_to_token[id as usize]
    }

    /// Occurrence count of `id`.
    pub fn count(&self, id: u32) -> u64 {
        self.counts[id as usize]
    }

    /// Number of distinct tokens (including the 3 specials).
    pub fn len(&self) -> usize {
        self.id_to_token.len()
    }

    /// True when only the special tokens are present.
    pub fn is_empty(&self) -> bool {
        self.len() <= 3
    }

    /// Encode a token slice to ids (UNK for unknown tokens).
    pub fn encode(&self, tokens: &[String]) -> Vec<u32> {
        tokens.iter().map(|t| self.get(t)).collect()
    }

    /// Encode with BOS/EOS wrapping, as consumed by the n-gram LM.
    pub fn encode_sentence(&self, tokens: &[String]) -> Vec<u32> {
        let mut ids = Vec::with_capacity(tokens.len() + 2);
        ids.push(BOS);
        ids.extend(tokens.iter().map(|t| self.get(t)));
        ids.push(EOS);
        ids
    }

    /// Build a pruned copy keeping tokens with `count >= min_count`
    /// (specials always kept). Ids are reassigned densely.
    pub fn pruned(&self, min_count: u64) -> Vocab {
        let mut v = Vocab::new();
        for (id, tok) in self.id_to_token.iter().enumerate().skip(3) {
            if self.counts[id] >= min_count {
                let new_id = v.add(tok);
                v.counts[new_id as usize] = self.counts[id];
            }
        }
        v
    }

    /// Iterate `(id, token, count)` over non-special tokens.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str, u64)> + '_ {
        self.id_to_token
            .iter()
            .enumerate()
            .skip(3)
            .map(move |(i, t)| (i as u32, t.as_str(), self.counts[i]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specials_preexist() {
        let v = Vocab::new();
        assert_eq!(v.len(), 3);
        assert_eq!(v.get("<unk>"), UNK);
        assert_eq!(v.get("<s>"), BOS);
        assert_eq!(v.get("</s>"), EOS);
    }

    #[test]
    fn add_and_count() {
        let mut v = Vocab::new();
        let a = v.add("camping");
        let b = v.add("tent");
        let a2 = v.add("camping");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(v.count(a), 2);
        assert_eq!(v.count(b), 1);
        assert_eq!(v.token(a), "camping");
    }

    #[test]
    fn unknown_maps_to_unk() {
        let v = Vocab::new();
        assert_eq!(v.get("missing"), UNK);
        assert_eq!(v.try_get("missing"), None);
    }

    #[test]
    fn encode_sentence_wraps() {
        let mut v = Vocab::new();
        v.add("hello");
        let ids = v.encode_sentence(&["hello".into(), "world".into()]);
        assert_eq!(ids[0], BOS);
        assert_eq!(*ids.last().unwrap(), EOS);
        assert_eq!(ids[2], UNK); // "world" unseen
    }

    #[test]
    fn pruning_keeps_frequent() {
        let mut v = Vocab::new();
        for _ in 0..5 {
            v.add("common");
        }
        v.add("rare");
        let p = v.pruned(2);
        assert!(p.try_get("common").is_some());
        assert!(p.try_get("rare").is_none());
        assert_eq!(p.count(p.get("common")), 5);
    }

    #[test]
    fn clone_preserves_mapping() {
        let mut v = Vocab::new();
        v.add("alpha");
        v.add("beta");
        let w = v.clone();
        assert_eq!(w.get("alpha"), v.get("alpha"));
        assert_eq!(w.get("beta"), v.get("beta"));
        assert_eq!(w.len(), v.len());
    }
}
