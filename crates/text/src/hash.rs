//! A fast, non-cryptographic hasher (FxHash-style) and map/set aliases.
//!
//! The standard library's SipHash is DoS-resistant but slow for the short
//! string and integer keys that dominate this codebase (token ids, node ids,
//! n-gram keys). Since all inputs are locally generated, HashDoS is not a
//! concern, so we use the multiply-xor scheme popularised by the Rust
//! compiler's `FxHasher`. Implemented from scratch because third-party hash
//! crates are not in the approved offline dependency set.

use std::hash::{BuildHasherDefault, Hasher};

const SEED64: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-xor hasher; byte-order independent on a given platform, stable
/// across runs (no random state), which also keeps experiments reproducible.
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED64);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let word = u64::from_le_bytes(chunk.try_into().unwrap());
            self.add_to_hash(word);
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            // Mix in the remainder length so "a" and "a\0" differ.
            buf[7] = rem.len() as u8;
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<K> = std::collections::HashSet<K, BuildHasherDefault<FxHasher>>;

/// Hash arbitrary bytes to a `u64` with [`FxHasher`] (one-shot convenience).
#[inline]
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = FxHasher::default();
    h.write(bytes);
    h.finish()
}

/// Hash a string together with a small integer "namespace" so that the same
/// token hashed for different feature spaces (e.g. unigram vs bigram) lands
/// in different buckets.
#[inline]
pub fn hash_str_ns(s: &str, namespace: u32) -> u64 {
    hash_bytes_ns(s.as_bytes(), namespace)
}

/// Byte-slice variant of [`hash_str_ns`]; produces identical hashes for the
/// same UTF-8 bytes, letting hot paths hash stack-encoded char windows
/// without materialising a `String` first.
#[inline]
pub fn hash_bytes_ns(bytes: &[u8], namespace: u32) -> u64 {
    let mut h = FxHasher::default();
    h.write_u32(namespace);
    h.write(bytes);
    h.finish()
}

/// Combine two pre-computed hashes under a namespace. This is the n-gram
/// fast path: a bigram feature key is derived from the two token hashes
/// directly instead of concatenating the tokens into a fresh `String` and
/// re-hashing its bytes.
#[inline]
pub fn hash_pair_ns(a: u64, b: u64, namespace: u32) -> u64 {
    let mut h = FxHasher::default();
    h.write_u32(namespace);
    h.write_u64(a);
    h.write_u64(b);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_hashers() {
        assert_eq!(hash_bytes(b"hello world"), hash_bytes(b"hello world"));
        assert_ne!(hash_bytes(b"hello"), hash_bytes(b"hellp"));
    }

    #[test]
    fn trailing_zero_bytes_differ() {
        assert_ne!(hash_bytes(b"a"), hash_bytes(b"a\0"));
        assert_ne!(hash_bytes(b""), hash_bytes(b"\0"));
    }

    #[test]
    fn namespaces_separate_feature_spaces() {
        assert_ne!(hash_str_ns("token", 0), hash_str_ns("token", 1));
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<String, u32> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert(format!("key-{i}"), i);
        }
        for i in 0..1000u32 {
            assert_eq!(m.get(&format!("key-{i}")), Some(&i));
        }
    }
}
