//! Lightweight word tokenizer.
//!
//! All text in the synthetic world is ASCII-ish English, so tokenisation is:
//! lowercase, split into maximal runs of alphanumeric characters (keeping
//! internal apostrophes and hyphens, as in `cat's` or `4-person`), dropping
//! everything else. This matches what the paper's filters need: token
//! streams for n-gram LM scoring, duplicate checks and embeddings.

/// Returns `true` for characters that may appear inside a token.
#[inline]
fn is_token_char(c: char) -> bool {
    c.is_alphanumeric()
}

/// Returns `true` for characters that join two token chars (kept only when
/// surrounded by token characters on both sides).
#[inline]
fn is_joiner(c: char) -> bool {
    c == '\'' || c == '-'
}

/// Tokenize `text` into lowercase tokens represented as byte spans into a
/// shared lowercase buffer: each `(start, end)` in `spans` indexes
/// `lower[start..end]`. Appends to both buffers, so both can be reused
/// across calls without reallocating (clear them between unrelated texts).
///
/// This is the zero-allocation core; [`tokenize_into`] and [`tokenize`] are
/// wrappers that materialise owned `String`s from the spans, so the token
/// *text* produced by every path is identical by construction.
pub fn tokenize_spans(text: &str, lower: &mut String, spans: &mut Vec<(u32, u32)>) {
    let mut start = lower.len() as u32;
    let mut it = text.chars().peekable();
    while let Some(c) = it.next() {
        if is_token_char(c) {
            for lc in c.to_lowercase() {
                lower.push(lc);
            }
        } else if is_joiner(c)
            && lower.len() as u32 > start
            && it.peek().is_some_and(|&next| is_token_char(next))
        {
            lower.push(c);
        } else if lower.len() as u32 > start {
            spans.push((start, lower.len() as u32));
            start = lower.len() as u32;
        }
    }
    if lower.len() as u32 > start {
        spans.push((start, lower.len() as u32));
    }
}

/// Tokenize `text` into lowercase word tokens, appending into `out`.
///
/// Reusing the output buffer avoids per-call allocations on hot paths
/// (the coarse filter tokenises millions of candidate strings).
pub fn tokenize_into(text: &str, out: &mut Vec<String>) {
    let mut lower = String::new();
    let mut spans = Vec::new();
    tokenize_spans(text, &mut lower, &mut spans);
    out.extend(
        spans
            .iter()
            .map(|&(s, e)| lower[s as usize..e as usize].to_string()),
    );
}

/// Tokenize `text` into a fresh vector. See [`tokenize_into`].
pub fn tokenize(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    tokenize_into(text, &mut out);
    out
}

/// Join tokens back into a canonical single-space string.
pub fn detokenize(tokens: &[String]) -> String {
    tokens.join(" ")
}

/// Produce character n-grams (as `(start, len)` byte-range strings) of a
/// token, used by the hashed embedder for robustness to morphology
/// ("camping" vs "camp"). Boundaries are marked with `^`/`$`.
pub fn char_ngrams(token: &str, n: usize) -> Vec<String> {
    let marked: Vec<char> = std::iter::once('^')
        .chain(token.chars())
        .chain(std::iter::once('$'))
        .collect();
    if marked.len() < n {
        return vec![marked.iter().collect()];
    }
    marked.windows(n).map(|w| w.iter().collect()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_tokenization() {
        assert_eq!(
            tokenize("Camping Air-Mattress, 4-person!"),
            vec!["camping", "air-mattress", "4-person"]
        );
    }

    #[test]
    fn apostrophes_kept_inside() {
        assert_eq!(tokenize("the cat's toy"), vec!["the", "cat's", "toy"]);
    }

    #[test]
    fn dangling_joiners_dropped() {
        assert_eq!(tokenize("- hello -world '"), vec!["hello", "world"]);
        assert_eq!(tokenize("trailing-"), vec!["trailing"]);
    }

    #[test]
    fn empty_and_punct_only() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("!!! ... ???").is_empty());
    }

    #[test]
    fn reuse_buffer() {
        let mut buf = Vec::new();
        tokenize_into("one two", &mut buf);
        tokenize_into("three", &mut buf);
        assert_eq!(buf, vec!["one", "two", "three"]);
    }

    #[test]
    fn spans_match_owned_tokens() {
        for text in [
            "Camping Air-Mattress, 4-person!",
            "the cat's toy",
            "- hello -world '",
            "trailing-",
            "",
            "!!! ... ???",
            "ÜBER-Größe straße",
            "a-b-c--d",
        ] {
            let mut lower = String::new();
            let mut spans = Vec::new();
            tokenize_spans(text, &mut lower, &mut spans);
            let from_spans: Vec<&str> = spans
                .iter()
                .map(|&(s, e)| &lower[s as usize..e as usize])
                .collect();
            assert_eq!(from_spans, tokenize(text), "text={text:?}");
        }
    }

    #[test]
    fn spans_append_across_calls() {
        let mut lower = String::new();
        let mut spans = Vec::new();
        tokenize_spans("one two", &mut lower, &mut spans);
        tokenize_spans("three", &mut lower, &mut spans);
        let toks: Vec<&str> = spans
            .iter()
            .map(|&(s, e)| &lower[s as usize..e as usize])
            .collect();
        assert_eq!(toks, vec!["one", "two", "three"]);
    }

    #[test]
    fn char_ngrams_short_token() {
        assert_eq!(char_ngrams("a", 3), vec!["^a$"]);
    }

    #[test]
    fn char_ngrams_basic() {
        assert_eq!(char_ngrams("cat", 3), vec!["^ca", "cat", "at$"]);
    }

    #[test]
    fn detokenize_roundtrip() {
        let toks = tokenize("used for walking the dog");
        assert_eq!(detokenize(&toks), "used for walking the dog");
    }
}
