//! String distance metrics used by the coarse-grained filter (§3.3.1):
//! generations that are "exactly the same as query, product type or product
//! title (or edit distance less than the threshold)" are dropped.

/// Levenshtein edit distance between two strings, computed over characters
/// with the classic two-row dynamic program (O(|a|·|b|) time, O(min) space).
pub fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let (short, long) = if a.len() <= b.len() {
        (&a, &b)
    } else {
        (&b, &a)
    };
    if short.is_empty() {
        return long.len();
    }
    let mut prev: Vec<usize> = (0..=short.len()).collect();
    let mut cur: Vec<usize> = vec![0; short.len() + 1];
    for (i, &lc) in long.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &sc) in short.iter().enumerate() {
            let cost = usize::from(lc != sc);
            cur[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[short.len()]
}

/// Edit distance with an early-exit bound: returns `None` when the distance
/// certainly exceeds `max`. Useful on the hot filter path where we only
/// care whether two strings are within a small threshold.
pub fn edit_distance_bounded(a: &str, b: &str, max: usize) -> Option<usize> {
    let la = a.chars().count();
    let lb = b.chars().count();
    if la.abs_diff(lb) > max {
        return None;
    }
    let d = edit_distance(a, b);
    (d <= max).then_some(d)
}

/// Edit distance normalised by the longer string's length, in `[0, 1]`.
pub fn normalized_edit_distance(a: &str, b: &str) -> f64 {
    let la = a.chars().count();
    let lb = b.chars().count();
    let m = la.max(lb);
    if m == 0 {
        return 0.0;
    }
    edit_distance(a, b) as f64 / m as f64
}

/// Jaccard similarity of the token sets of two strings.
pub fn jaccard(a_tokens: &[String], b_tokens: &[String]) -> f64 {
    use crate::hash::FxHashSet;
    if a_tokens.is_empty() && b_tokens.is_empty() {
        return 1.0;
    }
    let sa: FxHashSet<&str> = a_tokens.iter().map(|s| s.as_str()).collect();
    let sb: FxHashSet<&str> = b_tokens.iter().map(|s| s.as_str()).collect();
    let inter = sa.intersection(&sb).count();
    let union = sa.union(&sb).count();
    if union == 0 {
        1.0
    } else {
        inter as f64 / union as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenize::tokenize;

    #[test]
    fn identical_strings() {
        assert_eq!(edit_distance("camping tent", "camping tent"), 0);
    }

    #[test]
    fn classic_examples() {
        assert_eq!(edit_distance("kitten", "sitting"), 3);
        assert_eq!(edit_distance("", "abc"), 3);
        assert_eq!(edit_distance("abc", ""), 3);
        assert_eq!(edit_distance("flaw", "lawn"), 2);
    }

    #[test]
    fn symmetric() {
        assert_eq!(
            edit_distance("air mattress", "mattress air"),
            edit_distance("mattress air", "air mattress")
        );
    }

    #[test]
    fn bounded_early_exit() {
        assert_eq!(
            edit_distance_bounded("short", "a much longer string", 3),
            None
        );
        assert_eq!(edit_distance_bounded("kitten", "sitting", 3), Some(3));
        assert_eq!(edit_distance_bounded("kitten", "sitting", 2), None);
    }

    #[test]
    fn normalized_range() {
        assert_eq!(normalized_edit_distance("", ""), 0.0);
        assert_eq!(normalized_edit_distance("abc", "abc"), 0.0);
        assert_eq!(normalized_edit_distance("abc", "xyz"), 1.0);
    }

    #[test]
    fn jaccard_basic() {
        let a = tokenize("used for walking the dog");
        let b = tokenize("walking the dog");
        let j = jaccard(&a, &b);
        assert!((j - 3.0 / 5.0).abs() < 1e-9);
        assert_eq!(jaccard(&a, &a), 1.0);
        assert_eq!(jaccard(&[], &[]), 1.0);
    }
}
