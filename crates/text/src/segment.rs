//! Sentence segmentation.
//!
//! §3.3.1 of the paper: "We first use the sentence segmentation tool from
//! nltk to extract the first sentence from generation." The teacher model
//! produces free-running continuations ("1. they are capable of ... 2. ...")
//! and only the first complete sentence/item is a knowledge candidate.
//!
//! This is a pragmatic rule-based segmenter: it splits on `.`, `!`, `?` and
//! newline, is aware of a small abbreviation list and of enumerated-list
//! markers ("1.", "2)"), which are exactly the patterns the QA prompt of
//! Figure 3 induces.

/// Abbreviations after which a period does not end a sentence.
const ABBREVIATIONS: &[&str] = &[
    "mr", "mrs", "ms", "dr", "st", "etc", "e.g", "i.e", "vs", "oz", "lb", "ft", "in",
];

/// Split `text` into sentences.
pub fn split_sentences(text: &str) -> Vec<String> {
    let mut sentences = Vec::new();
    let mut cur = String::new();
    let chars: Vec<char> = text.chars().collect();
    let n = chars.len();
    let mut i = 0;
    while i < n {
        let c = chars[i];
        if c == '\n' {
            push_sentence(&mut sentences, &mut cur);
            i += 1;
            continue;
        }
        cur.push(c);
        if c == '!' || c == '?' {
            push_sentence(&mut sentences, &mut cur);
            i += 1;
            continue;
        }
        if c == '.' {
            // Enumerated list marker like "1." at sentence start: not an end.
            let trimmed = cur.trim_start();
            let body = &trimmed[..trimmed.len() - 1];
            let is_enum_marker = !body.is_empty() && body.chars().all(|d| d.is_ascii_digit());
            let last_word = body
                .rsplit(|ch: char| ch.is_whitespace())
                .next()
                .unwrap_or("")
                .trim_matches(|ch: char| !ch.is_alphanumeric() && ch != '.')
                .to_lowercase();
            let is_abbrev = ABBREVIATIONS.contains(&last_word.as_str())
                || (last_word.len() == 1 && last_word.chars().all(|ch| ch.is_alphabetic()));
            let next_is_digit = chars.get(i + 1).is_some_and(|ch| ch.is_ascii_digit());
            if !is_enum_marker && !is_abbrev && !next_is_digit {
                push_sentence(&mut sentences, &mut cur);
            }
        }
        i += 1;
    }
    push_sentence(&mut sentences, &mut cur);
    sentences
}

fn push_sentence(out: &mut Vec<String>, cur: &mut String) {
    let s = cur.trim();
    if !s.is_empty() {
        out.push(s.to_string());
    }
    cur.clear();
}

/// Extract the first sentence of a generation, stripping a leading
/// enumerated-list marker ("1.", "2)", "-"). Returns `None` when the text
/// contains no sentence material at all.
pub fn first_sentence(text: &str) -> Option<String> {
    let sentences = split_sentences(text);
    let first = sentences.into_iter().next()?;
    Some(strip_list_marker(&first).to_string())
}

/// Remove a leading list marker such as "1.", "23)", "-", "*".
pub fn strip_list_marker(s: &str) -> &str {
    let t = s.trim_start();
    let bytes = t.as_bytes();
    let mut i = 0;
    while i < bytes.len() && bytes[i].is_ascii_digit() {
        i += 1;
    }
    if i > 0 && i < bytes.len() && (bytes[i] == b'.' || bytes[i] == b')') {
        return t[i + 1..].trim_start();
    }
    if let Some(rest) = t.strip_prefix('-').or_else(|| t.strip_prefix('*')) {
        return rest.trim_start();
    }
    t
}

/// Heuristic completeness check: a candidate explanation must end with a
/// sentence terminator or look like a full clause (≥ 2 tokens, not ending
/// in a function word). Incomplete continuations such as "they are capable
/// of" are the main failure mode of autoregressive truncation.
pub fn looks_complete(sentence: &str) -> bool {
    let toks = crate::tokenize::tokenize(sentence);
    if toks.len() < 2 {
        return false;
    }
    const DANGLING: &[&str] = &[
        "a", "an", "the", "of", "for", "to", "and", "or", "with", "in", "on", "at", "by", "is",
        "are", "be", "being", "their", "its", "his", "her", "very", "so", "because", "that",
        "which", "who", "can", "could", "will", "would", "as",
    ];
    let last = toks.last().unwrap().as_str();
    !DANGLING.contains(&last)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_on_terminators() {
        let s = split_sentences("First one. Second one! Third?");
        assert_eq!(s, vec!["First one.", "Second one!", "Third?"]);
    }

    #[test]
    fn keeps_abbreviations() {
        let s = split_sentences("It weighs 3 oz. roughly speaking.");
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn decimal_numbers_not_split() {
        let s = split_sentences("It is 2.5 inches long.");
        assert_eq!(s, vec!["It is 2.5 inches long."]);
    }

    #[test]
    fn list_markers_not_sentence_ends() {
        let s = split_sentences("1. they are used for camping. 2. they are durable.");
        assert_eq!(s[0], "1. they are used for camping.");
    }

    #[test]
    fn first_sentence_strips_marker() {
        assert_eq!(
            first_sentence("1. they are used for camping. 2. more.").as_deref(),
            Some("they are used for camping.")
        );
        assert_eq!(
            first_sentence("- bullet item. next.").as_deref(),
            Some("bullet item.")
        );
        assert_eq!(first_sentence("   \n \n"), None);
    }

    #[test]
    fn newline_separates() {
        let s = split_sentences("line one\nline two");
        assert_eq!(s, vec!["line one", "line two"]);
    }

    #[test]
    fn completeness_heuristic() {
        assert!(looks_complete("they are used for camping"));
        assert!(!looks_complete("they are capable of"));
        assert!(!looks_complete("because"));
        assert!(!looks_complete("used for the"));
    }
}
