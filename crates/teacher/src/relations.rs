//! Data-driven relation discovery (§3.1, Table 2).
//!
//! The paper cannot align millions of generations to ConceptNet relations,
//! so it mines frequent predicate patterns from raw generations — "the most
//! common pattern is 'the product is capable of being used \[Prep\]'" — and
//! manually canonicalises them into the 15 relations of Table 2. This
//! module implements that mining: extract the predicate span of each raw
//! generation (auxiliary + participle + preposition), count pattern
//! frequencies, and map each frequent pattern to its canonical relation
//! and tail type.

use crate::generate::Candidate;
use cosmo_kg::{Relation, TailType};
use cosmo_text::{tokenize, FxHashMap};

/// A mined predicate pattern with its frequency and canonical relation.
#[derive(Debug, Clone, PartialEq)]
pub struct MinedPattern {
    /// The surface pattern ("used for", "capable of", …).
    pub pattern: String,
    /// Occurrences across the generation corpus.
    pub count: u64,
    /// Canonicalised relation.
    pub relation: Relation,
    /// Tail semantic type.
    pub tail_type: TailType,
}

/// Known predicate surface patterns in priority order (longest match wins).
const PATTERNS: &[(&str, Relation)] = &[
    ("capable of", Relation::CapableOf),
    ("interested in", Relation::XInterestedIn),
    ("wanting to", Relation::XWant),
    ("a kind of", Relation::IsA),
    ("bought by", Relation::XIsA),
    ("used with", Relation::UsedWith),
    ("used by", Relation::UsedBy),
    ("used as", Relation::UsedAs),
    ("used on", Relation::UsedOn),
    ("used in", Relation::UsedInLoc),
    ("used to", Relation::UsedTo),
    ("used for", Relation::UsedForFunc),
    ("is a", Relation::IsA),
];

/// A parsed knowledge candidate: the tail text with its relation hint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Parsed {
    /// Canonicalised tail phrase (may be empty for truncated generations).
    pub tail: String,
    /// Relation implied by the detected predicate pattern, if any.
    pub relation_hint: Option<Relation>,
}

/// Parse a raw generation into `(tail, relation hint)`: first sentence,
/// list marker stripped, predicate pattern located and removed, remainder
/// canonicalised. This is the pipeline's structured view of a generation
/// (§3.1: "generations with different prepositions represent different
/// tail types, which can be further canonicalized").
pub fn parse_candidate(raw: &str) -> Option<Parsed> {
    let sentence = crate::prompts::parse_generation(raw)?;
    let joined = tokenize(&sentence).join(" ");
    for (p, r) in PATTERNS {
        if let Some(pos) = joined.find(p) {
            let tail = joined[pos + p.len()..].trim();
            return Some(Parsed {
                tail: cosmo_text::canonicalize_tail(tail),
                relation_hint: Some(*r),
            });
        }
    }
    Some(Parsed {
        tail: cosmo_text::canonicalize_tail(&joined),
        relation_hint: None,
    })
}

/// Extract the predicate pattern from a raw generation (lowercased bigram/
/// trigram around "used"/"capable"/…). Returns `None` when no known
/// predicate shape appears.
pub fn extract_pattern(raw: &str) -> Option<&'static str> {
    let toks = tokenize(raw);
    let joined = toks.join(" ");
    PATTERNS
        .iter()
        .find(|(p, _)| joined.contains(p))
        .map(|(p, _)| *p)
}

/// Canonical relation for a pattern.
pub fn canonical_relation(pattern: &str) -> Option<Relation> {
    PATTERNS
        .iter()
        .find(|(p, _)| *p == pattern)
        .map(|(_, r)| *r)
}

/// Mine the relation table from a generation corpus: frequency-count
/// predicate patterns and return them sorted by count (Table 2's rows
/// emerge as the frequent patterns, seeded from the four ConceptNet
/// relations `usedFor, capableOf, isA, cause`).
pub fn mine_relations(candidates: &[Candidate]) -> Vec<MinedPattern> {
    let mut counts: FxHashMap<&'static str, u64> = FxHashMap::default();
    for c in candidates {
        if let Some(p) = extract_pattern(&c.raw) {
            *counts.entry(p).or_insert(0) += 1;
        }
    }
    let mut out: Vec<MinedPattern> = counts
        .into_iter()
        .map(|(pattern, count)| {
            let relation = canonical_relation(pattern).expect("pattern table is closed");
            MinedPattern {
                pattern: pattern.to_string(),
                count,
                relation,
                tail_type: relation.tail_type(),
            }
        })
        .collect();
    out.sort_by(|a, b| b.count.cmp(&a.count).then(a.pattern.cmp(&b.pattern)));
    out
}

/// Render the mined Table 2 (relation, tail type, example).
pub fn render_table2(patterns: &[MinedPattern]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<16} {:<24} {:<18} {:>10}\n",
        "Relation Type", "Tail Type", "Example", "Mined n"
    ));
    // one row per canonical relation, in Table 2 order, with mined counts
    for rel in Relation::ALL {
        let count: u64 = patterns
            .iter()
            .filter(|p| p.relation == rel)
            .map(|p| p.count)
            .sum();
        out.push_str(&format!(
            "{:<16} {:<24} {:<18} {:>10}\n",
            rel.name(),
            rel.tail_type().name(),
            rel.example(),
            count
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{Teacher, TeacherConfig};
    use cosmo_synth::{BehaviorConfig, BehaviorLog, World, WorldConfig};

    #[test]
    fn pattern_extraction_longest_first() {
        assert_eq!(
            extract_pattern("1. they are capable of being used for storage."),
            Some("capable of"),
            "'capable of' must win over 'used for'"
        );
        assert_eq!(
            extract_pattern("1. it is used with a tripod."),
            Some("used with")
        );
        assert_eq!(extract_pattern("no predicate here"), None);
    }

    #[test]
    fn mining_covers_most_relations() {
        let w = World::generate(WorldConfig::tiny(21));
        let log = BehaviorLog::generate(&w, &BehaviorConfig::tiny(22));
        let mut teacher = Teacher::new(&w, TeacherConfig::default());
        let mut cands = Vec::new();
        for sb in log.search_buys.iter().take(800) {
            cands.push(teacher.generate_search_buy(sb.query, sb.product));
        }
        for cb in log.cobuys.iter().take(800) {
            cands.push(teacher.generate_cobuy(cb.p1, cb.p2));
        }
        let mined = mine_relations(&cands);
        assert!(mined.len() >= 6, "only {} patterns mined", mined.len());
        // counts sorted descending
        for w in mined.windows(2) {
            assert!(w[0].count >= w[1].count);
        }
        let table = render_table2(&mined);
        assert!(table.contains("USED_FOR_FUNC"));
        assert!(table.contains("xWant"));
    }

    #[test]
    fn canonical_relation_is_total_over_patterns() {
        for (p, _) in PATTERNS {
            assert!(canonical_relation(p).is_some());
        }
        assert_eq!(canonical_relation("no such"), None);
    }
}
