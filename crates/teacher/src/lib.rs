//! # cosmo-teacher
//!
//! The simulated teacher LLM (substituting for OPT-30B/175B on 16×A100,
//! §3.2.2) plus the QA prompt templates of Figure 3, the data-driven
//! relation discovery of §3.1/Table 2, and the simulated inference-cost
//! model used by the efficiency comparison against COSMO-LM.
//!
//! The teacher emits knowledge-candidate continuations drawn from the
//! synthetic world's ground-truth intent profiles mixed with a calibrated
//! noise model (generic tails, paraphrases, hallucinations, truncations,
//! one-sided co-buy intents). The noise mixture is tuned so that the
//! *annotated* pool reproduces Table 4's plausibility/typicality ratios.

#![forbid(unsafe_code)]

pub mod cost;
pub mod generate;
pub mod prompts;
pub mod relations;

pub use cost::{CostMeter, TeacherModel};
pub use generate::{
    relation_from_text, BehaviorRef, Candidate, Provenance, QualityMixture, Teacher, TeacherConfig,
};
pub use prompts::{cobuy_prompt, parse_generation, search_buy_prompt, Prompt};
pub use relations::{mine_relations, parse_candidate, render_table2, MinedPattern, Parsed};
