//! The simulated teacher LLM.
//!
//! The paper harvests knowledge candidates from OPT-30B/175B hosted on
//! 16×A100 (§3.2.2). We cannot run those models offline, so [`Teacher`]
//! simulates the *distribution of their outputs*: given the same QA prompt,
//! it emits a continuation drawn from the world's ground-truth intent
//! profiles mixed with a calibrated noise model — the exact failure modes
//! the paper describes:
//!
//! * **generic** tails ("they like them") — "neither faithful nor helpful" (§1);
//! * **paraphrases** of the behaviour context — what the similarity filter
//!   removes (§3.3.1);
//! * **one-sided co-buy intents** — knowledge true of only one of the two
//!   products, "making generations implausible" (§3.4);
//! * **implausible/hallucinated** tails;
//! * **incomplete** truncations — what the perplexity filter removes.
//!
//! Each candidate carries a hidden [`Provenance`] used *only* by
//! evaluation code to score the pipeline; the pipeline itself never reads it.

use crate::cost::{CostMeter, TeacherModel};
use crate::prompts::{cobuy_prompt, search_buy_prompt};
use cosmo_kg::{BehaviorKind, Relation};
use cosmo_synth::{DomainId, IntentId, ProductId, QueryId, World};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The behaviour a candidate explains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BehaviorRef {
    /// `(query, product)`.
    SearchBuy(QueryId, ProductId),
    /// `(product, product)`.
    CoBuy(ProductId, ProductId),
}

impl BehaviorRef {
    /// The behaviour kind tag.
    pub fn kind(self) -> BehaviorKind {
        match self {
            BehaviorRef::SearchBuy(..) => BehaviorKind::SearchBuy,
            BehaviorRef::CoBuy(..) => BehaviorKind::CoBuy,
        }
    }
}

/// Hidden generation provenance — **evaluation only**. The refinement
/// pipeline must treat candidates as opaque text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Provenance {
    /// A typical ground-truth intent (search-buy) or an intent shared by
    /// both products (co-buy).
    Typical,
    /// In-profile but low-weight intent.
    PlausibleAtypical,
    /// Intent typical for only one of two co-bought products.
    OneSided,
    /// Generic platitude.
    Generic,
    /// Paraphrase of the query/product surface form.
    Paraphrase,
    /// Hallucinated / out-of-profile tail.
    Implausible,
    /// Truncated, incomplete sentence.
    Incomplete,
}

/// A raw knowledge candidate produced by the teacher.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// The behaviour pair it explains.
    pub behavior: BehaviorRef,
    /// The relation the prompt asked about.
    pub relation: Relation,
    /// Raw continuation text (list marker + sentence), pre-parsing.
    pub raw: String,
    /// Product category of the behaviour.
    pub domain: DomainId,
    /// Hidden ground-truth provenance (evaluation only).
    pub provenance: Provenance,
}

/// Quality mixture of the teacher's generations (probabilities; need not
/// sum to 1 — they are normalised at sampling time).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QualityMixture {
    /// Typical knowledge.
    pub typical: f64,
    /// Plausible but atypical knowledge.
    pub plausible_atypical: f64,
    /// One-sided co-buy knowledge (ignored for search-buy).
    pub one_sided: f64,
    /// Generic platitudes.
    pub generic: f64,
    /// Context paraphrases.
    pub paraphrase: f64,
    /// Hallucinations.
    pub implausible: f64,
    /// Truncations.
    pub incomplete: f64,
}

impl QualityMixture {
    /// Calibrated search-buy mixture: after coarse filtering (which removes
    /// most generic/paraphrase/incomplete mass) the annotated pool lands
    /// near Table 4's ≈35% typicality.
    pub fn search_buy_default() -> Self {
        QualityMixture {
            typical: 0.25,
            plausible_atypical: 0.27,
            one_sided: 0.0,
            generic: 0.12,
            paraphrase: 0.10,
            implausible: 0.18,
            incomplete: 0.08,
        }
    }

    /// Calibrated co-buy mixture: dominated by one-sided generations,
    /// which the oracle judges implausible for the *pair* (§3.4), driving
    /// the "notably low" co-buy typicality of Table 4.
    pub fn cobuy_default() -> Self {
        QualityMixture {
            typical: 0.06,
            plausible_atypical: 0.10,
            one_sided: 0.44,
            generic: 0.12,
            paraphrase: 0.08,
            implausible: 0.12,
            incomplete: 0.08,
        }
    }

    fn sample(&self, rng: &mut impl Rng, cobuy: bool) -> Provenance {
        let weights = [
            (Provenance::Typical, self.typical),
            (Provenance::PlausibleAtypical, self.plausible_atypical),
            (
                Provenance::OneSided,
                if cobuy { self.one_sided } else { 0.0 },
            ),
            (Provenance::Generic, self.generic),
            (Provenance::Paraphrase, self.paraphrase),
            (Provenance::Implausible, self.implausible),
            (Provenance::Incomplete, self.incomplete),
        ];
        let total: f64 = weights.iter().map(|(_, w)| w).sum();
        let mut x = rng.gen_range(0.0..total);
        for (p, w) in weights {
            if x < w {
                return p;
            }
            x -= w;
        }
        Provenance::Implausible
    }
}

/// Teacher configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TeacherConfig {
    /// RNG seed.
    pub seed: u64,
    /// Which simulated model is hosted.
    pub model: TeacherModel,
    /// Search-buy quality mixture.
    pub search_buy_mixture: QualityMixture,
    /// Co-buy quality mixture.
    pub cobuy_mixture: QualityMixture,
}

impl Default for TeacherConfig {
    fn default() -> Self {
        TeacherConfig {
            seed: 0x7EAC_4E12,
            model: TeacherModel::Opt30b,
            search_buy_mixture: QualityMixture::search_buy_default(),
            cobuy_mixture: QualityMixture::cobuy_default(),
        }
    }
}

impl TeacherConfig {
    /// Deterministic per-candidate seed derived from `(seed, behaviour
    /// index, generation index)`. Tasks seeded this way are independent of
    /// generation *order*, which is what lets the pipeline fan candidate
    /// generation out across threads and still produce byte-identical
    /// output (see [`Teacher::for_task`]).
    pub fn task_seed(&self, behavior_idx: u64, gen_idx: u64) -> u64 {
        let mut h = self.seed ^ 0x9E37_79B9_7F4A_7C15;
        h = mix64(h ^ mix64(behavior_idx.wrapping_add(1)));
        mix64(h ^ mix64(gen_idx.wrapping_add(0x5851_F42D_4C95_7F2D)))
    }
}

/// splitmix64 finalizer: a cheap, well-mixed 64-bit permutation.
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The simulated teacher LLM.
pub struct Teacher<'w> {
    world: &'w World,
    config: TeacherConfig,
    rng: StdRng,
    /// Accumulates simulated inference cost (FLOPs, latency).
    pub meter: CostMeter,
}

impl<'w> Teacher<'w> {
    /// Host a simulated model over a world.
    pub fn new(world: &'w World, config: TeacherConfig) -> Self {
        let rng = StdRng::seed_from_u64(config.seed);
        let meter = CostMeter::new(config.model);
        Teacher {
            world,
            config,
            rng,
            meter,
        }
    }

    /// A teacher seeded for one generation task: candidate `gen_idx` of
    /// behaviour `behavior_idx`. Unlike [`Teacher::new`] (one shared RNG
    /// stream, order-dependent), every task draws from its own stream
    /// derived via [`TeacherConfig::task_seed`], so a batch of tasks can
    /// be generated in any order — or concurrently — with identical
    /// results.
    pub fn for_task(
        world: &'w World,
        config: TeacherConfig,
        behavior_idx: u64,
        gen_idx: u64,
    ) -> Self {
        let rng = StdRng::seed_from_u64(config.task_seed(behavior_idx, gen_idx));
        let meter = CostMeter::new(config.model);
        Teacher {
            world,
            config,
            rng,
            meter,
        }
    }

    /// Relations to prompt for a behaviour (the paper prompts the four
    /// seed-derived relation groups; we rotate through all 15 weighted
    /// towards the function relations).
    fn pick_relation(&mut self, domain: DomainId) -> Relation {
        // function relations are prompted most often
        let r: f64 = self.rng.gen();
        if r < 0.45 {
            *[
                Relation::UsedForFunc,
                Relation::CapableOf,
                Relation::UsedTo,
                Relation::UsedForEve,
            ]
            .choose(&mut self.rng)
            .unwrap()
        } else {
            let _ = domain;
            *Relation::ALL.choose(&mut self.rng).unwrap()
        }
    }

    /// Generate one candidate for a search-buy behaviour.
    pub fn generate_search_buy(&mut self, q: QueryId, p: ProductId) -> Candidate {
        let domain = self.world.ptype_of(p).domain;
        let relation = self.pick_relation(domain);
        let prompt = search_buy_prompt(
            &self.world.query(q).text,
            &self.world.product(p).title,
            relation,
        );
        let mixture = self.config.search_buy_mixture.clone();
        let provenance = mixture.sample(&mut self.rng, false);
        let (raw, relation) = self.render(provenance, relation, BehaviorRef::SearchBuy(q, p));
        self.meter.record_generation(&prompt.text, &raw);
        Candidate {
            behavior: BehaviorRef::SearchBuy(q, p),
            relation,
            raw,
            domain,
            provenance,
        }
    }

    /// Generate one candidate for a co-buy behaviour.
    pub fn generate_cobuy(&mut self, p1: ProductId, p2: ProductId) -> Candidate {
        let domain = self.world.ptype_of(p1).domain;
        let relation = self.pick_relation(domain);
        let prompt = cobuy_prompt(
            &self.world.product(p1).title,
            &self.world.product(p2).title,
            relation,
        );
        let mixture = self.config.cobuy_mixture.clone();
        let provenance = mixture.sample(&mut self.rng, true);
        let (raw, relation) = self.render(provenance, relation, BehaviorRef::CoBuy(p1, p2));
        self.meter.record_generation(&prompt.text, &raw);
        Candidate {
            behavior: BehaviorRef::CoBuy(p1, p2),
            relation,
            raw,
            domain,
            provenance,
        }
    }

    /// Render the candidate's surface text for a provenance class. May
    /// override the relation (the teacher answers with whatever relation
    /// its chosen intent actually has — LLMs don't follow instructions
    /// perfectly, and the pipeline's relation tag comes from the *answer*
    /// pattern, see `relations.rs`).
    fn render(
        &mut self,
        provenance: Provenance,
        prompt_relation: Relation,
        behavior: BehaviorRef,
    ) -> (String, Relation) {
        let (primary, secondary) = match behavior {
            BehaviorRef::SearchBuy(_, p) => (p, None),
            BehaviorRef::CoBuy(p1, p2) => (p1, Some(p2)),
        };
        let pt = self.world.ptype_of(primary);
        match provenance {
            Provenance::Typical => {
                let intent = match behavior {
                    BehaviorRef::SearchBuy(..) => self.pick_profile_intent(primary, 0.5, None),
                    BehaviorRef::CoBuy(_, p2) => {
                        // shared intent: in both profiles
                        self.pick_shared_intent(primary, p2)
                    }
                };
                match intent {
                    Some(iid) => (self.verbalize(iid), self.world.intent(iid).relation),
                    // no suitable ground-truth intent: the model rambles
                    None => (self.generic_text(), prompt_relation),
                }
            }
            Provenance::PlausibleAtypical => {
                match self.pick_profile_intent(primary, 0.0, Some(0.5)) {
                    Some(iid) => (self.verbalize(iid), self.world.intent(iid).relation),
                    None => (self.generic_text(), prompt_relation),
                }
            }
            Provenance::OneSided => {
                // typical for one side only
                let side = if self.rng.gen_bool(0.5) {
                    primary
                } else {
                    secondary.unwrap_or(primary)
                };
                let other = if side == primary {
                    secondary.unwrap_or(primary)
                } else {
                    primary
                };
                let iid = self
                    .pick_profile_intent(side, 0.5, None)
                    .filter(|&i| self.world.ptype_of(other).weight_of(i) == 0.0)
                    .or_else(|| self.pick_profile_intent(side, 0.5, None));
                match iid {
                    Some(iid) => (self.verbalize(iid), self.world.intent(iid).relation),
                    None => (self.generic_text(), prompt_relation),
                }
            }
            Provenance::Generic => (self.generic_text(), prompt_relation),
            Provenance::Paraphrase => {
                let text = match behavior {
                    BehaviorRef::SearchBuy(q, p) => {
                        if self.rng.gen_bool(0.5) {
                            format!("1. they are {}.", self.world.query(q).text)
                        } else {
                            format!("1. it is a {}.", self.world.product(p).title)
                        }
                    }
                    BehaviorRef::CoBuy(p1, _) => {
                        format!("1. they are a {}.", self.world.product(p1).title)
                    }
                };
                (text, prompt_relation)
            }
            Provenance::Implausible => {
                // intent from a different domain / outside the profile
                let iid = self.pick_foreign_intent(pt.domain, primary);
                (self.verbalize(iid), self.world.intent(iid).relation)
            }
            Provenance::Incomplete => {
                let stub = ["1. they are used for", "1. it is capable of", "1. they are"]
                    .choose(&mut self.rng)
                    .unwrap();
                (stub.to_string(), prompt_relation)
            }
        }
    }

    /// An in-profile intent with weight in `[min, max)`.
    fn pick_profile_intent(
        &mut self,
        p: ProductId,
        min_w: f32,
        max_w: Option<f32>,
    ) -> Option<IntentId> {
        let profile = &self.world.ptype_of(p).profile;
        let eligible: Vec<IntentId> = profile
            .iter()
            .filter(|(_, w)| *w >= min_w && max_w.is_none_or(|m| *w < m))
            .map(|(i, _)| *i)
            .collect();
        eligible.choose(&mut self.rng).copied()
    }

    /// An intent present in both products' profiles (prefer typical).
    fn pick_shared_intent(&mut self, p1: ProductId, p2: ProductId) -> Option<IntentId> {
        let t2 = self.world.ptype_of(p2);
        let shared: Vec<IntentId> = self
            .world
            .ptype_of(p1)
            .profile
            .iter()
            .filter(|(i, w)| *w >= 0.4 && t2.weight_of(*i) > 0.0)
            .map(|(i, _)| *i)
            .collect();
        shared.choose(&mut self.rng).copied()
    }

    /// A hallucination: an intent the product's profile does not contain.
    fn pick_foreign_intent(&mut self, domain: DomainId, p: ProductId) -> IntentId {
        let pt = self.world.ptype_of(p);
        for _ in 0..32 {
            let iid = IntentId(self.rng.gen_range(0..self.world.intents.len() as u32));
            let i = self.world.intent(iid);
            if pt.weight_of(iid) == 0.0 && (i.domain != domain || self.rng.gen_bool(0.5)) {
                return iid;
            }
        }
        IntentId(0)
    }

    /// Verbalise an intent the way an LLM continuation would appear.
    fn verbalize(&mut self, iid: IntentId) -> String {
        let intent = self.world.intent(iid);
        let pred = short_predicate(intent.relation);
        let templates = [
            format!("1. they are {pred} {}.", intent.tail),
            format!("1. it is {pred} {}.", intent.tail),
            format!("1. because they are {pred} {}.", intent.tail),
        ];
        templates.choose(&mut self.rng).unwrap().clone()
    }

    fn generic_text(&mut self) -> String {
        let generics = [
            "1. they like them.",
            "1. they are used for the same reason.",
            "1. it is a good product.",
            "1. they are used together.",
            "1. they are good quality.",
        ];
        generics.choose(&mut self.rng).unwrap().to_string()
    }
}

/// Predicate fragment for verbalisation (mirrors the corpus sentences).
fn short_predicate(relation: Relation) -> &'static str {
    use Relation::*;
    match relation {
        UsedForFunc | UsedForEve | UsedForAud => "used for",
        CapableOf => "capable of",
        UsedTo => "used to",
        UsedAs => "used as",
        IsA => "a kind of",
        UsedOn => "used on",
        UsedInLoc => "used in",
        UsedInBody => "used on",
        UsedWith => "used with",
        UsedBy => "used by",
        XInterestedIn => "interested in",
        XIsA => "bought by",
        XWant => "wanting to",
    }
}

/// Surface predicate → relation mapping used when parsing raw generations
/// (the inverse of `short_predicate`, resolving the ambiguous cases to
/// the most common relation; `relations.rs` mines the full pattern table).
pub fn relation_from_text(raw: &str) -> Option<Relation> {
    let t = raw.to_lowercase();
    let rules: [(&str, Relation); 11] = [
        ("capable of", Relation::CapableOf),
        ("used to", Relation::UsedTo),
        ("used as", Relation::UsedAs),
        ("used on", Relation::UsedOn),
        ("used in", Relation::UsedInLoc),
        ("used with", Relation::UsedWith),
        ("used by", Relation::UsedBy),
        ("used for", Relation::UsedForFunc),
        ("interested in", Relation::XInterestedIn),
        ("wanting to", Relation::XWant),
        ("a kind of", Relation::IsA),
    ];
    rules.iter().find(|(p, _)| t.contains(p)).map(|(_, r)| *r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosmo_synth::{BehaviorConfig, BehaviorLog, Oracle, WorldConfig};

    fn setup() -> (World, BehaviorLog) {
        let w = World::generate(WorldConfig::tiny(11));
        let log = BehaviorLog::generate(&w, &BehaviorConfig::tiny(12));
        (w, log)
    }

    #[test]
    fn generation_is_deterministic() {
        let (w, log) = setup();
        let sb = log.search_buys[0];
        let a =
            Teacher::new(&w, TeacherConfig::default()).generate_search_buy(sb.query, sb.product);
        let b =
            Teacher::new(&w, TeacherConfig::default()).generate_search_buy(sb.query, sb.product);
        assert_eq!(a.raw, b.raw);
        assert_eq!(a.provenance, b.provenance);
    }

    #[test]
    fn task_seeded_generation_is_order_independent() {
        let (w, log) = setup();
        let sb = log.search_buys[0];
        let gen = |bi: u64, gi: u64| {
            let mut t = Teacher::for_task(&w, TeacherConfig::default(), bi, gi);
            let c = t.generate_search_buy(sb.query, sb.product);
            (c.raw, c.provenance, c.relation)
        };
        // same task → same candidate, no matter what ran before it
        let a = gen(3, 1);
        let _ = gen(0, 0);
        let _ = gen(7, 2);
        assert_eq!(a, gen(3, 1));
        // task coordinates produce distinct, well-mixed seeds
        let cfg = TeacherConfig::default();
        let seeds = [
            cfg.task_seed(0, 0),
            cfg.task_seed(0, 1),
            cfg.task_seed(1, 0),
            cfg.task_seed(1, 1),
            TeacherConfig {
                seed: cfg.seed ^ 1,
                ..cfg.clone()
            }
            .task_seed(0, 0),
        ];
        let distinct: std::collections::HashSet<u64> = seeds.iter().copied().collect();
        assert_eq!(distinct.len(), seeds.len(), "seed collision: {seeds:?}");
    }

    #[test]
    fn typical_generations_are_judged_typical_by_oracle() {
        let (w, log) = setup();
        let mut teacher = Teacher::new(&w, TeacherConfig::default());
        let oracle = Oracle::new(&w);
        let mut typical_hits = 0;
        let mut typical_total = 0;
        for sb in log.search_buys.iter().take(600) {
            let c = teacher.generate_search_buy(sb.query, sb.product);
            if c.provenance == Provenance::Typical {
                typical_total += 1;
                let parsed = crate::relations::parse_candidate(&c.raw).unwrap();
                let j = oracle.judge_search_buy(sb.query, sb.product, c.relation, &parsed.tail);
                if j.plausible {
                    typical_hits += 1;
                }
            }
        }
        assert!(
            typical_total > 20,
            "mixture should produce typical candidates"
        );
        let frac = typical_hits as f64 / typical_total as f64;
        assert!(frac > 0.9, "typical candidates should be plausible: {frac}");
    }

    #[test]
    fn one_sided_cobuy_mostly_implausible_for_pair() {
        let (w, log) = setup();
        let mut teacher = Teacher::new(&w, TeacherConfig::default());
        let oracle = Oracle::new(&w);
        let mut one_sided = 0;
        let mut implausible = 0;
        for cb in log.cobuys.iter().take(800) {
            let c = teacher.generate_cobuy(cb.p1, cb.p2);
            if c.provenance == Provenance::OneSided {
                one_sided += 1;
                let parsed = crate::relations::parse_candidate(&c.raw).unwrap();
                let j = oracle.judge_cobuy(cb.p1, cb.p2, c.relation, &parsed.tail);
                if !j.plausible {
                    implausible += 1;
                }
            }
        }
        assert!(one_sided > 50);
        let frac = implausible as f64 / one_sided as f64;
        assert!(frac > 0.5, "one-sided should often be implausible: {frac}");
    }

    #[test]
    fn incomplete_generations_fail_completeness() {
        let (w, log) = setup();
        let mut teacher = Teacher::new(&w, TeacherConfig::default());
        for sb in log.search_buys.iter().take(400) {
            let c = teacher.generate_search_buy(sb.query, sb.product);
            if c.provenance == Provenance::Incomplete {
                let tail = crate::prompts::parse_generation(&c.raw).unwrap();
                assert!(!cosmo_text::segment::looks_complete(&tail), "{tail}");
                return;
            }
        }
        panic!("no incomplete candidate sampled");
    }

    #[test]
    fn cost_meter_accumulates() {
        let (w, log) = setup();
        let mut teacher = Teacher::new(&w, TeacherConfig::default());
        let sb = log.search_buys[0];
        teacher.generate_search_buy(sb.query, sb.product);
        teacher.generate_search_buy(sb.query, sb.product);
        assert_eq!(teacher.meter.calls(), 2);
        assert!(teacher.meter.total_flops() > 0.0);
    }

    #[test]
    fn relation_from_text_maps_predicates() {
        assert_eq!(
            relation_from_text("1. they are capable of holding snacks."),
            Some(Relation::CapableOf)
        );
        assert_eq!(
            relation_from_text("1. it is used with a surface cover."),
            Some(Relation::UsedWith)
        );
        assert_eq!(relation_from_text("gibberish"), None);
    }
}
