//! QA-prompted generation prompts (Figure 3, §3.2.2).
//!
//! The paper verbalises each user behaviour as a question-answering context:
//! a task description, the behaviour's surface forms, a relation-specific
//! question, and a partial answer ending in the list marker `1.` — "a useful
//! prompt engineering trick to generate a list of knowledge candidates".
//! Parsing a generation is the inverse: take the first sentence, strip the
//! list marker and relation boilerplate, and keep the tail.

use cosmo_kg::Relation;
use cosmo_text::segment;

/// A fully rendered prompt ready for the (simulated) LLM.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Prompt {
    /// The prompt text.
    pub text: String,
    /// The relation the question asks about.
    pub relation: Relation,
}

/// Question phrasing per relation, mirroring the relation-aware prompts
/// of FolkScope/COSMO.
fn relation_question(relation: Relation) -> String {
    use Relation::*;
    match relation {
        UsedForFunc | UsedForEve | UsedForAud => "What can the product be used for?".to_string(),
        CapableOf => "What is the product capable of?".to_string(),
        UsedTo => "What is the product used to do?".to_string(),
        UsedAs => "What can the product be used as?".to_string(),
        IsA => "What kind of product is it?".to_string(),
        UsedOn => "On what occasion or season is the product used?".to_string(),
        UsedInLoc => "Where is the product used?".to_string(),
        UsedInBody => "On which body part is the product used?".to_string(),
        UsedWith => "What is the product used together with?".to_string(),
        UsedBy => "Who uses the product?".to_string(),
        XInterestedIn => "What is the customer interested in?".to_string(),
        XIsA => "Who is the customer?".to_string(),
        XWant => "What does the customer want to do?".to_string(),
    }
}

/// Render the search-buy prompt of Figure 3.
pub fn search_buy_prompt(query: &str, product_title: &str, relation: Relation) -> Prompt {
    let text = format!(
        "The following search query caused the following product purchases.\n\
         Query: \"{query}\"\n\
         Product: \"{product_title}\"\n\
         Question: {q} Explain why the customer bought this product given the query.\n\
         Answer: 1.",
        q = relation_question(relation),
    );
    Prompt { text, relation }
}

/// Render the co-buy prompt.
pub fn cobuy_prompt(title1: &str, title2: &str, relation: Relation) -> Prompt {
    let text = format!(
        "The following two products were bought together by the same customer.\n\
         Product A: \"{title1}\"\n\
         Product B: \"{title2}\"\n\
         Question: {q} Explain why the customer bought the two products together.\n\
         Answer: 1.",
        q = relation_question(relation),
    );
    Prompt { text, relation }
}

/// Extract the knowledge-tail candidate from a raw LLM continuation:
/// first sentence, minus list markers. Returns `None` when the generation
/// contains no sentence material.
pub fn parse_generation(raw: &str) -> Option<String> {
    let first = segment::first_sentence(raw)?;
    let trimmed = first.trim_end_matches(['.', '!', '?']).trim().to_string();
    if trimmed.is_empty() {
        None
    } else {
        Some(trimmed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn search_buy_prompt_contains_behaviour() {
        let p = search_buy_prompt("camping", "acme air mattress", Relation::CapableOf);
        assert!(p.text.contains("Query: \"camping\""));
        assert!(p.text.contains("Product: \"acme air mattress\""));
        assert!(p.text.ends_with("1."), "list-marker trick must be present");
        assert_eq!(p.relation, Relation::CapableOf);
    }

    #[test]
    fn cobuy_prompt_contains_both_products() {
        let p = cobuy_prompt("camera case", "screen protector glass", Relation::UsedWith);
        assert!(p.text.contains("Product A: \"camera case\""));
        assert!(p.text.contains("Product B: \"screen protector glass\""));
    }

    #[test]
    fn questions_differ_by_relation() {
        let a = search_buy_prompt("q", "p", Relation::UsedInLoc);
        let b = search_buy_prompt("q", "p", Relation::UsedBy);
        assert_ne!(a.text, b.text);
    }

    #[test]
    fn parse_strips_markers_and_keeps_first() {
        assert_eq!(
            parse_generation("1. they are used for camping. 2. they are durable."),
            Some("they are used for camping".to_string())
        );
        assert_eq!(
            parse_generation("they are capable of holding snacks"),
            Some("they are capable of holding snacks".to_string())
        );
        assert_eq!(parse_generation("   \n"), None);
    }
}
