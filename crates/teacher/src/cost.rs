//! Simulated inference-cost model.
//!
//! A core COSMO claim (§1, §5): distilling knowledge through a pipeline of
//! OPT-30B generation + classifier scoring is too expensive for online
//! serving, while the instruction-tuned COSMO-LM "with fewer parameters,
//! offers significant advantages in terms of model inference efficiency".
//! We reproduce that comparison with a standard transformer cost model:
//! a decoder forward pass costs ≈ `2 · params` FLOPs per generated token
//! (plus the prompt encoding), and wall-clock latency follows from a fixed
//! accelerator throughput. The `repro -- efficiency` experiment combines
//! this simulated cost with measured wall-clock of our actual student.

use serde::{Deserialize, Serialize};

/// Simulated hosted model size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TeacherModel {
    /// OPT-30B (the paper's bulk-generation model).
    Opt30b,
    /// OPT-175B.
    Opt175b,
    /// LLaMA-7B (the COSMO-LM student scale).
    Llama7b,
    /// LLaMA-13B.
    Llama13b,
}

impl TeacherModel {
    /// Parameter count.
    pub fn params(self) -> f64 {
        match self {
            TeacherModel::Opt30b => 30e9,
            TeacherModel::Opt175b => 175e9,
            TeacherModel::Llama7b => 7e9,
            TeacherModel::Llama13b => 13e9,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            TeacherModel::Opt30b => "OPT-30B",
            TeacherModel::Opt175b => "OPT-175B",
            TeacherModel::Llama7b => "LLaMA-7B",
            TeacherModel::Llama13b => "LLaMA-13B",
        }
    }
}

/// Sustained accelerator throughput assumed for the latency estimate
/// (FLOP/s). ~16 A100s at moderate utilisation, as in §3.2.2.
const CLUSTER_FLOPS: f64 = 2.5e15;

/// Running simulated-cost accumulator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CostMeter {
    model: TeacherModel,
    calls: u64,
    prompt_tokens: u64,
    generated_tokens: u64,
}

impl CostMeter {
    /// New meter for a model.
    pub fn new(model: TeacherModel) -> Self {
        CostMeter {
            model,
            calls: 0,
            prompt_tokens: 0,
            generated_tokens: 0,
        }
    }

    /// Record one generation call from raw prompt/continuation strings
    /// (tokens approximated as whitespace words × 1.3).
    pub fn record_generation(&mut self, prompt: &str, generation: &str) {
        self.calls += 1;
        self.prompt_tokens += approx_tokens(prompt);
        self.generated_tokens += approx_tokens(generation);
    }

    /// Record a scoring-only call (no generation; one forward pass).
    pub fn record_scoring(&mut self, input: &str) {
        self.calls += 1;
        self.prompt_tokens += approx_tokens(input);
    }

    /// Number of recorded calls.
    pub fn calls(&self) -> u64 {
        self.calls
    }

    /// Fold another meter's counts into this one (same model assumed).
    /// Token counts are integers, so the merged totals are independent of
    /// merge order — parallel pipeline stages rely on that.
    pub fn merge(&mut self, other: &CostMeter) {
        self.calls += other.calls;
        self.prompt_tokens += other.prompt_tokens;
        self.generated_tokens += other.generated_tokens;
    }

    /// Total simulated FLOPs: `2·P` per processed token.
    pub fn total_flops(&self) -> f64 {
        2.0 * self.model.params() * (self.prompt_tokens + self.generated_tokens) as f64
    }

    /// Total simulated wall-clock seconds on the reference cluster.
    pub fn total_seconds(&self) -> f64 {
        self.total_flops() / CLUSTER_FLOPS
    }

    /// Mean simulated latency per call (milliseconds).
    pub fn mean_latency_ms(&self) -> f64 {
        if self.calls == 0 {
            0.0
        } else {
            self.total_seconds() * 1000.0 / self.calls as f64
        }
    }

    /// The model being metered.
    pub fn model(&self) -> TeacherModel {
        self.model
    }
}

fn approx_tokens(text: &str) -> u64 {
    (text.split_whitespace().count() as f64 * 1.3).ceil() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bigger_models_cost_more() {
        let mut small = CostMeter::new(TeacherModel::Llama7b);
        let mut big = CostMeter::new(TeacherModel::Opt175b);
        small.record_generation("a prompt here", "an answer");
        big.record_generation("a prompt here", "an answer");
        assert!(big.total_flops() > small.total_flops() * 20.0);
    }

    #[test]
    fn latency_scales_with_tokens() {
        let mut m = CostMeter::new(TeacherModel::Opt30b);
        m.record_generation("one two three", "four five");
        let once = m.total_seconds();
        m.record_generation("one two three", "four five");
        assert!((m.total_seconds() - 2.0 * once).abs() < 1e-12);
        assert!(m.mean_latency_ms() > 0.0);
    }

    #[test]
    fn scoring_counts_prompt_only() {
        let mut m = CostMeter::new(TeacherModel::Llama13b);
        m.record_scoring("score this candidate text");
        assert_eq!(m.calls(), 1);
        assert!(m.total_flops() > 0.0);
    }

    #[test]
    fn empty_meter_is_zero() {
        let m = CostMeter::new(TeacherModel::Opt30b);
        assert_eq!(m.mean_latency_ms(), 0.0);
        assert_eq!(m.total_flops(), 0.0);
    }
}
