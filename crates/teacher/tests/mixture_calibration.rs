//! Calibration tests for the teacher's quality mixture: the empirical
//! provenance distribution must follow the configured probabilities, and
//! the oracle-judged raw quality must land where Table 4 expects the
//! *pre-filter* pool (search-buy better than co-buy, both noisy).

use cosmo_synth::{BehaviorConfig, BehaviorLog, Oracle, World, WorldConfig};
use cosmo_teacher::{parse_candidate, Provenance, Teacher, TeacherConfig};

fn setup() -> (World, BehaviorLog) {
    let w = World::generate(WorldConfig::tiny(301));
    let log = BehaviorLog::generate(&w, &BehaviorConfig::tiny(302));
    (w, log)
}

#[test]
fn searchbuy_mixture_matches_configuration() {
    let (w, log) = setup();
    let cfg = TeacherConfig::default();
    let mix = cfg.search_buy_mixture.clone();
    let mut teacher = Teacher::new(&w, cfg);
    let n = 4_000;
    let mut counts = std::collections::HashMap::new();
    for i in 0..n {
        let sb = &log.search_buys[i % log.search_buys.len()];
        let c = teacher.generate_search_buy(sb.query, sb.product);
        *counts.entry(c.provenance).or_insert(0usize) += 1;
    }
    let total: f64 = mix.typical
        + mix.plausible_atypical
        + mix.generic
        + mix.paraphrase
        + mix.implausible
        + mix.incomplete;
    for (prov, expected) in [
        (Provenance::Typical, mix.typical),
        (Provenance::Generic, mix.generic),
        (Provenance::Incomplete, mix.incomplete),
        (Provenance::Implausible, mix.implausible),
    ] {
        let observed = *counts.get(&prov).unwrap_or(&0) as f64 / n as f64;
        let expected = expected / total;
        assert!(
            (observed - expected).abs() < 0.03,
            "{prov:?}: observed {observed:.3} vs configured {expected:.3}"
        );
    }
    // search-buy never produces one-sided candidates
    assert!(!counts.contains_key(&Provenance::OneSided));
}

#[test]
fn raw_pool_quality_shape_matches_table4_premise() {
    let (w, log) = setup();
    let mut teacher = Teacher::new(&w, TeacherConfig::default());
    let oracle = Oracle::new(&w);
    let judge_rate = |cands: &[(bool, bool)]| {
        let n = cands.len() as f64;
        (
            cands.iter().filter(|(p, _)| *p).count() as f64 / n,
            cands.iter().filter(|(_, t)| *t).count() as f64 / n,
        )
    };
    let mut sb_j = Vec::new();
    for sb in log.search_buys.iter().take(1_500) {
        let c = teacher.generate_search_buy(sb.query, sb.product);
        if let Some(p) = parse_candidate(&c.raw) {
            let j = oracle.judge_search_buy(sb.query, sb.product, c.relation, &p.tail);
            sb_j.push((j.plausible, j.typical));
        }
    }
    let mut cb_j = Vec::new();
    for cb in log.cobuys.iter().take(1_500) {
        let c = teacher.generate_cobuy(cb.p1, cb.p2);
        if let Some(p) = parse_candidate(&c.raw) {
            let j = oracle.judge_cobuy(cb.p1, cb.p2, c.relation, &p.tail);
            cb_j.push((j.plausible, j.typical));
        }
    }
    let (sb_p, sb_t) = judge_rate(&sb_j);
    let (cb_p, cb_t) = judge_rate(&cb_j);
    assert!(
        sb_p > cb_p,
        "search-buy plausibility {sb_p:.2} must exceed co-buy {cb_p:.2}"
    );
    assert!(
        sb_t > cb_t,
        "search-buy typicality {sb_t:.2} must exceed co-buy {cb_t:.2}"
    );
    assert!(
        sb_t < 0.5,
        "raw search-buy typicality should be noisy (<50%): {sb_t:.2}"
    );
    assert!(cb_t < 0.3, "raw co-buy typicality 'notably low': {cb_t:.2}");
}

#[test]
fn cost_meter_reflects_model_choice() {
    let (w, log) = setup();
    let sb = log.search_buys[0];
    let mut small = Teacher::new(
        &w,
        TeacherConfig {
            model: cosmo_teacher::TeacherModel::Llama7b,
            ..Default::default()
        },
    );
    let mut big = Teacher::new(
        &w,
        TeacherConfig {
            model: cosmo_teacher::TeacherModel::Opt175b,
            ..Default::default()
        },
    );
    small.generate_search_buy(sb.query, sb.product);
    big.generate_search_buy(sb.query, sb.product);
    assert!(big.meter.total_flops() > small.meter.total_flops() * 20.0);
}
