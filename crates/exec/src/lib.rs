//! # cosmo-exec
//!
//! A std-only persistent worker pool shared by the serving hot path
//! (Figure 5 batch cycles) and the offline generation pipeline (Figure 2).
//!
//! Design goals, in order:
//!
//! * **Determinism** — the chunked map combinators assign every item a
//!   stable index and merge results in index order, so the output is
//!   byte-identical to a sequential run regardless of worker count or
//!   scheduling.
//! * **Panic isolation** — a panicking chunk never kills the caller or a
//!   worker thread. [`WorkerPool::map`] re-raises the first panic *after*
//!   every chunk has settled; [`WorkerPool::try_map_chunks`] converts
//!   panicked chunks into data ([`ChunkResult::Panicked`]) so callers can
//!   re-queue the affected items (the serving batch cycle does exactly
//!   that).
//! * **No per-call thread spawning** — workers are spawned once and fed
//!   over a bounded channel; scopes borrow the pool.
//!
//! A pool built with `threads <= 1` spawns no threads at all: jobs run
//! inline on the calling thread, which makes `threads = 1` reproduce the
//! sequential code path exactly (and cheaply).

use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;

/// A unit of work fed to the workers.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Per-chunk landing slot for [`WorkerPool::map`].
type MapSlot<R> = Option<std::thread::Result<Vec<R>>>;

/// Per-worker queue slack: the injection channel holds up to
/// `threads * QUEUE_SLACK` jobs before submitters block (backpressure
/// instead of unbounded buffering).
const QUEUE_SLACK: usize = 8;

/// Fixed-size persistent worker pool over a bounded channel.
///
/// Dropping the pool closes the channel; workers drain outstanding jobs
/// and exit, and the drop joins them.
pub struct WorkerPool {
    tx: Option<SyncSender<Job>>,
    handles: Vec<JoinHandle<()>>,
    threads: usize,
}

impl WorkerPool {
    /// Spawn a pool with `threads` workers. `threads <= 1` creates an
    /// inline pool: no threads are spawned and every job runs on the
    /// submitting thread, exactly reproducing sequential execution.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        if threads == 1 {
            return WorkerPool {
                tx: None,
                handles: Vec::new(),
                threads: 1,
            };
        }
        let (tx, rx) = sync_channel::<Job>(threads * QUEUE_SLACK);
        let rx = Arc::new(Mutex::new(rx));
        let handles = (0..threads)
            .map(|i| {
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("cosmo-exec-{i}"))
                    .spawn(move || worker_loop(&rx))
                    .expect("spawn cosmo-exec worker")
            })
            .collect();
        WorkerPool {
            tx: Some(tx),
            handles,
            threads,
        }
    }

    /// Number of available CPU cores (1 when undetectable).
    pub fn available_parallelism() -> usize {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }

    /// Worker count this pool was built with (1 for the inline pool).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Submit a raw job. On an inline pool the job runs immediately on the
    /// calling thread.
    fn submit(&self, job: Job) {
        match &self.tx {
            Some(tx) => {
                let _ = tx.send(job);
            }
            None => job(),
        }
    }

    /// Run `f` with a [`Scope`] that can spawn borrowing jobs onto the
    /// pool. The call returns only after every spawned job has finished
    /// (also on unwind), which is what makes the borrows sound.
    ///
    /// Panics *inside spawned jobs* are contained and silently dropped at
    /// this level — use [`WorkerPool::map`] (re-raises) or
    /// [`WorkerPool::try_map_chunks`] (reports) when you care. Do not call
    /// `scope` from inside a job running on the same pool: the outer scope
    /// could deadlock waiting for queue slots its own jobs occupy.
    pub fn scope<'env, R>(&self, f: impl FnOnce(&Scope<'_, 'env>) -> R) -> R {
        let scope = Scope {
            pool: self,
            state: Arc::new(ScopeState::default()),
            env: PhantomData,
        };
        // The guard waits for `pending == 0` on drop, so even if `f`
        // panics after spawning, no job outlives the borrowed environment.
        let _guard = WaitGuard {
            state: &scope.state,
        };
        f(&scope)
    }

    /// Parallel indexed map with deterministic, index-ordered merge.
    ///
    /// `items` is split into chunks of `chunk_size`; each chunk is mapped
    /// on a worker and the per-chunk results are concatenated in chunk
    /// order, so the output equals `items.iter().enumerate().map(f)`
    /// exactly, independent of thread count. `f` receives each item's
    /// index in `items` (stable seeds derive from it).
    ///
    /// If any chunk panics, the first panic (in chunk order) is re-raised
    /// after all chunks have settled.
    pub fn map<T, R, F>(&self, items: &[T], chunk_size: usize, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let chunk_size = chunk_size.max(1);
        if self.threads == 1 || items.len() <= chunk_size {
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        let mut slots: Vec<MapSlot<R>> = Vec::new();
        slots.resize_with(items.len().div_ceil(chunk_size), || None);
        self.scope(|s| {
            for (ci, (chunk, slot)) in items.chunks(chunk_size).zip(slots.iter_mut()).enumerate() {
                let f = &f;
                s.spawn(move || {
                    let start = ci * chunk_size;
                    *slot = Some(catch_unwind(AssertUnwindSafe(|| {
                        chunk
                            .iter()
                            .enumerate()
                            .map(|(j, t)| f(start + j, t))
                            .collect()
                    })));
                });
            }
        });
        let mut out = Vec::with_capacity(items.len());
        for slot in slots {
            match slot.expect("scope waits for every chunk") {
                Ok(rs) => out.extend(rs),
                Err(payload) => resume_unwind(payload),
            }
        }
        out
    }

    /// Like [`WorkerPool::map`] but panic-*isolating*: each chunk yields
    /// either its results or a [`ChunkResult::Panicked`] marker carrying
    /// the item range, letting the caller recover (e.g. re-queue) the
    /// affected inputs. Chunks are returned in index order.
    pub fn try_map_chunks<T, R, F>(
        &self,
        items: &[T],
        chunk_size: usize,
        f: F,
    ) -> Vec<ChunkResult<R>>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.try_map_slices(items, chunk_size, |start, chunk| {
            chunk
                .iter()
                .enumerate()
                .map(|(j, t)| f(start + j, t))
                .collect()
        })
    }

    /// Like [`WorkerPool::try_map_chunks`] but the closure receives each
    /// whole chunk (`(start, &items[start..])`) and returns its per-item
    /// results, letting callers run one *batched* computation per chunk
    /// instead of an independent call per item. The returned `Vec` must
    /// have one entry per chunk item (checked). Panic isolation and
    /// index-ordered returns are identical to `try_map_chunks`.
    pub fn try_map_slices<T, R, F>(
        &self,
        items: &[T],
        chunk_size: usize,
        f: F,
    ) -> Vec<ChunkResult<R>>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &[T]) -> Vec<R> + Sync,
    {
        let chunk_size = chunk_size.max(1);
        let n_chunks = items.len().div_ceil(chunk_size);
        let mut slots: Vec<Option<ChunkResult<R>>> = Vec::new();
        slots.resize_with(n_chunks, || None);
        let run_chunk = |ci: usize, chunk: &[T]| -> ChunkResult<R> {
            let start = ci * chunk_size;
            match catch_unwind(AssertUnwindSafe(|| {
                let results = f(start, chunk);
                assert_eq!(
                    results.len(),
                    chunk.len(),
                    "slice closure must return one result per item"
                );
                results
            })) {
                Ok(results) => ChunkResult::Computed { start, results },
                Err(_) => ChunkResult::Panicked {
                    start,
                    len: chunk.len(),
                },
            }
        };
        if self.threads == 1 || n_chunks <= 1 {
            return items
                .chunks(chunk_size)
                .enumerate()
                .map(|(ci, chunk)| run_chunk(ci, chunk))
                .collect();
        }
        self.scope(|s| {
            for (ci, (chunk, slot)) in items.chunks(chunk_size).zip(slots.iter_mut()).enumerate() {
                let run_chunk = &run_chunk;
                s.spawn(move || *slot = Some(run_chunk(ci, chunk)));
            }
        });
        slots
            .into_iter()
            .map(|s| s.expect("scope waits for every chunk"))
            .collect()
    }

    /// A chunk size that yields a few chunks per worker (load balancing
    /// without drowning the queue), never zero.
    pub fn chunk_for(&self, len: usize) -> usize {
        len.div_ceil(self.threads * 4).max(1)
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.tx.take(); // closes the channel; workers drain and exit
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(rx: &Mutex<Receiver<Job>>) {
    loop {
        let job = {
            let guard = rx.lock().unwrap_or_else(PoisonError::into_inner);
            guard.recv()
        };
        match job {
            Ok(job) => job(), // jobs contain their own catch_unwind
            Err(_) => break,  // channel closed: pool is shutting down
        }
    }
}

/// Outcome of one chunk under [`WorkerPool::try_map_chunks`].
#[derive(Debug)]
pub enum ChunkResult<R> {
    /// The chunk completed; `results[j]` corresponds to `items[start + j]`.
    Computed {
        /// Index of the chunk's first item.
        start: usize,
        /// Per-item results, in item order.
        results: Vec<R>,
    },
    /// The chunk panicked; `items[start..start + len]` were lost.
    Panicked {
        /// Index of the chunk's first item.
        start: usize,
        /// Number of items in the chunk.
        len: usize,
    },
}

#[derive(Default)]
struct ScopeState {
    pending: Mutex<usize>,
    done: Condvar,
}

impl ScopeState {
    fn finish_one(&self) {
        let mut pending = self.pending.lock().unwrap_or_else(PoisonError::into_inner);
        debug_assert!(
            *pending > 0,
            "finish_one without a matching spawn — the WaitGuard soundness \
             argument assumes pending counts every outstanding job exactly once"
        );
        *pending -= 1;
        if *pending == 0 {
            self.done.notify_all();
        }
    }

    fn wait_all(&self) {
        let mut pending = self.pending.lock().unwrap_or_else(PoisonError::into_inner);
        while *pending > 0 {
            pending = self
                .done
                .wait(pending)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// Spawns jobs that may borrow the environment (`'env`), created by
/// [`WorkerPool::scope`].
pub struct Scope<'pool, 'env> {
    pool: &'pool WorkerPool,
    state: Arc<ScopeState>,
    /// Invariant over `'env`, like `std::thread::scope`.
    env: PhantomData<&'env mut &'env ()>,
}

impl<'env> Scope<'_, 'env> {
    /// Spawn a job onto the pool. The job may borrow from `'env`; the
    /// owning [`WorkerPool::scope`] call waits for it before returning.
    /// A panic inside the job is caught and dropped (the scope still
    /// completes) — wrap the body yourself if you need the payload.
    pub fn spawn(&self, f: impl FnOnce() + Send + 'env) {
        *self
            .state
            .pending
            .lock()
            .unwrap_or_else(PoisonError::into_inner) += 1;
        let state = Arc::clone(&self.state);
        let job: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
            // The catch keeps the worker thread (and the pending count)
            // alive through user panics.
            let _ = catch_unwind(AssertUnwindSafe(f));
            state.finish_one();
        });
        // SAFETY: the scope guard blocks until `pending == 0` before the
        // `'env` borrows can expire (including on unwind), so erasing the
        // lifetime cannot let a job observe a dead borrow. The pool
        // outlives the scope by the `'pool` borrow.
        let job: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Box<dyn FnOnce() + Send>>(job)
        };
        self.pool.submit(job);
    }
}

/// Waits for all scope jobs on drop — the soundness anchor of `scope`.
struct WaitGuard<'a> {
    state: &'a ScopeState,
}

impl Drop for WaitGuard<'_> {
    fn drop(&mut self) {
        self.state.wait_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    // Miri interprets every instruction, so the stress shapes that take
    // milliseconds natively take minutes. Under Miri we shrink item counts
    // and thread/chunk grids; the interleavings exercised are the same.
    const N_ITEMS: u64 = if cfg!(miri) { 64 } else { 1000 };

    #[test]
    fn map_matches_sequential_for_any_thread_count() {
        let items: Vec<u64> = (0..N_ITEMS).collect();
        let expect: Vec<u64> = items
            .iter()
            .enumerate()
            .map(|(i, x)| x * 3 + i as u64)
            .collect();
        let thread_grid: &[usize] = if cfg!(miri) { &[1, 4] } else { &[1, 2, 4, 8] };
        let chunk_grid: &[usize] = if cfg!(miri) {
            &[1, 7, 5000]
        } else {
            &[1, 7, 64, 5000]
        };
        for &threads in thread_grid {
            let pool = WorkerPool::new(threads);
            for &chunk in chunk_grid {
                let got = pool.map(&items, chunk, |i, x| x * 3 + i as u64);
                assert_eq!(got, expect, "threads={threads} chunk={chunk}");
            }
        }
    }

    #[test]
    #[cfg_attr(miri, ignore = "relies on wall-clock sleep to spread work")]
    fn map_runs_on_many_threads() {
        let pool = WorkerPool::new(4);
        let items: Vec<usize> = (0..64).collect();
        let names: Vec<String> = pool.map(&items, 1, |_, _| {
            std::thread::sleep(std::time::Duration::from_millis(1));
            std::thread::current().name().unwrap_or("main").to_string()
        });
        let distinct: std::collections::HashSet<&String> = names.iter().collect();
        assert!(distinct.len() > 1, "work should spread across workers");
    }

    #[test]
    fn inline_pool_spawns_no_threads() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.threads(), 1);
        let here = std::thread::current().id();
        pool.scope(|s| {
            s.spawn(move || assert_eq!(std::thread::current().id(), here));
        });
    }

    #[test]
    fn map_propagates_first_panic_in_chunk_order() {
        let pool = WorkerPool::new(4);
        let items: Vec<usize> = (0..100).collect();
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.map(&items, 10, |i, _| {
                if i >= 30 {
                    panic!("boom at {i}");
                }
                i
            })
        }));
        let payload = caught.expect_err("must propagate");
        let msg = payload.downcast_ref::<String>().expect("string payload");
        assert_eq!(msg, "boom at 30", "first panicking chunk wins");
        // pool must stay usable afterwards
        assert_eq!(pool.map(&items, 10, |_, &x| x), items);
    }

    #[test]
    fn try_map_chunks_isolates_panics() {
        for threads in [1, 4] {
            let pool = WorkerPool::new(threads);
            let items: Vec<usize> = (0..20).collect();
            let out = pool.try_map_chunks(&items, 5, |i, &x| {
                assert!(!(5..10).contains(&i), "poisoned chunk");
                x * 2
            });
            assert_eq!(out.len(), 4);
            let mut recovered = Vec::new();
            let mut panicked = Vec::new();
            for r in &out {
                match r {
                    ChunkResult::Computed { start, results } => {
                        for (j, v) in results.iter().enumerate() {
                            assert_eq!(*v, items[start + j] * 2);
                            recovered.push(start + j);
                        }
                    }
                    ChunkResult::Panicked { start, len } => panicked.push((*start, *len)),
                }
            }
            assert_eq!(panicked, vec![(5, 5)], "threads={threads}");
            assert_eq!(recovered.len(), 15);
        }
    }

    /// `try_map_slices` must deliver whole chunks with correct starts,
    /// isolate panicking chunks, and agree with the per-item formulation.
    #[test]
    fn try_map_slices_delivers_chunks_and_isolates_panics() {
        let items: Vec<usize> = (0..23).collect();
        for threads in [1, 4] {
            let pool = WorkerPool::new(threads);
            let out = pool.try_map_slices(&items, 5, |start, chunk| {
                assert_eq!(chunk[0], start, "chunk must begin at start");
                if start == 10 {
                    panic!("boom");
                }
                chunk.iter().map(|&x| x * 2).collect()
            });
            let mut recovered = Vec::new();
            let mut panicked = Vec::new();
            for r in &out {
                match r {
                    ChunkResult::Computed { start, results } => {
                        for (j, &v) in results.iter().enumerate() {
                            assert_eq!(v, (start + j) * 2);
                            recovered.push(start + j);
                        }
                    }
                    ChunkResult::Panicked { start, len } => panicked.push((*start, *len)),
                }
            }
            assert_eq!(panicked, vec![(10, 5)], "threads={threads}");
            assert_eq!(recovered.len(), 18, "threads={threads}");
        }
    }

    /// A slice closure returning the wrong number of results is a bug in
    /// the caller; the length check converts it into a Panicked chunk
    /// rather than silently misaligning item indices.
    #[test]
    fn try_map_slices_flags_length_mismatch_as_panicked() {
        let pool = WorkerPool::new(1);
        let items = [1, 2, 3, 4];
        let out = pool.try_map_slices(
            &items,
            2,
            |start, chunk| {
                if start == 0 {
                    vec![0]
                } else {
                    chunk.to_vec()
                }
            },
        );
        assert!(matches!(out[0], ChunkResult::Panicked { start: 0, len: 2 }));
        assert!(matches!(out[1], ChunkResult::Computed { .. }));
    }

    #[test]
    fn scope_borrows_local_state() {
        let pool = WorkerPool::new(3);
        let data: Vec<usize> = (0..256).collect();
        let sum = AtomicUsize::new(0);
        pool.scope(|s| {
            for chunk in data.chunks(16) {
                let sum = &sum;
                s.spawn(move || {
                    sum.fetch_add(chunk.iter().sum::<usize>(), Ordering::Relaxed);
                });
            }
        });
        assert_eq!(sum.load(Ordering::Relaxed), data.iter().sum::<usize>());
    }

    #[test]
    fn concurrent_scopes_share_one_pool() {
        let per_scope: u64 = if cfg!(miri) { 40 } else { 200 };
        let pool = Arc::new(WorkerPool::new(4));
        let mut joins = Vec::new();
        for t in 0..4u64 {
            let pool = Arc::clone(&pool);
            joins.push(std::thread::spawn(move || {
                let items: Vec<u64> = (0..per_scope).map(|i| i + t * 1000).collect();
                pool.map(&items, 13, |_, &x| x + 1)
            }));
        }
        for (t, j) in joins.into_iter().enumerate() {
            let got = j.join().unwrap();
            let expect: Vec<u64> = (0..per_scope).map(|i| i + t as u64 * 1000 + 1).collect();
            assert_eq!(got, expect);
        }
    }

    #[test]
    fn chunk_for_balances_without_zero() {
        let pool = WorkerPool::new(4);
        assert_eq!(pool.chunk_for(0), 1);
        assert_eq!(pool.chunk_for(3), 1);
        assert_eq!(pool.chunk_for(1600), 100);
    }
}
