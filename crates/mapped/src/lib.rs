//! # cosmo-mapped
//!
//! Read-only file bytes behind one abstraction, [`MappedBytes`]:
//!
//! * **Mapped** — on Linux (x86_64 / aarch64) the file is `mmap`'d
//!   `PROT_READ`/`MAP_PRIVATE` via a raw syscall, so opening a
//!   multi-gigabyte snapshot costs O(pages touched) and every server
//!   process sharing the file shares one physical copy of its pages.
//!   No `libc` crate: the two syscalls the wrapper needs are issued
//!   with `core::arch::asm!` directly.
//! * **Owned** — everywhere else (other platforms, empty files, or when
//!   the syscall fails) the file is read into an 8-byte-aligned owned
//!   buffer. Same `Deref<Target = [u8]>` surface, so callers never
//!   branch on the backing.
//!
//! This crate is deliberately *outside* the deterministic-crate set the
//! workspace audit enforces (see `cosmo-audit`): it is the one place the
//! serving stack talks to the OS about memory, so the deterministic
//! crates (`cosmo-kg` included) can stay free of raw OS calls and take
//! bytes through this seam instead.

use std::fs::File;
use std::io::{self, Read};
use std::ops::Deref;
use std::path::Path;

/// True when this build can attempt the raw `mmap` syscall.
#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
const CAN_MMAP: bool = true;
#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
const CAN_MMAP: bool = false;

/// `PROT_READ`.
#[allow(dead_code)] // unused on non-mmap targets
const PROT_READ: usize = 1;
/// `MAP_PRIVATE`.
#[allow(dead_code)] // unused on non-mmap targets
const MAP_PRIVATE: usize = 2;

/// Raw `mmap(NULL, len, PROT_READ, MAP_PRIVATE, fd, 0)`. Returns the
/// kernel's raw return value: a page-aligned address on success, a
/// negative errno in `[-4095, -1]` on failure.
///
/// # Safety
/// `fd` must be an open file descriptor and `len` nonzero; the caller
/// must treat the returned region as unmapped once `sys_munmap` runs.
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
// SAFETY: caller upholds the contract in the doc comment above.
unsafe fn sys_mmap(len: usize, fd: i32) -> isize {
    let ret: isize;
    // SAFETY: x86_64 Linux syscall ABI — nr in rax (mmap = 9), args in
    // rdi/rsi/rdx/r10/r8/r9, rcx/r11 clobbered by `syscall`.
    unsafe {
        core::arch::asm!(
            "syscall",
            inlateout("rax") 9isize => ret,
            in("rdi") 0usize,
            in("rsi") len,
            in("rdx") PROT_READ,
            in("r10") MAP_PRIVATE,
            in("r8") fd as isize,
            in("r9") 0usize,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
    }
    ret
}

/// Raw `munmap(ptr, len)`; returns 0 on success.
///
/// # Safety
/// `ptr`/`len` must denote exactly one live mapping produced by
/// `sys_mmap`, with no outstanding references into it.
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
// SAFETY: caller upholds the contract in the doc comment above.
unsafe fn sys_munmap(ptr: *mut u8, len: usize) -> isize {
    let ret: isize;
    // SAFETY: x86_64 Linux syscall ABI — munmap = 11.
    unsafe {
        core::arch::asm!(
            "syscall",
            inlateout("rax") 11isize => ret,
            in("rdi") ptr,
            in("rsi") len,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
    }
    ret
}

/// Raw `mmap` for aarch64 Linux (syscall 222).
///
/// # Safety
/// Same contract as the x86_64 variant.
#[cfg(all(target_os = "linux", target_arch = "aarch64"))]
// SAFETY: caller upholds the contract in the doc comment above.
unsafe fn sys_mmap(len: usize, fd: i32) -> isize {
    let ret: isize;
    // SAFETY: aarch64 Linux syscall ABI — nr in x8, args in x0..x5.
    unsafe {
        core::arch::asm!(
            "svc 0",
            in("x8") 222usize,
            inlateout("x0") 0usize => ret,
            in("x1") len,
            in("x2") PROT_READ,
            in("x3") MAP_PRIVATE,
            in("x4") fd as isize,
            in("x5") 0usize,
            options(nostack),
        );
    }
    ret
}

/// Raw `munmap` for aarch64 Linux (syscall 215).
///
/// # Safety
/// Same contract as the x86_64 variant.
#[cfg(all(target_os = "linux", target_arch = "aarch64"))]
// SAFETY: caller upholds the contract in the doc comment above.
unsafe fn sys_munmap(ptr: *mut u8, len: usize) -> isize {
    let ret: isize;
    // SAFETY: aarch64 Linux syscall ABI — munmap = 215.
    unsafe {
        core::arch::asm!(
            "svc 0",
            in("x8") 215usize,
            inlateout("x0") ptr => ret,
            in("x1") len,
            options(nostack),
        );
    }
    ret
}

/// Owned fallback storage. Backing the bytes with a `Vec<u64>` guarantees
/// the base address is 8-byte aligned — the strictest alignment the
/// snapshot casts (`u64` fields) require — which a plain `Vec<u8>` does
/// not promise.
#[derive(Debug)]
struct AlignedBuf {
    words: Vec<u64>,
    len: usize,
}

impl AlignedBuf {
    fn from_bytes(bytes: &[u8]) -> AlignedBuf {
        let words = vec![0u64; bytes.len().div_ceil(8)];
        let mut buf = AlignedBuf {
            words,
            len: bytes.len(),
        };
        // PANIC: words holds div_ceil(len, 8) * 8 >= len bytes
        buf.as_mut()[..bytes.len()].copy_from_slice(bytes);
        buf
    }

    fn as_slice(&self) -> &[u8] {
        // SAFETY: `words` owns `words.len() * 8 >= len` initialised bytes;
        // reinterpreting u64 storage as bytes is always valid.
        unsafe { std::slice::from_raw_parts(self.words.as_ptr().cast::<u8>(), self.len) }
    }

    fn as_mut(&mut self) -> &mut [u8] {
        let total = self.words.len() * 8;
        // SAFETY: same provenance as `as_slice`, over the full backing
        // allocation, with exclusive access through `&mut self`.
        unsafe { std::slice::from_raw_parts_mut(self.words.as_mut_ptr().cast::<u8>(), total) }
    }
}

#[derive(Debug)]
enum Inner {
    /// A live `mmap` region; unmapped on drop.
    Mapped { ptr: *mut u8, len: usize },
    /// Owned aligned buffer (fallback path and `from_vec`).
    Owned(AlignedBuf),
}

/// Read-only bytes from a file: memory-mapped when possible, owned
/// otherwise. Dereferences to `&[u8]`; the base address is always at
/// least 8-byte aligned (page-aligned when mapped).
#[derive(Debug)]
pub struct MappedBytes {
    inner: Inner,
}

// SAFETY: the mapped region is PROT_READ and never mutated or remapped
// after construction, so shared references from any thread are fine; the
// owned variant is a plain buffer.
unsafe impl Send for MappedBytes {}
// SAFETY: see Send — all access is read-only.
unsafe impl Sync for MappedBytes {}

impl MappedBytes {
    /// Open `path`, preferring an `mmap` mapping and falling back to
    /// reading the whole file into an aligned owned buffer.
    pub fn open(path: &Path) -> io::Result<MappedBytes> {
        let mut file = File::open(path)?;
        let len = file.metadata()?.len();
        let len = usize::try_from(len)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "file too large to map"))?;
        if CAN_MMAP && len > 0 {
            if let Some(mapped) = Self::try_map(&file, len) {
                return Ok(mapped);
            }
        }
        let mut bytes = Vec::with_capacity(len);
        file.read_to_end(&mut bytes)?;
        Ok(MappedBytes {
            inner: Inner::Owned(AlignedBuf::from_bytes(&bytes)),
        })
    }

    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    fn try_map(file: &File, len: usize) -> Option<MappedBytes> {
        use std::os::fd::AsRawFd;
        // SAFETY: `file` is open for the duration of the call and len > 0
        // (checked by the caller); the resulting region is owned by the
        // returned MappedBytes, which unmaps it exactly once on drop.
        let ret = unsafe { sys_mmap(len, file.as_raw_fd()) };
        if (-4095..0).contains(&ret) {
            return None;
        }
        Some(MappedBytes {
            inner: Inner::Mapped {
                ptr: ret as *mut u8,
                len,
            },
        })
    }

    #[cfg(not(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    )))]
    fn try_map(_file: &File, _len: usize) -> Option<MappedBytes> {
        None
    }

    /// Wrap in-memory bytes (copied into an aligned owned buffer) — the
    /// test / non-file construction path.
    pub fn from_vec(bytes: Vec<u8>) -> MappedBytes {
        MappedBytes {
            inner: Inner::Owned(AlignedBuf::from_bytes(&bytes)),
        }
    }

    /// True when the bytes are backed by a live memory mapping rather
    /// than an owned buffer.
    pub fn is_mapped(&self) -> bool {
        matches!(self.inner, Inner::Mapped { .. })
    }
}

impl Deref for MappedBytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        match &self.inner {
            // SAFETY: ptr/len describe a live PROT_READ mapping owned by
            // self; it stays valid until drop and is never written.
            Inner::Mapped { ptr, len } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
            Inner::Owned(buf) => buf.as_slice(),
        }
    }
}

impl Drop for MappedBytes {
    fn drop(&mut self) {
        #[cfg(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        ))]
        if let Inner::Mapped { ptr, len } = self.inner {
            // SAFETY: exactly one munmap per successful sys_mmap, in the
            // drop of the sole owner — no references can outlive self.
            let _ = unsafe { sys_munmap(ptr, len) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("cosmo_mapped_{}_{name}", std::process::id()))
    }

    #[test]
    fn open_reads_file_bytes() {
        let path = temp_path("roundtrip.bin");
        let payload: Vec<u8> = (0..u8::MAX).cycle().take(10_000).collect();
        std::fs::write(&path, &payload).unwrap();
        let mapped = MappedBytes::open(&path).unwrap();
        assert_eq!(&*mapped, &payload[..]);
        assert_eq!(mapped.as_ptr() as usize % 8, 0, "base must be 8-aligned");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn linux_open_uses_mmap() {
        let path = temp_path("mapped.bin");
        std::fs::write(&path, vec![7u8; 4096]).unwrap();
        let mapped = MappedBytes::open(&path).unwrap();
        if CAN_MMAP {
            assert!(mapped.is_mapped(), "expected the mmap fast path");
        }
        assert!(mapped.iter().all(|&b| b == 7));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_falls_back_to_owned() {
        let path = temp_path("empty.bin");
        std::fs::write(&path, b"").unwrap();
        let mapped = MappedBytes::open(&path).unwrap();
        assert!(!mapped.is_mapped());
        assert!(mapped.is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn from_vec_is_aligned_and_equal() {
        let bytes: Vec<u8> = (0..33).collect();
        let mapped = MappedBytes::from_vec(bytes.clone());
        assert_eq!(&*mapped, &bytes[..]);
        assert_eq!(mapped.as_ptr() as usize % 8, 0);
        assert!(!mapped.is_mapped());
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(MappedBytes::open(Path::new("/nonexistent/cosmo.mapped")).is_err());
    }

    #[test]
    fn drop_unmaps_without_crashing() {
        let path = temp_path("drop.bin");
        std::fs::write(&path, vec![1u8; 1 << 16]).unwrap();
        for _ in 0..64 {
            let mapped = MappedBytes::open(&path).unwrap();
            assert_eq!(mapped.len(), 1 << 16);
        }
        std::fs::remove_file(&path).ok();
    }
}
