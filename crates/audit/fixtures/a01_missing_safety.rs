// audit-as: crates/exec/src/lib.rs
// Fixture: an unsafe block with no `// SAFETY:` contract. Audited under
// an allowlisted kernel path so only A01 fires.
pub fn first_byte(xs: &[u8]) -> u8 {
    let p = xs.as_ptr();
    unsafe { *p }
}
