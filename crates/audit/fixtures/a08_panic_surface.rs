// audit-as: crates/serving/src/fixture.rs
//! A08 fixture: panic-prone constructs on the request path — an unwrap
//! and a direct index, both without a `// PANIC:` contract.

pub fn must(x: Option<u32>) -> u32 {
    x.unwrap()
}

pub fn first(v: &[u32]) -> u32 {
    v[0]
}
