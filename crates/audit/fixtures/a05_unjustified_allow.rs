// audit-as: crates/nav/src/engine.rs
// Fixture: a lint suppression with no stated reason — no trailing
// comment, no comment on the line above.

#[allow(dead_code)]
fn helper() {}
