// audit-as: crates/kg/src/algo.rs
// Fixture: a fully documented unsafe block — but in a crate that is not
// on the kernel allowlist, so A02 fires (and only A02).
pub fn first_byte(xs: &[u8]) -> u8 {
    let p = xs.as_ptr();
    // SAFETY: xs is a live slice, so its base pointer is readable.
    unsafe { *p }
}
