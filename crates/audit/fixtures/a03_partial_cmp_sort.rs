// audit-as: crates/serving/src/views.rs
// Fixture: the NaN-panicking float sort PR 2 purged from the workspace.
pub fn rank(mut scores: Vec<f32>) -> Vec<f32> {
    scores.sort_by(|a, b| b.partial_cmp(a).unwrap());
    scores
}
