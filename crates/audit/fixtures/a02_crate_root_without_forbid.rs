// audit-as: crates/text/src/lib.rs
//! Fixture: a crate root that forgot `#![forbid(unsafe_code)]`. Audited
//! as `crates/<safe-crate>/src/lib.rs`, where the attribute is mandatory.
pub mod store;
