// audit-as: crates/lm/src/student.rs
//! A06 fixture: branching on the `fast-math` feature above the kernel
//! dispatch surface. The feature may only change matmul kernel bytes;
//! a student-model code path that exists in one configuration but not
//! the other breaks the "higher layers are config-independent" contract.

#[cfg(feature = "fast-math")]
pub fn relevance_threshold() -> f32 {
    0.45
}

#[cfg(not(feature = "fast-math"))]
pub fn relevance_threshold() -> f32 {
    0.5
}
