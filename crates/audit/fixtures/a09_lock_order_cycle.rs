// audit-as: crates/serving/src/fixture.rs
//! A09 fixture: two locks acquired in opposite orders by two functions —
//! the classic AB/BA deadlock pair the lock-order lint must catch.

pub struct State {
    pub queue: ShardMutex<Vec<u32>>,
    pub stats: ShardMutex<u64>,
}

pub fn producer_path(s: &State) {
    let q = s.queue.lock();
    let st = s.stats.lock();
    consume(q, st);
}

pub fn consumer_path(s: &State) {
    let st = s.stats.lock();
    let q = s.queue.lock();
    consume(q, st);
}
