// audit-as: crates/kg/src/fixture.rs
//! A07 fixture: hash-table iteration order escaping into a return value
//! inside a deterministic crate, with no sort, safe sink, or
//! `// DETERMINISM:` justification.

use std::collections::HashMap;

pub fn tails(m: &HashMap<String, u32>) -> Vec<String> {
    m.keys().cloned().collect()
}
