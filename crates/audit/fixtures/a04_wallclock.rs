// audit-as: crates/core/src/pipeline.rs
// Fixture: a wall-clock read inside a deterministic crate's library
// source — output would depend on the machine, not the seed.
use std::time::Instant;

pub fn stamp() -> f64 {
    let t0 = Instant::now();
    t0.elapsed().as_secs_f64()
}
