//! A07/A08 — the token-tree analyzer lints.
//!
//! **A07 unordered-iteration.** Std's `HashMap`/`HashSet` (and the
//! workspace `FxHashMap`/`FxHashSet` aliases, which are std tables under
//! a fixed-seed hasher) iterate in an order that depends on capacity
//! history and SwissTable internals — stable within a run, but one
//! `reserve` away from silently reordering output. In the deterministic
//! crates any order-observable iteration must therefore end in an
//! order-insensitive sink (`count`, `len`, `min`, …), be rebuilt into an
//! ordered or hash container, be sorted before it escapes, or carry a
//! `// DETERMINISM:` justification.
//!
//! **A08 panic-surface.** In the request-path crates a panic tears down
//! the connection worker that hit it. `unwrap`/`expect`/`panic!`/
//! `unreachable!`/`todo!`/`unimplemented!` in non-test `src/` need a
//! `// PANIC:` contract or a typed-error conversion; in the
//! serving/http/mapped subset, direct slice indexing counts too
//! (`kg`'s CSR kernels index by construction-checked offsets — bounds
//! discipline there is owned by the snapshot validator, see DESIGN.md).
//!
//! Both lints work on the [`crate::tree`] token tree, so `#[cfg(test)]`
//! modules and `#[test]` fns are exempt and strings/comments are already
//! masked away.

use crate::lexer::MaskedLine;
use crate::lints::{comment_justifies, crate_dir, Lint, Policy, Violation};
use crate::tree::FileTree;
use std::collections::BTreeSet;

/// Hash container type names (after `use`-alias resolution).
const HASH_BASES: [&str; 4] = ["HashMap", "HashSet", "FxHashMap", "FxHashSet"];

/// Iteration methods whose result order follows table order.
const ITER_METHODS: [&str; 9] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// Chain terminals whose result is independent of iteration order.
/// Deliberately absent: `sum`/`product` (float addition is not
/// associative, so hash order changes the bits), `min_by_key`/
/// `max_by_key` (ties break by iteration order), `fold`/`for_each`
/// (arbitrary effects), `find`/`position` (first match wins).
const SAFE_TERMINALS: [&str; 8] = [
    "count", "len", "min", "max", "all", "any", "contains", "is_empty",
];

/// Collect targets that erase iteration order: sorted containers and
/// hash containers (rebuilding a table is order-insensitive because keys
/// are unique).
const SAFE_COLLECTS: [&str; 7] = [
    "BTreeMap",
    "BTreeSet",
    "BinaryHeap",
    "HashMap",
    "HashSet",
    "FxHashMap",
    "FxHashSet",
];

/// Sort methods that launder an ordered collect back to determinism.
const SORT_METHODS: [&str; 6] = [
    "sort",
    "sort_unstable",
    "sort_by",
    "sort_unstable_by",
    "sort_by_key",
    "sort_unstable_by_key",
];

/// Results of the tree-lint pass over one file.
#[derive(Debug, Default)]
pub struct TreeAudit {
    /// A07/A08 violations, in source order.
    pub violations: Vec<Violation>,
    /// `// DETERMINISM:` suppressions consumed (ratchet category).
    pub justified_determinism: usize,
    /// `// PANIC:` suppressions consumed (ratchet category).
    pub justified_panic: usize,
}

/// Run the A07/A08 analyzer over one parsed file.
pub fn audit_tree(
    policy: &Policy,
    rel: &str,
    src: &str,
    lines: &[MaskedLine],
    tree: &FileTree,
) -> TreeAudit {
    let raw: Vec<&str> = src.lines().collect();
    let mut out = TreeAudit::default();
    if policy.in_deterministic_src(rel) {
        audit_a07(rel, &raw, lines, tree, &mut out);
    }
    if policy.in_panic_src(rel) {
        audit_a08(policy, rel, &raw, lines, tree, &mut out);
    }
    out.violations
        .sort_by(|a, b| (a.line, a.lint.id()).cmp(&(b.line, b.lint.id())));
    out
}

fn push(out: &mut TreeAudit, rel: &str, raw: &[&str], line: usize, lint: Lint, message: String) {
    out.violations.push(Violation {
        file: rel.to_string(),
        line,
        lint,
        message,
        source: raw.get(line - 1).unwrap_or(&"").to_string(),
    });
}

/// True when `name` denotes a hash container type in this file.
fn is_hash_type(tree: &FileTree, aliases: &BTreeSet<String>, name: &str) -> bool {
    HASH_BASES.contains(&tree.resolve_use(name)) || aliases.contains(name)
}

/// File-local `type X = …Hash…;` aliases.
fn local_hash_type_aliases(tree: &FileTree) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let toks = &tree.toks;
    for i in 0..toks.len() {
        if toks[i].text != "type" {
            continue;
        }
        let Some(name) = toks.get(i + 1).filter(|t| t.is_word()) else {
            continue;
        };
        let mut j = i + 2;
        while j < toks.len() && toks[j].text != "=" && toks[j].text != ";" {
            j += 1;
        }
        if toks.get(j).map(|t| t.text.as_str()) != Some("=") {
            continue;
        }
        // The aliased type is the last path segment before `<` or `;`.
        let mut last: Option<&str> = None;
        let mut k = j + 1;
        while k < toks.len() {
            match toks[k].text.as_str() {
                ";" | "<" => break,
                w if toks[k].is_word() => last = Some(w),
                _ => {}
            }
            k += 1;
        }
        if last.is_some_and(|t| HASH_BASES.contains(&tree.resolve_use(t))) {
            out.insert(name.text.clone());
        }
    }
    out
}

/// Names bound to hash containers anywhere in the file: typed bindings,
/// fields, and params (`w: FxHashMap<…>`) plus constructed bindings
/// (`let w = HashMap::new()`, `let w = iter.collect::<FxHashSet<_>>()`).
/// File-global and flow-insensitive by design — an over-approximation a
/// `// DETERMINISM:` comment can always answer.
fn hash_vars(tree: &FileTree, aliases: &BTreeSet<String>) -> BTreeSet<String> {
    let mut vars = BTreeSet::new();
    let toks = &tree.toks;
    for i in 0..toks.len() {
        // `w : [& mut 'a]* T` — let annotations, struct fields, fn params,
        // and struct-literal fields initialized from a hash constructor.
        if toks[i].text == ":"
            && toks.get(i + 1).map(|t| t.text.as_str()) != Some(":")
            && (i == 0 || toks[i - 1].text != ":")
        {
            let Some(w) = i.checked_sub(1).map(|p| &toks[p]).filter(|t| t.is_word()) else {
                continue;
            };
            let mut j = i + 1;
            loop {
                match toks.get(j).map(|t| t.text.as_str()) {
                    Some("&") | Some("mut") => j += 1,
                    Some("'") => j += 2,
                    _ => break,
                }
            }
            if let Some(t) = toks.get(j).filter(|t| t.is_word()) {
                if is_hash_type(tree, aliases, &t.text) && w.text != "_" {
                    vars.insert(w.text.clone());
                }
            }
        }
        // `let [mut] w = … Hash…::/… Hash…< …` within the initializer.
        if toks[i].text == "let" {
            let mut j = i + 1;
            if toks.get(j).map(|t| t.text.as_str()) == Some("mut") {
                j += 1;
            }
            let Some(w) = toks.get(j).filter(|t| t.is_word() && t.text != "_") else {
                continue;
            };
            if toks.get(j + 1).map(|t| t.text.as_str()) != Some("=") {
                continue;
            }
            let w = w.text.clone();
            let end = tree.stmt_end(i);
            for k in j + 2..end.min(toks.len()) {
                if toks[k].is_word()
                    && is_hash_type(tree, aliases, &toks[k].text)
                    && matches!(
                        toks.get(k + 1).map(|t| t.text.as_str()),
                        Some(":") | Some("<")
                    )
                {
                    vars.insert(w);
                    break;
                }
            }
        }
    }
    vars
}

fn audit_a07(rel: &str, raw: &[&str], lines: &[MaskedLine], tree: &FileTree, out: &mut TreeAudit) {
    let aliases = local_hash_type_aliases(tree);
    let vars = hash_vars(tree, &aliases);
    if vars.is_empty() {
        return;
    }
    let toks = &tree.toks;
    let fire = |out: &mut TreeAudit, line: usize, what: String| {
        if comment_justifies(lines, line, "DETERMINISM:") {
            out.justified_determinism += 1;
            return;
        }
        push(
            out,
            rel,
            raw,
            line,
            Lint::A07,
            format!(
                "{what} in deterministic crate `{}`; sort before the order \
                 escapes, collect into a BTree/sorted structure, or justify \
                 with `// DETERMINISM:`",
                crate_dir(rel)
            ),
        );
    };
    for i in 0..toks.len() {
        if tree.tok_exempt(i) {
            continue;
        }
        let text = toks[i].text.as_str();
        // `v.iter()` family on a hash-typed receiver.
        if text == "." {
            let Some(m) = toks.get(i + 1).filter(|t| t.is_word()) else {
                continue;
            };
            if toks.get(i + 2).map(|t| t.text.as_str()) != Some("(") {
                continue;
            }
            let recv_is_hash = i > 0 && toks[i - 1].is_word() && vars.contains(&toks[i - 1].text);
            if ITER_METHODS.contains(&m.text.as_str()) {
                if !recv_is_hash || chain_is_safe(tree, i) {
                    continue;
                }
                let what = format!(
                    "order-observable `.{}()` on hash container `{}`",
                    m.text,
                    toks[i - 1].text
                );
                fire(out, m.line, what);
            } else if m.text == "extend" && !recv_is_hash {
                // `ordered.extend(&map)` — implicit hash iteration into an
                // order-sensitive receiver. A hash receiver rebuilds a
                // table (keys unique), which is order-insensitive.
                if let Some(v) = bare_hash_arg(tree, i + 2, &vars) {
                    let what = format!("`.extend(…)` drains hash container `{v}` in table order");
                    fire(out, m.line, what);
                }
            }
        }
        // `for pat in [&][mut] v {` over a hash-typed collection. Chained
        // forms (`for k in map.keys()`) are caught by the method case.
        if text == "for" {
            let mut depth = 0i32;
            let mut j = i + 1;
            let mut in_at = None;
            while j < toks.len() {
                match toks[j].text.as_str() {
                    "(" => depth += 1,
                    ")" => depth -= 1,
                    "{" => break,
                    "in" if depth == 0 => {
                        in_at = Some(j);
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
            let Some(mut k) = in_at.map(|j| j + 1) else {
                continue;
            };
            while matches!(
                toks.get(k).map(|t| t.text.as_str()),
                Some("&") | Some("mut")
            ) {
                k += 1;
            }
            let Some(v) = toks
                .get(k)
                .filter(|t| t.is_word() && vars.contains(&t.text))
            else {
                continue;
            };
            if toks.get(k + 1).map(|t| t.text.as_str()) == Some("{") {
                let what = format!("`for` loop over hash container `{}`", v.text);
                fire(out, toks[i].line, what);
            }
        }
    }
}

/// A bare hash-typed argument inside the paren group opening at `open`:
/// a hash var not immediately chained on (chains are the method case).
fn bare_hash_arg(tree: &FileTree, open: usize, vars: &BTreeSet<String>) -> Option<String> {
    let toks = &tree.toks;
    let mut depth = 0i32;
    let mut j = open;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    return None;
                }
            }
            _ => {
                if toks[j].is_word()
                    && vars.contains(&toks[j].text)
                    && toks.get(j + 1).map(|t| t.text.as_str()) != Some(".")
                {
                    return Some(toks[j].text.clone());
                }
            }
        }
        j += 1;
    }
    None
}

/// Whether the method chain starting at the `.` token `i` ends in an
/// order-insensitive sink within its statement: a safe terminal, a
/// collect into a safe container, or an ordered collect whose binding is
/// sorted later in the same block. Only chain-level tokens count —
/// closure bodies (braced or not) sit at paren depth ≥ 1 and are
/// skipped; a `;`, `{`, or `}` at depth 0 ends the chain, and so does
/// the `)` of an enclosing call the trigger sits inside.
fn chain_is_safe(tree: &FileTree, i: usize) -> bool {
    let toks = &tree.toks;
    let mut depth = 0i32;
    let mut j = i;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => {
                depth -= 1;
                if depth < 0 {
                    return false;
                }
            }
            ";" | "{" | "}" if depth == 0 => return false,
            t => {
                if depth == 0 && toks[j].is_word() && j > i && toks[j - 1].text == "." {
                    let is_call = toks.get(j + 1).map(|t| t.text.as_str()) == Some("(");
                    if is_call && SAFE_TERMINALS.contains(&t) {
                        return true;
                    }
                    if t == "collect" {
                        return collect_is_safe(tree, i, j);
                    }
                }
            }
        }
        j += 1;
    }
    false
}

/// Whether the `collect` at token `j` (chain trigger at `i`) lands in an
/// order-insensitive container, or in an ordered one that is sorted
/// before the enclosing block ends.
fn collect_is_safe(tree: &FileTree, i: usize, j: usize) -> bool {
    let toks = &tree.toks;
    // Turbofish: `collect::<T<…>>()`, with `T` possibly `::`-qualified.
    if toks.get(j + 1).map(|t| t.text.as_str()) == Some(":")
        && toks.get(j + 2).map(|t| t.text.as_str()) == Some(":")
        && toks.get(j + 3).map(|t| t.text.as_str()) == Some("<")
    {
        if let Some(t) = path_last_segment(tree, j + 4).filter(|t| t != "_") {
            if SAFE_COLLECTS.contains(&tree.resolve_use(&t)) {
                return true;
            }
            return sorted_later(tree, i);
        }
    }
    // No (or wildcard) turbofish: consult the `let` annotation.
    let start = tree.stmt_start(i);
    if toks.get(start).map(|t| t.text.as_str()) != Some("let") {
        return false;
    }
    let mut k = start + 1;
    if toks.get(k).map(|t| t.text.as_str()) == Some("mut") {
        k += 1;
    }
    if toks.get(k + 1).map(|t| t.text.as_str()) == Some(":") {
        if let Some(t) = path_last_segment(tree, k + 2) {
            if SAFE_COLLECTS.contains(&tree.resolve_use(&t)) {
                return true;
            }
        }
    }
    sorted_later(tree, i)
}

/// Last segment of a (possibly `::`-qualified) type path starting at
/// token `k`: `std::collections::HashSet<…>` resolves to `HashSet`.
fn path_last_segment(tree: &FileTree, mut k: usize) -> Option<String> {
    let toks = &tree.toks;
    let mut last = None;
    while let Some(t) = toks.get(k) {
        match t.text.as_str() {
            ":" => {}
            w if t.is_word() => last = Some(w.to_string()),
            _ => break,
        }
        k += 1;
    }
    last
}

/// Whether the binding produced by the statement containing token `i` is
/// sorted later in the same block (`let mut v = …collect(); …; v.sort…`).
fn sorted_later(tree: &FileTree, i: usize) -> bool {
    let toks = &tree.toks;
    let start = tree.stmt_start(i);
    if toks.get(start).map(|t| t.text.as_str()) != Some("let") {
        return false;
    }
    let mut k = start + 1;
    if toks.get(k).map(|t| t.text.as_str()) == Some("mut") {
        k += 1;
    }
    let Some(name) = toks.get(k).filter(|t| t.is_word() && t.text != "_") else {
        return false;
    };
    let name = name.text.clone();
    let from = tree.stmt_end(i);
    let to = tree.block_end(toks[i].block);
    for m in from..to.min(toks.len()) {
        if toks[m].text == name
            && toks.get(m + 1).map(|t| t.text.as_str()) == Some(".")
            && toks
                .get(m + 2)
                .is_some_and(|t| SORT_METHODS.contains(&t.text.as_str()))
        {
            return true;
        }
    }
    false
}

fn audit_a08(
    policy: &Policy,
    rel: &str,
    raw: &[&str],
    lines: &[MaskedLine],
    tree: &FileTree,
    out: &mut TreeAudit,
) {
    let index_scope = policy.in_index_src(rel);
    let toks = &tree.toks;
    let fire = |out: &mut TreeAudit, line: usize, what: String, fix: &str| {
        if comment_justifies(lines, line, "PANIC:") {
            out.justified_panic += 1;
            return;
        }
        push(
            out,
            rel,
            raw,
            line,
            Lint::A08,
            format!(
                "{what} on the request path (crate `{}`); {fix}, or state the \
                 can't-happen contract with `// PANIC:`",
                crate_dir(rel)
            ),
        );
    };
    for i in 0..toks.len() {
        if tree.tok_exempt(i) {
            continue;
        }
        let text = toks[i].text.as_str();
        if text == "." {
            if let Some(m) = toks.get(i + 1) {
                if matches!(m.text.as_str(), "unwrap" | "expect")
                    && toks.get(i + 2).map(|t| t.text.as_str()) == Some("(")
                {
                    fire(
                        out,
                        m.line,
                        format!("`.{}(…)`", m.text),
                        "convert to a typed error that degrades to a 4xx/5xx response",
                    );
                }
            }
        }
        if matches!(text, "panic" | "unreachable" | "todo" | "unimplemented")
            && toks.get(i + 1).map(|t| t.text.as_str()) == Some("!")
        {
            fire(
                out,
                toks[i].line,
                format!("`{text}!`"),
                "return a typed error instead of aborting the worker",
            );
        }
        if index_scope && text == "[" && i > 0 {
            let p = &toks[i - 1];
            // `&'a [u8]` is a slice type, not an indexing expression.
            let lifetime = p.is_word() && i > 1 && toks[i - 2].text == "'";
            let indexable = (p.is_word()
                && !lifetime
                && !matches!(p.text.as_str(), "let" | "in" | "return" | "mut" | "ref"))
                || p.text == ")"
                || p.text == "]";
            if indexable {
                fire(
                    out,
                    toks[i].line,
                    "direct indexing".to_string(),
                    "use `.get(…)` with typed-error handling",
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::mask_source;
    use crate::tree::parse;

    fn run(rel: &str, src: &str) -> TreeAudit {
        let lines = mask_source(src);
        let tree = parse(&lines);
        audit_tree(&Policy::cosmo(), rel, src, &lines, &tree)
    }

    fn ids(t: &TreeAudit) -> Vec<&'static str> {
        t.violations.iter().map(|v| v.lint.id()).collect()
    }

    const DET: &str = "crates/kg/src/store.rs"; // deterministic AND panic crate

    #[test]
    fn a07_fires_on_unsorted_hash_iteration() {
        let src = "use std::collections::HashMap;\n\
                   fn f(m: &HashMap<String, u32>) -> Vec<String> {\n\
                       m.keys().cloned().collect()\n\
                   }\n";
        let t = run(DET, src);
        assert_eq!(ids(&t), vec!["A07"], "{:?}", t.violations);
        assert_eq!(t.violations[0].line, 3);
    }

    #[test]
    fn a07_accepts_sorted_collect_and_safe_sinks() {
        let src = "use std::collections::HashMap;\n\
                   fn f(m: &HashMap<String, u32>) -> Vec<String> {\n\
                       let mut v: Vec<String> = m.keys().cloned().collect();\n\
                       v.sort_unstable();\n\
                       v\n\
                   }\n\
                   fn g(m: &HashMap<String, u32>) -> usize {\n\
                       m.values().count()\n\
                   }\n\
                   fn h(m: &HashMap<String, u32>) -> bool {\n\
                       m.keys().any(|k| k.is_empty())\n\
                   }\n";
        let t = run(DET, src);
        assert!(t.violations.is_empty(), "{:?}", t.violations);
    }

    #[test]
    fn a07_closure_terminals_do_not_count_as_chain_sinks() {
        // the `len()` inside the closure must not satisfy the chain
        let src = "use std::collections::HashMap;\n\
                   fn f(m: &HashMap<String, u32>) -> Vec<usize> {\n\
                       m.keys().map(|k| k.len()).collect()\n\
                   }\n";
        let t = run(DET, src);
        assert_eq!(ids(&t), vec!["A07"]);
    }

    #[test]
    fn a07_btree_collect_and_hash_rebuild_are_safe() {
        let src = "use std::collections::{BTreeMap, HashMap};\n\
                   fn f(m: &HashMap<String, u32>) -> BTreeMap<String, u32> {\n\
                       m.iter().map(|(k, v)| (k.clone(), *v)).collect()\n\
                   }\n";
        // no let binding and no turbofish: conservatively unsafe
        let t = run(DET, src);
        assert_eq!(ids(&t), vec!["A07"], "bare collect() is opaque");
        let src2 = "use std::collections::HashMap;\n\
                    fn f(m: &HashMap<String, u32>) -> HashMap<String, u32> {\n\
                        m.iter().map(|(k, v)| (k.clone(), *v)).collect::<HashMap<_, _>>()\n\
                    }\n";
        assert!(run(DET, src2).violations.is_empty());
    }

    #[test]
    fn a07_for_loop_over_hash_fires() {
        let src = "use std::collections::HashSet;\n\
                   fn f(s: &HashSet<u32>, out: &mut Vec<u32>) {\n\
                       for x in s {\n\
                           out.push(*x);\n\
                       }\n\
                   }\n";
        let t = run(DET, src);
        assert_eq!(ids(&t), vec!["A07"]);
        assert_eq!(t.violations[0].line, 3);
    }

    #[test]
    fn a07_fx_alias_and_local_type_alias_resolve() {
        let src = "use crate::hash::FxHashMap;\n\
                   type Counts = FxHashMap<String, u32>;\n\
                   fn f(c: &Counts) -> Vec<String> {\n\
                       c.keys().cloned().collect()\n\
                   }\n";
        let t = run("crates/text/src/x.rs", src);
        assert_eq!(ids(&t), vec!["A07"]);
    }

    #[test]
    fn a07_determinism_comment_suppresses_and_counts() {
        let src = "use std::collections::HashMap;\n\
                   fn f(m: &HashMap<String, u32>) -> usize {\n\
                       // DETERMINISM: order feeds a commutative integer sum\n\
                       m.values().map(|v| *v as usize).sum()\n\
                   }\n";
        let t = run(DET, src);
        assert!(t.violations.is_empty(), "{:?}", t.violations);
        assert_eq!(t.justified_determinism, 1);
    }

    #[test]
    fn a07_extend_from_hash_fires_but_hash_rebuild_does_not() {
        let src = "use std::collections::HashMap;\n\
                   fn f(m: &HashMap<u32, u32>, out: &mut Vec<(u32, u32)>) {\n\
                       out.extend(m);\n\
                   }\n\
                   fn g(m: HashMap<u32, u32>, acc: &mut HashMap<u32, u32>) {\n\
                       acc.extend(m);\n\
                   }\n";
        let t = run(DET, src);
        assert_eq!(ids(&t), vec!["A07"], "{:?}", t.violations);
        assert_eq!(t.violations[0].line, 3);
    }

    #[test]
    fn a07_silent_outside_deterministic_crates_and_tests() {
        let src = "use std::collections::HashMap;\n\
                   fn f(m: &HashMap<String, u32>) -> Vec<String> {\n\
                       m.keys().cloned().collect()\n\
                   }\n";
        assert!(run("crates/bench/src/x.rs", src).violations.is_empty());
        let test_src = "use std::collections::HashMap;\n\
                        #[cfg(test)]\n\
                        mod tests {\n\
                            fn f(m: &HashMap<String, u32>) -> Vec<String> {\n\
                                m.keys().cloned().collect()\n\
                            }\n\
                        }\n";
        assert!(run(DET, test_src).violations.is_empty());
    }

    #[test]
    fn a08_unwrap_expect_panics_fire() {
        let src = "fn f(x: Option<u32>) -> u32 {\n\
                       let a = x.unwrap();\n\
                       let b = x.expect(\"present\");\n\
                       if a > b { panic!(\"boom\") }\n\
                       unreachable!()\n\
                   }\n";
        let t = run("crates/serving/src/system.rs", src);
        assert_eq!(ids(&t), vec!["A08", "A08", "A08", "A08"]);
    }

    #[test]
    fn a08_indexing_fires_in_index_crates_only() {
        let src = "fn f(v: &[u32], i: usize) -> u32 {\n    v[i]\n}\n";
        let t = run("crates/http/src/server.rs", src);
        assert_eq!(ids(&t), vec!["A08"]);
        // kg keeps unwrap checks but is exempt from the indexing sub-check
        assert!(run(DET, src).violations.is_empty());
    }

    #[test]
    fn a08_indexing_ignores_types_literals_and_patterns() {
        let src = "fn f(x: [u8; 4], s: &[u8]) -> usize {\n\
                       let arr = [0u8; 4];\n\
                       if let [a, ..] = s {\n\
                           return *a as usize;\n\
                       }\n\
                       arr.len() + x.len()\n\
                   }\n";
        let t = run("crates/http/src/server.rs", src);
        assert!(t.violations.is_empty(), "{:?}", t.violations);
    }

    #[test]
    fn a08_panic_comment_suppresses_and_counts() {
        let src = "fn f(x: Option<u32>) -> u32 {\n\
                       // PANIC: x was validated non-empty by the caller\n\
                       x.unwrap()\n\
                   }\n";
        let t = run("crates/serving/src/system.rs", src);
        assert!(t.violations.is_empty(), "{:?}", t.violations);
        assert_eq!(t.justified_panic, 1);
    }

    #[test]
    fn a08_unwrap_or_variants_and_tests_are_exempt() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    x.unwrap_or(0)\n}\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn g(x: Option<u32>) -> u32 { x.unwrap() }\n\
                   }\n";
        let t = run("crates/serving/src/system.rs", src);
        assert!(t.violations.is_empty(), "{:?}", t.violations);
    }
}
