//! Intra-workspace call-graph builder over parsed [`FileTree`]s.
//!
//! The lock-order lint (A09) needs to know which functions a function
//! calls, so a lock held in `f` can be ordered against locks acquired
//! three frames deeper. Resolution is deliberately *conservative*: a
//! call site resolves to an analyzed function only when the target is
//! unambiguous, because a wrong edge here manufactures a deadlock report
//! out of thin air.
//!
//! Resolution rules:
//!
//! * free calls (`name(…)`, `Type::name(…)`) resolve to a same-file `fn`
//!   of that name first, else to the unique workspace `fn` of that name;
//! * method calls (`.name(…)`) additionally require the name to be
//!   *distinctive* — common container/IO method names (`len`, `get`,
//!   `insert`, `load`, …) never resolve, since they almost always hit
//!   std types, not our code;
//! * anything ambiguous stays unresolved — A09 under-approximates
//!   through such calls rather than inventing edges.

use crate::tree::FileTree;
use std::collections::BTreeMap;

/// Method names that never resolve as intra-workspace calls: they
/// collide with std container/iterator/IO vocabulary far too often for
/// name-based resolution to be trustworthy.
const COMMON_METHODS: &[&str] = &[
    "as_bytes",
    "as_ref",
    "as_slice",
    "as_str",
    "borrow",
    "clear",
    "clone",
    "cmp",
    "collect",
    "contains",
    "default",
    "drain",
    "drop",
    "entry",
    "eq",
    "extend",
    "finish",
    "flush",
    "fmt",
    "from",
    "get",
    "hash",
    "insert",
    "into",
    "into_iter",
    "is_empty",
    "iter",
    "join",
    "len",
    "load",
    "lock",
    "map",
    "new",
    "next",
    "pop",
    "push",
    "read",
    "remove",
    "reset",
    "send",
    "store",
    "take",
    "to_string",
    "to_vec",
    "wait",
    "write",
];

/// A function in the analyzed set: indices into the file list and that
/// file's `fns` table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FnId {
    /// Index into the analyzed-file list.
    pub file: usize,
    /// Index into that file's [`FileTree::fns`].
    pub item: usize,
}

/// One resolved call site inside a function body.
#[derive(Debug, Clone, Copy)]
pub struct CallSite {
    /// Token index of the callee name in the caller's file.
    pub tok: usize,
    /// The resolved callee.
    pub callee: usize,
}

/// The workspace-level function index and call resolver.
pub struct CallGraph {
    /// Every analyzed function, in (file, item) order.
    pub fns: Vec<FnId>,
    /// `name -> indices into fns` (sorted map for deterministic output).
    by_name: BTreeMap<String, Vec<usize>>,
}

impl CallGraph {
    /// Index every `fn` across `files` (path + parsed tree pairs).
    pub fn build(files: &[(String, FileTree)]) -> CallGraph {
        let mut fns = Vec::new();
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (fi, (_, tree)) in files.iter().enumerate() {
            for (ii, item) in tree.fns.iter().enumerate() {
                let idx = fns.len();
                fns.push(FnId { file: fi, item: ii });
                by_name.entry(item.name.clone()).or_default().push(idx);
            }
        }
        CallGraph { fns, by_name }
    }

    /// The global index of `fns[i]`'s name in its own file.
    pub fn name<'a>(&self, files: &'a [(String, FileTree)], i: usize) -> &'a str {
        let id = self.fns[i];
        &files[id.file].1.fns[id.item].name
    }

    /// Resolve a call to `name` made from file `from_file`. `is_method`
    /// marks `.name(…)` receiver calls, which face the extra
    /// distinctiveness requirement.
    pub fn resolve(&self, from_file: usize, name: &str, is_method: bool) -> Option<usize> {
        if is_method && COMMON_METHODS.contains(&name) {
            return None;
        }
        let candidates = self.by_name.get(name)?;
        let same_file: Vec<usize> = candidates
            .iter()
            .copied()
            .filter(|&c| self.fns[c].file == from_file)
            .collect();
        match same_file.as_slice() {
            [one] => Some(*one),
            [] if candidates.len() == 1 => Some(candidates[0]),
            _ => None,
        }
    }

    /// Extract every resolved call site in the body of function `f`.
    /// A call is a word followed by `(` that is not a definition, macro
    /// invocation, or excluded method name.
    pub fn calls_of(&self, files: &[(String, FileTree)], f: usize) -> Vec<CallSite> {
        let id = self.fns[f];
        let tree = &files[id.file].1;
        let Some(body) = tree.fns[id.item].body else {
            return Vec::new();
        };
        let start = tree.blocks[body].open.map(|o| o + 1).unwrap_or(0);
        let end = tree.block_end(body);
        let mut out = Vec::new();
        for i in start..end.min(tree.toks.len()) {
            if !tree.toks[i].is_word() {
                continue;
            }
            if tree.toks.get(i + 1).map(|t| t.text.as_str()) != Some("(") {
                continue;
            }
            let prev = i.checked_sub(1).map(|p| tree.toks[p].text.as_str());
            // `fn name(` is a nested definition, `name!(` handled by the
            // next-token check already (next is `!`), keywords are not
            // calls.
            if prev == Some("fn") {
                continue;
            }
            let text = tree.toks[i].text.as_str();
            if matches!(
                text,
                "if" | "while"
                    | "for"
                    | "match"
                    | "return"
                    | "fn"
                    | "loop"
                    | "Some"
                    | "Ok"
                    | "Err"
                    | "None"
                    | "Box"
                    | "Vec"
            ) {
                continue;
            }
            let is_method = prev == Some(".");
            if let Some(callee) = self.resolve(id.file, text, is_method) {
                out.push(CallSite { tok: i, callee });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::mask_source;
    use crate::tree::parse;

    fn files(srcs: &[(&str, &str)]) -> Vec<(String, FileTree)> {
        srcs.iter()
            .map(|(p, s)| (p.to_string(), parse(&mask_source(s))))
            .collect()
    }

    #[test]
    fn same_file_free_call_resolves() {
        let fs = files(&[("a.rs", "fn callee() {}\nfn caller() { callee(); }\n")]);
        let cg = CallGraph::build(&fs);
        let caller = (0..cg.fns.len())
            .find(|&i| cg.name(&fs, i) == "caller")
            .unwrap();
        let calls = cg.calls_of(&fs, caller);
        assert_eq!(calls.len(), 1);
        assert_eq!(cg.name(&fs, calls[0].callee), "callee");
    }

    #[test]
    fn cross_file_unique_name_resolves_common_method_does_not() {
        let fs = files(&[
            ("a.rs", "fn swap_snapshot() {}\nfn len() {}\n"),
            ("b.rs", "fn go(x: T) { x.swap_snapshot(); x.len(); }\n"),
        ]);
        let cg = CallGraph::build(&fs);
        let go = (0..cg.fns.len())
            .find(|&i| cg.name(&fs, i) == "go")
            .unwrap();
        let calls = cg.calls_of(&fs, go);
        assert_eq!(calls.len(), 1, "len is blocklisted, swap_snapshot unique");
        assert_eq!(cg.name(&fs, calls[0].callee), "swap_snapshot");
    }

    #[test]
    fn ambiguous_names_stay_unresolved() {
        let fs = files(&[
            ("a.rs", "fn helper() {}\n"),
            ("b.rs", "fn helper() {}\n"),
            ("c.rs", "fn go() { helper(); }\n"),
        ]);
        let cg = CallGraph::build(&fs);
        let go = (0..cg.fns.len())
            .find(|&i| cg.name(&fs, i) == "go")
            .unwrap();
        assert!(cg.calls_of(&fs, go).is_empty());
    }

    #[test]
    fn macros_and_keywords_are_not_calls() {
        let fs = files(&[(
            "a.rs",
            "fn go() { println!(\"x\"); if cond() { } }\nfn cond() -> bool { true }\n",
        )]);
        let cg = CallGraph::build(&fs);
        let go = (0..cg.fns.len())
            .find(|&i| cg.name(&fs, i) == "go")
            .unwrap();
        let calls = cg.calls_of(&fs, go);
        assert_eq!(calls.len(), 1);
        assert_eq!(cg.name(&fs, calls[0].callee), "cond");
    }
}
