//! A09 — lock-order analysis over the serving/http lock surface.
//!
//! Extracts per-function lock-acquisition sequences from guard scopes,
//! propagates them across the intra-workspace call graph, and reports
//! any ordering cycle in the resulting lock graph as a potential
//! deadlock.
//!
//! ## Model
//!
//! * An *acquisition* is a no-argument `.lock()`, `.read()`, or
//!   `.write()` call (parking_lot and std both fit; IO `read`/`write`
//!   always take arguments, so they never match).
//! * A lock's identity is its access-path class: the last named field or
//!   producer function in the receiver chain (`self.shards[i].l2.write()`
//!   → `l2`, `shared.queue.lock()` → `queue`,
//!   `self.shard_of(q).read()` → `shard_of`). Two paths naming the same
//!   underlying lock under different fields under-approximate (a missed
//!   cycle), never over-approximate — see DESIGN.md §7.
//! * A guard bound by `let g = …` is held until its block closes or
//!   `drop(g)`; an unbound (temporary) guard is held to the end of its
//!   statement. `let _ = …` drops immediately and is treated as
//!   statement-scoped.
//! * Holding `a` while acquiring `b` (directly, or anywhere inside a
//!   resolved callee) orders `a → b`. A cycle in the resulting directed
//!   graph is a potential deadlock.
//!
//! `// LOCK-ORDER:` on the acquisition line (or the comment block above
//! it) vouches for a deliberate ordering discipline the analysis cannot
//! see (e.g. same-class locks always taken in ascending shard index) and
//! removes that acquisition from the analysis; the suppression is
//! counted in the debt ratchet.

use crate::callgraph::CallGraph;
use crate::lexer::MaskedLine;
use crate::lints::{comment_justifies, Lint, Violation};
use crate::tree::FileTree;
use std::collections::{BTreeMap, BTreeSet};

/// Lock-acquiring methods: no-argument calls only.
const ACQUIRE_METHODS: [&str; 3] = ["lock", "read", "write"];

/// One analyzed file: path, masked lines, parsed tree.
pub struct LockFile {
    /// Path relative to the workspace root.
    pub rel: String,
    /// The masked source (for justification comments + raw lines).
    pub lines: Vec<MaskedLine>,
    /// Raw source lines (violation excerpts).
    pub raw: Vec<String>,
    /// Parsed token tree.
    pub tree: FileTree,
}

/// A lock-order edge: `from` held while `to` is acquired.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Edge {
    from: String,
    to: String,
    /// File index, line, and human detail of the site that creates it.
    file: usize,
    line: usize,
    detail: String,
}

/// Per-function walk results.
#[derive(Debug, Default)]
struct FnSummary {
    /// Lock ids this function acquires directly (unjustified ones only).
    direct: BTreeSet<String>,
    /// Resolved calls with the held-lock snapshot at the call site.
    calls: Vec<(usize, Vec<String>, usize)>, // (callee, held ids, line)
    /// Direct edges: held → acquired inside this one function.
    edges: Vec<Edge>,
}

/// A guard currently held during the walk.
struct Held {
    id: String,
    /// Binding name for `drop(name)` release; `None` for temporaries.
    name: Option<String>,
    /// Block whose close releases the guard; `None` = statement-scoped.
    scope: Option<usize>,
}

/// Run the lock-order analysis over `files` (the serving/http lock
/// surface), returning violations plus the number of `LOCK-ORDER:`
/// justifications consumed.
pub fn audit_lock_order(files: &[LockFile]) -> (Vec<Violation>, usize) {
    let tree_refs: Vec<(String, FileTree)> = files
        .iter()
        .map(|f| (f.rel.clone(), f.tree.clone()))
        .collect();
    let graph = CallGraph::build(&tree_refs);
    let mut justified = 0usize;

    let mut summaries: Vec<FnSummary> = Vec::with_capacity(graph.fns.len());
    for i in 0..graph.fns.len() {
        let id = graph.fns[i];
        let file = &files[id.file];
        summaries.push(walk_fn(file, id.file, id.item, &graph, &mut justified));
    }

    // Fixpoint: the transitive set of lock ids each function may acquire.
    let mut trans: Vec<BTreeSet<String>> = summaries.iter().map(|s| s.direct.clone()).collect();
    loop {
        let mut changed = false;
        for i in 0..summaries.len() {
            let mut add: Vec<String> = Vec::new();
            for (callee, _, _) in &summaries[i].calls {
                for l in &trans[*callee] {
                    if !trans[i].contains(l) {
                        add.push(l.clone());
                    }
                }
            }
            for l in add {
                trans[i].insert(l);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Collect edges: direct ones plus held-across-call propagation.
    let mut edges: Vec<Edge> = Vec::new();
    for (i, s) in summaries.iter().enumerate() {
        edges.extend(s.edges.iter().cloned());
        for (callee, held, line) in &s.calls {
            if held.is_empty() {
                continue;
            }
            let callee_name = graph.name(&tree_refs, *callee).to_string();
            let caller_name = graph.name(&tree_refs, i).to_string();
            for h in held {
                for l in &trans[*callee] {
                    edges.push(Edge {
                        from: h.clone(),
                        to: l.clone(),
                        file: graph.fns[i].file,
                        line: *line,
                        detail: format!(
                            "`{h}` held in `{caller_name}` across call to `{callee_name}`, \
                             which may acquire `{l}`"
                        ),
                    });
                }
            }
        }
    }

    // Deduplicate to one representative edge per (from, to), keeping the
    // first site in deterministic (file, line) order.
    edges.sort();
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    let mut first_edge: BTreeMap<(&str, &str), &Edge> = BTreeMap::new();
    for e in &edges {
        let key = (e.from.as_str(), e.to.as_str());
        if let std::collections::btree_map::Entry::Vacant(slot) = first_edge.entry(key) {
            slot.insert(e);
            adj.entry(e.from.as_str()).or_default().push(e.to.as_str());
        }
    }

    // An edge a→b closes a cycle when b can reach a. Report each
    // distinct cycle (by its sorted lock set) once.
    let mut out = Vec::new();
    let mut reported: BTreeSet<String> = BTreeSet::new();
    for (&(a, b), &e) in &first_edge {
        let Some(path) = reach_path(&adj, b, a) else {
            continue;
        };
        // path: b → … → a; the full cycle is a → b → … → a.
        let mut cycle: Vec<&str> = vec![a];
        cycle.extend(path.iter());
        let mut signature: Vec<&str> = cycle.clone();
        signature.sort();
        signature.dedup();
        let sig = signature.join("→");
        if !reported.insert(sig) {
            continue;
        }
        let file = &files[e.file];
        out.push(Violation {
            file: file.rel.clone(),
            line: e.line,
            lint: Lint::A09,
            message: format!(
                "lock-order cycle: {} — {}; acquire these locks in one \
                 global order, or justify the discipline with `// LOCK-ORDER:`",
                cycle.join(" → "),
                e.detail
            ),
            source: file.raw.get(e.line - 1).cloned().unwrap_or_default(),
        });
    }
    (out, justified)
}

/// BFS from `from` to `to` over the dedup adjacency; returns the node
/// path `from … to` (inclusive) if reachable.
fn reach_path<'a>(
    adj: &BTreeMap<&'a str, Vec<&'a str>>,
    from: &'a str,
    to: &str,
) -> Option<Vec<&'a str>> {
    let mut queue = std::collections::VecDeque::new();
    let mut parent: BTreeMap<&str, &str> = BTreeMap::new();
    queue.push_back(from);
    parent.insert(from, from);
    while let Some(n) = queue.pop_front() {
        if n == to {
            let mut path = vec![n];
            let mut cur = n;
            while parent[cur] != cur {
                cur = parent[cur];
                path.push(cur);
            }
            path.reverse();
            return Some(path);
        }
        for &next in adj.get(n).into_iter().flatten() {
            if !parent.contains_key(next) {
                parent.insert(next, n);
                queue.push_back(next);
            }
        }
    }
    None
}

/// Walk one function body, producing its summary.
fn walk_fn(
    file: &LockFile,
    file_idx: usize,
    item: usize,
    graph: &CallGraph,
    justified: &mut usize,
) -> FnSummary {
    let tree = &file.tree;
    let mut s = FnSummary::default();
    let Some(body) = tree.fns[item].body else {
        return s;
    };
    if tree.fns[item].test_exempt {
        return s;
    }
    let start = tree.blocks[body].open.map(|o| o + 1).unwrap_or(0);
    let end = tree.block_end(body);
    let fn_name = tree.fns[item].name.clone();

    let mut held: Vec<Held> = Vec::new();
    let mut i = start;
    while i < end.min(tree.toks.len()) {
        let t = &tree.toks[i];
        match t.text.as_str() {
            ";" => held.retain(|h| h.scope.is_some()),
            "}" => {
                let b = t.block;
                held.retain(|h| h.scope != Some(b) && h.scope.is_some());
            }
            "drop" => {
                // `drop(name)` releases that guard.
                if tree.toks.get(i + 1).map(|t| t.text.as_str()) == Some("(") {
                    if let Some(name) = tree.toks.get(i + 2).filter(|t| t.is_word()) {
                        if tree.toks.get(i + 3).map(|t| t.text.as_str()) == Some(")") {
                            held.retain(|h| h.name.as_deref() != Some(name.text.as_str()));
                        }
                    }
                }
            }
            "." => {
                // Possible acquisition: `. lock ( )` etc.
                let is_acq = tree
                    .toks
                    .get(i + 1)
                    .map(|m| ACQUIRE_METHODS.contains(&m.text.as_str()))
                    .unwrap_or(false)
                    && tree.toks.get(i + 2).map(|t| t.text.as_str()) == Some("(")
                    && tree.toks.get(i + 3).map(|t| t.text.as_str()) == Some(")");
                if is_acq {
                    let line = tree.toks[i + 1].line;
                    if comment_justifies(&file.lines, line, "LOCK-ORDER:") {
                        *justified += 1;
                        i += 4;
                        continue;
                    }
                    if let Some(id) = receiver_lock_id(tree, i) {
                        // A guard immediately chained on (`.lock().len()`)
                        // is a temporary dropped at its statement's end —
                        // except the std-mutex poison adapters, where the
                        // chain *is* the guard (`.lock().expect(…)`).
                        let chained = tree.toks.get(i + 4).map(|t| t.text.as_str()) == Some(".")
                            && !tree.toks.get(i + 5).is_some_and(|m| {
                                matches!(
                                    m.text.as_str(),
                                    "expect" | "unwrap" | "unwrap_or_else" | "map_err"
                                )
                            });
                        // An unchained acquisition inside a closure runs
                        // once per element with earlier guards still live
                        // (`.map(|s| s.l2.write()).collect()`): the same
                        // lock class is acquired repeatedly, which is a
                        // deadlock unless every thread uses one element
                        // order — report as a self-edge.
                        let in_closure = tree.toks[tree.stmt_start(i)..i]
                            .iter()
                            .any(|t| t.text == "|");
                        if in_closure && !chained {
                            s.edges.push(Edge {
                                from: id.clone(),
                                to: id.clone(),
                                file: file_idx,
                                line,
                                detail: format!(
                                    "`{id}` acquired repeatedly inside one statement in \
                                     `{fn_name}` (guards escape the closure)"
                                ),
                            });
                        }
                        for h in &held {
                            s.edges.push(Edge {
                                from: h.id.clone(),
                                to: id.clone(),
                                file: file_idx,
                                line,
                                detail: format!(
                                    "`{}` acquired in `{fn_name}` while `{}` is held",
                                    id, h.id
                                ),
                            });
                        }
                        s.direct.insert(id.clone());
                        let (name, scope) = if chained {
                            (None, None)
                        } else {
                            binding_of(tree, i)
                        };
                        held.push(Held { id, name, scope });
                        i += 4;
                        continue;
                    }
                }
            }
            _ => {
                // Resolved call site with a held-lock snapshot.
                if t.is_word()
                    && tree.toks.get(i + 1).map(|t| t.text.as_str()) == Some("(")
                    && i > 0
                    && tree.toks[i - 1].text != "fn"
                {
                    let is_method = tree.toks[i - 1].text == ".";
                    if let Some(callee) = graph.resolve(file_idx, t.text.as_str(), is_method) {
                        let snapshot: Vec<String> = held.iter().map(|h| h.id.clone()).collect();
                        s.calls.push((callee, snapshot, t.line));
                    }
                }
            }
        }
        i += 1;
    }
    s
}

/// The lock-id of the receiver chain ending at the `.` token `dot`:
/// the last named field, variable, or producer call before the method.
/// Single-letter closure parameters are traced back to the collection
/// they iterate (`shards.iter().map(|s| s.read())` → `shards`).
fn receiver_lock_id(tree: &FileTree, dot: usize) -> Option<String> {
    let prev = dot.checked_sub(1)?;
    let t = &tree.toks[prev];
    match t.text.as_str() {
        ")" => {
            // `self.shard_of(q).read()` — name the producer function.
            let open = match_back(tree, prev, "(", ")")?;
            let before = open.checked_sub(1)?;
            let w = &tree.toks[before];
            w.is_word().then(|| w.text.clone())
        }
        "]" => {
            // `self.locks[i].lock()` — name the indexed collection.
            let open = match_back(tree, prev, "[", "]")?;
            let before = open.checked_sub(1)?;
            let w = &tree.toks[before];
            w.is_word().then(|| w.text.clone())
        }
        _ if t.is_word() => {
            let word = t.text.clone();
            // A closure parameter (`|s| s.read()`): use the iterated
            // collection's name instead, scanning the statement for
            // `|word|` or `|word,`/`,word|` binders.
            if is_closure_param(tree, prev, &word) {
                if let Some(coll) = iterated_collection(tree, prev) {
                    return Some(coll);
                }
            }
            Some(word)
        }
        _ => None,
    }
}

/// Find the matching opener for the closer at `idx`, walking backward.
fn match_back(tree: &FileTree, idx: usize, open: &str, close: &str) -> Option<usize> {
    let mut depth = 0usize;
    let mut j = idx;
    loop {
        let t = &tree.toks[j].text;
        if t == close {
            depth += 1;
        } else if t == open {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
        j = j.checked_sub(1)?;
    }
}

/// True when `word` at token `at` is bound as a closure parameter
/// earlier in the same statement (`|word|`, `|word,`, `, word|`).
fn is_closure_param(tree: &FileTree, at: usize, word: &str) -> bool {
    let start = tree.stmt_start(at);
    let toks = &tree.toks[start..at];
    toks.windows(3).any(|w| {
        w[1].text == word
            && (w[0].text == "|" || w[0].text == ",")
            && (w[2].text == "|" || w[2].text == ",")
    })
}

/// The collection a closure chain iterates: the word before the first
/// `.iter()` / `.iter_mut()` / `.into_iter()` in the statement.
fn iterated_collection(tree: &FileTree, at: usize) -> Option<String> {
    let start = tree.stmt_start(at);
    for j in start..at {
        if tree.toks[j].text == "."
            && tree
                .toks
                .get(j + 1)
                .map(|t| matches!(t.text.as_str(), "iter" | "iter_mut" | "into_iter"))
                .unwrap_or(false)
        {
            let before = j.checked_sub(1)?;
            let w = &tree.toks[before];
            if w.is_word() {
                return Some(w.text.clone());
            }
        }
    }
    None
}

/// The binding for the acquisition at the `.` token `dot`: `(name,
/// scope_block)` when its statement is `let [mut] name = …` in the same
/// block, else a statement-scoped temporary.
fn binding_of(tree: &FileTree, dot: usize) -> (Option<String>, Option<usize>) {
    let start = tree.stmt_start(dot);
    let toks = &tree.toks;
    if toks.get(start).map(|t| t.text.as_str()) != Some("let") {
        return (None, None);
    }
    // The acquisition must be in the let's own block (a braced closure
    // body inside the initializer is a different scope — temporary).
    if toks[start].block != toks[dot].block {
        return (None, None);
    }
    let mut j = start + 1;
    if toks.get(j).map(|t| t.text.as_str()) == Some("mut") {
        j += 1;
    }
    match toks.get(j) {
        Some(t) if t.is_word() && t.text != "_" => (Some(t.text.clone()), Some(toks[start].block)),
        // `let _ = guard` drops immediately; destructuring patterns keep
        // the guard alive for the block but cannot be drop()-released.
        Some(t) if t.text == "_" => (None, None),
        _ => (None, Some(toks[start].block)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::mask_source;
    use crate::tree::parse;

    fn lockfile(rel: &str, src: &str) -> LockFile {
        LockFile {
            rel: rel.to_string(),
            lines: mask_source(src),
            raw: src.lines().map(str::to_string).collect(),
            tree: parse(&mask_source(src)),
        }
    }

    fn cycles(src: &str) -> Vec<Violation> {
        audit_lock_order(&[lockfile("crates/serving/src/x.rs", src)]).0
    }

    #[test]
    fn nested_guards_in_one_fn_make_an_edge_not_a_cycle() {
        let src = "fn f(&self) {\n    let a = self.alpha.lock();\n    let b = self.beta.lock();\n    use_both(a, b);\n}\n";
        assert!(cycles(src).is_empty(), "one consistent order is fine");
    }

    #[test]
    fn opposite_orders_in_two_fns_cycle() {
        let src = "fn f(&self) {\n    let a = self.alpha.lock();\n    let b = self.beta.lock();\n}\nfn g(&self) {\n    let b = self.beta.lock();\n    let a = self.alpha.lock();\n}\n";
        let vs = cycles(src);
        assert_eq!(vs.len(), 1, "{vs:?}");
        assert!(vs[0].message.contains("alpha"));
        assert!(vs[0].message.contains("beta"));
    }

    #[test]
    fn cross_function_propagation_cycles() {
        let src = "fn f(&self) {\n    let a = self.alpha.lock();\n    helper(self);\n}\nfn helper(&self) {\n    let b = self.beta.lock();\n}\nfn g(&self) {\n    let b = self.beta.lock();\n    self.alpha.lock().touch();\n}\n";
        let vs = cycles(src);
        assert_eq!(vs.len(), 1, "{vs:?}");
        assert!(vs[0].message.contains("cycle"));
    }

    #[test]
    fn drop_releases_the_guard() {
        let src = "fn f(&self) {\n    let a = self.alpha.lock();\n    drop(a);\n    let b = self.beta.lock();\n}\nfn g(&self) {\n    let b = self.beta.lock();\n    let a = self.alpha.lock();\n}\n";
        assert!(cycles(src).is_empty(), "alpha released before beta");
    }

    #[test]
    fn block_scope_releases_the_guard() {
        let src = "fn f(&self) {\n    {\n        let a = self.alpha.lock();\n        a.touch();\n    }\n    let b = self.beta.lock();\n}\nfn g(&self) {\n    let b = self.beta.lock();\n    let a = self.alpha.lock();\n}\n";
        assert!(cycles(src).is_empty());
    }

    #[test]
    fn temporary_guard_is_statement_scoped() {
        let src = "fn f(&self) {\n    let n = self.alpha.lock().len();\n    let b = self.beta.lock();\n}\nfn g(&self) {\n    let b = self.beta.lock();\n    let a = self.alpha.lock();\n}\n";
        assert!(cycles(src).is_empty(), "temporary released at `;`");
    }

    #[test]
    fn self_edge_from_same_class_collect_is_reported() {
        let src = "fn f(&self) {\n    let guards: Vec<_> = self.shards.iter().map(|s| s.l2.write()).collect();\n    use_all(guards);\n}\n";
        let vs = cycles(src);
        assert_eq!(vs.len(), 1, "{vs:?}");
        assert!(vs[0].message.contains("l2"));
    }

    #[test]
    fn lock_order_justification_suppresses_and_counts() {
        let src = "fn f(&self) {\n    // LOCK-ORDER: shards are always taken in ascending index order\n    let guards: Vec<_> = self.shards.iter().map(|s| s.l2.write()).collect();\n    use_all(guards);\n}\n";
        let (vs, justified) = audit_lock_order(&[lockfile("crates/serving/src/x.rs", src)]);
        assert!(vs.is_empty(), "{vs:?}");
        assert_eq!(justified, 1);
    }

    #[test]
    fn closure_param_resolves_to_collection() {
        let src = "fn f(&self) {\n    let a = self.outer.lock();\n    let n: usize = self.shards.iter().map(|s| s.read().len()).sum();\n}\nfn g(&self) {\n    let s = self.shards[0].read();\n    let a = self.outer.lock();\n}\n";
        let vs = cycles(src);
        assert_eq!(vs.len(), 1, "outer→shards in f, shards→outer in g: {vs:?}");
    }

    #[test]
    fn test_exempt_fns_are_skipped() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f(&self) {\n        let a = self.alpha.lock();\n        let b = self.beta.lock();\n    }\n    fn g(&self) {\n        let b = self.beta.lock();\n        let a = self.alpha.lock();\n    }\n}\n";
        assert!(cycles(src).is_empty());
    }
}
