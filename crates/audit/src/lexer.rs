//! A small Rust surface lexer that strips comments and string/char
//! literal *contents* from source text, line by line.
//!
//! The lints in this crate are token greps; the lexer exists so they never
//! fire on text inside a string literal, a doc comment, or a block comment
//! (`"partial_cmp"` in an error message, `unsafe` in prose, …). It is not
//! a parser: it only tracks the five lexical states that decide whether a
//! byte is code, comment, or literal content, which is all the lints need.
//!
//! Handled:
//!
//! * line comments (`//`, `///`, `//!`) — removed from code, text captured
//!   per line so the `SAFETY:` / justification lints can read them;
//! * nested block comments (`/* a /* b */ c */`), across lines;
//! * string literals with escapes (`"a\"b"`), including multi-line ones;
//! * raw (and byte/raw-byte) strings `r"…"`, `r#"…"#`, `br##"…"##` with
//!   any hash depth;
//! * char and byte-char literals (`'a'`, `'\''`, `b'\n'`) without
//!   swallowing lifetimes (`'env`, `'static`, `'_`).
//!
//! Masked bytes are replaced with spaces, so line numbers and column
//! positions in the surviving code are unchanged.

/// One source line after masking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaskedLine {
    /// The line with comments removed and literal contents blanked;
    /// string/char delimiters are kept so the code stays readable.
    pub code: String,
    /// Concatenated text of every comment on this line (without the
    /// `//` / `/*` markers); empty when the line has no comment.
    pub comment: String,
}

impl MaskedLine {
    /// True when the line holds no code at all (blank or comment-only).
    pub fn is_comment_only(&self) -> bool {
        self.code.trim().is_empty() && !self.comment.trim().is_empty()
    }

    /// True when the line's code is an attribute (`#[…]` / `#![…]`).
    pub fn is_attribute(&self) -> bool {
        let t = self.code.trim_start();
        t.starts_with("#[") || t.starts_with("#![")
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Code,
    LineComment,
    /// Nesting depth of `/* … */`.
    BlockComment(u32),
    Str,
    /// Number of `#`s that must follow the closing quote.
    RawStr(u32),
    CharLit,
}

fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Mask `src` into per-line code/comment views. Never fails: invalid
/// Rust degrades to a best-effort mask (the lints then see more, not
/// less, which only errs toward false positives on files rustc would
/// reject anyway).
pub fn mask_source(src: &str) -> Vec<MaskedLine> {
    let chars: Vec<char> = src.chars().collect();
    let mut lines = Vec::new();
    let mut code = String::new();
    let mut comment = String::new();
    let mut state = State::Code;
    let mut prev_code_char = ' ';
    let mut i = 0;

    macro_rules! flush_line {
        () => {
            lines.push(MaskedLine {
                code: std::mem::take(&mut code),
                comment: std::mem::take(&mut comment),
            });
        };
    }

    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();

        if c == '\n' {
            if state == State::LineComment {
                state = State::Code;
            }
            flush_line!();
            i += 1;
            continue;
        }

        match state {
            State::Code => match c {
                '/' if next == Some('/') => {
                    state = State::LineComment;
                    i += 2;
                }
                '/' if next == Some('*') => {
                    state = State::BlockComment(1);
                    // Pad the masked view so code after a same-line
                    // `/* … */` keeps its original columns.
                    code.push_str("  ");
                    i += 2;
                }
                '"' => {
                    // Plain or byte string; raw strings are caught at the
                    // `r`/`b` below before their quote is reached.
                    code.push('"');
                    prev_code_char = '"';
                    state = State::Str;
                    i += 1;
                }
                'r' | 'b' if !is_ident(prev_code_char) => {
                    // Possible raw/byte literal prefix: r"…", r#"…"#, b"…",
                    // br#"…"#, b'…'. Look ahead past an optional second
                    // prefix letter and any hashes.
                    let mut j = i + 1;
                    if c == 'b' && chars.get(j) == Some(&'r') {
                        j += 1;
                    }
                    let mut hashes = 0u32;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    match chars.get(j) {
                        Some('"') if c == 'b' && hashes == 0 && chars.get(i + 1) == Some(&'"') => {
                            // b"…" — ordinary escaped string body.
                            code.push_str("b\"");
                            prev_code_char = '"';
                            state = State::Str;
                            i += 2;
                        }
                        Some('"') if j > i + 1 || c == 'r' => {
                            for &ch in &chars[i..=j] {
                                code.push(ch);
                            }
                            prev_code_char = '"';
                            state = State::RawStr(hashes);
                            i = j + 1;
                        }
                        Some('\'')
                            if c == 'b' && hashes == 0 && chars.get(i + 1) == Some(&'\'') =>
                        {
                            // b'…' byte char literal.
                            code.push_str("b'");
                            prev_code_char = '\'';
                            state = State::CharLit;
                            i += 2;
                        }
                        _ => {
                            code.push(c);
                            prev_code_char = c;
                            i += 1;
                        }
                    }
                }
                '\'' => {
                    // Lifetime or char literal. `'x` followed by an
                    // identifier and *no* closing quote is a lifetime.
                    let is_lifetime = match next {
                        Some(n) if n == '_' || (n.is_alphabetic() && n != '\\') => {
                            let mut j = i + 2;
                            while chars.get(j).copied().map(is_ident) == Some(true) {
                                j += 1;
                            }
                            chars.get(j) != Some(&'\'')
                        }
                        _ => false,
                    };
                    code.push('\'');
                    prev_code_char = '\'';
                    if !is_lifetime {
                        state = State::CharLit;
                    }
                    i += 1;
                }
                _ => {
                    code.push(c);
                    if !c.is_whitespace() {
                        prev_code_char = c;
                    }
                    i += 1;
                }
            },
            State::LineComment => {
                comment.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    comment.push_str("/*");
                    code.push_str("  ");
                    i += 2;
                } else if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        comment.push_str("*/");
                        State::BlockComment(depth - 1)
                    };
                    code.push_str("  ");
                    i += 2;
                } else {
                    comment.push(c);
                    code.push(' ');
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    if next == Some('\n') {
                        // Line continuation: let the newline be handled by
                        // the flush above so line numbers stay aligned.
                        code.push(' ');
                        i += 1;
                    } else {
                        code.push_str("  ");
                        i += 2; // skip the escaped char (also handles \" and \\)
                    }
                } else if c == '"' {
                    code.push('"');
                    state = State::Code;
                    i += 1;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                let closes =
                    c == '"' && (0..hashes as usize).all(|h| chars.get(i + 1 + h) == Some(&'#'));
                if closes {
                    code.push('"');
                    for _ in 0..hashes {
                        code.push('#');
                    }
                    state = State::Code;
                    i += 1 + hashes as usize;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
            State::CharLit => {
                if c == '\\' {
                    if next == Some('\n') {
                        // Invalid Rust, but the newline must still flush
                        // its line so positions stay aligned.
                        code.push(' ');
                        i += 1;
                    } else {
                        code.push_str("  ");
                        i += 2;
                    }
                } else if c == '\'' {
                    code.push('\'');
                    state = State::Code;
                    i += 1;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
        }
    }
    // Final line without trailing newline.
    if !code.is_empty() || !comment.is_empty() || lines.is_empty() {
        flush_line!();
    }
    lines
}

/// True when `code` contains `word` as a standalone token (not embedded
/// in a longer identifier like `unsafe_code`).
pub fn contains_word(code: &str, word: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = code[start..].find(word) {
        let at = start + pos;
        let before_ok = at == 0
            || !code[..at]
                .chars()
                .next_back()
                .map(is_ident)
                .unwrap_or(false);
        let after = code[at + word.len()..].chars().next();
        let after_ok = !after.map(is_ident).unwrap_or(false);
        if before_ok && after_ok {
            return true;
        }
        start = at + word.len();
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code_of(src: &str) -> Vec<String> {
        mask_source(src).into_iter().map(|l| l.code).collect()
    }

    #[test]
    fn line_comment_is_stripped_and_captured() {
        let lines = mask_source("let x = 1; // unsafe partial_cmp\nlet y = 2;");
        assert_eq!(lines[0].code.trim_end(), "let x = 1;");
        assert_eq!(lines[0].comment, " unsafe partial_cmp");
        assert_eq!(lines[1].code, "let y = 2;");
        assert!(lines[1].comment.is_empty());
    }

    #[test]
    fn doc_comments_are_comments() {
        let lines = mask_source("/// uses unsafe internally\nfn f() {}");
        assert!(lines[0].code.trim().is_empty());
        assert!(lines[0].comment.contains("uses unsafe internally"));
        assert!(lines[0].is_comment_only());
    }

    #[test]
    fn nested_block_comments() {
        let lines = mask_source("a /* x /* unsafe */ y */ b\nc");
        assert_eq!(lines[0].code.replace(' ', ""), "ab");
        assert!(lines[0].comment.contains("unsafe"));
        assert_eq!(lines[1].code, "c");
    }

    #[test]
    fn block_comment_spans_lines() {
        let lines = mask_source("a /* one\ntwo unsafe\nthree */ b");
        assert_eq!(lines[0].code.trim(), "a");
        assert!(lines[0].comment.contains("one"));
        assert!(lines[1].code.trim().is_empty());
        assert!(lines[1].comment.contains("unsafe"));
        assert_eq!(lines[2].code.trim(), "b");
    }

    #[test]
    fn string_contents_are_blanked() {
        let lines = mask_source(r#"let s = "calls partial_cmp and unsafe";"#);
        assert!(!lines[0].code.contains("partial_cmp"));
        assert!(!lines[0].code.contains("unsafe"));
        assert!(lines[0].code.contains('"'), "delimiters survive");
    }

    #[test]
    fn slashes_inside_string_are_not_comments() {
        let lines = mask_source(r#"let url = "http://example.com"; let x = 1; // real"#);
        assert!(lines[0].code.contains("let x = 1;"));
        assert_eq!(lines[0].comment, " real");
    }

    #[test]
    fn escaped_quote_does_not_end_string() {
        let lines = mask_source(r#"let s = "a\"b // not a comment"; done();"#);
        assert!(lines[0].code.contains("done();"));
        assert!(lines[0].comment.is_empty());
        assert!(!lines[0].code.contains("not a comment"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = r####"let s = r#"quote " and // and unsafe"#; after();"####;
        let lines = mask_source(src);
        assert!(lines[0].code.contains("after();"));
        assert!(!lines[0].code.contains("unsafe"));
        assert!(lines[0].comment.is_empty());
    }

    #[test]
    fn raw_byte_string() {
        let lines = mask_source(r###"let s = br##"body // unsafe"##; x();"###);
        assert!(lines[0].code.contains("x();"));
        assert!(!lines[0].code.contains("unsafe"));
    }

    #[test]
    fn multiline_string_keeps_masking() {
        let lines = mask_source("let s = \"line one\nline // two unsafe\";\nlet y = 3;");
        assert!(!lines[1].code.contains("unsafe"));
        assert!(lines[1].comment.is_empty(), "// inside string is content");
        assert_eq!(lines[2].code, "let y = 3;");
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lines = mask_source("fn f<'a>(x: &'a str, y: &'static u8, z: &'_ i8) { g(x) }");
        assert!(lines[0].code.contains("'a"));
        assert!(lines[0].code.contains("'static"));
        assert!(lines[0].code.contains("g(x)"));
    }

    #[test]
    fn char_literals_are_blanked() {
        let lines = mask_source("let q = '\"'; let e = '\\''; let n = b'\\n'; h();");
        assert!(lines[0].code.contains("h();"));
        // the double quote inside the char must not open a string
        assert!(!lines[0].code.contains("let e = \""));
    }

    #[test]
    fn identifier_ending_in_r_before_string() {
        // `for` / `var` ends in r|b but the quote opens a plain string.
        let lines = mask_source(r#"attr="x // y"; z();"#);
        assert!(lines[0].code.contains("z();"));
        assert!(lines[0].comment.is_empty());
    }

    #[test]
    fn word_boundaries() {
        assert!(contains_word("unsafe fn f()", "unsafe"));
        assert!(contains_word("return unsafe { x }", "unsafe"));
        assert!(!contains_word("#![forbid(unsafe_code)]", "unsafe"));
        assert!(!contains_word("let my_unsafe = 1;", "unsafe"));
        assert!(contains_word("a.partial_cmp(b)", "partial_cmp"));
        assert!(!contains_word("a.partial_cmp_x(b)", "partial_cmp"));
    }

    #[test]
    fn attribute_lines_detected() {
        let lines = code_of("#[allow(dead_code)]\n#![forbid(unsafe_code)]\nfn f() {}");
        let masked = mask_source("#[allow(dead_code)]\n#![forbid(unsafe_code)]\nfn f() {}");
        assert!(masked[0].is_attribute());
        assert!(masked[1].is_attribute());
        assert!(!masked[2].is_attribute());
        assert_eq!(lines[2], "fn f() {}");
    }
}
