//! # cosmo-audit
//!
//! A workspace invariant linter for COSMO-rs. The system's core guarantee
//! — bitwise-deterministic output at any thread count — is easy to break
//! silently: one `partial_cmp().unwrap()` float sort, one wall-clock read
//! in a pipeline stage, one undocumented `unsafe` block. This crate turns
//! those conventions into machine-checked lints that run in tier-1:
//!
//! | id  | invariant |
//! |-----|-----------|
//! | A01 | every `unsafe` is immediately preceded by a `// SAFETY:` comment |
//! | A02 | `unsafe` only in the kernel allowlist; all other crate roots `#![forbid(unsafe_code)]` |
//! | A03 | no `partial_cmp` (float sorts must use `total_cmp`) |
//! | A04 | no `SystemTime`/`Instant`/thread-identity in deterministic crates |
//! | A05 | every `#[allow(…)]` carries a justification comment |
//! | A06 | the `fast-math` feature cfg stays inside the kernel dispatch surface |
//!
//! Lints run over a masked view of the source (see [`lexer`]) so they
//! never fire inside strings or comments. `cargo run -p cosmo-audit`
//! audits the workspace and exits nonzero on any violation; the fixture
//! snippets under `crates/audit/fixtures/` pin each lint against rot.

#![forbid(unsafe_code)]

pub mod lexer;
pub mod lints;
pub mod walk;

pub use lints::{audit_source, Lint, Policy, Violation};

use std::io;
use std::path::Path;

/// Outcome of a workspace audit.
#[derive(Debug)]
pub struct AuditReport {
    /// Number of files scanned.
    pub files_audited: usize,
    /// Every violation, in deterministic (path, line) order.
    pub violations: Vec<Violation>,
}

/// Parse a fixture's `// audit-as: <path>` directive: the workspace path
/// class the snippet pretends to live at, so path-conditional lints (A02's
/// crate-root rule, A04's deterministic-crate scope) fire as intended.
/// Only the first five lines are searched — the directive is a header.
pub fn audit_as_directive(src: &str) -> Option<String> {
    src.lines().take(5).find_map(|l| {
        l.trim()
            .strip_prefix("// audit-as: ")
            .map(|p| p.trim().to_string())
    })
}

/// Audit the workspace rooted at `root` under the COSMO policy.
pub fn run_audit(root: &Path) -> io::Result<AuditReport> {
    let policy = Policy::cosmo();
    let files = walk::collect_rs_files(root)?;
    let mut violations = Vec::new();
    for rel in &files {
        let src = std::fs::read_to_string(root.join(rel))?;
        violations.extend(audit_source(&policy, rel, &src));
    }
    Ok(AuditReport {
        files_audited: files.len(),
        violations,
    })
}
