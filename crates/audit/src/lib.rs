//! # cosmo-audit
//!
//! A workspace invariant linter for COSMO-rs. The system's core guarantee
//! — bitwise-deterministic output at any thread count, served without
//! tearing down connection workers — is easy to break silently: one
//! `partial_cmp().unwrap()` float sort, one wall-clock read in a pipeline
//! stage, one `HashMap` iterated into output, one nested lock taken in
//! the wrong order. This crate turns those conventions into
//! machine-checked lints that run in tier-1:
//!
//! | id  | invariant |
//! |-----|-----------|
//! | A01 | every `unsafe` is immediately preceded by a `// SAFETY:` comment |
//! | A02 | `unsafe` only in the kernel allowlist; all other crate roots `#![forbid(unsafe_code)]` |
//! | A03 | no `partial_cmp` (float sorts must use `total_cmp`) |
//! | A04 | no `SystemTime`/`Instant`/thread-identity in deterministic crates |
//! | A05 | every `#[allow(…)]` carries a justification comment |
//! | A06 | the `fast-math` feature cfg stays inside the kernel dispatch surface |
//! | A07 | no order-observable hash iteration in deterministic crates (`// DETERMINISM:`) |
//! | A08 | no panic surface in request-path crate sources (`// PANIC:`) |
//! | A09 | no lock-order cycles across the serving/http lock surface (`// LOCK-ORDER:`) |
//!
//! A01–A06 are line lints over the masked view (see [`lexer`]); A07–A09
//! run on the token tree ([`tree`]) and the intra-workspace call graph
//! ([`callgraph`]). Each justification marker consumed is counted and
//! ratcheted by the committed `audit-baseline.json` ([`baseline`]):
//! violations must be zero, and the per-marker suppression counts may
//! only decrease. `cargo run -p cosmo-audit` audits the workspace and
//! exits nonzero on any violation; the fixture snippets under
//! `crates/audit/fixtures/` pin each lint against rot.

#![forbid(unsafe_code)]

pub mod analyzer;
pub mod baseline;
pub mod callgraph;
pub mod json;
pub mod lexer;
pub mod lints;
pub mod locks;
pub mod tree;
pub mod walk;

pub use lints::{audit_source, Lint, Policy, Violation};

use std::io;
use std::path::Path;

/// Per-marker justification-comment totals — the debt the baseline
/// ratchet tracks. A justified site is *suppressed, not solved*: the
/// counts may only go down release over release.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct JustifiedCounts {
    /// `// SAFETY:` contracts covering `unsafe` (A01).
    pub safety: usize,
    /// `// DETERMINISM:` suppressions (A07).
    pub determinism: usize,
    /// `// PANIC:` suppressions (A08).
    pub panic: usize,
    /// `// LOCK-ORDER:` suppressions (A09).
    pub lock_order: usize,
}

impl JustifiedCounts {
    /// Accumulate another file's counts.
    pub fn add(&mut self, other: &JustifiedCounts) {
        self.safety += other.safety;
        self.determinism += other.determinism;
        self.panic += other.panic;
        self.lock_order += other.lock_order;
    }
}

/// Outcome of a workspace audit.
#[derive(Debug)]
pub struct AuditReport {
    /// Number of files scanned.
    pub files_audited: usize,
    /// Every violation, in deterministic (path, line) order.
    pub violations: Vec<Violation>,
    /// Justification-comment totals consumed across the scan.
    pub justified: JustifiedCounts,
}

/// Parse a fixture's `// audit-as: <path>` directive: the workspace path
/// class the snippet pretends to live at, so path-conditional lints (A02's
/// crate-root rule, A04/A07's deterministic-crate scope, A08/A09's
/// request-path scope) fire as intended. Only the first five lines are
/// searched — the directive is a header.
pub fn audit_as_directive(src: &str) -> Option<String> {
    src.lines().take(5).find_map(|l| {
        l.trim()
            .strip_prefix("// audit-as: ")
            .map(|p| p.trim().to_string())
    })
}

/// Run every single-file lint (A01–A08, plus A09 confined to this one
/// file) over one source. The workspace audit uses the same passes but
/// runs A09 across all lock-scope files together; single-file mode is
/// what fixtures and `cosmo-audit <file.rs>` exercise.
pub fn audit_snippet(policy: &Policy, rel: &str, src: &str) -> (Vec<Violation>, JustifiedCounts) {
    let lines = lexer::mask_source(src);
    let tree = tree::parse(&lines);
    let mut violations = lints::audit_source(policy, rel, src);
    let ta = analyzer::audit_tree(policy, rel, src, &lines, &tree);
    let mut justified = JustifiedCounts {
        safety: lints::count_safety_justified(&lines),
        determinism: ta.justified_determinism,
        panic: ta.justified_panic,
        lock_order: 0,
    };
    violations.extend(ta.violations);
    if policy.in_lock_scope(rel) {
        let lf = locks::LockFile {
            rel: rel.to_string(),
            lines,
            raw: src.lines().map(str::to_string).collect(),
            tree,
        };
        let (lvs, lj) = locks::audit_lock_order(&[lf]);
        violations.extend(lvs);
        justified.lock_order = lj;
    }
    sort_violations(&mut violations);
    (violations, justified)
}

fn sort_violations(vs: &mut [Violation]) {
    vs.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.lint.id()).cmp(&(b.file.as_str(), b.line, b.lint.id()))
    });
}

/// Audit the workspace rooted at `root` under the COSMO policy.
pub fn run_audit(root: &Path) -> io::Result<AuditReport> {
    let policy = Policy::cosmo();
    let files = walk::collect_rs_files(root)?;
    let mut violations = Vec::new();
    let mut justified = JustifiedCounts::default();
    let mut lock_files: Vec<locks::LockFile> = Vec::new();
    for rel in &files {
        let src = std::fs::read_to_string(root.join(rel))?;
        let lines = lexer::mask_source(&src);
        let tree = tree::parse(&lines);
        violations.extend(audit_source(&policy, rel, &src));
        let ta = analyzer::audit_tree(&policy, rel, &src, &lines, &tree);
        justified.add(&JustifiedCounts {
            safety: lints::count_safety_justified(&lines),
            determinism: ta.justified_determinism,
            panic: ta.justified_panic,
            lock_order: 0,
        });
        violations.extend(ta.violations);
        if policy.in_lock_scope(rel) {
            lock_files.push(locks::LockFile {
                rel: rel.clone(),
                lines,
                raw: src.lines().map(str::to_string).collect(),
                tree,
            });
        }
    }
    let (lvs, lj) = locks::audit_lock_order(&lock_files);
    violations.extend(lvs);
    justified.lock_order = lj;
    sort_violations(&mut violations);
    Ok(AuditReport {
        files_audited: files.len(),
        violations,
        justified,
    })
}
