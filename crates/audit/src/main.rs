//! `cosmo-audit` CLI: audit the workspace, print `file:line:lint-id`
//! violations, exit nonzero when any invariant is broken.
//!
//! Usage:
//!   cargo run -p cosmo-audit                       # audit the enclosing workspace
//!   cargo run -p cosmo-audit -- <root>             # audit an explicit root
//!   cargo run -p cosmo-audit -- <file.rs>          # audit one file (fixtures use this)
//!   cargo run -p cosmo-audit -- --format json      # machine-readable diagnostics
//!   cargo run -p cosmo-audit -- --check-baseline   # enforce the debt ratchet
//!   cargo run -p cosmo-audit -- --write-baseline   # re-baseline (reviewable diff)

#![forbid(unsafe_code)]

use cosmo_audit::{audit_snippet, baseline, json, AuditReport, Policy};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Name of the committed ratchet file at the workspace root.
const BASELINE_FILE: &str = "audit-baseline.json";

struct Cli {
    root: Option<PathBuf>,
    json: bool,
    check_baseline: bool,
    write_baseline: bool,
}

fn parse_cli(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        root: None,
        json: false,
        check_baseline: false,
        write_baseline: false,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--format" => {
                i += 1;
                match args.get(i).map(String::as_str) {
                    Some("json") => cli.json = true,
                    Some("text") => cli.json = false,
                    other => return Err(format!("--format expects json|text, got {other:?}")),
                }
            }
            "--check-baseline" => cli.check_baseline = true,
            "--write-baseline" => cli.write_baseline = true,
            flag if flag.starts_with('-') => return Err(format!("unknown flag {flag}")),
            path if cli.root.is_none() => cli.root = Some(PathBuf::from(path)),
            extra => return Err(format!("unexpected argument {extra}")),
        }
        i += 1;
    }
    if cli.check_baseline && cli.write_baseline {
        return Err("--check-baseline and --write-baseline are mutually exclusive".to_string());
    }
    Ok(cli)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_cli(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cosmo-audit: {e}");
            eprintln!(
                "usage: cosmo-audit [workspace-root | file.rs] [--format json|text] \
                 [--check-baseline | --write-baseline]"
            );
            return ExitCode::from(2);
        }
    };

    let root = match cli.root.clone().or_else(find_workspace_root) {
        Some(r) => r,
        None => {
            eprintln!("cosmo-audit: no workspace Cargo.toml above the current directory");
            return ExitCode::from(2);
        }
    };

    let single_file = root.is_file();
    let report = if single_file {
        match audit_file(&root) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("cosmo-audit: failed to read {}: {e}", root.display());
                return ExitCode::from(2);
            }
        }
    } else {
        match cosmo_audit::run_audit(&root) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("cosmo-audit: failed to read {}: {e}", root.display());
                return ExitCode::from(2);
            }
        }
    };

    if cli.json {
        print!("{}", json::report_json(&report));
    } else {
        for v in &report.violations {
            println!("{v}");
        }
        println!(
            "cosmo-audit: {} files audited, {} violation(s), justified suppressions: \
             SAFETY {} / DETERMINISM {} / PANIC {} / LOCK-ORDER {}",
            report.files_audited,
            report.violations.len(),
            report.justified.safety,
            report.justified.determinism,
            report.justified.panic,
            report.justified.lock_order,
        );
    }
    if !report.violations.is_empty() {
        return ExitCode::FAILURE;
    }

    // The ratchet only makes sense against the workspace scan.
    if cli.write_baseline && !single_file {
        let path = root.join(BASELINE_FILE);
        if let Err(e) = std::fs::write(&path, baseline::render(&report.justified)) {
            eprintln!("cosmo-audit: failed to write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!("cosmo-audit: wrote {}", path.display());
    }
    if cli.check_baseline && !single_file {
        let path = root.join(BASELINE_FILE);
        let committed = match std::fs::read_to_string(&path) {
            Ok(text) => match baseline::parse(&text) {
                Some(c) => c,
                None => {
                    eprintln!(
                        "cosmo-audit: {} is malformed; regenerate with --write-baseline",
                        path.display()
                    );
                    return ExitCode::FAILURE;
                }
            },
            Err(e) => {
                eprintln!(
                    "cosmo-audit: missing baseline {} ({e}); create it with --write-baseline",
                    path.display()
                );
                return ExitCode::FAILURE;
            }
        };
        let (failures, reminders) = baseline::check(&report.justified, &committed);
        for r in &reminders {
            eprintln!("cosmo-audit: note: {r}");
        }
        for f in &failures {
            eprintln!("cosmo-audit: ratchet: {f}");
        }
        if !failures.is_empty() {
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

/// Audit a single `.rs` file under the workspace policy. The file's
/// `// audit-as: <path>` directive (used by the fixtures) decides which
/// workspace path class it is judged as; without one the path is taken
/// as given — outside every allowlist unless it really is a kernel file.
fn audit_file(path: &Path) -> std::io::Result<AuditReport> {
    let src = std::fs::read_to_string(path)?;
    let rel = cosmo_audit::audit_as_directive(&src)
        .unwrap_or_else(|| path.to_string_lossy().replace('\\', "/"));
    let (violations, justified) = audit_snippet(&Policy::cosmo(), &rel, &src);
    Ok(AuditReport {
        files_audited: 1,
        violations,
        justified,
    })
}

/// Ascend from the current directory to the first `Cargo.toml` declaring
/// `[workspace]`.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if is_workspace_root(&dir) {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn is_workspace_root(dir: &Path) -> bool {
    std::fs::read_to_string(dir.join("Cargo.toml"))
        .map(|s| s.contains("[workspace]"))
        .unwrap_or(false)
}
