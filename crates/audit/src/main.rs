//! `cosmo-audit` CLI: audit the workspace, print `file:line:lint-id`
//! violations, exit nonzero when any invariant is broken.
//!
//! Usage:
//!   cargo run -p cosmo-audit               # audit the enclosing workspace
//!   cargo run -p cosmo-audit -- <root>     # audit an explicit root
//!   cargo run -p cosmo-audit -- <file.rs>  # audit one file (fixtures use this)

#![forbid(unsafe_code)]

use cosmo_audit::{audit_source, AuditReport, Policy};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let root = match args.as_slice() {
        [] => match find_workspace_root() {
            Some(r) => r,
            None => {
                eprintln!("cosmo-audit: no workspace Cargo.toml above the current directory");
                return ExitCode::from(2);
            }
        },
        [root] => PathBuf::from(root),
        _ => {
            eprintln!("usage: cosmo-audit [workspace-root | file.rs]");
            return ExitCode::from(2);
        }
    };

    let report = if root.is_file() {
        match audit_file(&root) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("cosmo-audit: failed to read {}: {e}", root.display());
                return ExitCode::from(2);
            }
        }
    } else {
        match cosmo_audit::run_audit(&root) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("cosmo-audit: failed to read {}: {e}", root.display());
                return ExitCode::from(2);
            }
        }
    };

    for v in &report.violations {
        println!("{v}");
    }
    if report.violations.is_empty() {
        println!(
            "cosmo-audit: {} files audited, 0 violations",
            report.files_audited
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "cosmo-audit: {} files audited, {} violation(s)",
            report.files_audited,
            report.violations.len()
        );
        ExitCode::FAILURE
    }
}

/// Audit a single `.rs` file under the workspace policy. The file's
/// `// audit-as: <path>` directive (used by the fixtures) decides which
/// workspace path class it is judged as; without one the path is taken
/// as given — outside every allowlist unless it really is a kernel file.
fn audit_file(path: &Path) -> std::io::Result<AuditReport> {
    let src = std::fs::read_to_string(path)?;
    let rel = cosmo_audit::audit_as_directive(&src)
        .unwrap_or_else(|| path.to_string_lossy().replace('\\', "/"));
    Ok(AuditReport {
        files_audited: 1,
        violations: audit_source(&Policy::cosmo(), &rel, &src),
    })
}

/// Ascend from the current directory to the first `Cargo.toml` declaring
/// `[workspace]`.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if is_workspace_root(&dir) {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn is_workspace_root(dir: &Path) -> bool {
    std::fs::read_to_string(dir.join("Cargo.toml"))
        .map(|s| s.contains("[workspace]"))
        .unwrap_or(false)
}
