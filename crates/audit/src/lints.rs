//! The workspace invariant lints, each individually testable.
//!
//! Every lint works on the masked view produced by [`crate::lexer`], so
//! nothing fires inside strings or comments. Violations carry
//! `file:line:lint-id` plus the offending source line.

use crate::lexer::{contains_word, mask_source, MaskedLine};
use std::fmt;

/// Lint identifiers, stable across releases (fixtures and CI grep them).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Lint {
    /// `unsafe` without an immediately-preceding `// SAFETY:` comment.
    A01,
    /// `unsafe` outside the kernel allowlist, or a crate root missing
    /// `#![forbid(unsafe_code)]`.
    A02,
    /// `partial_cmp` (NaN-panicking float comparisons; use `total_cmp`).
    A03,
    /// Wall-clock / scheduler identity in a deterministic crate.
    A04,
    /// `#[allow(…)]` without a justification comment.
    A05,
    /// `fast-math` feature cfg outside the kernel dispatch surface.
    A06,
    /// Order-observable iteration of a hash container in a deterministic
    /// crate without a sort, an order-insensitive sink, or a
    /// `// DETERMINISM:` justification.
    A07,
    /// Panic surface (`unwrap`/`expect`/`panic!`/`unreachable!`/direct
    /// indexing) in request-path crate sources without a `// PANIC:`
    /// justification.
    A08,
    /// Cross-function lock-acquisition ordering cycle (potential
    /// deadlock) without a `// LOCK-ORDER:` justification.
    A09,
}

impl Lint {
    /// Stable string id, e.g. `"A01"`.
    pub fn id(self) -> &'static str {
        match self {
            Lint::A01 => "A01",
            Lint::A02 => "A02",
            Lint::A03 => "A03",
            Lint::A04 => "A04",
            Lint::A05 => "A05",
            Lint::A06 => "A06",
            Lint::A07 => "A07",
            Lint::A08 => "A08",
            Lint::A09 => "A09",
        }
    }
}

/// One lint hit: `file:line:lint-id` plus the offending line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Path relative to the workspace root, forward slashes.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Which lint fired.
    pub lint: Lint,
    /// Human explanation of this specific hit.
    pub message: String,
    /// The offending source line, verbatim.
    pub source: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}:{}: {}: {}",
            self.file,
            self.line,
            self.lint.id(),
            self.message
        )?;
        write!(f, "    | {}", self.source.trim_end())
    }
}

/// Static policy: which files may contain `unsafe`, which crates must be
/// free of wall-clock reads, and where crate roots live.
pub struct Policy {
    /// Files allowed to contain `unsafe` (the audited kernel surface).
    pub unsafe_allowlist: &'static [&'static str],
    /// Crates (dir names under `crates/`) whose *library sources* must be
    /// deterministic: no `SystemTime`, `Instant`, or thread-identity
    /// reads. Bench and the serving metrics modules are intentionally
    /// absent — measuring wall clock is their job.
    pub deterministic_crates: &'static [&'static str],
    /// Library files allowed to branch on the `fast-math` feature: the
    /// kernel dispatch surface and the benchmark that measures both
    /// tiers. Everything above the kernels must be config-independent so
    /// the feature can only ever change matmul bytes, never shapes,
    /// orderings, or control flow.
    pub fast_math_allowlist: &'static [&'static str],
    /// Request-path crates whose `src/` must be panic-free: an `unwrap`
    /// tears down the connection worker that hit it, so every reachable
    /// panic needs a `// PANIC:` contract or a typed-error conversion.
    pub panic_crates: &'static [&'static str],
    /// The subset of [`Self::panic_crates`] where *direct slice indexing*
    /// is also part of the panic surface. `kg` is deliberately absent:
    /// its CSR traversal kernels index by construction-checked offsets in
    /// hot loops, and bounds discipline there is owned by the snapshot
    /// validator, not per-site comments.
    pub index_crates: &'static [&'static str],
    /// Path prefixes whose lock acquisitions participate in the A09
    /// cross-function lock-order analysis (the live serving surface,
    /// where RwLock/Mutex nesting can deadlock under traffic).
    pub lock_order_roots: &'static [&'static str],
}

impl Policy {
    /// The COSMO-rs workspace policy.
    pub fn cosmo() -> Self {
        Policy {
            unsafe_allowlist: &[
                "crates/nn/src/tensor.rs",
                "crates/exec/src/lib.rs",
                "crates/kg/src/zerocopy.rs",
                "crates/mapped/src/lib.rs",
            ],
            deterministic_crates: &[
                "synth",
                "teacher",
                "core",
                "kg",
                "nn",
                "text",
                "lm",
                "relevance",
                "sessrec",
                "nav",
            ],
            fast_math_allowlist: &["crates/nn/src/tensor.rs", "crates/bench/src/extensions.rs"],
            panic_crates: &["serving", "http", "mapped", "kg"],
            index_crates: &["serving", "http", "mapped"],
            lock_order_roots: &["crates/serving/src/", "crates/http/src/"],
        }
    }

    /// True for `src/lib.rs` and `crates/<name>/src/lib.rs` — the files
    /// where `#![forbid(unsafe_code)]` is enforced.
    fn is_crate_root(rel: &str) -> bool {
        if rel == "src/lib.rs" {
            return true;
        }
        let parts: Vec<&str> = rel.split('/').collect();
        parts.len() == 4 && parts[0] == "crates" && parts[2] == "src" && parts[3] == "lib.rs"
    }

    fn allows_unsafe(&self, rel: &str) -> bool {
        self.unsafe_allowlist.contains(&rel)
    }

    /// A crate root belonging to one of the unsafe-allowlisted crates
    /// cannot `forbid(unsafe_code)` (the attribute is crate-wide).
    fn crate_may_skip_forbid(&self, rel: &str) -> bool {
        self.unsafe_allowlist
            .iter()
            .any(|allowed| crate_dir(allowed) == crate_dir(rel))
    }

    /// True when `rel` may branch on the `fast-math` feature: the
    /// allowlisted kernel/bench files, plus test and bench sources
    /// (which pin per-configuration goldens and oracles).
    fn allows_fast_math_cfg(&self, rel: &str) -> bool {
        self.fast_math_allowlist.contains(&rel)
            || rel
                .split('/')
                .any(|part| part == "tests" || part == "benches")
    }

    /// True when `rel` is a library source of a deterministic crate
    /// (`crates/<det>/src/…`). Tests and benches may measure wall clock;
    /// the shipping library must not.
    pub fn in_deterministic_src(&self, rel: &str) -> bool {
        Self::in_crate_src(rel, self.deterministic_crates)
    }

    /// True when `rel` is a library source of a panic-free request-path
    /// crate (A08 scope).
    pub fn in_panic_src(&self, rel: &str) -> bool {
        Self::in_crate_src(rel, self.panic_crates)
    }

    /// True when `rel` additionally treats direct indexing as panic
    /// surface (A08 indexing sub-check scope).
    pub fn in_index_src(&self, rel: &str) -> bool {
        Self::in_crate_src(rel, self.index_crates)
    }

    /// True when `rel` participates in the A09 lock-order analysis.
    pub fn in_lock_scope(&self, rel: &str) -> bool {
        self.lock_order_roots.iter().any(|p| rel.starts_with(p))
    }

    fn in_crate_src(rel: &str, crates: &[&str]) -> bool {
        let parts: Vec<&str> = rel.split('/').collect();
        parts.len() >= 4 && parts[0] == "crates" && parts[2] == "src" && crates.contains(&parts[1])
    }
}

pub(crate) fn crate_dir(rel: &str) -> &str {
    let parts: Vec<&str> = rel.split('/').collect();
    if parts.len() >= 2 && parts[0] == "crates" {
        parts[1]
    } else {
        ""
    }
}

/// The shared justification-comment grammar: a violation on 1-based
/// `line` is justified by `marker` (e.g. `"DETERMINISM:"`) when the
/// marker appears in that line's trailing comment, or above it — the
/// upward walk crosses comment-only lines (multi-line prose) and
/// attribute lines, and stops at the first code line, whose trailing
/// comment still counts.
pub fn comment_justifies(lines: &[MaskedLine], line: usize, marker: &str) -> bool {
    if line == 0 || line > lines.len() {
        return false;
    }
    let idx = line - 1;
    if lines[idx].comment.contains(marker) {
        return true;
    }
    let mut j = idx;
    while j > 0 {
        j -= 1;
        let l = &lines[j];
        if l.comment.contains(marker) {
            return true;
        }
        if l.is_comment_only() || l.is_attribute() {
            continue;
        }
        return false;
    }
    false
}

/// Whether the `unsafe` on 0-based line `idx` is covered by a
/// `// SAFETY:` comment, under the shared [`comment_justifies`] grammar:
/// same-line trailing comment, or prose above crossing comment-only and
/// attribute lines.
fn has_safety_comment(lines: &[MaskedLine], idx: usize) -> bool {
    comment_justifies(lines, idx + 1, "SAFETY:")
}

/// Count `unsafe` sites whose `// SAFETY:` contract is present — the
/// justified-suppression total the baseline ratchet tracks for A01.
pub fn count_safety_justified(lines: &[MaskedLine]) -> usize {
    lines
        .iter()
        .enumerate()
        .filter(|(i, l)| contains_word(&l.code, "unsafe") && has_safety_comment(lines, *i))
        .count()
}

/// True when the `#[allow(…)]` on `idx` carries a justification: a
/// non-empty trailing comment on the same line, or a comment line (or
/// trailing comment) immediately above it.
fn allow_is_justified(lines: &[MaskedLine], idx: usize) -> bool {
    if !lines[idx].comment.trim().is_empty() {
        return true;
    }
    idx > 0 && !lines[idx - 1].comment.trim().is_empty()
}

/// Run every lint over one file. `rel` is the path relative to the
/// workspace root (forward slashes); `src` is the file's contents.
pub fn audit_source(policy: &Policy, rel: &str, src: &str) -> Vec<Violation> {
    let lines = mask_source(src);
    let raw_lines: Vec<&str> = src.lines().collect();
    let mut out = Vec::new();
    let mut push = |line: usize, lint: Lint, message: String| {
        out.push(Violation {
            file: rel.to_string(),
            line,
            lint,
            message,
            source: raw_lines.get(line - 1).unwrap_or(&"").to_string(),
        });
    };

    let mut saw_forbid = false;
    for (i, l) in lines.iter().enumerate() {
        let lineno = i + 1;
        let code = l.code.as_str();

        if code.contains("forbid(unsafe_code)") {
            saw_forbid = true;
        }

        // A01 / A02 — unsafe hygiene.
        if contains_word(code, "unsafe") {
            if !policy.allows_unsafe(rel) {
                push(
                    lineno,
                    Lint::A02,
                    format!(
                        "`unsafe` outside the kernel allowlist ({}); move the code \
                         into an allowlisted kernel file or make it safe",
                        policy.unsafe_allowlist.join(", ")
                    ),
                );
            }
            if !has_safety_comment(&lines, i) {
                push(
                    lineno,
                    Lint::A01,
                    "`unsafe` without an immediately-preceding `// SAFETY:` comment \
                     stating the invariant that makes it sound"
                        .to_string(),
                );
            }
        }

        // A03 — NaN-panicking float comparison.
        if contains_word(code, "partial_cmp") {
            push(
                lineno,
                Lint::A03,
                "`partial_cmp` reintroduces NaN panics/incomparability in sorts; \
                 use `f32::total_cmp`/`f64::total_cmp` with a stable tiebreak"
                    .to_string(),
            );
        }

        // A04 — nondeterminism sources in deterministic crates.
        if policy.in_deterministic_src(rel) {
            for banned in ["SystemTime", "Instant"] {
                if contains_word(code, banned) {
                    push(
                        lineno,
                        Lint::A04,
                        format!(
                            "`{banned}` in deterministic crate `{}`; wall-clock reads \
                             belong in cosmo-bench or the serving metrics modules",
                            crate_dir(rel)
                        ),
                    );
                }
            }
            if code.contains("thread::current().id()") {
                push(
                    lineno,
                    Lint::A04,
                    format!(
                        "thread-identity read in deterministic crate `{}`; output \
                         must not depend on which worker ran the task",
                        crate_dir(rel)
                    ),
                );
            }
        }

        // A06 — the fast-math feature stays a kernel-dispatch concern.
        // The cfg marker is read from the masked code (so strings and
        // comments never trip it) while the feature name is read from the
        // raw line, because masking blanks string contents.
        if (code.contains("cfg(") || code.contains("cfg!"))
            && raw_lines
                .get(i)
                .is_some_and(|raw| raw.contains("\"fast-math\""))
            && !policy.allows_fast_math_cfg(rel)
        {
            push(
                lineno,
                Lint::A06,
                format!(
                    "`fast-math` cfg outside the kernel dispatch surface ({}); \
                     the feature may only change matmul kernel bytes — higher \
                     layers must behave identically in both configurations",
                    policy.fast_math_allowlist.join(", ")
                ),
            );
        }

        // A05 — allow attributes need a reason.
        if (code.contains("#[allow(") || code.contains("#![allow("))
            && !allow_is_justified(&lines, i)
        {
            push(
                lineno,
                Lint::A05,
                "`#[allow(…)]` without a justification comment (same line or the \
                 line above); say why the lint is wrong here"
                    .to_string(),
            );
        }
    }

    // A02, crate-root half: every crate root outside the unsafe kernels
    // must opt the whole crate out of `unsafe`.
    if Policy::is_crate_root(rel) && !policy.crate_may_skip_forbid(rel) && !saw_forbid {
        out.push(Violation {
            file: rel.to_string(),
            line: 1,
            lint: Lint::A02,
            message: "crate root must carry `#![forbid(unsafe_code)]` (only the \
                      allowlisted kernel crates may contain unsafe)"
                .to_string(),
            source: raw_lines.first().unwrap_or(&"").to_string(),
        });
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> Policy {
        Policy::cosmo()
    }

    fn ids(vs: &[Violation]) -> Vec<&'static str> {
        vs.iter().map(|v| v.lint.id()).collect()
    }

    const KERNEL: &str = "crates/nn/src/tensor.rs"; // unsafe-allowlisted path

    #[test]
    fn a01_fires_without_safety_comment() {
        let src = "fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n";
        let vs = audit_source(&p(), KERNEL, src);
        assert_eq!(ids(&vs), vec!["A01"]);
        assert_eq!(vs[0].line, 2);
        assert!(vs[0].source.contains("unsafe"));
    }

    #[test]
    fn a01_accepts_safety_comment() {
        let src = "fn f(p: *const u8) -> u8 {\n    // SAFETY: caller guarantees p is valid\n    unsafe { *p }\n}\n";
        assert!(audit_source(&p(), KERNEL, src).is_empty());
    }

    #[test]
    fn a01_safety_comment_crosses_attributes_and_multiline_prose() {
        let src = "// SAFETY: requires avx2, verified by the caller via\n\
                   // is_x86_feature_detected — body is plain slice math.\n\
                   #[target_feature(enable = \"avx2\")]\n\
                   unsafe fn g() {}\n";
        assert!(audit_source(&p(), KERNEL, src).is_empty());
    }

    #[test]
    fn a01_blank_line_breaks_adjacency() {
        let src =
            "// SAFETY: stale contract far above\n\nfn f(p: *const u8) -> u8 { unsafe { *p } }\n";
        let vs = audit_source(&p(), KERNEL, src);
        assert_eq!(ids(&vs), vec!["A01"]);
    }

    #[test]
    fn a01_ignores_unsafe_in_strings_and_comments() {
        let src = "// this fn is not unsafe\nfn f() { let s = \"unsafe\"; g(s); }\n";
        assert!(audit_source(&p(), KERNEL, src).is_empty());
    }

    #[test]
    fn a02_fires_outside_allowlist_even_with_safety() {
        let src = "fn f(p: *const u8) -> u8 {\n    // SAFETY: p is valid\n    unsafe { *p }\n}\n";
        let vs = audit_source(&p(), "crates/kg/src/store.rs", src);
        assert_eq!(ids(&vs), vec!["A02"]);
    }

    #[test]
    fn a02_crate_root_needs_forbid() {
        let vs = audit_source(&p(), "crates/lm/src/lib.rs", "//! docs\npub mod model;\n");
        assert_eq!(ids(&vs), vec!["A02"]);
        let ok = audit_source(
            &p(),
            "crates/lm/src/lib.rs",
            "//! docs\n#![forbid(unsafe_code)]\npub mod model;\n",
        );
        assert!(ok.is_empty());
    }

    #[test]
    fn a02_kernel_crate_roots_are_exempt_from_forbid() {
        assert!(audit_source(&p(), "crates/nn/src/lib.rs", "pub mod tensor;\n").is_empty());
        assert!(
            audit_source(&p(), "src/lib.rs", "pub use cosmo_core as core;\n")
                .iter()
                .any(|v| v.lint == Lint::A02)
        );
    }

    #[test]
    fn a03_fires_on_partial_cmp_in_code_only() {
        let src = "v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n";
        let vs = audit_source(&p(), "crates/serving/src/views.rs", src);
        assert_eq!(ids(&vs), vec!["A03"]);
        let doc = "/// never use partial_cmp here\nv.sort_by(|a, b| a.total_cmp(b));\n";
        assert!(audit_source(&p(), "crates/serving/src/views.rs", doc).is_empty());
    }

    #[test]
    fn a04_fires_only_in_deterministic_crate_src() {
        let src = "use std::time::Instant;\n";
        let vs = audit_source(&p(), "crates/core/src/pipeline.rs", src);
        assert_eq!(ids(&vs), vec!["A04"]);
        // bench, serving, and test files of deterministic crates are free
        assert!(audit_source(&p(), "crates/bench/src/extensions.rs", src).is_empty());
        assert!(audit_source(&p(), "crates/serving/src/system.rs", src).is_empty());
        assert!(audit_source(&p(), "crates/core/tests/wallclock.rs", src).is_empty());
    }

    #[test]
    fn a04_catches_systemtime_and_thread_id() {
        let src = "let t = SystemTime::now();\nlet id = std::thread::current().id();\n";
        let vs = audit_source(&p(), "crates/kg/src/store.rs", src);
        assert_eq!(ids(&vs), vec!["A04", "A04"]);
    }

    #[test]
    fn a05_requires_justification() {
        let bad = "#[allow(dead_code)]\nfn f() {}\n";
        let vs = audit_source(&p(), "crates/kg/src/store.rs", bad);
        assert_eq!(ids(&vs), vec!["A05"]);

        let trailing = "#[allow(dead_code)] // kept for the serde schema\nfn f() {}\n";
        assert!(audit_source(&p(), "crates/kg/src/store.rs", trailing).is_empty());

        let preceding = "// kept for the serde schema\n#[allow(dead_code)]\nfn f() {}\n";
        assert!(audit_source(&p(), "crates/kg/src/store.rs", preceding).is_empty());
    }

    #[test]
    fn a06_fires_on_fast_math_cfg_outside_kernels() {
        let src = "#[cfg(feature = \"fast-math\")]\nfn f() {}\n";
        let vs = audit_source(&p(), "crates/lm/src/student.rs", src);
        assert_eq!(ids(&vs), vec!["A06"]);
        let bang = "let fused = cfg!(feature = \"fast-math\");\n";
        let vs = audit_source(&p(), "crates/core/src/critic.rs", bang);
        assert_eq!(ids(&vs), vec!["A06"]);
    }

    #[test]
    fn a06_allows_kernel_bench_test_and_bench_sources() {
        let src = "#[cfg(not(feature = \"fast-math\"))]\nfn f() {}\n";
        assert!(audit_source(&p(), KERNEL, src).is_empty());
        assert!(audit_source(&p(), "crates/bench/src/extensions.rs", src).is_empty());
        assert!(audit_source(&p(), "crates/nn/tests/goldens.rs", src).is_empty());
        assert!(audit_source(&p(), "crates/bench/benches/nn_kernels.rs", src).is_empty());
    }

    #[test]
    fn a06_ignores_comments_and_cfg_free_mentions() {
        let doc = "/// upstream gates this behind cfg(feature = \"fast-math\")\nfn f() {}\n";
        assert!(audit_source(&p(), "crates/lm/src/student.rs", doc).is_empty());
        // the quoted name without a cfg marker on the line is not a gate
        let plain = "let name = \"fast-math\";\n";
        assert!(audit_source(&p(), "crates/lm/src/student.rs", plain).is_empty());
    }

    #[test]
    fn violation_display_is_file_line_id() {
        let vs = audit_source(&p(), KERNEL, "fn f(p: *const u8) -> u8 { unsafe { *p } }\n");
        let shown = vs[0].to_string();
        assert!(
            shown.starts_with("crates/nn/src/tensor.rs:1: A01:"),
            "{shown}"
        );
        assert!(shown.contains("| fn f"));
    }
}
