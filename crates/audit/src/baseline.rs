//! The debt ratchet — `audit-baseline.json`.
//!
//! Violations are always a hard failure; the baseline tracks the softer
//! debt: how many `// SAFETY:` / `// DETERMINISM:` / `// PANIC:` /
//! `// LOCK-ORDER:` justification comments the workspace leans on. Each
//! marker is a reviewed suppression, not a fix, so the committed counts
//! may only *decrease*:
//!
//! * count above baseline → CI fails (`--check-baseline`): someone added
//!   a new suppression without paying debt elsewhere — either fix the
//!   site or consciously re-baseline with `--write-baseline` in the same
//!   PR, where the diff makes the decision reviewable;
//! * count below baseline → `--check-baseline` reminds you to ratchet
//!   the file down (also a committed, reviewable diff).
//!
//! The file format is the `justified` object from [`crate::json`],
//! parsed with a purpose-built scanner (std-only crate; the four keys
//! and integer values are the whole grammar).

use crate::JustifiedCounts;

/// The ratchet categories, in file order.
pub const CATEGORIES: [&str; 4] = ["SAFETY", "DETERMINISM", "PANIC", "LOCK-ORDER"];

/// Render the baseline file contents for `counts`.
pub fn render(counts: &JustifiedCounts) -> String {
    format!(
        "{{\n  \"justified\": {}\n}}\n",
        crate::json::justified_json(counts)
    )
}

/// Parse a baseline file. Returns `None` when any category key is
/// missing or malformed — a corrupt baseline must fail the check, not
/// silently pass it.
pub fn parse(text: &str) -> Option<JustifiedCounts> {
    Some(JustifiedCounts {
        safety: key_value(text, "SAFETY")?,
        determinism: key_value(text, "DETERMINISM")?,
        panic: key_value(text, "PANIC")?,
        lock_order: key_value(text, "LOCK-ORDER")?,
    })
}

/// Scan for `"key" : <digits>`.
fn key_value(text: &str, key: &str) -> Option<usize> {
    let quoted = format!("\"{key}\"");
    let at = text.find(&quoted)? + quoted.len();
    let rest = text[at..].trim_start().strip_prefix(':')?.trim_start();
    let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
    if digits.is_empty() {
        return None;
    }
    digits.parse().ok()
}

/// Compare current counts against the committed baseline. Returns
/// human-readable failures (counts that went *up*) and reminders
/// (counts that went *down* and should be ratcheted).
pub fn check(current: &JustifiedCounts, committed: &JustifiedCounts) -> (Vec<String>, Vec<String>) {
    let pairs = [
        ("SAFETY", current.safety, committed.safety),
        ("DETERMINISM", current.determinism, committed.determinism),
        ("PANIC", current.panic, committed.panic),
        ("LOCK-ORDER", current.lock_order, committed.lock_order),
    ];
    let mut failures = Vec::new();
    let mut reminders = Vec::new();
    for (name, cur, base) in pairs {
        if cur > base {
            failures.push(format!(
                "justified `// {name}:` suppressions increased: {base} -> {cur}; \
                 fix the new site or consciously re-baseline with --write-baseline"
            ));
        } else if cur < base {
            reminders.push(format!(
                "justified `// {name}:` suppressions decreased: {base} -> {cur}; \
                 ratchet audit-baseline.json down with --write-baseline"
            ));
        }
    }
    (failures, reminders)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(s: usize, d: usize, p: usize, l: usize) -> JustifiedCounts {
        JustifiedCounts {
            safety: s,
            determinism: d,
            panic: p,
            lock_order: l,
        }
    }

    #[test]
    fn render_parse_roundtrip() {
        let c = counts(12, 3, 9, 2);
        let text = render(&c);
        assert_eq!(parse(&text), Some(c));
    }

    #[test]
    fn corrupt_baseline_fails_closed() {
        assert_eq!(parse("{}"), None);
        assert_eq!(parse("{\"justified\": {\"SAFETY\": 1}}"), None);
        assert_eq!(parse("{\"SAFETY\": \"many\"}"), None);
    }

    #[test]
    fn increase_fails_decrease_reminds_equal_passes() {
        let base = counts(10, 5, 5, 2);
        let (f, r) = check(&counts(10, 5, 5, 2), &base);
        assert!(f.is_empty() && r.is_empty());
        let (f, r) = check(&counts(11, 5, 5, 2), &base);
        assert_eq!(f.len(), 1);
        assert!(f[0].contains("SAFETY"));
        assert!(r.is_empty());
        let (f, r) = check(&counts(10, 4, 5, 1), &base);
        assert!(f.is_empty());
        assert_eq!(r.len(), 2);
    }
}
