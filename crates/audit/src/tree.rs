//! Token-tree / brace-structure parser over the masked source.
//!
//! PR 5's lints were line-level token greps; the analyzer lints added in
//! audit v2 (A07 unordered-iteration, A08 panic-surface, A09 lock-order)
//! need *structure*: which tokens sit inside which block, where a
//! function's body starts and ends, which `mod` blocks are
//! `#[cfg(test)]`-gated, and where statements begin. This module builds
//! exactly that — and nothing more. It is not a Rust parser: it tokenizes
//! the masked view (so literals and comments are already gone), tracks
//! brace nesting into a block tree, and recognizes the handful of item
//! shapes the lints consume (`fn`, `use`, attribute-gated `mod`). Input
//! that rustc would reject degrades to a best-effort tree; the parser
//! never panics (locked by the byte-soup property tests).
//!
//! Every token carries its 1-based line and column in the *original*
//! source, which the lexer's space-preserving mask guarantees line up.

use crate::lexer::MaskedLine;

/// One token of masked code: a word (identifier, keyword, or number run)
/// or a single punctuation character.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// 1-based source line.
    pub line: usize,
    /// 1-based source column (chars, not bytes).
    pub col: usize,
    /// Token text: an ident/number run, or one punctuation char.
    pub text: String,
    /// Index into [`FileTree::blocks`] of the innermost enclosing block.
    pub block: usize,
}

impl Tok {
    /// True when the token is a word (identifier / keyword / number).
    pub fn is_word(&self) -> bool {
        self.text
            .chars()
            .next()
            .map(|c| c.is_alphanumeric() || c == '_')
            .unwrap_or(false)
    }
}

/// One `{ … }` region. Block 0 is the virtual file-level block.
#[derive(Debug, Clone)]
pub struct Block {
    /// Enclosing block, `None` for the root.
    pub parent: Option<usize>,
    /// Token index of the opening `{` (`None` for the root).
    pub open: Option<usize>,
    /// Token index of the closing `}` (`None` for the root or when the
    /// file ends with the block still open).
    pub close: Option<usize>,
    /// True when this block (or an ancestor) is `#[cfg(test)]`-gated or
    /// the body of a `#[test]` function — exempt from the shipping-code
    /// lints.
    pub test_exempt: bool,
}

/// A recognized `fn` item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// Token index of the `fn` keyword.
    pub fn_tok: usize,
    /// Block index of the body (`None` for bodyless trait declarations).
    pub body: Option<usize>,
    /// True when the fn is `#[test]`-attributed or inside a
    /// `#[cfg(test)]` block.
    pub test_exempt: bool,
}

/// A local name introduced by a `use` declaration, mapped to the last
/// path segment chain it resolves to (enough for the lints' type-name
/// resolution — full paths are never needed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UseAlias {
    /// The name visible in this file (`Map` in `use x::HashMap as Map`).
    pub local: String,
    /// The final imported segment (`HashMap` in the example above).
    pub target: String,
}

/// The parsed file: flat token stream + block tree + recognized items.
#[derive(Debug, Default, Clone)]
pub struct FileTree {
    /// Every code token, in source order.
    pub toks: Vec<Tok>,
    /// Brace-tree nodes; `blocks[0]` is the file-level root.
    pub blocks: Vec<Block>,
    /// Every recognized `fn` item, in source order.
    pub fns: Vec<FnItem>,
    /// Local names introduced by `use` declarations.
    pub uses: Vec<UseAlias>,
}

impl FileTree {
    /// True when token `i` sits in test-exempt code.
    pub fn tok_exempt(&self, i: usize) -> bool {
        self.blocks[self.toks[i].block].test_exempt
    }

    /// The innermost function whose body block contains token `i`.
    pub fn enclosing_fn(&self, i: usize) -> Option<usize> {
        let mut b = Some(self.toks[i].block);
        while let Some(bi) = b {
            if let Some(f) = self.fns.iter().position(|f| f.body == Some(bi)) {
                return Some(f);
            }
            b = self.blocks[bi].parent;
        }
        None
    }

    /// Resolve a name through the file's `use` aliases: the imported
    /// segment it stands for, or the name itself.
    pub fn resolve_use<'a>(&'a self, name: &'a str) -> &'a str {
        self.uses
            .iter()
            .find(|u| u.local == name)
            .map(|u| u.target.as_str())
            .unwrap_or(name)
    }

    /// Walk back from token `i` (exclusive) to the start of its
    /// statement: just after the previous `;`, `{`, or `}` in the same
    /// block — or the closing `}` of a direct child block (a `for`/`if`
    /// statement without a trailing `;` also ends there) — skipping over
    /// the child blocks' interiors.
    pub fn stmt_start(&self, i: usize) -> usize {
        let block = self.toks[i].block;
        let mut j = i;
        while j > 0 {
            let t = &self.toks[j - 1];
            if t.block == block && (t.text == ";" || t.text == "{" || t.text == "}") {
                return j;
            }
            if t.text == "}" && self.blocks.get(t.block).and_then(|b| b.parent) == Some(block) {
                return j;
            }
            j -= 1;
        }
        0
    }

    /// Walk forward from token `i` (inclusive) to the end of its
    /// statement: the next `;` in the same block, or the opening `{` of a
    /// child block hanging off this statement (`for … in x {`), or the
    /// block's end. Returns the exclusive end index.
    pub fn stmt_end(&self, i: usize) -> usize {
        let block = self.toks[i].block;
        let mut j = i;
        while j < self.toks.len() {
            let t = &self.toks[j];
            if t.block == block && t.text == ";" {
                return j + 1;
            }
            if t.text == "{" && self.blocks.get(t.block).and_then(|b| b.parent) == Some(block) {
                return j;
            }
            if t.block != block && !self.block_is_descendant(t.block, block) {
                return j;
            }
            j += 1;
        }
        j
    }

    /// Exclusive token index just past block `b` (its `}` token, or EOF).
    pub fn block_end(&self, b: usize) -> usize {
        self.blocks[b]
            .close
            .map(|c| c + 1)
            .unwrap_or(self.toks.len())
    }

    fn block_is_descendant(&self, mut b: usize, ancestor: usize) -> bool {
        loop {
            if b == ancestor {
                return true;
            }
            match self.blocks[b].parent {
                Some(p) => b = p,
                None => return false,
            }
        }
    }
}

fn is_word_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenize masked lines into words and single-char puncts with source
/// positions. Whitespace separates; everything else is one token.
fn tokenize(lines: &[MaskedLine]) -> Vec<Tok> {
    let mut toks = Vec::new();
    for (li, l) in lines.iter().enumerate() {
        let mut word = String::new();
        let mut word_col = 0usize;
        for (ci, c) in l.code.chars().enumerate() {
            if is_word_char(c) {
                if word.is_empty() {
                    word_col = ci + 1;
                }
                word.push(c);
            } else {
                if !word.is_empty() {
                    toks.push(Tok {
                        line: li + 1,
                        col: word_col,
                        text: std::mem::take(&mut word),
                        block: 0,
                    });
                }
                if !c.is_whitespace() {
                    toks.push(Tok {
                        line: li + 1,
                        col: ci + 1,
                        text: c.to_string(),
                        block: 0,
                    });
                }
            }
        }
        if !word.is_empty() {
            toks.push(Tok {
                line: li + 1,
                col: word_col,
                text: word,
                block: 0,
            });
        }
    }
    toks
}

/// Parse masked lines into a [`FileTree`]. Never panics; unbalanced
/// braces degrade to a flat tree.
pub fn parse(lines: &[MaskedLine]) -> FileTree {
    let mut toks = tokenize(lines);
    let mut blocks = vec![Block {
        parent: None,
        open: None,
        close: None,
        test_exempt: false,
    }];
    let mut stack: Vec<usize> = vec![0];

    // Attribute state feeding block/fn classification. `pending_cfg_test`
    // arms the *next* opened block (the `mod tests {` body);
    // `pending_test_attr` arms the next `fn`.
    let mut pending_cfg_test = false;
    let mut pending_test_attr = false;
    let mut fns: Vec<FnItem> = Vec::new();
    let mut uses: Vec<UseAlias> = Vec::new();
    // A `fn` whose body `{` has not been seen yet: (fns index, paren depth
    // at the `fn` keyword).
    let mut open_fn: Option<usize> = None;
    let mut paren_depth = 0usize;
    let mut bracket_depth = 0usize;

    let mut i = 0;
    while i < toks.len() {
        let text = toks[i].text.clone();
        let top = *stack.last().unwrap_or(&0);
        toks[i].block = top;

        match text.as_str() {
            "{" => {
                let exempt = blocks[top].test_exempt
                    || pending_cfg_test
                    || open_fn
                        .and_then(|f| fns.get(f))
                        .map(|f: &FnItem| f.test_exempt)
                        .unwrap_or(false);
                let id = blocks.len();
                blocks.push(Block {
                    parent: Some(top),
                    open: Some(i),
                    close: None,
                    test_exempt: exempt,
                });
                toks[i].block = id;
                stack.push(id);
                pending_cfg_test = false;
                if let Some(f) = open_fn.take() {
                    fns[f].body = Some(id);
                }
            }
            "}" => {
                if stack.len() > 1 {
                    let id = stack.pop().unwrap_or(0);
                    toks[i].block = id;
                    blocks[id].close = Some(i);
                }
            }
            "(" => paren_depth += 1,
            ")" => paren_depth = paren_depth.saturating_sub(1),
            "[" => bracket_depth += 1,
            "]" => bracket_depth = bracket_depth.saturating_sub(1),
            ";" => {
                // A bodyless `fn` declaration (trait method) ends here,
                // and any armed test markers were consumed by whatever
                // item just ended (`#[cfg(test)] use …;`).
                if paren_depth == 0 && bracket_depth == 0 {
                    open_fn = None;
                    pending_cfg_test = false;
                    pending_test_attr = false;
                }
            }
            "#" => {
                // Attribute: `#[…]` or `#![…]`. Scan the bracket group for
                // the markers the lints care about, then skip past it so
                // attribute contents never look like code tokens below.
                let mut j = i + 1;
                if toks.get(j).map(|t| t.text.as_str()) == Some("!") {
                    j += 1;
                }
                if toks.get(j).map(|t| t.text.as_str()) == Some("[") {
                    let mut depth = 0usize;
                    let mut attr_words: Vec<&str> = Vec::new();
                    let mut k = j;
                    while k < toks.len() {
                        match toks[k].text.as_str() {
                            "[" => depth += 1,
                            "]" => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            w => attr_words.push(w),
                        }
                        k += 1;
                    }
                    let is_cfg_test = attr_words.windows(2).any(|w| w == ["cfg", "("])
                        && attr_words.contains(&"test")
                        && !attr_words.contains(&"not");
                    if is_cfg_test {
                        pending_cfg_test = true;
                        pending_test_attr = true;
                    }
                    if attr_words.first() == Some(&"test") {
                        pending_test_attr = true;
                    }
                    // Leave the block assignment of the skipped tokens as
                    // the current block; they are never matched as code.
                    let upto = k.min(toks.len());
                    for t in toks.iter_mut().take(upto).skip(i) {
                        t.block = top;
                    }
                    i = k + 1;
                    continue;
                }
            }
            "fn" => {
                if let Some(name) = toks.get(i + 1).filter(|t| t.is_word()) {
                    fns.push(FnItem {
                        name: name.text.clone(),
                        fn_tok: i,
                        body: None,
                        test_exempt: pending_test_attr || blocks[top].test_exempt,
                    });
                    open_fn = Some(fns.len() - 1);
                }
                pending_test_attr = false;
            }
            "use" => {
                let end = scan_use(&toks, i + 1, &mut uses);
                let upto = end.min(toks.len());
                for t in toks.iter_mut().take(upto).skip(i) {
                    t.block = top;
                }
                i = end;
                continue;
            }
            _ => {
                // Any other item keyword clears a stale `#[test]` marker
                // so it cannot leak onto a later fn.
                if matches!(text.as_str(), "struct" | "enum" | "impl" | "trait" | "mod") {
                    pending_test_attr = false;
                }
            }
        }
        i += 1;
    }

    FileTree {
        toks,
        blocks,
        fns,
        uses,
    }
}

/// Parse one `use` declaration starting at `i` (just past the `use`
/// keyword), pushing every introduced local name. Handles `a::b::C`,
/// `a::{B, C as D}`, and trailing `*` (ignored). Returns the index just
/// past the terminating `;`.
fn scan_use(toks: &[Tok], mut i: usize, uses: &mut Vec<UseAlias>) -> usize {
    let mut last_word: Option<String> = None;
    let mut alias_pending = false;
    while i < toks.len() {
        let t = &toks[i];
        match t.text.as_str() {
            ";" => {
                flush_use(&mut last_word, uses);
                return i + 1;
            }
            "," | "}" => flush_use(&mut last_word, uses),
            "as" => alias_pending = true,
            ":" | ":::" | "{" | "*" | "#" | "[" | "]" => {}
            w if t.is_word() => {
                if alias_pending {
                    // `Orig as Alias` — alias maps to the original name.
                    if let Some(orig) = last_word.take() {
                        uses.push(UseAlias {
                            local: w.to_string(),
                            target: orig,
                        });
                    }
                    alias_pending = false;
                } else {
                    last_word = Some(w.to_string());
                }
            }
            _ => {}
        }
        i += 1;
    }
    flush_use(&mut last_word, uses);
    i
}

fn flush_use(last_word: &mut Option<String>, uses: &mut Vec<UseAlias>) {
    if let Some(w) = last_word.take() {
        // Plain import: the local name is the segment itself. Recording
        // identity aliases keeps resolve_use total.
        uses.push(UseAlias {
            local: w.clone(),
            target: w,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::mask_source;

    fn tree(src: &str) -> FileTree {
        parse(&mask_source(src))
    }

    #[test]
    fn tokens_carry_line_and_col() {
        let t = tree("fn main() {\n    let x = 1;\n}\n");
        let x = t.toks.iter().find(|t| t.text == "x").unwrap();
        assert_eq!((x.line, x.col), (2, 9));
        let one = t.toks.iter().find(|t| t.text == "1").unwrap();
        assert_eq!((one.line, one.col), (2, 13));
    }

    #[test]
    fn block_tree_nests() {
        let t = tree("fn a() { if x { y(); } }\nfn b() {}\n");
        // root + a's body + if body + b's body
        assert_eq!(t.blocks.len(), 4);
        assert_eq!(t.blocks[2].parent, Some(1));
        assert_eq!(t.blocks[3].parent, Some(0));
        let y = t.toks.iter().find(|t| t.text == "y").unwrap();
        assert_eq!(y.block, 2);
    }

    #[test]
    fn fns_are_recognized_with_bodies() {
        let t = tree("fn alpha(x: u8) -> u8 { x }\ntrait T { fn beta(&self); }\n");
        assert_eq!(t.fns.len(), 2);
        assert_eq!(t.fns[0].name, "alpha");
        assert!(t.fns[0].body.is_some());
        assert_eq!(t.fns[1].name, "beta");
        assert!(t.fns[1].body.is_none(), "trait decl has no body");
    }

    #[test]
    fn fn_with_array_type_in_params() {
        // the `;` inside `[u8; 4]` must not end the fn declaration
        let t = tree("fn f(x: [u8; 4]) -> u8 { x[0] }\n");
        assert_eq!(t.fns.len(), 1);
        assert!(t.fns[0].body.is_some());
    }

    #[test]
    fn cfg_test_mod_is_exempt() {
        let src = "fn ship() { q(); }\n#[cfg(test)]\nmod tests {\n    fn helper() { w(); }\n}\n";
        let t = tree(src);
        let q = t.toks.iter().position(|t| t.text == "q").unwrap();
        let w = t.toks.iter().position(|t| t.text == "w").unwrap();
        assert!(!t.tok_exempt(q));
        assert!(t.tok_exempt(w), "cfg(test) mod body is exempt");
        let helper = t.fns.iter().find(|f| f.name == "helper").unwrap();
        assert!(helper.test_exempt);
    }

    #[test]
    fn test_attr_fn_is_exempt() {
        let t = tree("#[test]\nfn probe() { x(); }\nfn ship() { y(); }\n");
        assert!(t.fns[0].test_exempt);
        assert!(!t.fns[1].test_exempt);
        let x = t.toks.iter().position(|t| t.text == "x").unwrap();
        assert!(t.tok_exempt(x));
    }

    #[test]
    fn use_aliases_resolve() {
        let src = "use std::collections::HashMap as Map;\nuse x::{HashSet, BTreeMap};\n";
        let t = tree(src);
        assert_eq!(t.resolve_use("Map"), "HashMap");
        assert_eq!(t.resolve_use("HashSet"), "HashSet");
        assert_eq!(t.resolve_use("Unknown"), "Unknown");
    }

    #[test]
    fn stmt_bounds() {
        let t = tree("fn f() {\n    let a = g();\n    let b = h();\n}\n");
        let h = t.toks.iter().position(|t| t.text == "h").unwrap();
        let start = t.stmt_start(h);
        assert_eq!(t.toks[start].text, "let");
        assert_eq!(t.toks[start].line, 3);
        let end = t.stmt_end(h);
        assert_eq!(t.toks[end - 1].text, ";");
    }

    #[test]
    fn stmt_end_stops_at_child_block() {
        let t = tree("fn f() {\n    for x in items { body(); }\n    after();\n}\n");
        let for_tok = t.toks.iter().position(|t| t.text == "for").unwrap();
        let end = t.stmt_end(for_tok);
        assert_eq!(t.toks[end].text, "{", "statement ends at the loop body");
    }

    #[test]
    fn enclosing_fn_resolves_through_nested_blocks() {
        let t = tree("fn outer() { if c { deep(); } }\n");
        let deep = t.toks.iter().position(|t| t.text == "deep").unwrap();
        let f = t.enclosing_fn(deep).unwrap();
        assert_eq!(t.fns[f].name, "outer");
    }

    #[test]
    fn unbalanced_braces_do_not_panic() {
        for src in ["}}}}", "{{{{", "fn f() { { }", "} fn g() {}", ""] {
            let _ = tree(src);
        }
    }
}
