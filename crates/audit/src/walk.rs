//! Deterministic workspace walker.
//!
//! Collects every `.rs` file under the audited roots (`crates/`, `src/`,
//! `examples/`, `tests/`), sorted so the report order is stable across
//! machines. Build output (`target/`) and the audit's own deliberately-bad
//! fixture snippets (`crates/audit/fixtures/`) are skipped.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directory roots the audit covers, relative to the workspace root.
pub const SCAN_ROOTS: [&str; 4] = ["crates", "src", "examples", "tests"];

/// Path components that end a walk wherever they appear.
const SKIP_DIR_NAMES: [&str; 1] = ["target"];

/// Relative directory prefixes excluded from the walk.
const SKIP_PREFIXES: [&str; 1] = ["crates/audit/fixtures"];

/// Collect the relative (forward-slash) paths of every auditable `.rs`
/// file under `root`, sorted lexicographically.
pub fn collect_rs_files(root: &Path) -> io::Result<Vec<String>> {
    let mut out = Vec::new();
    for scan in SCAN_ROOTS {
        let dir = root.join(scan);
        if dir.is_dir() {
            walk_dir(root, &dir, &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

fn walk_dir(root: &Path, dir: &Path, out: &mut Vec<String>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<io::Result<_>>()?;
    entries.sort();
    for path in entries {
        let rel = relative(root, &path);
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if SKIP_DIR_NAMES.contains(&name) || SKIP_PREFIXES.contains(&rel.as_str()) {
                continue;
            }
            walk_dir(root, &path, out)?;
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(rel);
        }
    }
    Ok(())
}

/// `path` relative to `root` with forward slashes.
fn relative(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The audit crate always sits at `<workspace>/crates/audit`.
    fn workspace_root() -> PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("crates/audit has a workspace two levels up")
            .to_path_buf()
    }

    #[test]
    fn walk_finds_known_files_and_skips_fixtures_and_target() {
        let files = collect_rs_files(&workspace_root()).expect("walk workspace");
        assert!(files.iter().any(|f| f == "crates/exec/src/lib.rs"));
        assert!(files.iter().any(|f| f == "src/lib.rs"));
        assert!(files.iter().any(|f| f == "examples/serve_intents.rs"));
        assert!(files.iter().any(|f| f == "crates/audit/src/lints.rs"));
        assert!(
            !files.iter().any(|f| f.contains("fixtures/")),
            "fixture snippets are deliberately bad and must be skipped"
        );
        assert!(!files.iter().any(|f| f.contains("target/")));
        let mut sorted = files.clone();
        sorted.sort();
        assert_eq!(files, sorted, "walk order must be deterministic");
    }
}
