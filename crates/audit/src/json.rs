//! `--format json` — machine-readable diagnostics.
//!
//! Hand-rolled like the rest of the workspace's wire surfaces (no serde
//! by design: the audit crate is std-only so it can never drag a
//! dependency into tier-1). The shape is consumed by CI's GitHub
//! problem-matcher and by the baseline ratchet:
//!
//! ```json
//! {
//!   "files_audited": 123,
//!   "violations": [
//!     {"file": "crates/x/src/y.rs", "line": 7, "lint": "A07",
//!      "message": "…", "source": "…"}
//!   ],
//!   "justified": {"SAFETY": 12, "DETERMINISM": 3, "PANIC": 9, "LOCK-ORDER": 2}
//! }
//! ```

use crate::{AuditReport, JustifiedCounts};
use std::fmt::Write;

/// Escape a string for a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render the justified-suppression counts object (shared with the
/// baseline file format, so the two stay diffable).
pub fn justified_json(j: &JustifiedCounts) -> String {
    format!(
        "{{\"SAFETY\": {}, \"DETERMINISM\": {}, \"PANIC\": {}, \"LOCK-ORDER\": {}}}",
        j.safety, j.determinism, j.panic, j.lock_order
    )
}

/// Render a full report as pretty-enough JSON (one violation per line —
/// diff-friendly and regex-friendly for the problem matcher).
pub fn report_json(r: &AuditReport) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"files_audited\": {},", r.files_audited);
    out.push_str("  \"violations\": [\n");
    for (i, v) in r.violations.iter().enumerate() {
        let comma = if i + 1 == r.violations.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"file\": \"{}\", \"line\": {}, \"lint\": \"{}\", \
             \"message\": \"{}\", \"source\": \"{}\"}}{comma}",
            escape(&v.file),
            v.line,
            v.lint.id(),
            escape(&v.message),
            escape(&v.source)
        );
    }
    out.push_str("  ],\n");
    let _ = writeln!(out, "  \"justified\": {}", justified_json(&r.justified));
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Lint, Violation};

    fn report() -> AuditReport {
        AuditReport {
            files_audited: 2,
            violations: vec![Violation {
                file: "crates/x/src/y.rs".to_string(),
                line: 7,
                lint: Lint::A07,
                message: "iteration with \"quotes\"".to_string(),
                source: "\tfor k in map {".to_string(),
            }],
            justified: JustifiedCounts {
                safety: 1,
                determinism: 2,
                panic: 3,
                lock_order: 4,
            },
        }
    }

    #[test]
    fn escapes_quotes_backslashes_and_control() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn report_shape_is_stable() {
        let j = report_json(&report());
        assert!(j.contains("\"files_audited\": 2"));
        assert!(j.contains("\"lint\": \"A07\""));
        assert!(j.contains("\"line\": 7"));
        assert!(j.contains("iteration with \\\"quotes\\\""));
        assert!(j.contains(
            "\"justified\": {\"SAFETY\": 1, \"DETERMINISM\": 2, \"PANIC\": 3, \"LOCK-ORDER\": 4}"
        ));
        // one violation per line, so the problem matcher can anchor
        assert!(j
            .lines()
            .any(|l| l.contains("\"file\"") && l.contains("\"message\"")));
    }

    #[test]
    fn empty_violations_render_valid_brackets() {
        let r = AuditReport {
            files_audited: 0,
            violations: vec![],
            justified: JustifiedCounts::default(),
        };
        let j = report_json(&r);
        assert!(j.contains("\"violations\": [\n  ]"));
    }
}
