//! Fixture-driven regression tests: one deliberately-bad snippet per lint
//! ID, committed under `crates/audit/fixtures/`, each asserted to be
//! caught. If a lint silently rots, these fail.
//!
//! The final test audits the real workspace and requires zero violations —
//! the same gate `cargo run -p cosmo-audit` enforces in tier-1.

use cosmo_audit::{audit_as_directive, audit_snippet, Lint, Policy};
use std::path::Path;

/// Audit fixture `name` at the path class its own `// audit-as:` header
/// declares (the same directive `cargo run -p cosmo-audit -- <fixture>`
/// honors), returning the lint ids that fired. Runs the full single-file
/// pipeline — line lints, tree analyzer, and the file-local lock pass —
/// exactly as the CLI's single-file mode does.
fn fixture_lints(name: &str) -> Vec<Lint> {
    let src = std::fs::read_to_string(
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("fixtures")
            .join(name),
    )
    .expect("fixture exists");
    let pretend_path = audit_as_directive(&src)
        .unwrap_or_else(|| panic!("fixture {name} is missing its audit-as directive"));
    audit_snippet(&Policy::cosmo(), &pretend_path, &src)
        .0
        .into_iter()
        .map(|v| v.lint)
        .collect()
}

#[test]
fn a01_fixture_is_caught() {
    // Audited under an allowlisted kernel path so A02 stays quiet and the
    // missing SAFETY contract is isolated.
    let lints = fixture_lints("a01_missing_safety.rs");
    assert_eq!(lints, vec![Lint::A01]);
}

#[test]
fn a02_fixture_is_caught() {
    let lints = fixture_lints("a02_unsafe_outside_kernel.rs");
    assert_eq!(lints, vec![Lint::A02]);
}

#[test]
fn a02_crate_root_fixture_is_caught() {
    let lints = fixture_lints("a02_crate_root_without_forbid.rs");
    assert_eq!(lints, vec![Lint::A02]);
}

#[test]
fn a03_fixture_is_caught() {
    // Audited as a serving source, the NaN sort trips A03 and its
    // `.unwrap()` additionally trips the A08 panic-surface lint.
    let lints = fixture_lints("a03_partial_cmp_sort.rs");
    assert_eq!(lints, vec![Lint::A03, Lint::A08]);
}

#[test]
fn a04_fixture_is_caught() {
    let lints = fixture_lints("a04_wallclock.rs");
    assert!(!lints.is_empty());
    assert!(lints.iter().all(|&l| l == Lint::A04), "{lints:?}");
}

#[test]
fn a05_fixture_is_caught() {
    let lints = fixture_lints("a05_unjustified_allow.rs");
    assert_eq!(lints, vec![Lint::A05]);
}

#[test]
fn a06_fixture_is_caught() {
    let lints = fixture_lints("a06_fast_math_cfg_outside_kernel.rs");
    assert!(!lints.is_empty());
    assert!(lints.iter().all(|&l| l == Lint::A06), "{lints:?}");
}

#[test]
fn a07_fixture_is_caught() {
    let lints = fixture_lints("a07_unordered_iteration.rs");
    assert_eq!(lints, vec![Lint::A07]);
}

#[test]
fn a08_fixture_is_caught() {
    // One unwrap plus one direct index, both unjustified.
    let lints = fixture_lints("a08_panic_surface.rs");
    assert_eq!(lints, vec![Lint::A08, Lint::A08]);
}

#[test]
fn a09_fixture_is_caught() {
    let lints = fixture_lints("a09_lock_order_cycle.rs");
    assert_eq!(lints, vec![Lint::A09]);
}

/// Every committed fixture must be rejected when audited at the path
/// class its `audit-as` header targets — the in-process equivalent of
/// `cargo run -p cosmo-audit -- crates/audit/fixtures/<f>` exiting
/// nonzero, without spawning cargo.
#[test]
fn every_fixture_produces_at_least_one_violation() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let mut seen = 0;
    for entry in std::fs::read_dir(dir).expect("fixtures dir") {
        let path = entry.expect("read fixture").path();
        if path.extension().and_then(|e| e.to_str()) != Some("rs") {
            continue;
        }
        let name = path.file_name().unwrap().to_string_lossy().to_string();
        assert!(
            !fixture_lints(&name).is_empty(),
            "fixture {name} no longer trips its lint"
        );
        seen += 1;
    }
    assert!(seen >= 10, "expected one fixture per lint, found {seen}");
}

/// The real workspace must be clean — this is the tier-1 invariant the
/// `cosmo-audit` binary enforces, duplicated here so plain `cargo test`
/// catches regressions even when the binary step is skipped.
#[test]
fn workspace_has_zero_violations() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf();
    let report = cosmo_audit::run_audit(&root).expect("audit workspace");
    assert!(report.files_audited > 50, "walker found the workspace");
    let rendered: Vec<String> = report.violations.iter().map(|v| v.to_string()).collect();
    assert!(
        report.violations.is_empty(),
        "workspace invariant violations:\n{}",
        rendered.join("\n")
    );
}
