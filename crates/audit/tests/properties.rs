//! Property tests for the audit lexer and token-tree parser.
//!
//! Three families, matching the analyzer's load-bearing claims:
//!
//! 1. **Masking preserves positions.** Every non-whitespace character
//!    that survives [`mask_source`] sits at exactly the same (line,
//!    column) as in the original source — the invariant that lets the
//!    token tree report 1-based source coordinates without a side table.
//! 2. **Byte-soup totality.** [`tree::parse`] (and the full
//!    [`audit_snippet`] pipeline behind it) never panics on arbitrary
//!    input, and the tree it degrades to stays internally consistent:
//!    token block ids in range, parent links acyclic, fn bodies real
//!    blocks, statement bounds ordered.
//! 3. **Line-ending insensitivity.** Lint results — violation (line,
//!    lint) pairs and justified-suppression counts — are identical for
//!    `src`, `src` + trailing newline, and the CRLF re-encoding of
//!    `src`. Only bytes the analysis must ignore change between the
//!    three.
//!
//! Skipped under Miri: case generation is too slow in the interpreter,
//! and the crate has no unsafe for Miri to check anyway.
#![cfg(not(miri))]

use cosmo_audit::lexer::mask_source;
use cosmo_audit::{audit_snippet, tree, JustifiedCounts, Lint, Policy};
use proptest::prelude::*;

/// A character alphabet deliberately dense in lexer state transitions:
/// braces, quotes, comment markers, escapes, raw-string prefixes and
/// hashes, plus multi-byte unicode so char/byte confusion would surface.
fn soup_alphabet() -> Vec<char> {
    vec![
        '{', '}', '(', ')', '[', ']', '"', '\'', '/', '*', '#', '\\', 'r', 'b', 'a', 'x', '_', '0',
        '9', ' ', '\t', '\n', ';', '.', ':', ',', '<', '>', '&', '|', '!', '=', 'é', '∀', '中',
    ]
}

/// Realistic single-line fragments: lint triggers, justifications, item
/// scaffolding. Random sequences of these form plausible-but-arbitrary
/// files whose lint results must not depend on the EOL encoding.
fn line_pool() -> Vec<&'static str> {
    vec![
        "use std::collections::HashMap;",
        "fn f(m: &HashMap<String, u32>) -> Vec<String> {",
        "fn g(&self) {",
        "    m.keys().cloned().collect()",
        "    let mut v: Vec<String> = m.keys().cloned().collect();",
        "    v.sort_unstable();",
        "    for x in m {",
        "    }",
        "}",
        "    let a = self.alpha.lock();",
        "    let b = self.beta.lock();",
        "    drop(a);",
        "    x.unwrap();",
        "    v[0];",
        "    panic!(\"boom\");",
        "    // PANIC: guarded by the length check above",
        "    // DETERMINISM: feeds a commutative integer sum",
        "    // LOCK-ORDER: ascending shard index discipline",
        "    // SAFETY: pointer is derived from a live slice",
        "    unsafe { *p }",
        "#[allow(dead_code)] // kept for the serde schema",
        "#[allow(dead_code)]",
        "#[cfg(test)]",
        "mod tests {",
        "    let s = \"unsafe partial_cmp in a string // not a comment\";",
        "    /* block comment with unsafe",
        "       spanning lines */",
        "",
        "    scores.sort_by(|q, w| q.partial_cmp(w).unwrap());",
        "    let t0 = Instant::now();",
    ]
}

/// Violation fingerprints that must survive an EOL re-encoding: the
/// source excerpt is allowed to differ (it keeps the raw `\r`), the
/// analysis is not.
fn fingerprint(policy: &Policy, rel: &str, src: &str) -> (Vec<(usize, Lint)>, JustifiedCounts) {
    let (violations, justified) = audit_snippet(policy, rel, src);
    (
        violations.into_iter().map(|v| (v.line, v.lint)).collect(),
        justified,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn masking_preserves_line_and_column(
        chars in prop::collection::vec(prop::sample::select(soup_alphabet()), 0..400),
    ) {
        let src: String = chars.into_iter().collect();
        let masked = mask_source(&src);
        let original: Vec<Vec<char>> = src.split('\n').map(|l| l.chars().collect()).collect();
        // One masked line per source line. The only allowed omission is a
        // final line that masks to nothing at all — after a trailing
        // newline, or when EOF lands inside a construct whose remainder
        // is entirely comment/empty (`//`, an unclosed `/*`, …).
        prop_assert!(
            masked.len() == original.len() || masked.len() + 1 == original.len(),
            "line count drifted: {} masked vs {} original",
            masked.len(),
            original.len()
        );
        for (li, line) in masked.iter().enumerate() {
            for (ci, mc) in line.code.chars().enumerate() {
                if mc.is_whitespace() {
                    continue; // masked-out content
                }
                let oc = original[li].get(ci).copied();
                prop_assert_eq!(
                    oc,
                    Some(mc),
                    "line {} col {}: masked {:?} vs original {:?}",
                    li + 1,
                    ci + 1,
                    mc,
                    oc
                );
            }
        }
    }

    #[test]
    fn byte_soup_never_panics_and_tree_stays_consistent(
        chars in prop::collection::vec(prop::sample::select(soup_alphabet()), 0..400),
    ) {
        let src: String = chars.into_iter().collect();
        // The full single-file pipeline must be total: line lints, the
        // A07/A08 tree analyzer, and the file-local A09 lock pass all run
        // for a serving-path file; a kg path adds the deterministic-crate
        // scope. No output assertion — not panicking IS the property.
        let policy = Policy::cosmo();
        let _ = audit_snippet(&policy, "crates/serving/src/soup.rs", &src);
        let _ = audit_snippet(&policy, "crates/kg/src/soup.rs", &src);

        let lines = mask_source(&src);
        let t = tree::parse(&lines);
        for (i, tok) in t.toks.iter().enumerate() {
            prop_assert!(tok.block < t.blocks.len(), "token {} block out of range", i);
            prop_assert!(tok.line >= 1 && tok.col >= 1);
            // Statement bounds bracket the token and stay in range.
            let start = t.stmt_start(i);
            let end = t.stmt_end(i);
            prop_assert!(start <= i && i <= end && end <= t.toks.len());
            let _ = t.enclosing_fn(i);
        }
        for (b, blk) in t.blocks.iter().enumerate() {
            if let Some(p) = blk.parent {
                prop_assert!(p < b, "parent links must point backward (acyclic)");
            }
            if let (Some(o), Some(c)) = (blk.open, blk.close) {
                prop_assert!(o < c, "block opens before it closes");
            }
        }
        for f in &t.fns {
            if let Some(body) = f.body {
                prop_assert!(body < t.blocks.len());
            }
        }
    }

    #[test]
    fn lints_are_identical_across_eol_encodings(
        picks in prop::collection::vec(prop::sample::select(line_pool()), 1..40),
    ) {
        let src = picks.join("\n");
        let policy = Policy::cosmo();
        // serving exercises A03/A08/A09, kg adds A07/A04 scope.
        for rel in ["crates/serving/src/cache.rs", "crates/kg/src/store.rs"] {
            let base = fingerprint(&policy, rel, &src);
            let trailing = fingerprint(&policy, rel, &format!("{src}\n"));
            prop_assert_eq!(&base, &trailing, "trailing newline changed lints for {}", rel);
            let crlf = fingerprint(&policy, rel, &src.replace('\n', "\r\n"));
            prop_assert_eq!(&base, &crlf, "CRLF re-encoding changed lints for {}", rel);
        }
    }
}
