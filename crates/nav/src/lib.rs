//! # cosmo-nav
//!
//! Search navigation (§4.3): the customer-focused, multi-layered
//! navigation system of Figures 8 & 9 — broad-conception interpretation
//! via the KG intent hierarchy, product type/subtype discovery, and
//! attribute-based refinement — plus the simulated-user A/B harness that
//! reproduces the shape of the paper's online experiment (+0.7% sales,
//! +8% navigation engagement on ~10% of traffic).

#![forbid(unsafe_code)]

pub mod abtest;
pub mod engine;

pub use abtest::{run_abtest, AbTestConfig, AbTestReport};
pub use engine::{NavSession, NavigationEngine, Suggestion};
