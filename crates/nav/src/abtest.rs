//! Online A/B test simulation (§4.3.2).
//!
//! The paper reports months of A/B tests on ≈10% of US traffic: a single
//! navigation widget "with limited showroom visibility" produced a **0.7%
//! relative increase in product sales** and an **8% increase in navigation
//! engagement**. We simulate the mechanism behind those numbers:
//!
//! * users arrive with a latent intent and issue a broad query;
//! * **control** shows the popularity-ranked result page;
//! * **treatment** additionally renders the COSMO navigation widget (seen
//!   only with `visibility` probability — the limited showroom); a user
//!   who sees a refinement matching their latent intent clicks it, which
//!   narrows the page to intent-matching products;
//! * purchase probability grows with the rank-weighted intent match of the
//!   page the user actually browsed.
//!
//! Lift comes only from better intent matching, so its sign is structural;
//! its magnitude is small because visibility and match rates are small —
//! the same reason the paper calls its 0.7% "especially significant".

use crate::engine::{NavSession, NavigationEngine, Suggestion};
use cosmo_synth::{DomainId, IntentId, ProductTypeId, QueryKind, World};
use cosmo_text::{FxHashMap, FxHashSet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Simulation parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AbTestConfig {
    /// RNG seed.
    pub seed: u64,
    /// Total simulated users.
    pub users: usize,
    /// Fraction assigned to treatment (the paper's ≈10%).
    pub traffic_fraction: f64,
    /// Probability a treatment user notices the widget ("limited showroom
    /// visibility").
    pub visibility: f64,
    /// Probability an interested user clicks a matching refinement.
    pub click_through: f64,
    /// Results examined per page.
    pub page_size: usize,
    /// Base purchase probability for a perfectly matching product.
    pub base_purchase: f64,
}

impl Default for AbTestConfig {
    fn default() -> Self {
        AbTestConfig {
            seed: 0xAB_7E57,
            users: 60_000,
            traffic_fraction: 0.10,
            visibility: 0.012,
            click_through: 0.65,
            page_size: 8,
            base_purchase: 0.35,
        }
    }
}

/// A/B outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AbTestReport {
    /// Users in control.
    pub control_users: usize,
    /// Users in treatment.
    pub treatment_users: usize,
    /// Sales per control user.
    pub control_sales_rate: f64,
    /// Sales per treatment user.
    pub treatment_sales_rate: f64,
    /// Relative sales lift (%) — the paper's 0.7%.
    pub sales_lift_pct: f64,
    /// Navigation engagement rate in control (baseline nav feature usage).
    pub control_engagement: f64,
    /// Navigation engagement rate in treatment.
    pub treatment_engagement: f64,
    /// Relative engagement lift (%) — the paper's 8%.
    pub engagement_lift_pct: f64,
}

/// Run the simulation over a world and its navigation engine.
pub fn run_abtest<G: cosmo_kg::GraphView>(
    world: &World,
    engine: &NavigationEngine<G>,
    cfg: &AbTestConfig,
) -> AbTestReport {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    // Broad queries are the widget's target surface.
    let broad: Vec<_> = (0..world.queries.len())
        .filter(|&i| matches!(world.queries[i].kind, QueryKind::Broad(_)))
        .collect();
    assert!(!broad.is_empty());

    // tail text → intents sharing it (for matching widget labels against
    // the user's desire)
    let mut tail_intents: FxHashMap<&str, Vec<IntentId>> = FxHashMap::default();
    for (i, intent) in world.intents.iter().enumerate() {
        tail_intents
            .entry(intent.tail.as_str())
            .or_default()
            .push(IntentId(i as u32));
    }
    // product title → type (for page matching)
    let title_types: FxHashMap<&str, ProductTypeId> = world
        .products
        .iter()
        .map(|p| (p.title.as_str(), p.ptype))
        .collect();

    let mut control_sales = 0u64;
    let mut treatment_sales = 0u64;
    let mut control_engaged = 0u64;
    let mut treatment_engaged = 0u64;
    let mut control_users = 0usize;
    let mut treatment_users = 0usize;

    for _ in 0..cfg.users {
        let qi = broad[rng.gen_range(0..broad.len())];
        let query = &world.queries[qi];
        let QueryKind::Broad(_) = query.kind else {
            unreachable!()
        };
        // The user's latent desire is *finer* than the broad query: one
        // specific product type among the query's targets (the Figure 9
        // story — searching "camping" while wanting an air mattress).
        let wanted: ProductTypeId = query.target_types[rng.gen_range(0..query.target_types.len())];
        let in_treatment = rng.gen_bool(cfg.traffic_fraction);

        // Baseline result page: popularity-ranked products of the query's
        // domain (the search engine's view without intent narrowing).
        let page = baseline_page(world, query.domain, cfg.page_size, &mut rng);

        // Baseline navigation feature (category chips) engaged at a low
        // background rate in both arms.
        let baseline_engage = rng.gen_bool(0.02);

        let (browsed, engaged) = if in_treatment && rng.gen_bool(cfg.visibility) {
            // the widget shows intent refinements for the query text
            let (mut session, suggestions) = NavSession::start(engine, &query.text, 6);
            // the user recognises a refinement that describes why they
            // would buy their wanted type (its profile carries the intent)
            let matching = suggestions.iter().find(|s| {
                tail_intents.get(s.label()).is_some_and(|ids| {
                    ids.iter()
                        .any(|&i| world.ptype(wanted).weight_of(i) >= 0.45)
                })
            });
            match matching {
                Some(s) if rng.gen_bool(cfg.click_through) => {
                    session.select(&s.clone(), 6);
                    if session.candidates.is_empty() {
                        (page.clone(), baseline_engage)
                    } else {
                        // narrowed page: the widget's candidates
                        let narrowed: Vec<String> = session
                            .candidates
                            .iter()
                            .take(cfg.page_size)
                            .map(|(_, t)| t.clone())
                            .collect();
                        (narrowed, true)
                    }
                }
                _ => (page.clone(), baseline_engage),
            }
        } else {
            (page.clone(), baseline_engage)
        };

        // Purchase decision: rank-weighted share of the browsed page
        // showing the wanted product type.
        let match_quality = page_match(&title_types, &browsed, wanted);
        let p = (cfg.base_purchase * (0.15 + match_quality)).clamp(0.0, 1.0);
        let bought = rng.gen_bool(p);

        if in_treatment {
            treatment_users += 1;
            treatment_sales += u64::from(bought);
            treatment_engaged += u64::from(engaged);
        } else {
            control_users += 1;
            control_sales += u64::from(bought);
            control_engaged += u64::from(engaged);
        }
    }

    let control_sales_rate = control_sales as f64 / control_users.max(1) as f64;
    let treatment_sales_rate = treatment_sales as f64 / treatment_users.max(1) as f64;
    let control_engagement = control_engaged as f64 / control_users.max(1) as f64;
    let treatment_engagement = treatment_engaged as f64 / treatment_users.max(1) as f64;
    AbTestReport {
        control_users,
        treatment_users,
        control_sales_rate,
        treatment_sales_rate,
        sales_lift_pct: 100.0 * (treatment_sales_rate / control_sales_rate.max(1e-12) - 1.0),
        control_engagement,
        treatment_engagement,
        engagement_lift_pct: 100.0 * (treatment_engagement / control_engagement.max(1e-12) - 1.0),
    }
}

/// Popularity-ranked result page for a domain.
fn baseline_page(world: &World, domain: DomainId, k: usize, rng: &mut StdRng) -> Vec<String> {
    let mut page = Vec::with_capacity(k);
    let mut seen = FxHashSet::default();
    for _ in 0..k * 4 {
        let p = world.sample_product(domain, rng);
        if seen.insert(p) {
            page.push(world.product(p).title.clone());
            if page.len() >= k {
                break;
            }
        }
    }
    page
}

/// Rank-weighted fraction of the page showing the wanted product type.
fn page_match(
    title_types: &FxHashMap<&str, ProductTypeId>,
    page: &[String],
    wanted: ProductTypeId,
) -> f64 {
    if page.is_empty() {
        return 0.0;
    }
    let mut score = 0.0;
    let mut norm = 0.0;
    for (rank, title) in page.iter().enumerate() {
        let w = 1.0 / (rank + 1) as f64;
        norm += w;
        if title_types.get(title.as_str()) == Some(&wanted) {
            score += w;
        }
    }
    score / norm
}

/// Marker so the unused-import lint stays honest if Suggestion handling
/// changes.
#[allow(dead_code)]
fn _suggestion_label(s: &Suggestion) -> &str {
    s.label()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosmo_core::{run, PipelineConfig};
    use std::sync::OnceLock;

    struct Fixture {
        world: World,
        engine: NavigationEngine,
    }

    fn fixture() -> &'static Fixture {
        static F: OnceLock<Fixture> = OnceLock::new();
        F.get_or_init(|| {
            let out = run(PipelineConfig::tiny(141));
            Fixture {
                engine: NavigationEngine::new(out.kg),
                world: out.world,
            }
        })
    }

    #[test]
    fn treatment_lifts_sales_and_engagement() {
        let f = fixture();
        // Use a high-visibility regime so the structural lift clears the
        // sampling noise at test-sized populations (the paper needed
        // months of live traffic to resolve +0.7%).
        let cfg = AbTestConfig {
            users: 600_000,
            visibility: 0.3,
            ..Default::default()
        };
        let report = run_abtest(&f.world, &f.engine, &cfg);
        assert!(report.treatment_users > 10_000);
        assert!(
            report.sales_lift_pct > 0.5,
            "sales lift must be clearly positive at high visibility: {:.2}%",
            report.sales_lift_pct
        );
        assert!(
            report.sales_lift_pct < 60.0,
            "lift bounded by the engaged fraction: {:.2}%",
            report.sales_lift_pct
        );
        assert!(
            report.engagement_lift_pct > report.sales_lift_pct,
            "engagement lift ({:.1}%) should exceed sales lift ({:.1}%) — Figure 9 shape",
            report.engagement_lift_pct,
            report.sales_lift_pct
        );
    }

    #[test]
    fn traffic_split_respected() {
        let f = fixture();
        let cfg = AbTestConfig {
            users: 20_000,
            traffic_fraction: 0.1,
            ..Default::default()
        };
        let report = run_abtest(&f.world, &f.engine, &cfg);
        let frac = report.treatment_users as f64 / cfg.users as f64;
        assert!((frac - 0.1).abs() < 0.02, "treatment fraction {frac}");
    }

    #[test]
    fn zero_visibility_means_no_lift() {
        let f = fixture();
        let cfg = AbTestConfig {
            users: 300_000,
            visibility: 0.0,
            ..Default::default()
        };
        let report = run_abtest(&f.world, &f.engine, &cfg);
        assert!(
            report.sales_lift_pct.abs() < 6.0,
            "without the widget the arms should be statistically close: {:.2}%",
            report.sales_lift_pct
        );
    }

    #[test]
    fn deterministic() {
        let f = fixture();
        let cfg = AbTestConfig {
            users: 5_000,
            ..Default::default()
        };
        let a = run_abtest(&f.world, &f.engine, &cfg);
        let b = run_abtest(&f.world, &f.engine, &cfg);
        assert_eq!(a.sales_lift_pct, b.sales_lift_pct);
    }
}
