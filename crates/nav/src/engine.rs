//! Multi-turn search navigation (§4.3.1, Figures 8 & 9).
//!
//! COSMO "moves away from traditional product-centric taxonomies towards a
//! customer-focused approach", organised in three layers:
//!
//! 1. **Broad conception interpretation** — a broad query ("camping") is
//!    mapped to intent refinements via the KG intent hierarchy;
//! 2. **Product type and subtype discovery** — a selected intent surfaces
//!    the product types and subtypes linked to it;
//! 3. **Attribute-based refinement** — the final layer filters by
//!    attribute tokens.
//!
//! The **multi-turn** flow of Figure 9 ("camping" → "air mattress" →
//! "camping air mattress" → lakeside/mountain/4-person variants) is a
//! stateful walk down these layers, implemented by [`NavSession`].

use cosmo_kg::{GraphView, IntentHierarchy, KnowledgeGraph, NodeId, NodeKind};
use cosmo_text::{tokenize, FxHashSet};
use serde::{Deserialize, Serialize};

/// A suggestion shown to the customer at some navigation turn.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Suggestion {
    /// A finer-grained intent ("winter camping").
    Intent(String),
    /// A product concept/type linked to the current intent.
    ProductType(String),
    /// An attribute filter token ("portable").
    Attribute(String),
}

impl Suggestion {
    /// The display label.
    pub fn label(&self) -> &str {
        match self {
            Suggestion::Intent(s) | Suggestion::ProductType(s) | Suggestion::Attribute(s) => s,
        }
    }
}

/// The navigation service: a KG plus its intent hierarchy.
///
/// Generic over the graph backend: the mutable [`KnowledgeGraph`] builder
/// (the default, for tests and offline tooling) and the frozen
/// [`cosmo_kg::KgSnapshot`] (production serving) yield identical
/// suggestions — both enumerate adjacency in the same content-determined
/// order.
pub struct NavigationEngine<G: GraphView = KnowledgeGraph> {
    kg: G,
    hierarchy: IntentHierarchy,
}

impl<G: GraphView> NavigationEngine<G> {
    /// Build the engine (constructs the Figure 8 hierarchy).
    pub fn new(kg: G) -> Self {
        let hierarchy = IntentHierarchy::build(&kg);
        NavigationEngine { kg, hierarchy }
    }

    /// The underlying graph.
    pub fn kg(&self) -> &G {
        &self.kg
    }

    /// The intent hierarchy.
    pub fn hierarchy(&self) -> &IntentHierarchy {
        &self.hierarchy
    }

    /// Layer 1: interpret a broad query into intent suggestions — hierarchy
    /// refinements of the matching intent when one exists, otherwise the
    /// query node's top intents from the KG.
    pub fn interpret(&self, query: &str, k: usize) -> Vec<Suggestion> {
        let refinements = self.hierarchy.refinements_of(query);
        if !refinements.is_empty() {
            return refinements
                .into_iter()
                .take(k)
                .map(|n| Suggestion::Intent(n.text.clone()))
                .collect();
        }
        let Some(node) = self.kg.find_node(NodeKind::Query, query) else {
            return Vec::new();
        };
        self.kg
            .top_intents(node, k)
            .into_iter()
            .map(|e| Suggestion::Intent(self.kg.node_text(e.tail).to_string()))
            .collect()
    }

    /// Layer 2: products linked to an intent tail (via the KG's incoming
    /// edges), returned as `(product node, title)`.
    pub fn products_for_intent(&self, intent: &str, k: usize) -> Vec<(NodeId, String)> {
        let Some(node) = self
            .hierarchy
            .find(intent)
            .map(|n| n.intent)
            .or_else(|| self.kg.find_node(NodeKind::Intention, intent))
        else {
            return Vec::new();
        };
        let mut out: Vec<(NodeId, String)> = Vec::new();
        let mut seen: FxHashSet<NodeId> = FxHashSet::default();
        let mut edges: Vec<_> = self.kg.heads_of(node).collect();
        edges.sort_by(|a, b| {
            (b.typicality * b.support as f32)
                .total_cmp(&(a.typicality * a.support as f32))
                .then(a.head.cmp(&b.head))
        });
        for e in edges {
            if self.kg.node_kind(e.head) == NodeKind::Product && seen.insert(e.head) {
                out.push((e.head, self.kg.node_text(e.head).to_string()));
                if out.len() >= k {
                    break;
                }
            }
        }
        out
    }

    /// Layer 3: attribute tokens appearing across a product list (the
    /// refinement chips of the final layer).
    pub fn attributes_of(&self, products: &[(NodeId, String)], k: usize) -> Vec<Suggestion> {
        let mut counts: std::collections::BTreeMap<String, usize> = Default::default();
        for (_, title) in products {
            for t in tokenize(title) {
                *counts.entry(t).or_insert(0) += 1;
            }
        }
        let mut scored: Vec<(String, usize)> = counts
            .into_iter()
            // an informative attribute splits the set: present in some but
            // not all products
            .filter(|(_, c)| *c > 1 && *c < products.len())
            .collect();
        scored.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        scored
            .into_iter()
            .take(k)
            .map(|(t, _)| Suggestion::Attribute(t))
            .collect()
    }
}

/// A multi-turn navigation walk (Figure 9).
pub struct NavSession<'e, G: GraphView = KnowledgeGraph> {
    engine: &'e NavigationEngine<G>,
    /// The trail of selections made so far.
    pub trail: Vec<Suggestion>,
    /// Current candidate products.
    pub candidates: Vec<(NodeId, String)>,
}

impl<'e, G: GraphView> NavSession<'e, G> {
    /// Start a session from a broad query; returns the first-turn
    /// suggestions.
    pub fn start(
        engine: &'e NavigationEngine<G>,
        query: &str,
        k: usize,
    ) -> (Self, Vec<Suggestion>) {
        let suggestions = engine.interpret(query, k);
        let candidates = engine
            .kg
            .find_node(NodeKind::Query, query)
            .map(|node| {
                let mut seen = FxHashSet::default();
                engine
                    .kg
                    .tails_of(node)
                    .flat_map(|e| engine.kg.heads_of(e.tail))
                    .filter(|e2| engine.kg.node_kind(e2.head) == NodeKind::Product)
                    .filter(|e2| seen.insert(e2.head))
                    .map(|e2| (e2.head, engine.kg.node_text(e2.head).to_string()))
                    .collect()
            })
            .unwrap_or_default();
        (
            NavSession {
                engine,
                trail: Vec::new(),
                candidates,
            },
            suggestions,
        )
    }

    /// Select a suggestion; returns the next turn's suggestions. Intent
    /// selections narrow candidates to that intent's products and offer
    /// deeper refinements; attribute selections filter the candidate list.
    pub fn select(&mut self, suggestion: &Suggestion, k: usize) -> Vec<Suggestion> {
        self.trail.push(suggestion.clone());
        match suggestion {
            Suggestion::Intent(intent) => {
                self.candidates = self.engine.products_for_intent(intent, 64);
                let mut next: Vec<Suggestion> = self
                    .engine
                    .hierarchy
                    .refinements_of(intent)
                    .into_iter()
                    .take(k)
                    .map(|n| Suggestion::Intent(n.text.clone()))
                    .collect();
                if next.len() < k {
                    next.extend(self.engine.attributes_of(&self.candidates, k - next.len()));
                }
                next
            }
            Suggestion::ProductType(t) | Suggestion::Attribute(t) => {
                let token = t.clone();
                self.candidates.retain(|(_, title)| {
                    tokenize(title).iter().any(|tok| tok == &token)
                        || title.contains(token.as_str())
                });
                self.engine.attributes_of(&self.candidates, k)
            }
        }
    }

    /// Number of navigation turns taken.
    pub fn depth(&self) -> usize {
        self.trail.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosmo_kg::{BehaviorKind, Edge, Relation};

    /// Figure-9-style KG: "camping" expands to winter/lakeside camping,
    /// each backed by products.
    fn camping_kg() -> KnowledgeGraph {
        let mut kg = KnowledgeGraph::new();
        let q = kg.intern_node(NodeKind::Query, "camping");
        let base = kg.intern_node(NodeKind::Intention, "camping");
        let winter = kg.intern_node(NodeKind::Intention, "winter camping");
        let lakeside = kg.intern_node(NodeKind::Intention, "lakeside camping");
        let products = [
            ("acme winter air mattress", winter),
            ("zenit lakeside air mattress", lakeside),
            ("homely portable air mattress", base),
            ("acme winter boots", winter),
        ];
        let add = |kg: &mut KnowledgeGraph, head: NodeId, tail: NodeId, support: u32| {
            kg.add_edge(Edge {
                head,
                relation: Relation::UsedForEve,
                tail,
                behavior: BehaviorKind::SearchBuy,
                category: 1,
                plausibility: 0.9,
                typicality: 0.8,
                support,
            });
        };
        add(&mut kg, q, base, 5);
        for (i, (title, intent)) in products.iter().enumerate() {
            let p = kg.intern_node(NodeKind::Product, title);
            add(&mut kg, p, *intent, 3 - (i as u32 % 2));
            add(&mut kg, p, base, 1);
        }
        kg
    }

    #[test]
    fn broad_query_interprets_to_refinements() {
        let engine = NavigationEngine::new(camping_kg());
        let suggestions = engine.interpret("camping", 5);
        let labels: Vec<&str> = suggestions.iter().map(|s| s.label()).collect();
        assert!(labels.contains(&"winter camping"), "{labels:?}");
        assert!(labels.contains(&"lakeside camping"));
    }

    #[test]
    fn unknown_query_yields_nothing() {
        let engine = NavigationEngine::new(camping_kg());
        assert!(engine.interpret("quantum flux", 5).is_empty());
    }

    #[test]
    fn intent_selection_narrows_candidates() {
        let engine = NavigationEngine::new(camping_kg());
        let (mut session, suggestions) = NavSession::start(&engine, "camping", 5);
        assert!(!session.candidates.is_empty());
        let before = session.candidates.len();
        let winter = suggestions
            .iter()
            .find(|s| s.label() == "winter camping")
            .unwrap()
            .clone();
        session.select(&winter, 5);
        assert!(session.candidates.len() < before);
        assert!(session.candidates.iter().all(|(_, t)| t.contains("winter")));
        assert_eq!(session.depth(), 1);
    }

    #[test]
    fn attribute_layer_filters_titles() {
        let engine = NavigationEngine::new(camping_kg());
        let (mut session, _) = NavSession::start(&engine, "camping", 5);
        let n_before = session.candidates.len();
        session.select(&Suggestion::Attribute("air".into()), 5);
        assert!(session.candidates.len() <= n_before);
        assert!(session.candidates.iter().all(|(_, t)| t.contains("air")));
    }

    #[test]
    fn products_for_intent_ranked_by_support() {
        let engine = NavigationEngine::new(camping_kg());
        let prods = engine.products_for_intent("winter camping", 10);
        assert_eq!(prods.len(), 2);
        assert!(prods[0].1.contains("winter"));
    }

    #[test]
    fn snapshot_backend_yields_identical_navigation() {
        let kg = camping_kg();
        let store_engine = NavigationEngine::new(kg.clone());
        let snap_engine = NavigationEngine::new(kg.freeze());
        for query in ["camping", "quantum flux"] {
            assert_eq!(
                store_engine.interpret(query, 5),
                snap_engine.interpret(query, 5)
            );
            let (a, sa) = NavSession::start(&store_engine, query, 5);
            let (b, sb) = NavSession::start(&snap_engine, query, 5);
            assert_eq!(sa, sb);
            assert_eq!(a.candidates, b.candidates);
        }
        for intent in ["camping", "winter camping", "lakeside camping"] {
            assert_eq!(
                store_engine.products_for_intent(intent, 10),
                snap_engine.products_for_intent(intent, 10)
            );
        }
    }

    #[test]
    fn attributes_exclude_universal_tokens() {
        let engine = NavigationEngine::new(camping_kg());
        let prods = engine.products_for_intent("camping", 10);
        let attrs = engine.attributes_of(&prods, 10);
        // "air" and "mattress" appear in 3/4 products; "acme" in 2
        assert!(attrs.iter().all(|a| {
            let l = a.label();
            l != "camping" // never a discriminating attribute here
        }));
        assert!(!attrs.is_empty());
    }
}
