//! The synthetic e-commerce world model.
//!
//! A [`World`] is a fully materialised, seeded universe: 18 domains of
//! product types, each with a **ground-truth intent profile** (which
//! intentions, under which of the 15 relations, with which typicality
//! weight, explain buying this kind of product), a complement graph
//! (ground-truth co-purchase structure), Zipf-popular products, and search
//! queries ranging from broad intent queries ("camping") to specific
//! product-type queries ("air mattress").
//!
//! Everything downstream — teacher generations, annotation oracles, critic
//! labels, student evaluation, the ESCI and session datasets — derives from
//! these profiles, which is what makes the pipeline *measurable*: we know
//! which knowledge is typical because the world says so.

use crate::domain::{DomainId, BODY_PARTS, BRANDS, MODIFIERS, SPECS, TIMES};
use crate::util::{sample_weighted, zipf_weight};
use cosmo_kg::Relation;
use cosmo_text::{canonicalize_tail, FxHashMap};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Handle to an intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct IntentId(pub u32);

/// Handle to a product type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ProductTypeId(pub u32);

/// Handle to a product.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ProductId(pub u32);

/// Handle to a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct QueryId(pub u32);

/// A ground-truth intention: a relation-typed tail phrase rooted in one
/// domain's lexicon.
#[derive(Debug, Clone)]
pub struct Intent {
    /// Relation under which this tail explains behaviour.
    pub relation: Relation,
    /// Canonicalised tail phrase ("walking the dog").
    pub tail: String,
    /// Home domain.
    pub domain: DomainId,
}

/// A product type with its ground-truth intent profile.
#[derive(Debug, Clone)]
pub struct ProductType {
    /// Display name ("portable air mattress").
    pub name: String,
    /// Base noun ("air mattress").
    pub base: String,
    /// Home domain.
    pub domain: DomainId,
    /// `(intent, typicality weight)` — weight in `(0,1]`; ≥ 0.5 counts as
    /// a *typical* reason to buy this type.
    pub profile: Vec<(IntentId, f32)>,
    /// Ground-truth complementary types (co-purchase structure).
    pub complements: Vec<ProductTypeId>,
}

impl ProductType {
    /// Profile weight of an intent (0 when absent).
    pub fn weight_of(&self, intent: IntentId) -> f32 {
        self.profile
            .iter()
            .find(|(i, _)| *i == intent)
            .map_or(0.0, |(_, w)| *w)
    }
}

/// A concrete product.
#[derive(Debug, Clone)]
pub struct Product {
    /// Product type.
    pub ptype: ProductTypeId,
    /// Title shown to users ("acme portable air mattress").
    pub title: String,
    /// Zipf popularity weight (unnormalised).
    pub popularity: f64,
}

/// How a query was generated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryKind {
    /// Broad intent query ("camping") — the semantic-gap case the paper
    /// says is most valuable to generate knowledge for.
    Broad(IntentId),
    /// Specific product-type query ("air mattress").
    Specific(ProductTypeId),
}

/// A search query.
#[derive(Debug, Clone)]
pub struct Query {
    /// Surface text.
    pub text: String,
    /// Home domain.
    pub domain: DomainId,
    /// Generation provenance (ground truth, hidden from the pipeline).
    pub kind: QueryKind,
    /// Ground-truth specificity in `(0,1]` (1 = fully specific).
    pub specificity: f32,
    /// Engagement level in `(0,1]` (click volume proxy).
    pub engagement: f32,
    /// Product types that genuinely satisfy the query.
    pub target_types: Vec<ProductTypeId>,
}

/// World generation parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorldConfig {
    /// RNG seed: the whole world is a pure function of this config.
    pub seed: u64,
    /// Derived product-type variants per base noun (1 = bases only).
    pub variants_per_base: usize,
    /// Products per product type.
    pub products_per_type: usize,
    /// Zipf exponent for product popularity.
    pub zipf_exponent: f64,
    /// Extra fringe intents per product type (low-weight, plausible but
    /// atypical knowledge the filters and critics must grade down).
    pub fringe_intents: usize,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            seed: 0x000C_0530,
            variants_per_base: 2,
            products_per_type: 6,
            zipf_exponent: 0.8,
            fringe_intents: 2,
        }
    }
}

impl WorldConfig {
    /// A small world for unit tests (fast to build).
    pub fn tiny(seed: u64) -> Self {
        WorldConfig {
            seed,
            variants_per_base: 1,
            products_per_type: 2,
            zipf_exponent: 0.8,
            fringe_intents: 1,
        }
    }
}

/// The generated world.
#[derive(Debug)]
pub struct World {
    /// Generation parameters.
    pub config: WorldConfig,
    /// All intents.
    pub intents: Vec<Intent>,
    /// All product types.
    pub product_types: Vec<ProductType>,
    /// All products.
    pub products: Vec<Product>,
    /// All queries.
    pub queries: Vec<Query>,
    intent_index: FxHashMap<(Relation, String), IntentId>,
    types_by_domain: Vec<Vec<ProductTypeId>>,
    products_by_type: Vec<Vec<ProductId>>,
    products_by_domain: Vec<Vec<ProductId>>,
    queries_by_domain: Vec<Vec<QueryId>>,
}

impl World {
    /// Generate a world from `config` (deterministic per seed).
    pub fn generate(config: WorldConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut w = World {
            config,
            intents: Vec::new(),
            product_types: Vec::new(),
            products: Vec::new(),
            queries: Vec::new(),
            intent_index: FxHashMap::default(),
            types_by_domain: vec![Vec::new(); SPECS.len()],
            products_by_type: Vec::new(),
            products_by_domain: vec![Vec::new(); SPECS.len()],
            queries_by_domain: vec![Vec::new(); SPECS.len()],
        };
        w.build_intents();
        w.build_product_types(&mut rng);
        w.build_complements(&mut rng);
        w.build_products(&mut rng);
        w.build_queries(&mut rng);
        w
    }

    /// Intern an intent (idempotent per `(relation, canonical tail)`).
    fn intern_intent(&mut self, relation: Relation, tail: &str, domain: DomainId) -> IntentId {
        let canon = canonicalize_tail(tail);
        if let Some(&id) = self.intent_index.get(&(relation, canon.clone())) {
            return id;
        }
        let id = IntentId(self.intents.len() as u32);
        self.intents.push(Intent {
            relation,
            tail: canon.clone(),
            domain,
        });
        self.intent_index.insert((relation, canon), id);
        id
    }

    fn build_intents(&mut self) {
        for domain in DomainId::all() {
            let spec = domain.spec();
            // Functions rotate across the three function-typed relations so
            // the same bank yields distinct (relation, tail) intents.
            let func_rels = [Relation::UsedForFunc, Relation::CapableOf, Relation::UsedTo];
            for (i, &f) in spec.functions.iter().enumerate() {
                self.intern_intent(func_rels[i % 3], f, domain);
            }
            for &e in spec.events {
                self.intern_intent(Relation::UsedForEve, e, domain);
            }
            let aud_rels = [Relation::UsedBy, Relation::UsedForAud, Relation::XIsA];
            for (i, &a) in spec.audiences.iter().enumerate() {
                self.intern_intent(aud_rels[i % 3], a, domain);
            }
            for &l in spec.locations {
                self.intern_intent(Relation::UsedInLoc, l, domain);
            }
            for &i in spec.interests {
                self.intern_intent(Relation::XInterestedIn, i, domain);
            }
            for &a in spec.activities {
                self.intern_intent(Relation::XWant, a, domain);
            }
            for (i, &t) in TIMES.iter().enumerate() {
                // Each domain carries a subset of the global time bank.
                if (i + domain.0 as usize).is_multiple_of(2) {
                    self.intern_intent(Relation::UsedOn, t, domain);
                }
            }
            // Body-part intents only where they make sense.
            if matches!(domain.0, 0 | 9 | 11) {
                for &b in BODY_PARTS {
                    self.intern_intent(Relation::UsedInBody, b, domain);
                }
            }
            // IS_A concept intents from the base nouns.
            for &b in spec.bases {
                self.intern_intent(Relation::IsA, b, domain);
                self.intern_intent(Relation::UsedAs, b, domain);
            }
        }
    }

    /// Intents of a domain under a relation.
    fn domain_intents(&self, domain: DomainId, relation: Relation) -> Vec<IntentId> {
        self.intents
            .iter()
            .enumerate()
            .filter(|(_, i)| i.domain == domain && i.relation == relation)
            .map(|(i, _)| IntentId(i as u32))
            .collect()
    }

    fn build_product_types(&mut self, rng: &mut StdRng) {
        for domain in DomainId::all() {
            let spec = domain.spec();
            for &base in spec.bases {
                for variant in 0..self.config.variants_per_base.max(1) {
                    let name = if variant == 0 {
                        base.to_string()
                    } else {
                        let m = MODIFIERS[rng.gen_range(0..MODIFIERS.len())];
                        format!("{m} {base}")
                    };
                    let profile = self.sample_profile(domain, base, rng);
                    let id = ProductTypeId(self.product_types.len() as u32);
                    self.product_types.push(ProductType {
                        name,
                        base: base.to_string(),
                        domain,
                        profile,
                        complements: Vec::new(),
                    });
                    self.types_by_domain[domain.0 as usize].push(id);
                }
            }
        }
    }

    fn sample_profile(
        &mut self,
        domain: DomainId,
        base: &str,
        rng: &mut StdRng,
    ) -> Vec<(IntentId, f32)> {
        let mut profile: Vec<(IntentId, f32)> = Vec::new();
        let add_from = |w: &mut World,
                        rels: &[Relation],
                        count: usize,
                        weights: &[f32],
                        rng: &mut StdRng,
                        profile: &mut Vec<(IntentId, f32)>| {
            let mut pool: Vec<IntentId> = rels
                .iter()
                .flat_map(|&r| w.domain_intents(domain, r))
                .collect();
            pool.shuffle(rng);
            for (k, id) in pool.into_iter().take(count).enumerate() {
                let base_w = weights[k.min(weights.len() - 1)];
                let jitter = rng.gen_range(-0.05f32..0.05);
                let w_final = (base_w + jitter).clamp(0.15, 1.0);
                if !profile.iter().any(|(i, _)| *i == id) {
                    profile.push((id, w_final));
                }
            }
        };
        add_from(
            self,
            &[Relation::UsedForFunc, Relation::CapableOf, Relation::UsedTo],
            3,
            &[0.9, 0.65, 0.35],
            rng,
            &mut profile,
        );
        add_from(
            self,
            &[Relation::UsedForEve],
            2,
            &[0.8, 0.45],
            rng,
            &mut profile,
        );
        add_from(
            self,
            &[Relation::UsedBy, Relation::UsedForAud, Relation::XIsA],
            2,
            &[0.7, 0.4],
            rng,
            &mut profile,
        );
        add_from(self, &[Relation::UsedInLoc], 1, &[0.6], rng, &mut profile);
        add_from(self, &[Relation::UsedOn], 1, &[0.4], rng, &mut profile);
        add_from(
            self,
            &[Relation::XInterestedIn],
            1,
            &[0.5],
            rng,
            &mut profile,
        );
        add_from(self, &[Relation::XWant], 1, &[0.6], rng, &mut profile);
        if matches!(domain.0, 0 | 9 | 11) {
            add_from(self, &[Relation::UsedInBody], 1, &[0.5], rng, &mut profile);
        }
        // The type's own concept identity is maximally typical.
        let isa = self.intern_intent(Relation::IsA, base, domain);
        profile.push((isa, 1.0));
        // Fringe intents: plausible-but-atypical knowledge.
        let fringe = self.config.fringe_intents;
        add_from(
            self,
            &[
                Relation::UsedForEve,
                Relation::XWant,
                Relation::XInterestedIn,
            ],
            fringe,
            &[0.2],
            rng,
            &mut profile,
        );
        profile
    }

    fn build_complements(&mut self, rng: &mut StdRng) {
        for domain in DomainId::all() {
            let ids = self.types_by_domain[domain.0 as usize].clone();
            for &tid in &ids {
                let n_comp = rng.gen_range(1..=3usize);
                // Prefer complements sharing an intent; fall back to random
                // same-domain types.
                let my_intents: Vec<IntentId> = self.product_types[tid.0 as usize]
                    .profile
                    .iter()
                    .map(|(i, _)| *i)
                    .collect();
                let mut scored: Vec<(ProductTypeId, usize)> = ids
                    .iter()
                    .filter(|&&o| {
                        o != tid
                            && self.product_types[o.0 as usize].base
                                != self.product_types[tid.0 as usize].base
                    })
                    .map(|&o| {
                        let shared = self.product_types[o.0 as usize]
                            .profile
                            .iter()
                            .filter(|(i, _)| my_intents.contains(i))
                            .count();
                        (o, shared)
                    })
                    .collect();
                scored.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
                let chosen: Vec<ProductTypeId> =
                    scored.into_iter().take(n_comp).map(|(o, _)| o).collect();
                for o in chosen {
                    if !self.product_types[tid.0 as usize].complements.contains(&o) {
                        self.product_types[tid.0 as usize].complements.push(o);
                    }
                    if !self.product_types[o.0 as usize].complements.contains(&tid) {
                        self.product_types[o.0 as usize].complements.push(tid);
                    }
                    // Record the UsedWith intent both ways.
                    let o_base = self.product_types[o.0 as usize].base.clone();
                    let t_base = self.product_types[tid.0 as usize].base.clone();
                    let iw1 = self.intern_intent(Relation::UsedWith, &o_base, domain);
                    let iw2 = self.intern_intent(Relation::UsedWith, &t_base, domain);
                    if self.product_types[tid.0 as usize].weight_of(iw1) == 0.0 {
                        self.product_types[tid.0 as usize].profile.push((iw1, 0.7));
                    }
                    if self.product_types[o.0 as usize].weight_of(iw2) == 0.0 {
                        self.product_types[o.0 as usize].profile.push((iw2, 0.7));
                    }
                }
            }
        }
    }

    fn build_products(&mut self, rng: &mut StdRng) {
        self.products_by_type = vec![Vec::new(); self.product_types.len()];
        for domain in DomainId::all() {
            let type_ids = self.types_by_domain[domain.0 as usize].clone();
            let mut domain_products: Vec<ProductId> = Vec::new();
            for tid in type_ids {
                for _ in 0..self.config.products_per_type {
                    let brand = BRANDS[rng.gen_range(0..BRANDS.len())];
                    let tname = &self.product_types[tid.0 as usize].name;
                    let title = if rng.gen_bool(0.4) {
                        let m = MODIFIERS[rng.gen_range(0..MODIFIERS.len())];
                        format!("{brand} {m} {tname}")
                    } else {
                        format!("{brand} {tname}")
                    };
                    let pid = ProductId(self.products.len() as u32);
                    self.products.push(Product {
                        ptype: tid,
                        title,
                        popularity: 0.0,
                    });
                    self.products_by_type[tid.0 as usize].push(pid);
                    domain_products.push(pid);
                }
            }
            // Zipf popularity over a random permutation of the domain.
            domain_products.shuffle(rng);
            for (rank, pid) in domain_products.iter().enumerate() {
                self.products[pid.0 as usize].popularity =
                    zipf_weight(rank + 1, self.config.zipf_exponent);
            }
            self.products_by_domain[domain.0 as usize] = domain_products;
        }
    }

    fn build_queries(&mut self, rng: &mut StdRng) {
        for domain in DomainId::all() {
            // Broad queries from event / audience / activity / function intents.
            let broad_rels = [
                Relation::UsedForEve,
                Relation::UsedBy,
                Relation::XWant,
                Relation::UsedForFunc,
                Relation::XInterestedIn,
            ];
            for rel in broad_rels {
                for iid in self.domain_intents(domain, rel) {
                    let targets: Vec<ProductTypeId> = self.types_by_domain[domain.0 as usize]
                        .iter()
                        .copied()
                        .filter(|&t| self.product_types[t.0 as usize].weight_of(iid) >= 0.35)
                        .collect();
                    if targets.is_empty() {
                        continue;
                    }
                    let tail = self.intents[iid.0 as usize].tail.clone();
                    let text = broad_query_text(&tail);
                    let specificity = (1.0 / (1.0 + targets.len() as f32)).clamp(0.05, 0.6);
                    let engagement = rng.gen_range(0.2f32..1.0);
                    let qid = QueryId(self.queries.len() as u32);
                    self.queries.push(Query {
                        text,
                        domain,
                        kind: QueryKind::Broad(iid),
                        specificity,
                        engagement,
                        target_types: targets,
                    });
                    self.queries_by_domain[domain.0 as usize].push(qid);
                }
            }
            // Specific queries: one per product type.
            for &tid in &self.types_by_domain[domain.0 as usize].clone() {
                let text = self.product_types[tid.0 as usize].name.clone();
                let engagement = rng.gen_range(0.3f32..1.0);
                let qid = QueryId(self.queries.len() as u32);
                self.queries.push(Query {
                    text,
                    domain,
                    kind: QueryKind::Specific(tid),
                    specificity: rng.gen_range(0.8f32..0.98),
                    engagement,
                    target_types: vec![tid],
                });
                self.queries_by_domain[domain.0 as usize].push(qid);
            }
        }
    }

    // ------------------------------------------------------------ accessors

    /// Product payload.
    pub fn product(&self, id: ProductId) -> &Product {
        &self.products[id.0 as usize]
    }

    /// Product-type payload.
    pub fn ptype(&self, id: ProductTypeId) -> &ProductType {
        &self.product_types[id.0 as usize]
    }

    /// Product type of a product.
    pub fn ptype_of(&self, id: ProductId) -> &ProductType {
        self.ptype(self.product(id).ptype)
    }

    /// Query payload.
    pub fn query(&self, id: QueryId) -> &Query {
        &self.queries[id.0 as usize]
    }

    /// Intent payload.
    pub fn intent(&self, id: IntentId) -> &Intent {
        &self.intents[id.0 as usize]
    }

    /// Products of a domain.
    pub fn products_in_domain(&self, d: DomainId) -> &[ProductId] {
        &self.products_by_domain[d.0 as usize]
    }

    /// Product types of a domain.
    pub fn types_in_domain(&self, d: DomainId) -> &[ProductTypeId] {
        &self.types_by_domain[d.0 as usize]
    }

    /// Queries of a domain.
    pub fn queries_in_domain(&self, d: DomainId) -> &[QueryId] {
        &self.queries_by_domain[d.0 as usize]
    }

    /// Products of a type.
    pub fn products_of_type(&self, t: ProductTypeId) -> &[ProductId] {
        &self.products_by_type[t.0 as usize]
    }

    /// Look up an intent by `(relation, raw tail)` (tail is canonicalised).
    pub fn lookup_intent(&self, relation: Relation, tail: &str) -> Option<IntentId> {
        self.intent_index
            .get(&(relation, canonicalize_tail(tail)))
            .copied()
    }

    /// Sample a product in a domain proportional to popularity.
    pub fn sample_product(&self, d: DomainId, rng: &mut impl Rng) -> ProductId {
        let ids = &self.products_by_domain[d.0 as usize];
        let weights: Vec<f64> = ids.iter().map(|p| self.product(*p).popularity).collect();
        ids[sample_weighted(&weights, rng)]
    }

    /// Sample a query in a domain proportional to engagement.
    pub fn sample_query(&self, d: DomainId, rng: &mut impl Rng) -> QueryId {
        let ids = &self.queries_by_domain[d.0 as usize];
        let weights: Vec<f64> = ids
            .iter()
            .map(|q| self.query(*q).engagement as f64)
            .collect();
        ids[sample_weighted(&weights, rng)]
    }
}

/// Strip a leading article so intent tails read like queries
/// ("a wedding party" → "wedding party").
fn broad_query_text(tail: &str) -> String {
    for prefix in ["a ", "an ", "the "] {
        if let Some(rest) = tail.strip_prefix(prefix) {
            return rest.to_string();
        }
    }
    tail.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> World {
        World::generate(WorldConfig::tiny(7))
    }

    #[test]
    fn generation_is_deterministic() {
        let a = tiny();
        let b = tiny();
        assert_eq!(a.products.len(), b.products.len());
        assert_eq!(a.queries.len(), b.queries.len());
        assert_eq!(a.products[5].title, b.products[5].title);
        assert_eq!(a.queries[3].text, b.queries[3].text);
    }

    #[test]
    fn all_domains_populated() {
        let w = tiny();
        for d in DomainId::all() {
            assert!(!w.types_in_domain(d).is_empty(), "{}", d.name());
            assert!(!w.products_in_domain(d).is_empty(), "{}", d.name());
            assert!(!w.queries_in_domain(d).is_empty(), "{}", d.name());
        }
    }

    #[test]
    fn profiles_have_typical_and_fringe() {
        let w = tiny();
        for pt in &w.product_types {
            assert!(
                pt.profile.iter().any(|(_, wt)| *wt >= 0.5),
                "{} has no typical intent",
                pt.name
            );
            assert!(pt.profile.len() >= 5, "{} profile too small", pt.name);
            // no duplicate intents
            let mut ids: Vec<u32> = pt.profile.iter().map(|(i, _)| i.0).collect();
            ids.sort_unstable();
            let n = ids.len();
            ids.dedup();
            assert_eq!(ids.len(), n, "{} has duplicate profile intents", pt.name);
        }
    }

    #[test]
    fn complements_are_symmetric_and_in_profile() {
        let w = tiny();
        for (i, pt) in w.product_types.iter().enumerate() {
            for &c in &pt.complements {
                assert!(
                    w.ptype(c).complements.contains(&ProductTypeId(i as u32)),
                    "complement graph must be symmetric"
                );
            }
        }
    }

    #[test]
    fn broad_queries_have_multiple_targets_and_low_specificity() {
        let w = tiny();
        let mut saw_broad = false;
        for q in &w.queries {
            match q.kind {
                QueryKind::Broad(_) => {
                    saw_broad = true;
                    assert!(q.specificity <= 0.6, "broad query too specific: {}", q.text);
                    assert!(!q.target_types.is_empty());
                }
                QueryKind::Specific(t) => {
                    assert_eq!(q.target_types, vec![t]);
                    assert!(q.specificity >= 0.8);
                }
            }
        }
        assert!(saw_broad);
    }

    #[test]
    fn popularity_is_zipf_like() {
        let w = tiny();
        let d = DomainId(2);
        let mut pops: Vec<f64> = w
            .products_in_domain(d)
            .iter()
            .map(|p| w.product(*p).popularity)
            .collect();
        pops.sort_by(|a, b| b.total_cmp(a));
        assert!(
            pops[0] > pops[pops.len() - 1] * 2.0,
            "head should dominate tail"
        );
    }

    #[test]
    fn intent_lookup_roundtrip() {
        let w = tiny();
        for (i, intent) in w.intents.iter().enumerate() {
            assert_eq!(
                w.lookup_intent(intent.relation, &intent.tail),
                Some(IntentId(i as u32))
            );
        }
        assert_eq!(w.lookup_intent(Relation::IsA, "no such tail zzz"), None);
    }

    #[test]
    fn isa_intent_is_fully_typical() {
        let w = tiny();
        for pt in &w.product_types {
            let isa = w
                .lookup_intent(Relation::IsA, &pt.base)
                .expect("base IsA intent must exist");
            assert!(pt.weight_of(isa) >= 0.99);
        }
    }

    #[test]
    fn weighted_samplers_run() {
        let w = tiny();
        let mut rng = StdRng::seed_from_u64(3);
        let d = DomainId(1);
        let p = w.sample_product(d, &mut rng);
        assert_eq!(w.ptype_of(p).domain, d);
        let q = w.sample_query(d, &mut rng);
        assert_eq!(w.query(q).domain, d);
    }
}

/// Per-domain and global world statistics (diagnostics, docs, and the
/// generator-calibration reports).
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct WorldSummary {
    /// Product types per domain (index = domain id).
    pub types_per_domain: Vec<usize>,
    /// Products per domain.
    pub products_per_domain: Vec<usize>,
    /// Queries per domain.
    pub queries_per_domain: Vec<usize>,
    /// Total ground-truth intents.
    pub intents: usize,
    /// Mean intent-profile size across product types.
    pub mean_profile_len: f64,
    /// Mean complements per product type.
    pub mean_complements: f64,
    /// Fraction of queries that are broad.
    pub broad_query_fraction: f64,
}

impl World {
    /// Compute the world summary.
    pub fn summary(&self) -> WorldSummary {
        let n_domains = crate::domain::SPECS.len();
        let mut types_per_domain = vec![0usize; n_domains];
        let mut products_per_domain = vec![0usize; n_domains];
        let mut queries_per_domain = vec![0usize; n_domains];
        for d in DomainId::all() {
            types_per_domain[d.0 as usize] = self.types_in_domain(d).len();
            products_per_domain[d.0 as usize] = self.products_in_domain(d).len();
            queries_per_domain[d.0 as usize] = self.queries_in_domain(d).len();
        }
        let mean_profile_len = self
            .product_types
            .iter()
            .map(|t| t.profile.len())
            .sum::<usize>() as f64
            / self.product_types.len().max(1) as f64;
        let mean_complements = self
            .product_types
            .iter()
            .map(|t| t.complements.len())
            .sum::<usize>() as f64
            / self.product_types.len().max(1) as f64;
        let broad = self
            .queries
            .iter()
            .filter(|q| matches!(q.kind, QueryKind::Broad(_)))
            .count();
        WorldSummary {
            types_per_domain,
            products_per_domain,
            queries_per_domain,
            intents: self.intents.len(),
            mean_profile_len,
            mean_complements,
            broad_query_fraction: broad as f64 / self.queries.len().max(1) as f64,
        }
    }
}

#[cfg(test)]
mod summary_tests {
    use super::*;

    #[test]
    fn summary_is_consistent_with_accessors() {
        let w = World::generate(WorldConfig::tiny(701));
        let s = w.summary();
        assert_eq!(
            s.types_per_domain.iter().sum::<usize>(),
            w.product_types.len()
        );
        assert_eq!(
            s.products_per_domain.iter().sum::<usize>(),
            w.products.len()
        );
        assert_eq!(s.queries_per_domain.iter().sum::<usize>(), w.queries.len());
        assert_eq!(s.intents, w.intents.len());
        assert!(
            s.mean_profile_len >= 5.0,
            "profiles too thin: {}",
            s.mean_profile_len
        );
        assert!(s.mean_complements >= 1.0);
        assert!(s.broad_query_fraction > 0.2 && s.broad_query_fraction < 0.9);
    }
}
