//! # cosmo-synth
//!
//! The synthetic e-commerce world model that substitutes for Amazon's
//! proprietary data (catalogue, behaviour logs, annotation ground truth).
//!
//! Why a *world model* rather than random data: every pipeline stage in the
//! paper is validated against human judgment — filters drop bad
//! generations, critics score plausibility/typicality, the student model is
//! graded on how typical its knowledge is. To reproduce those measurements
//! offline, the synthetic products carry **ground-truth intent profiles**
//! ([`world::ProductType::profile`]); the [`oracle::Oracle`] answers the
//! paper's five annotation questions from those profiles, and every
//! downstream experiment is scored against the same truth.
//!
//! Components:
//! * [`domain`] — hand-written lexicons for the 18 Amazon categories of Table 3;
//! * [`world`]  — seeded generation of product types, intents, complements,
//!   Zipf-popular products and broad/specific queries;
//! * [`behavior`] — search-buy / co-buy log generation with calibrated noise
//!   (§3.1, §3.2.1) plus the query-specificity service;
//! * [`oracle`] — ground-truth relevance/informativeness/plausibility/
//!   typicality judgments (§3.3.2, Appendix B);
//! * [`corpus`](crate::corpus()) — the e-commerce pre-training corpus for the LM and
//!   embedding filters (§3.3.1).

#![forbid(unsafe_code)]

pub mod behavior;
pub mod corpus;
pub mod domain;
pub mod oracle;
pub mod scale;
pub mod util;
pub mod world;

pub use behavior::{BehaviorConfig, BehaviorLog, CoBuy, SearchBuy, SpecificityService};
pub use corpus::corpus;
pub use domain::{DomainId, DomainSpec, SPECS};
pub use oracle::{Judgment, Oracle, TYPICAL_WEIGHT};
pub use scale::{generate_shard, ScaleConfig, ShardEdge, ShardOutput};
pub use world::{
    Intent, IntentId, Product, ProductId, ProductType, ProductTypeId, Query, QueryId, QueryKind,
    World, WorldConfig,
};
