//! Sampling helpers shared across the world model.

use rand::Rng;

/// Sample an index proportional to `weights` (all non-negative, not all
/// zero). Linear scan — the weight vectors here are small or sampled rarely.
pub fn sample_weighted(weights: &[f64], rng: &mut impl Rng) -> usize {
    debug_assert!(!weights.is_empty());
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return rng.gen_range(0..weights.len());
    }
    let mut x = rng.gen_range(0.0..total);
    for (i, &w) in weights.iter().enumerate() {
        if x < w {
            return i;
        }
        x -= w;
    }
    weights.len() - 1
}

/// Precomputed alias-free cumulative distribution for repeated weighted
/// sampling (binary search per draw). Used for popularity-weighted product
/// and query draws, which happen millions of times when generating logs.
#[derive(Debug, Clone)]
pub struct Cdf {
    cumulative: Vec<f64>,
}

impl Cdf {
    /// Build from non-negative weights (not all zero).
    pub fn new(weights: &[f64]) -> Self {
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            debug_assert!(w >= 0.0, "negative weight");
            acc += w;
            cumulative.push(acc);
        }
        assert!(acc > 0.0, "Cdf requires positive total weight");
        Cdf { cumulative }
    }

    /// Draw an index.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let total = *self.cumulative.last().unwrap();
        let x = rng.gen_range(0.0..total);
        match self.cumulative.binary_search_by(|c| c.total_cmp(&x)) {
            Ok(i) => (i + 1).min(self.cumulative.len() - 1),
            Err(i) => i,
        }
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Always false (construction requires at least one weight).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }
}

/// Zipf weight for rank `r` (1-based) with exponent `s`.
pub fn zipf_weight(rank: usize, s: f64) -> f64 {
    1.0 / (rank as f64).powf(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn weighted_sampling_respects_weights() {
        let mut rng = StdRng::seed_from_u64(1);
        let weights = [1.0, 0.0, 9.0];
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[sample_weighted(&weights, &mut rng)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 9.0).abs() < 1.5, "ratio={ratio}");
    }

    #[test]
    fn cdf_matches_direct_sampling() {
        let mut rng = StdRng::seed_from_u64(2);
        let weights = [2.0, 3.0, 5.0];
        let cdf = Cdf::new(&weights);
        let mut counts = [0usize; 3];
        for _ in 0..20_000 {
            counts[cdf.sample(&mut rng)] += 1;
        }
        assert!((counts[0] as f64 / 20_000.0 - 0.2).abs() < 0.02);
        assert!((counts[2] as f64 / 20_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn zipf_is_decreasing() {
        let w: Vec<f64> = (1..=5).map(|r| zipf_weight(r, 0.8)).collect();
        for pair in w.windows(2) {
            assert!(pair[0] > pair[1]);
        }
    }

    #[test]
    #[should_panic(expected = "positive total weight")]
    fn cdf_rejects_all_zero() {
        let _ = Cdf::new(&[0.0, 0.0]);
    }
}
