//! Per-domain word banks for the synthetic e-commerce world.
//!
//! The paper's pipeline runs over 18 Amazon product categories (Table 3).
//! Real behaviour logs are proprietary, so each domain here carries a
//! hand-written lexicon — product-type bases, functions, events, audiences,
//! locations, interests and activities — from which the world model
//! composes product types, ground-truth intent profiles, queries and the
//! example generations that Table 9 shows per category.
//!
//! The `cobuy_weight` / `searchbuy_weight` fields encode each category's
//! relative behaviour volume, matching the row proportions of Table 3
//! (Home & Kitchen largest, Video Games / Musical Instruments smallest).

/// Index into [`SPECS`]; aligned with `cosmo_kg::CATEGORIES`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DomainId(pub u8);

/// Static lexicon of one product category.
#[derive(Debug)]
pub struct DomainSpec {
    /// Category name (Table 3 row label).
    pub name: &'static str,
    /// Product-type base nouns.
    pub bases: &'static [&'static str],
    /// Function / usage tail phrases (USED_FOR_FUNC, CAPABLE_OF, USED_TO).
    pub functions: &'static [&'static str],
    /// Event / activity tails (USED_FOR_EVE).
    pub events: &'static [&'static str],
    /// Audience tails (USED_FOR_AUD, USED_BY, xIs_A).
    pub audiences: &'static [&'static str],
    /// Location tails (USED_IN_LOC).
    pub locations: &'static [&'static str],
    /// Interest tails (xIntersted_in).
    pub interests: &'static [&'static str],
    /// Activity tails (xWant).
    pub activities: &'static [&'static str],
    /// Relative co-buy behaviour volume (Table 3 proportions).
    pub cobuy_weight: f64,
    /// Relative search-buy behaviour volume.
    pub searchbuy_weight: f64,
}

/// Time / season tails shared by all domains (USED_ON).
pub const TIMES: &[&str] = &[
    "late winter",
    "the summer",
    "rainy days",
    "every morning",
    "the holiday season",
    "weekend trips",
    "hot afternoons",
    "the back-to-school season",
    "early spring",
    "game day",
    "late evenings",
    "the rainy season",
];

/// Body-part tails shared by all domains (USED_IN_BODY).
pub const BODY_PARTS: &[&str] = &[
    "sensitive skin",
    "sore feet",
    "the lower back",
    "dry hands",
    "tired eyes",
    "the scalp",
    "aching knees",
    "stiff shoulders",
    "chapped lips",
    "swollen ankles",
];

/// Product-type modifiers used to derive specialised types from bases.
pub const MODIFIERS: &[&str] = &[
    "portable",
    "wireless",
    "kids",
    "heavy duty",
    "mini",
    "professional",
    "waterproof",
    "smart",
    "foldable",
    "adjustable",
    "rechargeable",
    "stainless steel",
    "organic",
    "compact",
    "outdoor",
    "ergonomic",
];

/// Brand names used in product titles.
pub const BRANDS: &[&str] = &[
    "acme",
    "northpeak",
    "homely",
    "zenit",
    "brightline",
    "cascade",
    "oakfield",
    "lumos",
    "vertex",
    "meadow",
    "pioneer",
    "solstice",
];

/// The 18 domain specifications (Table 3 order; "Others" last).
pub const SPECS: [DomainSpec; 18] = [
    DomainSpec {
        name: "Clothing, Shoes & Jewelry",
        bases: &[
            "running shoes",
            "wedding dress",
            "winter jacket",
            "rain boots",
            "yoga pants",
            "leather belt",
            "silver necklace",
            "wool socks",
            "baseball cap",
            "hiking boots",
            "normal suit",
            "compression sleeve",
            "denim jeans",
            "sun hat",
            "ankle socks",
            "puffer vest",
        ],
        functions: &[
            "keeping you warm",
            "providing arch support",
            "wicking away sweat",
            "protecting your feet",
            "matching a formal outfit",
            "preventing blisters",
            "staying dry in the rain",
            "completing an elegant look",
        ],
        events: &[
            "a wedding party",
            "a morning run",
            "a job interview",
            "a winter hike",
            "a beach vacation",
            "a graduation ceremony",
        ],
        audiences: &[
            "marathon runners",
            "brides",
            "office workers",
            "hikers",
            "fashion lovers",
            "pregnant women",
        ],
        locations: &["the gym", "the office", "the trail", "the beach"],
        interests: &["fashion", "trail running", "yoga", "formal style"],
        activities: &[
            "run a marathon",
            "attend a wedding",
            "hike a mountain",
            "go dancing",
        ],
        cobuy_weight: 7.4,
        searchbuy_weight: 9.4,
    },
    DomainSpec {
        name: "Sports & Outdoors",
        bases: &[
            "air mattress",
            "camping tent",
            "sleeping bag",
            "tennis racket",
            "yoga mat",
            "water bottle",
            "fishing rod",
            "bike helmet",
            "trekking poles",
            "kayak paddle",
            "resistance bands",
            "golf gloves",
            "climbing harness",
            "swim goggles",
            "jump rope",
            "camping stove",
        ],
        functions: &[
            "providing arch support",
            "keeping you hydrated",
            "protecting your head",
            "improving your grip",
            "staying comfortable overnight",
            "building core strength",
            "keeping gear dry",
            "absorbing impact",
        ],
        events: &[
            "camping",
            "winter camping",
            "lakeside camping",
            "4-person camping",
            "a fishing trip",
            "a tennis match",
            "a yoga class",
            "mountain camping",
        ],
        audiences: &[
            "campers",
            "anglers",
            "cyclists",
            "yogis",
            "tennis players",
            "backpackers",
        ],
        locations: &["the campsite", "the lake", "the court", "the mountains"],
        interests: &["camping", "fitness", "fishing", "cycling"],
        activities: &["play tennis", "go camping", "catch fish", "ride a century"],
        cobuy_weight: 8.0,
        searchbuy_weight: 6.8,
    },
    DomainSpec {
        name: "Home & Kitchen",
        bases: &[
            "potato peeler",
            "chef knife",
            "cutting board",
            "air fryer",
            "coffee maker",
            "storage bins",
            "throw pillow",
            "bed sheets",
            "vacuum cleaner",
            "spice rack",
            "mixing bowls",
            "dish rack",
            "table lamp",
            "curtain rod",
            "cast iron skillet",
            "knife sharpener",
            "food containers",
            "oven mitts",
        ],
        functions: &[
            "peeling potatoes",
            "chopping vegetables",
            "brewing fresh coffee",
            "keeping food warm",
            "organizing the pantry",
            "holding snacks",
            "making crispy fries",
            "keeping the bedroom tidy",
        ],
        events: &[
            "a dinner party",
            "holiday baking",
            "a family breakfast",
            "spring cleaning",
            "a housewarming",
            "meal prep sunday",
        ],
        audiences: &[
            "home cooks",
            "busy parents",
            "coffee lovers",
            "new homeowners",
            "bakers",
            "hosts",
        ],
        locations: &[
            "the kitchen",
            "the bedroom",
            "the pantry",
            "the dining room",
        ],
        interests: &["cooking", "home decor", "baking", "organization"],
        activities: &[
            "cook a feast",
            "bake bread",
            "host a dinner",
            "deep clean the house",
        ],
        cobuy_weight: 13.5,
        searchbuy_weight: 12.1,
    },
    DomainSpec {
        name: "Patio, Lawn & Garden",
        bases: &[
            "garden hose",
            "lawn mower",
            "patio umbrella",
            "planter box",
            "hedge trimmer",
            "bird feeder",
            "fire pit",
            "hammock",
            "sprinkler head",
            "garden gloves",
            "leaf blower",
            "compost bin",
            "string lights",
        ],
        functions: &[
            "watering the flower beds",
            "trimming the hedges",
            "hanging out in the backyard",
            "keeping pests away",
            "providing shade",
            "growing fresh herbs",
            "attracting songbirds",
            "mowing the lawn",
        ],
        events: &[
            "a backyard barbecue",
            "spring planting",
            "a garden party",
            "autumn cleanup",
            "a bonfire night",
            "an outdoor brunch",
        ],
        audiences: &[
            "gardeners",
            "homeowners",
            "bird watchers",
            "grill masters",
            "landscapers",
            "patio loungers",
        ],
        locations: &[
            "the backyard",
            "the patio",
            "the greenhouse",
            "the front lawn",
        ],
        interests: &[
            "gardening",
            "bird watching",
            "landscaping",
            "outdoor living",
        ],
        activities: &[
            "grow tomatoes",
            "host a barbecue",
            "relax in a hammock",
            "plant a garden",
        ],
        cobuy_weight: 3.7,
        searchbuy_weight: 3.0,
    },
    DomainSpec {
        name: "Tools & Home Improvement",
        bases: &[
            "cordless drill",
            "screwdriver set",
            "tape measure",
            "work light",
            "circular saw",
            "tool box",
            "stud finder",
            "paint roller",
            "wrench set",
            "safety goggles",
            "extension cord",
            "shop vacuum",
            "level tool",
            "utility knife",
            "sander",
            "clamp set",
        ],
        functions: &[
            "sharpening scissors",
            "building a fence",
            "hanging shelves",
            "measuring twice and cutting once",
            "protecting your eyes",
            "driving screws fast",
            "finding wall studs",
            "lighting up the workbench",
        ],
        events: &[
            "a weekend renovation",
            "a deck build",
            "a bathroom remodel",
            "a furniture assembly",
            "a roof repair",
            "a garage cleanup",
        ],
        audiences: &[
            "diy enthusiasts",
            "contractors",
            "woodworkers",
            "handymen",
            "renovators",
            "makers",
        ],
        locations: &["the garage", "the workshop", "the job site", "the basement"],
        interests: &[
            "woodworking",
            "home renovation",
            "metalworking",
            "diy projects",
        ],
        activities: &[
            "build a fence",
            "remodel the kitchen",
            "assemble furniture",
            "fix a leak",
        ],
        cobuy_weight: 8.2,
        searchbuy_weight: 6.6,
    },
    DomainSpec {
        name: "Musical Instruments",
        bases: &[
            "acoustic guitar",
            "guitar strings",
            "keyboard stand",
            "microphone cable",
            "drum sticks",
            "violin bow",
            "ukulele case",
            "guitar tuner",
            "piano bench",
            "music stand",
            "capo",
            "drum pad",
            "metronome",
        ],
        functions: &[
            "keeping the guitar in tune",
            "holding sheet music",
            "amplifying vocals",
            "protecting the instrument",
            "practicing quietly",
            "improving tone",
        ],
        events: &[
            "a wedding party",
            "a live gig",
            "a school recital",
            "a studio session",
            "an open mic night",
            "band practice",
        ],
        audiences: &[
            "guitarists",
            "drummers",
            "music students",
            "singers",
            "buskers",
            "producers",
        ],
        locations: &["the studio", "the stage", "the practice room", "the garage"],
        interests: &["music production", "songwriting", "jazz", "classical music"],
        activities: &[
            "play a gig",
            "record an album",
            "learn guitar",
            "join a band",
        ],
        cobuy_weight: 0.8,
        searchbuy_weight: 0.5,
    },
    DomainSpec {
        name: "Industrial & Scientific",
        bases: &[
            "nitrile gloves",
            "lab notebook",
            "digital caliper",
            "safety vest",
            "shipping labels",
            "packing tape",
            "ratchet straps",
            "storage drum",
            "ph test strips",
            "microscope slides",
            "heat gun",
            "workbench mat",
            "barcode scanner",
            "torque wrench",
            "safety glasses",
            "pallet wrap",
        ],
        functions: &[
            "holding a lot of weight",
            "keeping samples sterile",
            "measuring with precision",
            "securing heavy loads",
            "staying visible on site",
            "sealing boxes tight",
            "testing water quality",
            "resisting chemicals",
        ],
        events: &[
            "a lab experiment",
            "a warehouse shift",
            "an equipment audit",
            "a field survey",
            "an inventory count",
            "a safety inspection",
        ],
        audiences: &[
            "lab technicians",
            "warehouse workers",
            "engineers",
            "researchers",
            "machinists",
            "inspectors",
        ],
        locations: &[
            "the laboratory",
            "the warehouse",
            "the factory floor",
            "the loading dock",
        ],
        interests: &["chemistry", "metrology", "logistics", "quality control"],
        activities: &[
            "run an experiment",
            "calibrate instruments",
            "move freight",
            "test samples",
        ],
        cobuy_weight: 12.3,
        searchbuy_weight: 9.5,
    },
    DomainSpec {
        name: "Automotive",
        bases: &[
            "car wax",
            "jumper cables",
            "floor mats",
            "wiper blades",
            "tire gauge",
            "seat covers",
            "phone mount",
            "motor oil",
            "trailer hitch",
            "car vacuum",
            "dash camera",
            "snow brush",
            "tire inflator",
        ],
        functions: &[
            "digging a hole",
            "protecting the paint",
            "starting a dead battery",
            "keeping the cabin clean",
            "checking tire pressure",
            "towing a trailer",
            "seeing clearly in the rain",
            "organizing the trunk",
        ],
        events: &[
            "a road trip",
            "a winter commute",
            "a car show",
            "an oil change",
            "a tailgate party",
            "a track day",
        ],
        audiences: &[
            "commuters",
            "road trippers",
            "car detailers",
            "mechanics",
            "rv owners",
            "off-roaders",
        ],
        locations: &[
            "the garage",
            "the highway",
            "the driveway",
            "the car interior",
        ],
        interests: &[
            "car detailing",
            "off-roading",
            "classic cars",
            "motorsports",
        ],
        activities: &[
            "detail the car",
            "take a road trip",
            "change the oil",
            "tow a camper",
        ],
        cobuy_weight: 5.3,
        searchbuy_weight: 3.0,
    },
    DomainSpec {
        name: "Electronics",
        bases: &[
            "camera case",
            "screen protector glass",
            "usb charger",
            "bluetooth speaker",
            "apple watch",
            "hdmi cable",
            "wireless earbuds",
            "laptop stand",
            "power bank",
            "webcam cover",
            "memory card",
            "surface cover",
            "usb hub",
            "portable monitor",
            "smart bulb",
            "router",
        ],
        functions: &[
            "providing protection for camera",
            "charging two devices at once",
            "preventing blisters",
            "streaming music anywhere",
            "tracking your heart rate",
            "keeping the screen scratch free",
            "extending battery life",
            "raising the laptop to eye level",
        ],
        events: &[
            "a video call",
            "a photo shoot",
            "a long flight",
            "a workout session",
            "a movie night",
            "a gaming session",
        ],
        audiences: &[
            "photographers",
            "remote workers",
            "travelers",
            "fitness trackers",
            "audiophiles",
            "streamers",
        ],
        locations: &[
            "the home office",
            "the studio",
            "the airplane",
            "the living room",
        ],
        interests: &["photography", "smart home tech", "audio gear", "wearables"],
        activities: &[
            "shoot a video",
            "track calories burned",
            "work remotely",
            "stream a game",
        ],
        cobuy_weight: 5.7,
        searchbuy_weight: 6.4,
    },
    DomainSpec {
        name: "Baby Products",
        bases: &[
            "baby monitor",
            "diaper bag",
            "baby socks",
            "bottle warmer",
            "stroller organizer",
            "teething ring",
            "swaddle blanket",
            "high chair",
            "baby carrier",
            "nursing pillow",
            "sippy cup",
            "crib mobile",
            "baby gate",
        ],
        functions: &[
            "keeping the baby's feet dry",
            "soothing sore gums",
            "warming milk evenly",
            "hearing the baby from another room",
            "keeping diapers organized",
            "helping the baby sleep",
            "carrying the baby hands free",
        ],
        events: &[
            "a baby shower",
            "a first birthday",
            "a family outing",
            "nap time",
            "a pediatric visit",
            "a long car ride",
        ],
        audiences: &[
            "new parents",
            "daycare workers",
            "grandparents",
            "babysitters",
            "expecting mothers",
            "toddlers",
        ],
        locations: &[
            "the nursery",
            "the daycare",
            "the stroller",
            "the changing table",
        ],
        interests: &[
            "parenting",
            "child development",
            "montessori play",
            "baby gear",
        ],
        activities: &[
            "soothe a newborn",
            "plan a baby shower",
            "travel with a baby",
            "babyproof the house",
        ],
        cobuy_weight: 3.5,
        searchbuy_weight: 1.6,
    },
    DomainSpec {
        name: "Arts, Crafts & Sewing",
        bases: &[
            "acrylic paint",
            "sewing machine",
            "embroidery hoop",
            "fabric scissors",
            "sketchbook",
            "glue gun",
            "knitting needles",
            "rubber stamps",
            "canvas panels",
            "bead kit",
            "yarn skeins",
            "calligraphy pen",
            "mod podge",
            "felt sheets",
        ],
        functions: &[
            "stamping on fabric",
            "cutting through denim",
            "holding fabric taut",
            "blending bright colors",
            "sticking parts instantly",
            "sketching on the go",
            "knitting a warm scarf",
            "organizing tiny beads",
        ],
        events: &[
            "a craft fair",
            "a quilting bee",
            "an art class",
            "a scrapbooking night",
            "a diy gift season",
            "a school project",
        ],
        audiences: &[
            "quilters",
            "painters",
            "scrapbookers",
            "knitters",
            "art teachers",
            "crafters",
        ],
        locations: &[
            "the craft room",
            "the art studio",
            "the classroom",
            "the sewing table",
        ],
        interests: &[
            "watercolor painting",
            "quilting",
            "hand lettering",
            "jewelry making",
        ],
        activities: &[
            "sew a quilt",
            "paint a portrait",
            "make handmade gifts",
            "learn embroidery",
        ],
        cobuy_weight: 4.2,
        searchbuy_weight: 3.3,
    },
    DomainSpec {
        name: "Health & Household",
        bases: &[
            "face moisturizer",
            "vitamin gummies",
            "heating pad",
            "first aid kit",
            "hand sanitizer",
            "massage roller",
            "air purifier",
            "bath salts",
            "knee brace",
            "sleep mask",
            "herbal tea",
            "foam earplugs",
            "pill organizer",
            "blood pressure monitor",
            "compression socks",
            "essential oils",
        ],
        functions: &[
            "hydrating the skin",
            "drying the face",
            "relieving muscle tension",
            "supporting the immune system",
            "easing lower back pain",
            "filtering allergens",
            "blocking out light",
            "soothing a sore knee",
        ],
        events: &[
            "allergy season",
            "a spa day",
            "flu season",
            "a meditation retreat",
            "post-workout recovery",
            "a good night's sleep",
        ],
        audiences: &[
            "allergy sufferers",
            "athletes in recovery",
            "light sleepers",
            "wellness enthusiasts",
            "seniors",
            "nurses",
        ],
        locations: &[
            "the bathroom",
            "the medicine cabinet",
            "the bedroom",
            "the gym bag",
        ],
        interests: &["herbal medicine", "skincare", "mindfulness", "nutrition"],
        activities: &[
            "recover from a workout",
            "sleep through the night",
            "build a skincare routine",
            "manage allergies",
        ],
        cobuy_weight: 7.4,
        searchbuy_weight: 11.5,
    },
    DomainSpec {
        name: "Toys & Games",
        bases: &[
            "building blocks",
            "board game",
            "stuffed animal",
            "puzzle set",
            "toy kite",
            "play dough",
            "remote control car",
            "dollhouse",
            "card game",
            "water blaster",
            "jigsaw puzzle",
            "action figure",
            "craft slime",
        ],
        functions: &[
            "flying in the air",
            "teaching shapes and colors",
            "keeping kids busy on trips",
            "sparking imagination",
            "building fine motor skills",
            "entertaining the whole family",
            "racing across the driveway",
        ],
        events: &[
            "a birthday party",
            "family game night",
            "a rainy afternoon",
            "a playdate",
            "summer vacation",
            "christmas morning",
        ],
        audiences: &[
            "toddlers",
            "board gamers",
            "collectors",
            "kids aged 8 to 12",
            "party planners",
            "teachers",
        ],
        locations: &[
            "the playroom",
            "the park",
            "the living room floor",
            "the backyard",
        ],
        interests: &[
            "lego building",
            "strategy games",
            "model kits",
            "outdoor play",
        ],
        activities: &[
            "fly a kite",
            "win game night",
            "build a castle",
            "host a playdate",
        ],
        cobuy_weight: 4.7,
        searchbuy_weight: 3.9,
    },
    DomainSpec {
        name: "Video Games",
        bases: &[
            "gaming headset",
            "controller grip",
            "charging dock",
            "gaming mouse",
            "headset stand",
            "console skin",
            "gaming chair",
            "capture card",
            "mouse pad",
            "thumbstick caps",
            "rgb light strip",
            "stream deck",
            "console stand",
        ],
        functions: &[
            "protecting the headset",
            "hearing enemy footsteps",
            "charging two controllers",
            "keeping aim steady",
            "reducing wrist strain",
            "recording gameplay",
            "staying comfortable in long sessions",
        ],
        events: &[
            "a ranked match",
            "a lan party",
            "a speedrun attempt",
            "a streaming marathon",
            "a co-op night",
            "a game launch",
        ],
        audiences: &[
            "competitive gamers",
            "streamers",
            "console players",
            "speedrunners",
            "casual players",
            "esports fans",
        ],
        locations: &[
            "the gaming den",
            "the desk setup",
            "the couch",
            "the tournament hall",
        ],
        interests: &["esports", "retro games", "game streaming", "rpg worlds"],
        activities: &[
            "climb the ranked ladder",
            "stream a playthrough",
            "finish a speedrun",
            "host a lan party",
        ],
        cobuy_weight: 0.5,
        searchbuy_weight: 0.6,
    },
    DomainSpec {
        name: "Grocery & Gourmet Food",
        bases: &[
            "olive oil",
            "potato chips",
            "dark chocolate",
            "green tea",
            "pasta sauce",
            "trail mix",
            "hot sauce",
            "granola bars",
            "ground coffee",
            "sea salt",
            "matcha powder",
            "protein bars",
            "dried mango",
        ],
        functions: &[
            "making potato chips",
            "sweetening the afternoon",
            "spicing up taco night",
            "fueling a long hike",
            "starting the morning right",
            "finishing a salad",
            "calming the evening",
        ],
        events: &[
            "a picnic",
            "movie night",
            "a holiday dinner",
            "an afternoon tea",
            "a camping breakfast",
            "a tailgate",
        ],
        audiences: &[
            "home chefs",
            "snack lovers",
            "tea drinkers",
            "spice fans",
            "hikers",
            "coffee addicts",
        ],
        locations: &[
            "the pantry",
            "the picnic basket",
            "the office drawer",
            "the spice rack",
        ],
        interests: &[
            "gourmet cooking",
            "specialty coffee",
            "healthy snacking",
            "hot sauces",
        ],
        activities: &[
            "cook italian dinner",
            "brew the perfect cup",
            "pack trail snacks",
            "host a tasting",
        ],
        cobuy_weight: 3.2,
        searchbuy_weight: 6.3,
    },
    DomainSpec {
        name: "Office Products",
        bases: &[
            "gel pens",
            "sticky notes",
            "desk organizer",
            "label maker",
            "notebook",
            "paper shredder",
            "desk lamp",
            "file folders",
            "whiteboard",
            "stapler",
            "highlighters",
            "monitor stand",
            "binder clips",
        ],
        functions: &[
            "writing down important information",
            "keeping the desk tidy",
            "labeling every drawer",
            "shredding sensitive documents",
            "brainstorming ideas",
            "filing tax papers",
            "lighting late-night work",
        ],
        events: &[
            "tax season",
            "a team brainstorm",
            "back to school",
            "a quarterly review",
            "a home office setup",
            "an exam week",
        ],
        audiences: &[
            "students",
            "accountants",
            "remote workers",
            "teachers",
            "planners",
            "managers",
        ],
        locations: &[
            "the home office",
            "the classroom",
            "the cubicle",
            "the study desk",
        ],
        interests: &[
            "bullet journaling",
            "productivity",
            "stationery",
            "organization",
        ],
        activities: &[
            "organize the office",
            "study for finals",
            "plan the quarter",
            "journal daily",
        ],
        cobuy_weight: 4.3,
        searchbuy_weight: 4.3,
    },
    DomainSpec {
        name: "Pet Supplies",
        bases: &[
            "dog leash",
            "cat tree",
            "pet bed",
            "dog treats",
            "litter box",
            "bird cage",
            "aquarium filter",
            "pet carrier",
            "flea collar",
            "chew toys",
            "cat scratcher",
            "dog ramp",
            "water fountain",
        ],
        functions: &[
            "walking the dog",
            "keeping claws off the couch",
            "rewarding good behavior",
            "keeping the tank clean",
            "calming an anxious pet",
            "controlling fleas",
            "giving the cat a perch",
        ],
        events: &[
            "a vet visit",
            "a puppy's first walk",
            "adoption day",
            "a grooming session",
            "a weekend at the kennel",
            "a move to a new home",
        ],
        audiences: &[
            "dog owners",
            "cat owners",
            "bird keepers",
            "aquarists",
            "pet sitters",
            "puppy trainers",
        ],
        locations: &[
            "the dog park",
            "the living room corner",
            "the vet clinic",
            "the backyard",
        ],
        interests: &[
            "dog training",
            "aquascaping",
            "cat behavior",
            "pet nutrition",
        ],
        activities: &[
            "walk the dog",
            "train a puppy",
            "set up an aquarium",
            "adopt a kitten",
        ],
        cobuy_weight: 1.4,
        searchbuy_weight: 2.8,
    },
    DomainSpec {
        name: "Others",
        bases: &[
            "fitness tracker",
            "luggage tag",
            "travel pillow",
            "umbrella",
            "gift card holder",
            "key organizer",
            "book light",
            "reusable bags",
            "wall calendar",
            "picture frame",
            "packing cubes",
            "door mat",
            "phone stand",
        ],
        functions: &[
            "tracking calories burned",
            "finding your suitcase fast",
            "sleeping on a plane",
            "staying dry in a storm",
            "reading in bed",
            "remembering every birthday",
            "carrying groceries sustainably",
        ],
        events: &[
            "an international trip",
            "a housewarming gift",
            "a rainy commute",
            "a new year's reset",
            "a graduation gift",
            "a long layover",
        ],
        audiences: &[
            "frequent flyers",
            "gift shoppers",
            "bookworms",
            "minimalists",
            "commuters",
            "planners",
        ],
        locations: &[
            "the carry-on",
            "the entryway",
            "the nightstand",
            "the office wall",
        ],
        interests: &[
            "travel hacking",
            "fitness tracking",
            "reading",
            "minimalism",
        ],
        activities: &[
            "travel light",
            "hit a step goal",
            "read more books",
            "give the perfect gift",
        ],
        cobuy_weight: 5.8,
        searchbuy_weight: 8.7,
    },
];

impl DomainId {
    /// The domain's static spec.
    pub fn spec(self) -> &'static DomainSpec {
        &SPECS[self.0 as usize]
    }

    /// The domain's display name.
    pub fn name(self) -> &'static str {
        self.spec().name
    }

    /// All 18 domains.
    pub fn all() -> impl Iterator<Item = DomainId> {
        (0..SPECS.len() as u8).map(DomainId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eighteen_domains_matching_kg_categories() {
        assert_eq!(SPECS.len(), 18);
        for (i, spec) in SPECS.iter().enumerate() {
            assert_eq!(
                spec.name,
                cosmo_kg::CATEGORIES[i],
                "domain order must match Table 3"
            );
        }
    }

    #[test]
    fn every_domain_has_content() {
        for spec in &SPECS {
            assert!(spec.bases.len() >= 8, "{}: too few bases", spec.name);
            assert!(
                spec.functions.len() >= 6,
                "{}: too few functions",
                spec.name
            );
            assert!(spec.events.len() >= 5, "{}: too few events", spec.name);
            assert!(
                spec.audiences.len() >= 5,
                "{}: too few audiences",
                spec.name
            );
            assert!(
                spec.locations.len() >= 4,
                "{}: too few locations",
                spec.name
            );
            assert!(
                spec.interests.len() >= 4,
                "{}: too few interests",
                spec.name
            );
            assert!(
                spec.activities.len() >= 4,
                "{}: too few activities",
                spec.name
            );
            assert!(spec.cobuy_weight > 0.0 && spec.searchbuy_weight > 0.0);
        }
    }

    #[test]
    fn bases_unique_within_domain() {
        for spec in &SPECS {
            let mut b: Vec<&str> = spec.bases.to_vec();
            b.sort_unstable();
            b.dedup();
            assert_eq!(b.len(), spec.bases.len(), "{}: duplicate base", spec.name);
        }
    }

    #[test]
    fn weights_roughly_match_table3_ordering() {
        // Home & Kitchen (2) has the largest co-buy volume; Video Games (13)
        // among the smallest.
        let hk = SPECS[2].cobuy_weight;
        assert!(SPECS.iter().all(|s| s.cobuy_weight <= hk));
        assert!(SPECS[13].cobuy_weight < 1.0);
        assert!(SPECS[5].cobuy_weight < 1.0);
    }

    #[test]
    fn global_banks_nonempty() {
        assert!(TIMES.len() >= 5);
        assert!(BODY_PARTS.len() >= 5);
        assert!(MODIFIERS.len() >= 10);
        assert!(BRANDS.len() >= 8);
    }
}
