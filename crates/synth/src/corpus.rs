//! Training-corpus extraction.
//!
//! The paper's rule filter uses a GPT-2 LM and its similarity filter uses an
//! embedding model "pretrained on the e-commerce corpus including query,
//! product information etc." (§3.3.1). This module produces that corpus
//! from the world: product titles, query texts, and fluent knowledge
//! sentences verbalised from the ground-truth profiles.

use crate::world::World;

/// Extract the e-commerce pre-training corpus.
pub fn corpus(world: &World) -> Vec<String> {
    let mut out = Vec::new();
    for p in &world.products {
        out.push(p.title.clone());
    }
    for q in &world.queries {
        out.push(q.text.clone());
    }
    for pt in &world.product_types {
        for (iid, _) in &pt.profile {
            let intent = world.intent(*iid);
            out.push(format!(
                "the {} {} {}",
                pt.name,
                intent.relation.predicate(),
                intent.tail
            ));
            out.push(format!(
                "they are {} {}",
                short_predicate(intent.relation),
                intent.tail
            ));
        }
    }
    out
}

/// The predicate fragment used in first-person-plural knowledge sentences
/// ("they are used for camping").
fn short_predicate(relation: cosmo_kg::Relation) -> &'static str {
    use cosmo_kg::Relation::*;
    match relation {
        UsedForFunc | UsedForEve | UsedForAud => "used for",
        CapableOf => "capable of",
        UsedTo => "used to",
        UsedAs => "used as",
        IsA => "a kind of",
        UsedOn => "used on",
        UsedInLoc => "used in",
        UsedInBody => "used on",
        UsedWith => "used with",
        UsedBy => "used by",
        XInterestedIn => "for people interested in",
        XIsA => "for",
        XWant => "for people who want to",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldConfig;

    #[test]
    fn corpus_covers_titles_queries_and_knowledge() {
        let w = World::generate(WorldConfig::tiny(3));
        let c = corpus(&w);
        assert!(c.len() > w.products.len() + w.queries.len());
        assert!(c.contains(&w.products[0].title));
        assert!(c.contains(&w.queries[0].text));
        assert!(c
            .iter()
            .any(|s| s.starts_with("the ") && s.contains(" is ")));
    }

    #[test]
    fn knowledge_sentences_are_fluent_phrases() {
        let w = World::generate(WorldConfig::tiny(3));
        let c = corpus(&w);
        let k = c.iter().find(|s| s.starts_with("they are ")).unwrap();
        assert!(cosmo_text::tokenize(k).len() >= 4);
    }
}
