//! Ground-truth judgment oracle.
//!
//! The paper pays professional annotators to answer five questions per
//! knowledge candidate (§3.3.2): completeness, relevance, informativeness,
//! plausibility, typicality. Offline we have no annotators — but we *do*
//! have the world's ground-truth intent profiles, so the oracle computes
//! the last four judgments exactly (completeness is a purely textual
//! property checked by the annotation simulator). The human noise model
//! (disagreement, adjudication) is layered on top in
//! `cosmo-core::annotation`.

use crate::world::{ProductId, QueryId, QueryKind, World};
use cosmo_kg::Relation;
use cosmo_text::{canonicalize_tail, tokenize};

/// The oracle's four semantic judgments (Appendix B of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Judgment {
    /// Closely connected in meaning to the behaviour it explains.
    pub relevant: bool,
    /// Specifies a functional requirement rather than a platitude.
    pub informative: bool,
    /// Accurate and reasonable in this behaviour's context.
    pub plausible: bool,
    /// Representative of typical shopping behaviour.
    pub typical: bool,
}

/// Generic tails the teacher emits that are "neither faithful nor helpful"
/// (§1): plausible-sounding but uninformative.
const GENERIC_TAILS: &[&str] = &[
    "they like them",
    "used for the same reason",
    "used for the same purpose",
    "the same purpose",
    "good quality",
    "a good product",
    "used together",
    "used for many things",
    "a great gift",
    "a popular item",
    "what customers want",
];

/// Typicality threshold on profile weights: intents at or above this weight
/// are typical reasons to buy the product type.
pub const TYPICAL_WEIGHT: f32 = 0.5;

/// Ground-truth judge over a world.
#[derive(Debug, Clone, Copy)]
pub struct Oracle<'w> {
    world: &'w World,
}

impl<'w> Oracle<'w> {
    /// Wrap a world.
    pub fn new(world: &'w World) -> Self {
        Oracle { world }
    }

    /// Is this tail a generic platitude?
    pub fn is_generic(tail: &str) -> bool {
        let canon = canonicalize_tail(tail);
        GENERIC_TAILS.iter().any(|g| canon == canonicalize_tail(g))
            || canon.contains("same reason")
            || canon.contains("like them")
    }

    /// Judge a search-buy knowledge candidate `(q, p, relation, tail)`.
    pub fn judge_search_buy(
        &self,
        q: QueryId,
        p: ProductId,
        relation: Relation,
        tail: &str,
    ) -> Judgment {
        let informative = !Self::is_generic(tail) && !tokenize(tail).is_empty();
        let Some(intent) = self.world.lookup_intent(relation, tail) else {
            // Hallucinated tail: no such intention exists in this world.
            return Judgment {
                relevant: false,
                informative,
                plausible: false,
                typical: false,
            };
        };
        let pt = self.world.ptype_of(p);
        let query = self.world.query(q);
        let w = pt.weight_of(intent);
        let intent_domain = self.world.intent(intent).domain;
        let query_matches_intent = match query.kind {
            QueryKind::Broad(qi) => qi == intent,
            QueryKind::Specific(_) => false,
        };
        let product_on_target = query.target_types.contains(&self.world.product(p).ptype);
        let relevant = intent_domain == pt.domain && (w > 0.0 || query_matches_intent);
        let plausible = w > 0.0;
        // Typical: the intent is a typical reason to buy this product AND it
        // is consistent with what the query was actually after.
        let typical = informative
            && plausible
            && w >= TYPICAL_WEIGHT
            && (query_matches_intent || product_on_target);
        Judgment {
            relevant,
            informative,
            plausible,
            typical,
        }
    }

    /// Judge a co-buy knowledge candidate `(p1, p2, relation, tail)`.
    ///
    /// The crucial rule (motivating Table 4's low co-buy typicality): the
    /// tail must explain the *common* reason for buying both products. A
    /// tail true of only one of the two is judged implausible for the pair,
    /// exactly as §3.4 describes ("LLMs mostly generate intention knowledge
    /// for one of the co-purchased products…, making generations
    /// implausible").
    pub fn judge_cobuy(
        &self,
        p1: ProductId,
        p2: ProductId,
        relation: Relation,
        tail: &str,
    ) -> Judgment {
        let informative = !Self::is_generic(tail) && !tokenize(tail).is_empty();
        let Some(intent) = self.world.lookup_intent(relation, tail) else {
            return Judgment {
                relevant: false,
                informative,
                plausible: false,
                typical: false,
            };
        };
        let t1 = self.world.ptype_of(p1);
        let t2 = self.world.ptype_of(p2);
        let w1 = t1.weight_of(intent);
        let w2 = t2.weight_of(intent);
        let intent_domain = self.world.intent(intent).domain;
        let relevant =
            (intent_domain == t1.domain || intent_domain == t2.domain) && w1.max(w2) > 0.0;
        // UsedWith tails naming the partner's base are shared by
        // construction; otherwise the intent must sit in both profiles.
        let shared = w1 > 0.0 && w2 > 0.0;
        let plausible = shared;
        let typical = informative && shared && w1.min(w2) >= 0.4 && w1.max(w2) >= TYPICAL_WEIGHT;
        Judgment {
            relevant,
            informative,
            plausible,
            typical,
        }
    }

    /// Ground truth for the co-purchase-prediction auxiliary task (§3.4):
    /// is this pair complementary rather than random?
    pub fn is_true_cobuy(&self, p1: ProductId, p2: ProductId) -> bool {
        let t1 = self.world.product(p1).ptype;
        let t2 = self.world.product(p2).ptype;
        self.world.ptype(t1).complements.contains(&t2)
    }

    /// Ground truth for the search-relevance auxiliary task: does the
    /// product satisfy the query?
    pub fn is_relevant_searchbuy(&self, q: QueryId, p: ProductId) -> bool {
        self.world
            .query(q)
            .target_types
            .contains(&self.world.product(p).ptype)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::{IntentId, WorldConfig};

    fn world() -> World {
        World::generate(WorldConfig::tiny(5))
    }

    /// Find a search-buy pair on target plus one of the product's typical
    /// intents.
    fn typical_case(w: &World) -> (QueryId, ProductId, Relation, String) {
        for (qi, q) in w.queries.iter().enumerate() {
            if let QueryKind::Broad(intent) = q.kind {
                let t = q.target_types[0];
                if w.ptype(t).weight_of(intent) >= TYPICAL_WEIGHT {
                    let p = w.products_of_type(t)[0];
                    let i = w.intent(intent);
                    return (QueryId(qi as u32), p, i.relation, i.tail.clone());
                }
            }
        }
        panic!("no typical case found");
    }

    #[test]
    fn typical_knowledge_judged_typical() {
        let w = world();
        let (q, p, rel, tail) = typical_case(&w);
        let j = Oracle::new(&w).judge_search_buy(q, p, rel, &tail);
        assert!(
            j.relevant && j.informative && j.plausible && j.typical,
            "{j:?}"
        );
    }

    #[test]
    fn hallucinated_tail_is_implausible() {
        let w = world();
        let (q, p, rel, _) = typical_case(&w);
        let j = Oracle::new(&w).judge_search_buy(q, p, rel, "powering a spaceship");
        assert!(!j.plausible && !j.typical && !j.relevant);
    }

    #[test]
    fn generic_tail_is_uninformative() {
        assert!(Oracle::is_generic("they like them"));
        assert!(Oracle::is_generic(
            "because they are used for the same reason"
        ));
        assert!(!Oracle::is_generic("walking the dog"));
        let w = world();
        let (q, p, rel, _) = typical_case(&w);
        let j = Oracle::new(&w).judge_search_buy(q, p, rel, "they like them");
        assert!(!j.informative && !j.typical);
    }

    #[test]
    fn one_sided_cobuy_intent_is_implausible() {
        let w = world();
        let oracle = Oracle::new(&w);
        // find a complementary pair and an intent exclusive to one side
        'outer: for pt in &w.product_types {
            for &c in &pt.complements {
                let other = w.ptype(c);
                for (iid, wt) in &pt.profile {
                    if *wt >= TYPICAL_WEIGHT && other.weight_of(*iid) == 0.0 {
                        let p1 = w.products_of_type(crate::world::ProductTypeId(
                            w.product_types
                                .iter()
                                .position(|x| std::ptr::eq(x, pt))
                                .unwrap() as u32,
                        ))[0];
                        let p2 = w.products_of_type(c)[0];
                        let i = w.intent(*iid);
                        let j = oracle.judge_cobuy(p1, p2, i.relation, &i.tail);
                        assert!(
                            !j.plausible,
                            "one-sided intent must be implausible for the pair"
                        );
                        break 'outer;
                    }
                }
            }
        }
    }

    #[test]
    fn shared_cobuy_intent_is_plausible() {
        let w = world();
        let oracle = Oracle::new(&w);
        let mut checked = false;
        'outer: for (ti, pt) in w.product_types.iter().enumerate() {
            for &c in &pt.complements {
                let other = w.ptype(c);
                for (iid, wt) in &pt.profile {
                    let w2 = other.weight_of(*iid);
                    if *wt >= TYPICAL_WEIGHT && w2 >= 0.4 {
                        let p1 = w.products_of_type(crate::world::ProductTypeId(ti as u32))[0];
                        let p2 = w.products_of_type(c)[0];
                        let i = w.intent(*iid);
                        let j = oracle.judge_cobuy(p1, p2, i.relation, &i.tail);
                        assert!(j.plausible && j.typical, "{j:?}");
                        checked = true;
                        break 'outer;
                    }
                }
            }
        }
        // Shared intents may be rare in a tiny world; at minimum the loop
        // must not mis-judge when one exists.
        let _ = checked;
    }

    #[test]
    fn true_cobuy_detection() {
        let w = world();
        let oracle = Oracle::new(&w);
        let pt = &w.product_types[0];
        let c = pt.complements[0];
        let p1 = w.products_of_type(crate::world::ProductTypeId(0))[0];
        let p2 = w.products_of_type(c)[0];
        assert!(oracle.is_true_cobuy(p1, p2));
    }

    #[test]
    fn search_relevance_ground_truth() {
        let w = world();
        let oracle = Oracle::new(&w);
        let (qi, q) = w
            .queries
            .iter()
            .enumerate()
            .find(|(_, q)| !q.target_types.is_empty())
            .unwrap();
        let p_on = w.products_of_type(q.target_types[0])[0];
        assert!(oracle.is_relevant_searchbuy(QueryId(qi as u32), p_on));
    }

    #[test]
    fn atypical_weight_not_typical() {
        let w = world();
        let oracle = Oracle::new(&w);
        // Find a product with a fringe (low-weight) intent; pair it with a
        // specific query for its own type: plausible but not typical.
        for (ti, pt) in w.product_types.iter().enumerate() {
            if let Some((iid, _)) = pt.profile.iter().find(|(_, wt)| *wt > 0.0 && *wt < 0.35) {
                let tid = crate::world::ProductTypeId(ti as u32);
                let qid = w
                    .queries
                    .iter()
                    .position(|q| matches!(q.kind, QueryKind::Specific(t) if t == tid));
                if let Some(qid) = qid {
                    let p = w.products_of_type(tid)[0];
                    let i = w.intent(*iid);
                    let j = oracle.judge_search_buy(QueryId(qid as u32), p, i.relation, &i.tail);
                    assert!(j.plausible, "fringe intent should be plausible");
                    assert!(!j.typical, "fringe intent must not be typical");
                    return;
                }
            }
        }
        panic!("no fringe case found");
    }

    #[test]
    fn judgments_use_canonical_tails() {
        let w = world();
        let (q, p, rel, tail) = typical_case(&w);
        let oracle = Oracle::new(&w);
        let j1 = oracle.judge_search_buy(q, p, rel, &tail);
        let shouty = format!("They are {}!", tail.to_uppercase());
        let j2 = oracle.judge_search_buy(q, p, rel, &shouty);
        assert_eq!(j1.plausible, j2.plausible);
        assert_eq!(j1.typical, j2.typical);
    }

    #[allow(dead_code)] // test helper kept for ad-hoc debugging of world invariants
    fn intent_exists(w: &World, id: IntentId) -> bool {
        (id.0 as usize) < w.intents.len()
    }
}
