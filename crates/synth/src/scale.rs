//! Sharded deterministic generation of a paper-magnitude knowledge graph.
//!
//! COSMO reports 6.3M nodes / 29M edges over 18 domains; the world model in
//! [`crate::world`] tops out around half a million edges because every
//! product carries a full ground-truth intent profile. This module trades
//! the profiles away for *scale*: it composes query, product and intention
//! surface texts straight out of the per-domain lexicons and derives every
//! structural choice (degree, tails, relations, scores) from a splitmix64
//! stream keyed only by `(seed, head index, edge index)`.
//!
//! The head space is cut into fixed shards of [`ScaleConfig::shard_heads`]
//! heads. [`generate_shard`] is a pure function of `(config, shard index)`
//! — it interns nodes into a shard-local table and emits edges over local
//! ids — so shards can be generated on any number of worker threads and
//! merged in shard order through a global interner (the PR 2 sequential-
//! intern pattern, orchestrated by `cosmo-core`), with byte-identical
//! output at any `threads` value. Intention tails are drawn from a shared
//! global index space, so distinct shards intentionally collide on tails
//! (that is what gives intentions their in-degree) and a slice of draws is
//! funnelled through a small "hub" subset to reproduce the heavy-tailed
//! in-degree profile a real co-buy graph shows. A small fraction of edges
//! duplicates the head's previous `(relation, tail)` choice with fresh
//! scores, exercising the store's `add_edge` merge semantics at scale.

use crate::domain::{BRANDS, MODIFIERS, SPECS, TIMES};
use cosmo_kg::{BehaviorKind, NodeKind, Relation};
use cosmo_text::FxHashMap;

/// splitmix64 finalizer: a cheap, well-mixed 64-bit permutation.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Shape of the generated world. All fields feed the per-shard splitmix
/// streams, so two equal configs generate identical graphs.
#[derive(Debug, Clone)]
pub struct ScaleConfig {
    /// Master seed.
    pub seed: u64,
    /// Query head count.
    pub queries: u64,
    /// Product head count.
    pub products: u64,
    /// Intention tail index space (distinct tails actually touched is
    /// slightly below this for sparse configs).
    pub intentions: u64,
    /// Mean out-degree of query heads (per-head jitter of ±2).
    pub query_degree: u32,
    /// Mean out-degree of product heads (per-head jitter of ±2).
    pub product_degree: u32,
    /// Heads per generation shard — fixed by config, *never* by thread
    /// count, which is what keeps the merged graph thread-invariant.
    pub shard_heads: u32,
    /// Per-edge probability (‰) of re-emitting the head's previous
    /// `(relation, tail)` with fresh scores, to exercise duplicate merge.
    pub duplicate_permille: u32,
}

impl ScaleConfig {
    /// The paper-magnitude point: ~6.3M nodes, ~29M raw edges, 18 domains.
    pub fn paper(seed: u64) -> ScaleConfig {
        ScaleConfig {
            seed,
            queries: 1_500_000,
            products: 2_300_000,
            intentions: 2_500_000,
            query_degree: 9,
            product_degree: 7,
            shard_heads: 65_536,
            duplicate_permille: 20,
        }
    }

    /// A mid-size point (~200k nodes, ~1M raw edges) for the default bench
    /// tier.
    pub fn mid(seed: u64) -> ScaleConfig {
        ScaleConfig {
            seed,
            queries: 55_000,
            products: 80_000,
            intentions: 60_000,
            query_degree: 8,
            product_degree: 7,
            shard_heads: 16_384,
            duplicate_permille: 20,
        }
    }

    /// A smoke-test point (~7k nodes, ~28k raw edges) small enough for CI
    /// yet spanning several shards and both head kinds.
    pub fn tiny(seed: u64) -> ScaleConfig {
        ScaleConfig {
            seed,
            queries: 1_600,
            products: 2_400,
            intentions: 3_000,
            query_degree: 8,
            product_degree: 6,
            shard_heads: 512,
            duplicate_permille: 25,
        }
    }

    /// Total head count (queries + products).
    pub fn total_heads(&self) -> u64 {
        self.queries + self.products
    }

    /// Expected raw (pre-merge) edge count.
    pub fn expected_raw_edges(&self) -> u64 {
        self.queries * self.query_degree as u64 + self.products * self.product_degree as u64
    }

    /// Number of fixed generation shards.
    pub fn num_shards(&self) -> usize {
        self.total_heads().div_ceil(self.shard_heads.max(1) as u64) as usize
    }
}

/// An edge over *shard-local* node ids (indexes into [`ShardOutput::nodes`]).
#[derive(Debug, Clone)]
pub struct ShardEdge {
    /// Local id of the head node.
    pub head: u32,
    /// Relation type.
    pub relation: Relation,
    /// Local id of the tail node.
    pub tail: u32,
    /// Behaviour provenance (queries → search-buy, products → co-buy).
    pub behavior: BehaviorKind,
    /// Domain index (Table 3 row).
    pub category: u8,
    /// Critic plausibility in `[0.5, 1.0)` — generated edges are "admitted".
    pub plausibility: f32,
    /// Critic typicality in `[0, 1)`.
    pub typicality: f32,
    /// Generation support (always 1; merging accumulates it).
    pub support: u32,
}

/// One generated shard: a local intern table in first-use order plus edges
/// over local ids. Merging shards in shard order through a global interner
/// reproduces one deterministic global graph.
#[derive(Debug)]
pub struct ShardOutput {
    /// Shard index this output came from.
    pub shard: usize,
    /// `(kind, text)` in local-id order.
    pub nodes: Vec<(NodeKind, String)>,
    /// Edges over local ids, in arrival order.
    pub edges: Vec<ShardEdge>,
}

/// Surface text of head `h` (query heads come first, then products).
/// Texts embed the head serial, so every head is a distinct node and the
/// global node count is exact.
pub fn head_text(cfg: &ScaleConfig, h: u64) -> (NodeKind, String) {
    let d = (h % SPECS.len() as u64) as usize;
    let spec = &SPECS[d];
    let r = mix64(cfg.seed ^ mix64(h.wrapping_add(0x5EED_5EED)));
    let modifier = MODIFIERS[(r % MODIFIERS.len() as u64) as usize];
    let base = spec.bases[((r >> 8) % spec.bases.len() as u64) as usize];
    if h < cfg.queries {
        let function = spec.functions[((r >> 16) % spec.functions.len() as u64) as usize];
        (
            NodeKind::Query,
            format!("{modifier} {base} for {function} {h:07}"),
        )
    } else {
        let brand = BRANDS[((r >> 16) % BRANDS.len() as u64) as usize];
        let serial = h - cfg.queries;
        (
            NodeKind::Product,
            format!("{brand} {modifier} {base} {serial:07}"),
        )
    }
}

/// Surface text of intention `t` — a lexicon phrase from `t`'s domain with
/// the index embedded so tails are distinct across the index space.
pub fn intent_text(cfg: &ScaleConfig, t: u64) -> String {
    let d = (t % SPECS.len() as u64) as usize;
    let spec = &SPECS[d];
    let r = mix64(cfg.seed ^ mix64(t.wrapping_add(0x7A11_7A11)));
    let pools: [&[&str]; 6] = [
        spec.functions,
        spec.events,
        spec.audiences,
        spec.locations,
        spec.activities,
        TIMES,
    ];
    let pool = pools[((r >> 4) % pools.len() as u64) as usize];
    let phrase = pool[((r >> 12) % pool.len() as u64) as usize];
    format!("{phrase} #{t}")
}

/// Generate shard `shard` — a pure function of `(cfg, shard)`.
pub fn generate_shard(cfg: &ScaleConfig, shard: usize) -> ShardOutput {
    let start = shard as u64 * cfg.shard_heads.max(1) as u64;
    let end = (start + cfg.shard_heads.max(1) as u64).min(cfg.total_heads());
    let mut nodes: Vec<(NodeKind, String)> = Vec::new();
    let mut edges: Vec<ShardEdge> = Vec::new();
    // Global intention index → local id; first use appends the node.
    let mut tails: FxHashMap<u64, u32> = FxHashMap::default();
    let hubs = (cfg.intentions / 64).max(1);

    for h in start..end {
        let is_query = h < cfg.queries;
        let d = (h % SPECS.len() as u64) as u8;
        let head_local = nodes.len() as u32;
        nodes.push(head_text(cfg, h));

        let r0 = mix64(cfg.seed ^ mix64(h.wrapping_mul(0x2545_F491_4F6C_DD1D)));
        let base = if is_query {
            cfg.query_degree
        } else {
            cfg.product_degree
        } as i64;
        let degree = (base + (r0 % 5) as i64 - 2).max(1) as u64;

        let mut prev: Option<(Relation, u32)> = None;
        for j in 0..degree {
            let r = mix64(cfg.seed ^ mix64(h.wrapping_mul(31).wrapping_add(j).wrapping_add(1)));
            let duplicate = prev.is_some() && r % 1000 < cfg.duplicate_permille as u64;
            let (relation, tail_local) = match (duplicate, prev) {
                (true, Some(p)) => p,
                _ => {
                    // 1 draw in 8 lands in the hub subset: a few intents
                    // absorb outsized in-degree, like real co-buy graphs.
                    let t = if (r >> 10).is_multiple_of(8) {
                        (r >> 13) % hubs
                    } else {
                        (r >> 13) % cfg.intentions.max(1)
                    };
                    let next_local = nodes.len() as u32;
                    let local = *tails.entry(t).or_insert(next_local);
                    if local == next_local {
                        nodes.push((NodeKind::Intention, intent_text(cfg, t)));
                    }
                    let rel = Relation::ALL[((r >> 3) % Relation::ALL.len() as u64) as usize];
                    (rel, local)
                }
            };
            edges.push(ShardEdge {
                head: head_local,
                relation,
                tail: tail_local,
                behavior: if is_query {
                    BehaviorKind::SearchBuy
                } else {
                    BehaviorKind::CoBuy
                },
                category: d,
                plausibility: 0.5 + ((r >> 20) % 500) as f32 / 1000.0,
                typicality: ((r >> 33) % 1000) as f32 / 1000.0,
                support: 1,
            });
            prev = Some((relation, tail_local));
        }
    }

    ShardOutput {
        shard,
        nodes,
        edges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_generation_is_pure() {
        let cfg = ScaleConfig::tiny(7);
        for shard in [0, 1, cfg.num_shards() - 1] {
            let a = generate_shard(&cfg, shard);
            let b = generate_shard(&cfg, shard);
            assert_eq!(a.nodes, b.nodes);
            assert_eq!(a.edges.len(), b.edges.len());
            for (x, y) in a.edges.iter().zip(&b.edges) {
                assert_eq!((x.head, x.relation, x.tail), (y.head, y.relation, y.tail));
                assert_eq!(x.plausibility.to_bits(), y.plausibility.to_bits());
                assert_eq!(x.typicality.to_bits(), y.typicality.to_bits());
            }
        }
    }

    #[test]
    fn shards_cover_every_head_exactly_once() {
        let cfg = ScaleConfig::tiny(11);
        let mut heads = 0u64;
        let mut raw_edges = 0u64;
        for shard in 0..cfg.num_shards() {
            let out = generate_shard(&cfg, shard);
            let shard_heads = out
                .nodes
                .iter()
                .filter(|(k, _)| *k != NodeKind::Intention)
                .count() as u64;
            heads += shard_heads;
            raw_edges += out.edges.len() as u64;
            // Local ids are in-range and heads precede their edges.
            for e in &out.edges {
                assert!((e.head as usize) < out.nodes.len());
                assert!((e.tail as usize) < out.nodes.len());
                assert_ne!(out.nodes[e.head as usize].0, NodeKind::Intention);
                assert_eq!(out.nodes[e.tail as usize].0, NodeKind::Intention);
            }
        }
        assert_eq!(heads, cfg.total_heads());
        // Degree jitter is zero-mean; the realised count stays within ±25%.
        let expect = cfg.expected_raw_edges();
        assert!(
            raw_edges * 4 > expect * 3 && raw_edges * 4 < expect * 5,
            "raw edges {raw_edges} vs expected {expect}"
        );
    }

    #[test]
    fn head_and_intent_texts_are_unique_and_deterministic() {
        let cfg = ScaleConfig::tiny(3);
        let mut seen = std::collections::HashSet::new();
        for h in 0..cfg.total_heads() {
            let (kind, text) = head_text(&cfg, h);
            assert_eq!(
                kind,
                if h < cfg.queries {
                    NodeKind::Query
                } else {
                    NodeKind::Product
                }
            );
            assert!(seen.insert((kind, text.clone())), "duplicate head {text}");
            assert_eq!(head_text(&cfg, h).1, text);
        }
        for t in 0..cfg.intentions {
            assert!(
                seen.insert((NodeKind::Intention, intent_text(&cfg, t))),
                "duplicate intent #{t}"
            );
        }
    }

    #[test]
    fn duplicates_present_for_merge_exercise() {
        let cfg = ScaleConfig::tiny(5);
        let mut dups = 0usize;
        for shard in 0..cfg.num_shards() {
            let out = generate_shard(&cfg, shard);
            let mut keys = std::collections::HashSet::new();
            for e in &out.edges {
                if !keys.insert((e.head, e.relation.index(), e.tail)) {
                    dups += 1;
                }
            }
        }
        assert!(dups > 0, "duplicate_permille produced no duplicate edges");
    }
}
