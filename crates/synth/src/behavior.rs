//! User-behaviour log generation (§3.1–§3.2.1).
//!
//! The paper consumes two behaviour types: **search-buy** `(q, p)` pairs
//! (query clicked, product purchased within a short session) and **co-buy**
//! `(p1, p2)` pairs. Real logs contain "noises or non-intentional random
//! ones"; the generator therefore mixes intent-driven pairs with a
//! configurable fraction of random pairs, and the per-domain volume follows
//! the Table 3 proportions via the `cobuy_weight` / `searchbuy_weight`
//! lexicon fields.

use crate::domain::DomainId;
use crate::util::{sample_weighted, Cdf};
use crate::world::{ProductId, QueryId, World};
use cosmo_text::FxHashMap;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One search-buy event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SearchBuy {
    /// The clicked query.
    pub query: QueryId,
    /// The purchased product.
    pub product: ProductId,
    /// Product's domain.
    pub domain: DomainId,
}

/// One co-buy event (unordered pair, stored with `p1 <= p2`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CoBuy {
    /// First product.
    pub p1: ProductId,
    /// Second product.
    pub p2: ProductId,
    /// Domain of `p1` (co-buys may cross domains when random).
    pub domain: DomainId,
}

/// Behaviour-log generation parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BehaviorConfig {
    /// RNG seed.
    pub seed: u64,
    /// Total search-buy events across all domains.
    pub total_search_buys: usize,
    /// Total co-buy events across all domains.
    pub total_cobuys: usize,
    /// Fraction of search-buys where the purchase ignores the query intent.
    pub searchbuy_noise: f64,
    /// Fraction of co-buys that are random (non-complementary) pairs.
    pub cobuy_noise: f64,
}

impl Default for BehaviorConfig {
    fn default() -> Self {
        BehaviorConfig {
            seed: 0xBEAF,
            total_search_buys: 40_000,
            total_cobuys: 60_000,
            searchbuy_noise: 0.12,
            cobuy_noise: 0.15,
        }
    }
}

impl BehaviorConfig {
    /// Small log for unit tests.
    pub fn tiny(seed: u64) -> Self {
        BehaviorConfig {
            seed,
            total_search_buys: 1_500,
            total_cobuys: 2_000,
            searchbuy_noise: 0.12,
            cobuy_noise: 0.15,
        }
    }
}

/// A generated behaviour log with aggregation indexes.
#[derive(Debug)]
pub struct BehaviorLog {
    /// All search-buy events.
    pub search_buys: Vec<SearchBuy>,
    /// All co-buy events.
    pub cobuys: Vec<CoBuy>,
    /// Event count per `(query, product)` pair.
    pub searchbuy_counts: FxHashMap<(QueryId, ProductId), u32>,
    /// Event count per co-buy pair (`p1 <= p2`).
    pub cobuy_counts: FxHashMap<(ProductId, ProductId), u32>,
    /// Degree of each query in the query–product interaction graph
    /// (the `pop(q)` of Eq. 2).
    pub query_degree: FxHashMap<QueryId, u32>,
    /// Degree of each product across both graphs (the `pop(p)` of Eq. 2).
    pub product_degree: FxHashMap<ProductId, u32>,
}

impl BehaviorLog {
    /// Generate a log over `world`.
    pub fn generate(world: &World, config: &BehaviorConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        // Per-domain volume allocation from the lexicon weights.
        let sb_weights: Vec<f64> = DomainId::all().map(|d| d.spec().searchbuy_weight).collect();
        let cb_weights: Vec<f64> = DomainId::all().map(|d| d.spec().cobuy_weight).collect();
        let sb_cdf = Cdf::new(&sb_weights);
        let cb_cdf = Cdf::new(&cb_weights);

        let mut search_buys = Vec::with_capacity(config.total_search_buys);
        for _ in 0..config.total_search_buys {
            let d = DomainId(sb_cdf.sample(&mut rng) as u8);
            let q = world.sample_query(d, &mut rng);
            let product = if rng.gen_bool(config.searchbuy_noise) {
                // noise: popularity-driven purchase unrelated to the query
                world.sample_product(d, &mut rng)
            } else {
                // intent-driven: buy from one of the query's target types
                let targets = &world.query(q).target_types;
                let t = targets[rng.gen_range(0..targets.len())];
                let prods = world.products_of_type(t);
                let weights: Vec<f64> =
                    prods.iter().map(|p| world.product(*p).popularity).collect();
                prods[sample_weighted(&weights, &mut rng)]
            };
            search_buys.push(SearchBuy {
                query: q,
                product,
                domain: d,
            });
        }

        let mut cobuys = Vec::with_capacity(config.total_cobuys);
        for _ in 0..config.total_cobuys {
            let d = DomainId(cb_cdf.sample(&mut rng) as u8);
            let p1 = world.sample_product(d, &mut rng);
            let p2 = if rng.gen_bool(config.cobuy_noise) {
                // random co-purchase, occasionally cross-domain
                let d2 = if rng.gen_bool(0.3) {
                    DomainId(cb_cdf.sample(&mut rng) as u8)
                } else {
                    d
                };
                world.sample_product(d2, &mut rng)
            } else {
                // complementary co-purchase
                let t1 = world.product(p1).ptype;
                let comps = &world.ptype(t1).complements;
                if comps.is_empty() {
                    world.sample_product(d, &mut rng)
                } else {
                    let t2 = comps[rng.gen_range(0..comps.len())];
                    let prods = world.products_of_type(t2);
                    let weights: Vec<f64> =
                        prods.iter().map(|p| world.product(*p).popularity).collect();
                    prods[sample_weighted(&weights, &mut rng)]
                }
            };
            if p1 == p2 {
                continue;
            }
            let (a, b) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
            cobuys.push(CoBuy {
                p1: a,
                p2: b,
                domain: d,
            });
        }

        let mut log = BehaviorLog {
            search_buys,
            cobuys,
            searchbuy_counts: FxHashMap::default(),
            cobuy_counts: FxHashMap::default(),
            query_degree: FxHashMap::default(),
            product_degree: FxHashMap::default(),
        };
        log.aggregate();
        log
    }

    fn aggregate(&mut self) {
        for sb in &self.search_buys {
            *self
                .searchbuy_counts
                .entry((sb.query, sb.product))
                .or_insert(0) += 1;
        }
        for cb in &self.cobuys {
            *self.cobuy_counts.entry((cb.p1, cb.p2)).or_insert(0) += 1;
        }
        // DETERMINISM: integer `+=` into per-key counters is commutative;
        // the final degree maps do not depend on key visit order.
        for &(q, p) in self.searchbuy_counts.keys() {
            *self.query_degree.entry(q).or_insert(0) += 1;
            *self.product_degree.entry(p).or_insert(0) += 1;
        }
        // DETERMINISM: commutative integer accumulation, as above.
        for &(a, b) in self.cobuy_counts.keys() {
            *self.product_degree.entry(a).or_insert(0) += 1;
            *self.product_degree.entry(b).or_insert(0) += 1;
        }
    }

    /// Distinct `(query, product)` pairs (the "behaviour pairs" of Table 3).
    pub fn distinct_searchbuy_pairs(&self) -> usize {
        self.searchbuy_counts.len()
    }

    /// Distinct co-buy pairs.
    pub fn distinct_cobuy_pairs(&self) -> usize {
        self.cobuy_counts.len()
    }

    /// `pop(q)`: query degree (≥ 1 for observed queries).
    pub fn pop_query(&self, q: QueryId) -> u32 {
        self.query_degree.get(&q).copied().unwrap_or(0).max(1)
    }

    /// `pop(p)`: product degree.
    pub fn pop_product(&self, p: ProductId) -> u32 {
        self.product_degree.get(&p).copied().unwrap_or(0).max(1)
    }
}

/// The "in-house service from Amazon Search" that scores query specificity
/// (§3.2.1) — a noisy view of the world's ground-truth specificity.
#[derive(Debug)]
pub struct SpecificityService {
    noise: f32,
    seed: u64,
}

impl SpecificityService {
    /// Service with ±`noise` uniform measurement error.
    pub fn new(seed: u64, noise: f32) -> Self {
        SpecificityService { noise, seed }
    }

    /// Score a query (deterministic per query id).
    pub fn score(&self, world: &World, q: QueryId) -> f32 {
        let truth = world.query(q).specificity;
        // hash-seeded jitter keeps the service deterministic per query
        let mut rng = StdRng::seed_from_u64(self.seed ^ (q.0 as u64).wrapping_mul(0x9E37_79B9));
        (truth + rng.gen_range(-self.noise..=self.noise)).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldConfig;

    fn setup() -> (World, BehaviorLog) {
        let world = World::generate(WorldConfig::tiny(1));
        let log = BehaviorLog::generate(&world, &BehaviorConfig::tiny(2));
        (world, log)
    }

    #[test]
    fn log_sizes_match_config() {
        let (_, log) = setup();
        assert_eq!(log.search_buys.len(), 1_500);
        // co-buys may skip self-pairs, so allow slight shortfall
        assert!(log.cobuys.len() > 1_900);
    }

    #[test]
    fn deterministic_per_seed() {
        let world = World::generate(WorldConfig::tiny(1));
        let a = BehaviorLog::generate(&world, &BehaviorConfig::tiny(2));
        let b = BehaviorLog::generate(&world, &BehaviorConfig::tiny(2));
        assert_eq!(a.search_buys, b.search_buys);
        assert_eq!(a.cobuys, b.cobuys);
    }

    #[test]
    fn most_searchbuys_hit_target_types() {
        let (world, log) = setup();
        let on_target = log
            .search_buys
            .iter()
            .filter(|sb| {
                world
                    .query(sb.query)
                    .target_types
                    .contains(&world.product(sb.product).ptype)
            })
            .count();
        let frac = on_target as f64 / log.search_buys.len() as f64;
        assert!(frac > 0.8, "on-target fraction {frac} too low");
        assert!(frac < 1.0, "noise should produce some off-target purchases");
    }

    #[test]
    fn most_cobuys_are_complementary() {
        let (world, log) = setup();
        let comp = log
            .cobuys
            .iter()
            .filter(|cb| {
                let t1 = world.product(cb.p1).ptype;
                let t2 = world.product(cb.p2).ptype;
                world.ptype(t1).complements.contains(&t2)
            })
            .count();
        let frac = comp as f64 / log.cobuys.len() as f64;
        assert!(frac > 0.6, "complementary fraction {frac} too low");
    }

    #[test]
    fn cobuy_pairs_are_canonical() {
        let (_, log) = setup();
        for cb in &log.cobuys {
            assert!(cb.p1 < cb.p2);
        }
    }

    #[test]
    fn degrees_cover_observed_entities() {
        let (_, log) = setup();
        for sb in &log.search_buys {
            assert!(log.pop_query(sb.query) >= 1);
            assert!(log.pop_product(sb.product) >= 1);
        }
    }

    /// Byte-identity lock for the `// DETERMINISM:` contracts in
    /// [`BehaviorLog::aggregate`]: the degree maps are built by iterating
    /// `searchbuy_counts` / `cobuy_counts` in hash-table order, and the
    /// justification claims the result cannot depend on that order. Rerun
    /// aggregation with reversed event order AND a different table
    /// capacity history (both change FxHashMap iteration order) and
    /// require identical degree maps.
    #[test]
    fn aggregate_is_iteration_order_insensitive() {
        let (_, log) = setup();

        let mut reordered = BehaviorLog {
            search_buys: log.search_buys.iter().rev().cloned().collect(),
            cobuys: log.cobuys.iter().rev().cloned().collect(),
            searchbuy_counts: FxHashMap::default(),
            cobuy_counts: FxHashMap::default(),
            query_degree: FxHashMap::default(),
            product_degree: FxHashMap::default(),
        };
        // A large pre-reserve gives the tables a different capacity
        // history than the incrementally-grown originals, reshuffling
        // SwissTable slot order even for identical key sets.
        reordered.searchbuy_counts.reserve(1 << 14);
        reordered.cobuy_counts.reserve(1 << 14);
        reordered.aggregate();

        assert_eq!(log.searchbuy_counts, reordered.searchbuy_counts);
        assert_eq!(log.cobuy_counts, reordered.cobuy_counts);
        assert_eq!(log.query_degree, reordered.query_degree);
        assert_eq!(log.product_degree, reordered.product_degree);
    }

    #[test]
    fn domain_volumes_follow_weights() {
        let (_, log) = setup();
        let mut counts = [0usize; 18];
        for cb in &log.cobuys {
            counts[cb.domain.0 as usize] += 1;
        }
        // Home & Kitchen (2) should far exceed Video Games (13)
        assert!(
            counts[2] > counts[13] * 3,
            "hk={} vg={}",
            counts[2],
            counts[13]
        );
    }

    #[test]
    fn specificity_service_is_noisy_but_deterministic() {
        let (world, _) = setup();
        let svc = SpecificityService::new(9, 0.1);
        let q = QueryId(0);
        let s1 = svc.score(&world, q);
        let s2 = svc.score(&world, q);
        assert_eq!(s1, s2);
        assert!((0.0..=1.0).contains(&s1));
    }
}
