//! Adversarial decode tests: a snapshot blob with any single byte
//! flipped, or truncated anywhere, must come back as a clean
//! [`SnapshotError`] — never a panic, never a silently-wrong graph.
//!
//! Both formats are covered: the v1 copying decoder
//! ([`KgSnapshot::from_bytes`]) and the v2 zero-copy validator behind
//! [`KgSnapshotView`] / [`MappedSnapshot`], at both verification levels.
//! The v2 `Structural` level is the production `open` path, so it gets
//! the same treatment as `Full`.
//!
//! Skipped under Miri: proptest's case generation is far too slow in the
//! interpreter; the decoders' unit tests in `src/snapshot*.rs` cover the
//! same code paths there.
#![cfg(not(miri))]

use cosmo_kg::{
    BehaviorKind, Edge, KgSnapshot, KnowledgeGraph, MappedSnapshot, NodeId, NodeKind, Relation,
    Verify,
};
use proptest::prelude::*;

/// A small but fully featured graph: several node kinds, every relation,
/// both behaviors, shared tails (in-edges with fan-in), non-trivial text.
fn fixture() -> KnowledgeGraph {
    let mut kg = KnowledgeGraph::new();
    for h in 0..12 {
        let kind = if h % 2 == 0 {
            NodeKind::Query
        } else {
            NodeKind::Product
        };
        let head = kg.intern_node(kind, &format!("query head №{h}"));
        for t in 0..4 {
            let tail = kg.intern_node(NodeKind::Intention, &format!("intent {}", (h + t) % 5));
            kg.add_edge(Edge {
                head,
                relation: Relation::ALL[(h * 7 + t * 3) % Relation::ALL.len()],
                tail,
                behavior: if t % 2 == 0 {
                    BehaviorKind::SearchBuy
                } else {
                    BehaviorKind::CoBuy
                },
                category: (t % 18) as u8,
                plausibility: 0.5,
                typicality: 0.25,
                support: 1 + (h % 3) as u32,
            });
        }
    }
    kg
}

fn v1_bytes() -> Vec<u8> {
    fixture().freeze().to_bytes()
}

fn v2_bytes() -> Vec<u8> {
    fixture().freeze().to_bytes_v2()
}

/// Every decoder the crate ships, over one byte buffer. Each call either
/// succeeds or returns `Err` — reaching the end of this function without
/// unwinding is the property under test.
fn decode_all(bytes: &[u8]) {
    let _ = KgSnapshot::from_bytes(bytes);
    let _ = MappedSnapshot::from_bytes(bytes.to_vec(), Verify::Structural);
    let _ = MappedSnapshot::from_bytes(bytes.to_vec(), Verify::Full);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn v1_single_byte_corruption_is_a_clean_error(pos in 0usize..4096, xor in 1u8..=255) {
        let mut bytes = v1_bytes();
        let pos = pos % bytes.len();
        bytes[pos] ^= xor;
        // the checksum covers the payload, so v1 Full decode must refuse
        prop_assert!(KgSnapshot::from_bytes(&bytes).is_err());
        decode_all(&bytes);
    }

    #[test]
    fn v2_single_byte_corruption_never_panics(pos in 0usize..16384, xor in 1u8..=255) {
        let mut bytes = v2_bytes();
        let pos = pos % bytes.len();
        bytes[pos] ^= xor;
        // Full verification recomputes the checksum → always an error.
        prop_assert!(MappedSnapshot::from_bytes(bytes.clone(), Verify::Full).is_err());
        // Structural skips the checksum for O(1)-ish opens; a flipped
        // float payload byte can legitimately pass, but it must never
        // panic and never produce an out-of-bounds graph.
        if let Ok(snap) = MappedSnapshot::from_bytes(bytes.clone(), Verify::Structural) {
            let n = snap.num_nodes();
            for e in snap.edges() {
                prop_assert!((e.head.0 as usize) < n && (e.tail.0 as usize) < n);
            }
            for id in 0..n {
                let _ = snap.node_text(NodeId(id as u32));
            }
        }
        decode_all(&bytes);
    }

    #[test]
    fn truncation_is_a_clean_error(which in 0..2, keep_frac in 0.0f64..1.0) {
        let bytes = if which == 0 { v1_bytes() } else { v2_bytes() };
        let keep = ((bytes.len() as f64) * keep_frac) as usize;
        let truncated = &bytes[..keep.min(bytes.len().saturating_sub(1))];
        prop_assert!(KgSnapshot::from_bytes(truncated).is_err());
        decode_all(truncated);
    }

    #[test]
    fn random_garbage_never_panics(bytes in prop::collection::vec(0u8..=255, 0..512)) {
        decode_all(&bytes);
    }
}

#[test]
fn uncorrupted_blobs_still_round_trip() {
    // guards the fixtures above: if encoding broke, every corruption
    // "rejection" would be vacuous
    let snap = fixture().freeze();
    let v1 = KgSnapshot::from_bytes(&snap.to_bytes()).expect("v1 round trip");
    assert_eq!(v1.num_edges(), snap.num_edges());
    let v2 = MappedSnapshot::from_bytes(snap.to_bytes_v2(), Verify::Full).expect("v2 round trip");
    assert_eq!(v2.num_edges(), snap.num_edges());
}
