//! Snapshot binary format **v2**: fixed 64-byte-aligned sections usable
//! directly from borrowed file bytes.
//!
//! The v1 format ([`crate::snapshot`]) is compact but must be *parsed*:
//! every offset array, edge record and lookup record is decoded into a
//! freshly allocated `Vec`, so load time is O(bytes) with a full copy.
//! v2 instead lays each CSR array out exactly as it lives in memory —
//!
//! ```text
//! [ 64-byte header ][ section table: 8 × (offset u64, len u64) ]
//! [ kinds: n × u8          ]  (each section starts 64-byte aligned,
//! [ text_offsets: (n+1)×u32]   zero-padded up to the next section)
//! [ arena: UTF-8 bytes     ]
//! [ edges: m × Edge (28 B) ]  ← the repr(C) layout of `Edge` itself
//! [ out_offsets: (n+1)×u32 ]
//! [ in_offsets:  (n+1)×u32 ]
//! [ in_edges: m × u32      ]
//! [ lookup: n × LookupRec  ]  (hash u64, id u32, kind u8, pad ×3)
//! ```
//!
//! — so [`MappedSnapshot`] serves every read straight out of a borrowed
//! `&[u8]` (typically an `mmap` region from [`cosmo_mapped::MappedBytes`])
//! with **no** `Vec` materialisation: opening is O(pages touched), and
//! concurrent server processes share one physical copy of the file.
//!
//! ## Validation levels
//!
//! All integer arithmetic over untrusted header/table fields is checked
//! (`checked_add`/`checked_mul` → [`SnapshotError::Corrupt`]), mirroring
//! the hardened v1 decoder. Two verification levels trade scan cost
//! against rigor:
//!
//! * [`Verify::Structural`] — everything *panic-freedom and memory
//!   safety* require: header/table geometry, enum tag scans (node kinds,
//!   edge relation/behavior bytes — casting an invalid discriminant
//!   would be UB), UTF-8 arena + char-boundary offsets, monotone offset
//!   arrays bounded by their targets, edge endpoints `< n`, in-edge
//!   indices `< m`, strict edge sort order, sorted lookup with ids `< n`.
//!   One pass over the file; this is the level the serving reload path's
//!   *open* uses for the O(pages) claim.
//! * [`Verify::Full`] — Structural **plus** the payload checksum, exact
//!   prefix-offset recomputation, in-edge grouping, and lookup-vs-node
//!   hash verification: byte-for-byte as strict as the v1 decoder. Used
//!   when publishing a snapshot into a live server (`/ops/reload`) and
//!   by the corruption property tests.
//!
//! ## Endianness
//!
//! The borrowed view reinterprets little-endian file bytes as host
//! integers, so the mapped path is little-endian-only (checked at load;
//! big-endian hosts get a clean `Corrupt` error). Both supported targets
//! (x86_64, aarch64) are little-endian.

use crate::schema::{NodeKind, Relation};
use crate::snapshot::{kind_from_u8, KgSnapshot, SnapshotError, MAGIC};
use crate::store::{Edge, NodeId};
use crate::view::GraphView;
use crate::zerocopy::{cast_slice, str_from_validated, LookupRec};
use cosmo_mapped::MappedBytes;
use cosmo_text::hash::hash_bytes;
use std::path::Path;

/// Format version tag for this layout.
pub const FORMAT_VERSION_V2: u32 = 2;
/// v2 header size: magic(8) version(4) reserved(4) n(8) m(8) arena(8)
/// checksum(8) total_len(8) reserved(8).
pub const HEADER_LEN_V2: usize = 64;
/// Sections in the table, in file order.
pub(crate) const SECTION_COUNT: usize = 8;
/// Every section begins on a 64-byte boundary.
const SECTION_ALIGN: usize = 64;
/// Byte offset of the section table (right after the header).
pub(crate) const TABLE_OFF: usize = HEADER_LEN_V2;
/// Byte offset of the first section: header + table, already 64-aligned.
pub(crate) const FIRST_SECTION_OFF: usize = TABLE_OFF + SECTION_COUNT * 16;

const SEC_KINDS: usize = 0;
const SEC_TEXT_OFFSETS: usize = 1;
const SEC_ARENA: usize = 2;
const SEC_EDGES: usize = 3;
const SEC_OUT_OFFSETS: usize = 4;
const SEC_IN_OFFSETS: usize = 5;
const SEC_IN_EDGES: usize = 6;
const SEC_LOOKUP: usize = 7;

/// On-disk edge record size — the in-memory `repr(C)` layout of [`Edge`].
pub(crate) const EDGE_SIZE: usize = std::mem::size_of::<Edge>();
/// On-disk lookup record size.
pub(crate) const LOOKUP_SIZE: usize = std::mem::size_of::<LookupRec>();

// The file format *is* the in-memory layout: pin it at compile time so an
// innocent field reorder cannot silently change the format.
const _: () = {
    assert!(std::mem::size_of::<Edge>() == 28);
    assert!(std::mem::align_of::<Edge>() == 4);
    assert!(std::mem::offset_of!(Edge, head) == 0);
    assert!(std::mem::offset_of!(Edge, relation) == 4);
    assert!(std::mem::offset_of!(Edge, tail) == 8);
    assert!(std::mem::offset_of!(Edge, behavior) == 12);
    assert!(std::mem::offset_of!(Edge, category) == 13);
    assert!(std::mem::offset_of!(Edge, plausibility) == 16);
    assert!(std::mem::offset_of!(Edge, typicality) == 20);
    assert!(std::mem::offset_of!(Edge, support) == 24);
    assert!(std::mem::size_of::<LookupRec>() == 16);
    assert!(std::mem::align_of::<LookupRec>() == 8);
    assert!(std::mem::offset_of!(LookupRec, hash) == 0);
    assert!(std::mem::offset_of!(LookupRec, id) == 8);
    assert!(std::mem::offset_of!(LookupRec, kind) == 12);
    assert!(FIRST_SECTION_OFF.is_multiple_of(SECTION_ALIGN));
};

/// How much of the snapshot to verify at load time (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verify {
    /// Memory-safety-complete single-pass validation; skips the checksum
    /// and the cross-array consistency recomputation.
    Structural,
    /// Structural plus checksum and full cross-array verification —
    /// exactly as strict as the v1 decoder.
    Full,
}

/// Round up to the next section boundary; `None` on overflow.
pub(crate) fn align_up(x: usize) -> Option<usize> {
    x.checked_add(SECTION_ALIGN - 1)
        .map(|v| v & !(SECTION_ALIGN - 1))
}

/// The eight expected section lengths for the given counts, checked.
pub(crate) fn section_lens(
    n: usize,
    m: usize,
    arena_len: usize,
) -> Result<[usize; 8], SnapshotError> {
    let overflow = || SnapshotError::Corrupt("section sizes overflow layout");
    let n1 = n.checked_add(1).ok_or_else(overflow)?;
    let off_bytes = n1.checked_mul(4).ok_or_else(overflow)?;
    Ok([
        n,
        off_bytes,
        arena_len,
        m.checked_mul(EDGE_SIZE).ok_or_else(overflow)?,
        off_bytes,
        off_bytes,
        m.checked_mul(4).ok_or_else(overflow)?,
        n.checked_mul(LOOKUP_SIZE).ok_or_else(overflow)?,
    ])
}

impl KgSnapshot {
    /// Serialise to the v2 aligned-section format.
    pub fn to_bytes_v2(&self) -> Vec<u8> {
        let n = self.num_nodes();
        let m = self.num_edges();
        // PANIC: section sizes of an in-memory graph cannot overflow the
        // layout arithmetic (they are bounded by the live allocation)
        let lens = section_lens(n, m, self.arena.len()).expect("in-memory snapshot fits layout");

        let mut offsets = [0usize; SECTION_COUNT];
        let mut cursor = FIRST_SECTION_OFF;
        for (off, len) in offsets.iter_mut().zip(lens) {
            *off = cursor;
            // PANIC: bounded by the live allocation, as above
            cursor = align_up(cursor + len).expect("in-memory snapshot fits layout");
        }
        let total_len = offsets[SECTION_COUNT - 1] + lens[SECTION_COUNT - 1];

        let mut out = vec![0u8; total_len];
        out[..8].copy_from_slice(&MAGIC);
        out[8..12].copy_from_slice(&FORMAT_VERSION_V2.to_le_bytes());
        // 12..16 reserved = 0
        out[16..24].copy_from_slice(&(n as u64).to_le_bytes());
        out[24..32].copy_from_slice(&(m as u64).to_le_bytes());
        out[32..40].copy_from_slice(&(self.arena.len() as u64).to_le_bytes());
        // 40..48 checksum, patched below
        out[48..56].copy_from_slice(&(total_len as u64).to_le_bytes());
        // 56..64 reserved = 0
        for i in 0..SECTION_COUNT {
            let t = TABLE_OFF + i * 16;
            out[t..t + 8].copy_from_slice(&(offsets[i] as u64).to_le_bytes());
            out[t + 8..t + 16].copy_from_slice(&(lens[i] as u64).to_le_bytes());
        }

        {
            let dst = &mut out[offsets[SEC_KINDS]..offsets[SEC_KINDS] + lens[SEC_KINDS]];
            for (d, &k) in dst.iter_mut().zip(&self.kinds) {
                *d = crate::snapshot::kind_to_u8(k);
            }
        }
        write_u32s(&mut out, offsets[SEC_TEXT_OFFSETS], &self.text_offsets);
        out[offsets[SEC_ARENA]..offsets[SEC_ARENA] + lens[SEC_ARENA]]
            .copy_from_slice(self.arena.as_bytes());
        {
            let mut at = offsets[SEC_EDGES];
            for e in &self.edges {
                // Field-by-field at the repr(C) offsets, padding left as
                // the zeroes the buffer was initialised with — this is
                // what makes the encoding byte-stable.
                out[at..at + 4].copy_from_slice(&e.head.0.to_le_bytes());
                out[at + 4] = e.relation.index() as u8;
                out[at + 8..at + 12].copy_from_slice(&e.tail.0.to_le_bytes());
                out[at + 12] = crate::snapshot::behavior_to_u8(e.behavior);
                out[at + 13] = e.category;
                out[at + 16..at + 20].copy_from_slice(&e.plausibility.to_bits().to_le_bytes());
                out[at + 20..at + 24].copy_from_slice(&e.typicality.to_bits().to_le_bytes());
                out[at + 24..at + 28].copy_from_slice(&e.support.to_le_bytes());
                at += EDGE_SIZE;
            }
        }
        write_u32s(&mut out, offsets[SEC_OUT_OFFSETS], &self.out_offsets);
        write_u32s(&mut out, offsets[SEC_IN_OFFSETS], &self.in_offsets);
        write_u32s(&mut out, offsets[SEC_IN_EDGES], &self.in_edges);
        {
            let mut at = offsets[SEC_LOOKUP];
            for &(k, h, id) in &self.lookup {
                out[at..at + 8].copy_from_slice(&h.to_le_bytes());
                out[at + 8..at + 12].copy_from_slice(&id.to_le_bytes());
                out[at + 12] = k;
                at += LOOKUP_SIZE;
            }
        }

        let checksum = hash_bytes(&out[HEADER_LEN_V2..]);
        out[40..48].copy_from_slice(&checksum.to_le_bytes());
        out
    }

    /// Write the snapshot to a file in the v2 format.
    pub fn save_v2(&self, path: &Path) -> Result<(), SnapshotError> {
        std::fs::write(path, self.to_bytes_v2())?;
        Ok(())
    }
}

fn write_u32s(out: &mut [u8], at: usize, values: &[u32]) {
    for (i, v) in values.iter().enumerate() {
        out[at + i * 4..at + i * 4 + 4].copy_from_slice(&v.to_le_bytes());
    }
}

/// A v2 snapshot served directly from borrowed (typically memory-mapped)
/// bytes. Every accessor returns slices into the file region; nothing is
/// materialised at load beyond the 8-entry section table.
#[derive(Debug)]
pub struct MappedSnapshot {
    bytes: MappedBytes,
    n: usize,
    m: usize,
    arena_len: usize,
    /// Bitmask of relation discriminants present, gathered during the
    /// load-time edge tag scan (so `num_relations` stays O(1)).
    relations_mask: u16,
    /// `(offset, len)` per section, validated against the header counts.
    sec: [(usize, usize); SECTION_COUNT],
}

impl MappedSnapshot {
    /// Open a v2 snapshot file with [`Verify::Structural`] — the
    /// O(pages touched) production path.
    pub fn open(path: &Path) -> Result<MappedSnapshot, SnapshotError> {
        Self::from_mapped(MappedBytes::open(path)?, Verify::Structural)
    }

    /// Open a v2 snapshot file with [`Verify::Full`] — the publish path.
    pub fn open_verified(path: &Path) -> Result<MappedSnapshot, SnapshotError> {
        Self::from_mapped(MappedBytes::open(path)?, Verify::Full)
    }

    /// Validate an in-memory buffer (copied into an aligned owned
    /// backing) — the test and migration path.
    pub fn from_bytes(buf: Vec<u8>, verify: Verify) -> Result<MappedSnapshot, SnapshotError> {
        Self::from_mapped(MappedBytes::from_vec(buf), verify)
    }

    /// Validate already-opened bytes. See the module docs for what each
    /// [`Verify`] level checks.
    pub fn from_mapped(
        bytes: MappedBytes,
        verify: Verify,
    ) -> Result<MappedSnapshot, SnapshotError> {
        if cfg!(target_endian = "big") {
            return Err(SnapshotError::Corrupt(
                "v2 mapped snapshots require a little-endian host",
            ));
        }
        let buf: &[u8] = &bytes;
        if buf.len() < FIRST_SECTION_OFF {
            return Err(SnapshotError::Corrupt("buffer shorter than v2 header"));
        }
        if buf[..8] != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = u32::from_le_bytes(buf[8..12].try_into().unwrap()); // PANIC: 4 bytes
        if version != FORMAT_VERSION_V2 {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        if buf[12..16] != [0; 4] || buf[56..64] != [0; 8] {
            return Err(SnapshotError::Corrupt("reserved header bytes not zero"));
        }
        // PANIC: callers pass offsets inside the length-checked header
        let read_u64 = |at: usize| u64::from_le_bytes(buf[at..at + 8].try_into().unwrap());
        let to_usize = |v: u64, what: &'static str| {
            usize::try_from(v).map_err(|_| SnapshotError::Corrupt(what))
        };
        let n = to_usize(read_u64(16), "node count overflows usize")?;
        let m = to_usize(read_u64(24), "edge count overflows usize")?;
        let arena_len = to_usize(read_u64(32), "arena length overflows usize")?;
        let checksum = read_u64(40);
        if read_u64(48) != buf.len() as u64 {
            return Err(SnapshotError::Corrupt("total length mismatch"));
        }
        // Ids on disk are u32 (NodeId / edge indices), so the counts must
        // fit; this also bounds every later index computation.
        if n > u32::MAX as usize || m > u32::MAX as usize || arena_len > u32::MAX as usize {
            return Err(SnapshotError::Corrupt("counts exceed u32 id space"));
        }

        // Section table: offsets are fully determined by the counts —
        // each section must start exactly where the previous one ends,
        // rounded up to the alignment boundary. Any drift is corruption.
        let lens = section_lens(n, m, arena_len)?;
        let mut sec = [(0usize, 0usize); SECTION_COUNT];
        let mut expect_off = FIRST_SECTION_OFF;
        let mut end = FIRST_SECTION_OFF;
        for (i, slot) in sec.iter_mut().enumerate() {
            let t = TABLE_OFF + i * 16;
            let off = to_usize(read_u64(t), "section offset overflows usize")?;
            let len = to_usize(read_u64(t + 8), "section length overflows usize")?;
            if off != expect_off {
                return Err(SnapshotError::Corrupt("section offset out of place"));
            }
            if len != lens[i] {
                return Err(SnapshotError::Corrupt("section length mismatch"));
            }
            end = off
                .checked_add(len)
                .ok_or(SnapshotError::Corrupt("section extends past address space"))?;
            if end > buf.len() {
                return Err(SnapshotError::Corrupt("section extends past buffer"));
            }
            expect_off =
                align_up(end).ok_or(SnapshotError::Corrupt("section padding overflows"))?;
            *slot = (off, len);
        }
        if end != buf.len() {
            return Err(SnapshotError::Corrupt("trailing bytes after last section"));
        }

        if verify == Verify::Full && hash_bytes(&buf[HEADER_LEN_V2..]) != checksum {
            return Err(SnapshotError::ChecksumMismatch);
        }

        let section = |i: usize| &buf[sec[i].0..sec[i].0 + sec[i].1];

        // kinds: every byte must be a valid NodeKind discriminant before
        // the &[NodeKind] cast is ever reachable.
        if section(SEC_KINDS)
            .iter()
            .any(|&b| kind_from_u8(b).is_none())
        {
            return Err(SnapshotError::Corrupt("bad node kind"));
        }

        let text_offsets: &[u32] = cast_slice(section(SEC_TEXT_OFFSETS))
            .ok_or(SnapshotError::Corrupt("text offsets misaligned"))?;
        if text_offsets[0] != 0 || text_offsets[n] as usize != arena_len {
            return Err(SnapshotError::Corrupt("text offsets do not span arena"));
        }
        if text_offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err(SnapshotError::Corrupt("text offsets not monotone"));
        }
        let arena = std::str::from_utf8(section(SEC_ARENA))
            .map_err(|_| SnapshotError::Corrupt("arena is not UTF-8"))?;
        if !text_offsets
            .iter()
            .all(|&o| arena.is_char_boundary(o as usize))
        {
            return Err(SnapshotError::Corrupt("text offset splits a UTF-8 char"));
        }

        // Edges: one raw pass checks both enum tags (cast safety), both
        // endpoints (bounds safety) and the strict sort order (lookup
        // determinism) before the &[Edge] cast.
        let mut relations_mask = 0u16;
        let mut prev_key: Option<(u32, u8, u32)> = None;
        for rec in section(SEC_EDGES).chunks_exact(EDGE_SIZE) {
            let rel = rec[4];
            if rel as usize >= Relation::ALL.len() {
                return Err(SnapshotError::Corrupt("bad relation tag"));
            }
            if rec[12] >= 2 {
                return Err(SnapshotError::Corrupt("bad behavior tag"));
            }
            let head = u32::from_le_bytes(rec[0..4].try_into().unwrap()); // PANIC: 4 bytes
            let tail = u32::from_le_bytes(rec[8..12].try_into().unwrap()); // PANIC: 4 bytes
            if head as usize >= n || tail as usize >= n {
                return Err(SnapshotError::Corrupt("edge endpoint out of range"));
            }
            let key = (head, rel, tail);
            if prev_key.is_some_and(|p| p >= key) {
                return Err(SnapshotError::Corrupt("edges not strictly sorted"));
            }
            prev_key = Some(key);
            relations_mask |= 1 << rel;
        }

        let out_offsets: &[u32] = cast_slice(section(SEC_OUT_OFFSETS))
            .ok_or(SnapshotError::Corrupt("out offsets misaligned"))?;
        let in_offsets: &[u32] = cast_slice(section(SEC_IN_OFFSETS))
            .ok_or(SnapshotError::Corrupt("in offsets misaligned"))?;
        for (offsets, what) in [
            (out_offsets, "out offsets inconsistent"),
            (in_offsets, "in offsets inconsistent"),
        ] {
            if offsets[0] != 0
                || offsets[n] as usize != m
                || offsets.windows(2).any(|w| w[0] > w[1])
            {
                return Err(SnapshotError::Corrupt(what));
            }
        }
        let in_edges: &[u32] = cast_slice(section(SEC_IN_EDGES))
            .ok_or(SnapshotError::Corrupt("in edges misaligned"))?;
        if in_edges.iter().any(|&i| i as usize >= m) {
            return Err(SnapshotError::Corrupt("in-edge index out of range"));
        }

        let lookup: &[LookupRec] =
            cast_slice(section(SEC_LOOKUP)).ok_or(SnapshotError::Corrupt("lookup misaligned"))?;
        let mut prev: Option<(u8, u64, u32)> = None;
        for r in lookup {
            if r.id as usize >= n {
                return Err(SnapshotError::Corrupt("lookup id out of range"));
            }
            let key = (r.kind, r.hash, r.id);
            if prev.is_some_and(|p| p >= key) {
                return Err(SnapshotError::Corrupt("lookup not sorted"));
            }
            prev = Some(key);
        }

        if verify == Verify::Full {
            // Cross-array consistency at v1 rigor: recompute both prefix
            // arrays, re-derive the in-edge grouping, and re-hash every
            // node text against its lookup record.
            let edges: &[Edge] =
                cast_slice(section(SEC_EDGES)).ok_or(SnapshotError::Corrupt("edges misaligned"))?;
            let recompute = |key: fn(&Edge) -> u32| {
                let mut offsets = vec![0u32; n + 1];
                for e in edges {
                    offsets[key(e) as usize + 1] += 1;
                }
                for i in 0..n {
                    offsets[i + 1] += offsets[i];
                }
                offsets
            };
            if out_offsets != recompute(|e| e.head.0) {
                return Err(SnapshotError::Corrupt(
                    "out offsets inconsistent with edges",
                ));
            }
            if in_offsets != recompute(|e| e.tail.0) {
                return Err(SnapshotError::Corrupt("in offsets inconsistent with edges"));
            }
            let mut prev: Option<(u32, u32)> = None;
            for (j, &idx) in in_edges.iter().enumerate() {
                let tail = edges[idx as usize].tail.0;
                let s = in_offsets[tail as usize] as usize;
                let e = in_offsets[tail as usize + 1] as usize;
                if j < s || j >= e {
                    return Err(SnapshotError::Corrupt("in-edge in wrong tail group"));
                }
                if prev.is_some_and(|p| p >= (tail, idx)) {
                    return Err(SnapshotError::Corrupt("in-edges not sorted"));
                }
                prev = Some((tail, idx));
            }
            let mut seen = vec![false; n];
            for r in lookup {
                let i = r.id as usize;
                if seen[i] {
                    return Err(SnapshotError::Corrupt("lookup id duplicated"));
                }
                seen[i] = true;
                let s = text_offsets[i] as usize;
                let e = text_offsets[i + 1] as usize;
                if r.kind != section(SEC_KINDS)[i] || r.hash != hash_bytes(&arena.as_bytes()[s..e])
                {
                    return Err(SnapshotError::Corrupt("lookup record does not match node"));
                }
            }
        }

        Ok(MappedSnapshot {
            bytes,
            n,
            m,
            arena_len,
            relations_mask,
            sec,
        })
    }

    fn section(&self, i: usize) -> &[u8] {
        &self.bytes[self.sec[i].0..self.sec[i].0 + self.sec[i].1]
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.m
    }

    /// Number of distinct relation types present (O(1): gathered during
    /// the load-time tag scan).
    pub fn num_relations(&self) -> usize {
        self.relations_mask.count_ones() as usize
    }

    /// Total bytes of node text in the arena.
    pub fn arena_len(&self) -> usize {
        self.arena_len
    }

    /// True when the backing bytes are an OS memory mapping.
    pub fn is_mapped(&self) -> bool {
        self.bytes.is_mapped()
    }

    /// The full serialised file, byte-identical to
    /// [`KgSnapshot::to_bytes_v2`] output.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    fn kinds(&self) -> &[NodeKind] {
        // PANIC: section alignment and size were validated at load
        cast_slice(self.section(SEC_KINDS)).expect("validated at load")
    }

    fn text_offsets(&self) -> &[u32] {
        // PANIC: validated at load, as above
        cast_slice(self.section(SEC_TEXT_OFFSETS)).expect("validated at load")
    }

    fn arena_str(&self) -> &str {
        str_from_validated(self.section(SEC_ARENA))
    }

    /// All edges, sorted by `(head, relation, tail)` — borrowed straight
    /// from the file bytes.
    pub fn edges(&self) -> &[Edge] {
        // PANIC: validated at load, as above
        cast_slice(self.section(SEC_EDGES)).expect("validated at load")
    }

    fn out_offsets(&self) -> &[u32] {
        // PANIC: validated at load, as above
        cast_slice(self.section(SEC_OUT_OFFSETS)).expect("validated at load")
    }

    fn in_offsets(&self) -> &[u32] {
        // PANIC: validated at load, as above
        cast_slice(self.section(SEC_IN_OFFSETS)).expect("validated at load")
    }

    fn in_edges(&self) -> &[u32] {
        // PANIC: validated at load, as above
        cast_slice(self.section(SEC_IN_EDGES)).expect("validated at load")
    }

    fn lookup(&self) -> &[LookupRec] {
        // PANIC: validated at load, as above
        cast_slice(self.section(SEC_LOOKUP)).expect("validated at load")
    }

    /// Kind of a node.
    pub fn node_kind(&self, id: NodeId) -> NodeKind {
        self.kinds()[id.0 as usize]
    }

    /// Text of a node (borrowed from the mapped arena).
    pub fn node_text(&self, id: NodeId) -> &str {
        let offsets = self.text_offsets();
        let s = offsets[id.0 as usize] as usize;
        let e = offsets[id.0 as usize + 1] as usize;
        &self.arena_str()[s..e]
    }

    /// Binary-searched node lookup, identical to the v1 algorithm.
    pub fn find_node(&self, kind: NodeKind, text: &str) -> Option<NodeId> {
        let key = (
            crate::snapshot::kind_to_u8(kind),
            hash_bytes(text.as_bytes()),
        );
        let lookup = self.lookup();
        let start = lookup.partition_point(|r| (r.kind, r.hash) < key);
        lookup[start..]
            .iter()
            .take_while(|r| (r.kind, r.hash) == key)
            .map(|r| NodeId(r.id))
            .find(|&id| self.node_text(id) == text)
    }

    /// Out-edges of `head` as one contiguous borrowed slice.
    pub fn out_slice(&self, head: NodeId) -> &[Edge] {
        let offsets = self.out_offsets();
        let s = offsets[head.0 as usize] as usize;
        let e = offsets[head.0 as usize + 1] as usize;
        &self.edges()[s..e]
    }

    /// Out-edges of `head` restricted to `relation`.
    pub fn tails_of_rel_slice(&self, head: NodeId, relation: Relation) -> &[Edge] {
        let out = self.out_slice(head);
        let r = relation.index();
        let lo = out.partition_point(|e| e.relation.index() < r);
        let hi = lo + out[lo..].partition_point(|e| e.relation.index() == r);
        &out[lo..hi]
    }

    /// Indices (into [`Self::edges`]) of the in-edges of `tail`.
    pub fn in_slice(&self, tail: NodeId) -> &[u32] {
        let offsets = self.in_offsets();
        let s = offsets[tail.0 as usize] as usize;
        let e = offsets[tail.0 as usize + 1] as usize;
        &self.in_edges()[s..e]
    }

    /// Materialise an owned [`KgSnapshot`] with identical contents — the
    /// v2→v1 direction of the migration path.
    pub fn to_owned_snapshot(&self) -> KgSnapshot {
        KgSnapshot {
            kinds: self.kinds().to_vec(),
            text_offsets: self.text_offsets().to_vec(),
            arena: self.arena_str().to_string(),
            edges: self.edges().to_vec(),
            out_offsets: self.out_offsets().to_vec(),
            in_offsets: self.in_offsets().to_vec(),
            in_edges: self.in_edges().to_vec(),
            lookup: self
                .lookup()
                .iter()
                .map(|r| (r.kind, r.hash, r.id))
                .collect(),
        }
    }
}

impl GraphView for MappedSnapshot {
    fn num_nodes(&self) -> usize {
        MappedSnapshot::num_nodes(self)
    }

    fn num_edges(&self) -> usize {
        MappedSnapshot::num_edges(self)
    }

    fn find_node(&self, kind: NodeKind, text: &str) -> Option<NodeId> {
        MappedSnapshot::find_node(self, kind, text)
    }

    fn node_kind(&self, id: NodeId) -> NodeKind {
        MappedSnapshot::node_kind(self, id)
    }

    fn node_text(&self, id: NodeId) -> &str {
        MappedSnapshot::node_text(self, id)
    }

    fn out_degree(&self, id: NodeId) -> usize {
        self.out_slice(id).len()
    }

    fn in_degree(&self, id: NodeId) -> usize {
        self.in_slice(id).len()
    }

    fn tails_of(&self, head: NodeId) -> impl Iterator<Item = &Edge> {
        self.out_slice(head).iter()
    }

    fn tails_of_rel(&self, head: NodeId, relation: Relation) -> impl Iterator<Item = &Edge> {
        self.tails_of_rel_slice(head, relation).iter()
    }

    fn heads_of(&self, tail: NodeId) -> impl Iterator<Item = &Edge> {
        self.in_slice(tail)
            .iter()
            .map(|&i| &self.edges()[i as usize])
    }
}

/// A serving-ready snapshot behind either backend: an owned v1-style
/// [`KgSnapshot`] or a borrowed [`MappedSnapshot`]. The serving tier
/// holds `Arc<KgSnapshotView>` so a hot-swap can atomically re-point
/// readers at a new file without caring which backend it came from.
#[derive(Debug)]
pub enum KgSnapshotView {
    /// Fully materialised snapshot (freeze output, or a migrated v1 file).
    Owned(KgSnapshot),
    /// Borrowed view over mapped v2 bytes.
    Mapped(MappedSnapshot),
}

impl KgSnapshotView {
    /// Open a snapshot file of either format version.
    ///
    /// v2 files get the borrowed mapped view ([`Verify::Structural`]);
    /// v1 files are migrated on load — parsed once into an owned
    /// snapshot that serves through the same interface.
    pub fn open(path: &Path) -> Result<KgSnapshotView, SnapshotError> {
        Self::open_with(path, Verify::Structural)
    }

    /// [`KgSnapshotView::open`] at [`Verify::Full`] rigor — what a live
    /// server uses before publishing a new generation.
    pub fn open_verified(path: &Path) -> Result<KgSnapshotView, SnapshotError> {
        Self::open_with(path, Verify::Full)
    }

    fn open_with(path: &Path, verify: Verify) -> Result<KgSnapshotView, SnapshotError> {
        let bytes = MappedBytes::open(path)?;
        if bytes.len() >= 12
            && bytes[..8] == MAGIC
            // PANIC: guarded by the `len() >= 12` arm above
            && u32::from_le_bytes(bytes[8..12].try_into().unwrap()) == FORMAT_VERSION_V2
        {
            return Ok(KgSnapshotView::Mapped(MappedSnapshot::from_mapped(
                bytes, verify,
            )?));
        }
        // v1 (or garbage — from_bytes decides): full parse, owned view.
        Ok(KgSnapshotView::Owned(KgSnapshot::from_bytes(&bytes)?))
    }

    /// The on-disk format version this view was built from (2 for the
    /// mapped backend, 1 for owned/migrated snapshots).
    pub fn format_version(&self) -> u32 {
        match self {
            KgSnapshotView::Owned(_) => crate::snapshot::FORMAT_VERSION,
            KgSnapshotView::Mapped(_) => FORMAT_VERSION_V2,
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        match self {
            KgSnapshotView::Owned(s) => s.num_nodes(),
            KgSnapshotView::Mapped(s) => s.num_nodes(),
        }
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        match self {
            KgSnapshotView::Owned(s) => s.num_edges(),
            KgSnapshotView::Mapped(s) => s.num_edges(),
        }
    }

    /// Number of distinct relation types present.
    pub fn num_relations(&self) -> usize {
        match self {
            KgSnapshotView::Owned(s) => s.num_relations(),
            KgSnapshotView::Mapped(s) => s.num_relations(),
        }
    }

    /// Total bytes of node text.
    pub fn arena_len(&self) -> usize {
        match self {
            KgSnapshotView::Owned(s) => s.arena_len(),
            KgSnapshotView::Mapped(s) => s.arena_len(),
        }
    }

    /// All edges, sorted by `(head, relation, tail)`.
    pub fn edges(&self) -> &[Edge] {
        match self {
            KgSnapshotView::Owned(s) => s.edges(),
            KgSnapshotView::Mapped(s) => s.edges(),
        }
    }

    /// Out-edges of `head` as one contiguous slice.
    pub fn out_slice(&self, head: NodeId) -> &[Edge] {
        match self {
            KgSnapshotView::Owned(s) => s.out_slice(head),
            KgSnapshotView::Mapped(s) => s.out_slice(head),
        }
    }

    /// Out-edges of `head` restricted to `relation`.
    pub fn tails_of_rel_slice(&self, head: NodeId, relation: Relation) -> &[Edge] {
        match self {
            KgSnapshotView::Owned(s) => s.tails_of_rel_slice(head, relation),
            KgSnapshotView::Mapped(s) => s.tails_of_rel_slice(head, relation),
        }
    }

    /// Indices (into [`Self::edges`]) of the in-edges of `tail`.
    pub fn in_slice(&self, tail: NodeId) -> &[u32] {
        match self {
            KgSnapshotView::Owned(s) => s.in_slice(tail),
            KgSnapshotView::Mapped(s) => s.in_slice(tail),
        }
    }

    /// Serialise to the v2 format (borrowed views return their backing
    /// bytes verbatim).
    pub fn to_bytes_v2(&self) -> Vec<u8> {
        match self {
            KgSnapshotView::Owned(s) => s.to_bytes_v2(),
            KgSnapshotView::Mapped(s) => s.as_bytes().to_vec(),
        }
    }
}

impl From<KgSnapshot> for KgSnapshotView {
    fn from(s: KgSnapshot) -> Self {
        KgSnapshotView::Owned(s)
    }
}

impl From<MappedSnapshot> for KgSnapshotView {
    fn from(s: MappedSnapshot) -> Self {
        KgSnapshotView::Mapped(s)
    }
}

impl GraphView for KgSnapshotView {
    fn num_nodes(&self) -> usize {
        KgSnapshotView::num_nodes(self)
    }

    fn num_edges(&self) -> usize {
        KgSnapshotView::num_edges(self)
    }

    fn find_node(&self, kind: NodeKind, text: &str) -> Option<NodeId> {
        match self {
            KgSnapshotView::Owned(s) => s.find_node(kind, text),
            KgSnapshotView::Mapped(s) => s.find_node(kind, text),
        }
    }

    fn node_kind(&self, id: NodeId) -> NodeKind {
        match self {
            KgSnapshotView::Owned(s) => s.node_kind(id),
            KgSnapshotView::Mapped(s) => s.node_kind(id),
        }
    }

    fn node_text(&self, id: NodeId) -> &str {
        match self {
            KgSnapshotView::Owned(s) => s.node_text(id),
            KgSnapshotView::Mapped(s) => s.node_text(id),
        }
    }

    fn out_degree(&self, id: NodeId) -> usize {
        self.out_slice(id).len()
    }

    fn in_degree(&self, id: NodeId) -> usize {
        self.in_slice(id).len()
    }

    fn tails_of(&self, head: NodeId) -> impl Iterator<Item = &Edge> {
        self.out_slice(head).iter()
    }

    fn tails_of_rel(&self, head: NodeId, relation: Relation) -> impl Iterator<Item = &Edge> {
        self.tails_of_rel_slice(head, relation).iter()
    }

    fn heads_of(&self, tail: NodeId) -> impl Iterator<Item = &Edge> {
        self.in_slice(tail)
            .iter()
            .map(|&i| &self.edges()[i as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::BehaviorKind;
    use crate::store::KnowledgeGraph;

    fn build_graph(heads: usize, tails_per_head: usize) -> KnowledgeGraph {
        let mut kg = KnowledgeGraph::new();
        for h in 0..heads {
            let kind = if h % 2 == 0 {
                NodeKind::Query
            } else {
                NodeKind::Product
            };
            let head = kg.intern_node(kind, &format!("head {h}"));
            for t in 0..tails_per_head {
                let tail = kg.intern_node(
                    NodeKind::Intention,
                    &format!("intent {}", (h + t) % (heads / 2 + 1)),
                );
                let relation = Relation::ALL[(h * 7 + t * 3) % Relation::ALL.len()];
                kg.add_edge(Edge {
                    head,
                    relation,
                    tail,
                    behavior: if t % 2 == 0 {
                        BehaviorKind::SearchBuy
                    } else {
                        BehaviorKind::CoBuy
                    },
                    category: (t % 18) as u8,
                    plausibility: 0.5 + 0.4 * (h as f32 / heads.max(1) as f32),
                    typicality: 0.1 + 0.05 * (t as f32),
                    support: 1 + (h % 3) as u32,
                });
            }
        }
        kg
    }

    #[test]
    fn enum_discriminants_match_v1_codes() {
        // repr(u8) pins these; the v1 helpers and the raw tag scans rely
        // on the discriminants being the v1 wire codes.
        assert_eq!(NodeKind::Product as u8, 0);
        assert_eq!(NodeKind::Query as u8, 1);
        assert_eq!(NodeKind::Intention as u8, 2);
        assert_eq!(BehaviorKind::SearchBuy as u8, 0);
        assert_eq!(BehaviorKind::CoBuy as u8, 1);
        for (i, r) in Relation::ALL.iter().enumerate() {
            assert_eq!(*r as u8 as usize, i);
        }
    }

    #[test]
    fn v2_roundtrip_full_verify() {
        let snap = build_graph(20, 6).freeze();
        let bytes = snap.to_bytes_v2();
        let mapped = MappedSnapshot::from_bytes(bytes.clone(), Verify::Full).unwrap();
        assert_eq!(mapped.to_owned_snapshot(), snap);
        assert_eq!(mapped.as_bytes(), &bytes[..]);
        assert_eq!(
            mapped.to_owned_snapshot().to_bytes_v2(),
            bytes,
            "encode → decode → encode must be byte-stable"
        );
        assert_eq!(mapped.num_relations(), snap.num_relations());
    }

    #[test]
    fn mapped_answers_match_owned_bitwise() {
        let kg = build_graph(30, 8);
        let snap = kg.freeze();
        let mapped = MappedSnapshot::from_bytes(snap.to_bytes_v2(), Verify::Structural).unwrap();
        assert_eq!(mapped.num_nodes(), snap.num_nodes());
        assert_eq!(mapped.num_edges(), snap.num_edges());
        assert_eq!(mapped.arena_len(), snap.arena_len());
        for i in 0..snap.num_nodes() {
            let id = NodeId(i as u32);
            assert_eq!(mapped.node_kind(id), snap.node_kind(id));
            assert_eq!(mapped.node_text(id), snap.node_text(id));
            assert_eq!(
                mapped.find_node(snap.node_kind(id), snap.node_text(id)),
                snap.find_node(snap.node_kind(id), snap.node_text(id))
            );
            assert_eq!(mapped.out_slice(id), snap.out_slice(id));
            assert_eq!(mapped.in_slice(id), snap.in_slice(id));
            for rel in Relation::ALL {
                assert_eq!(
                    mapped.tails_of_rel_slice(id, rel),
                    snap.tails_of_rel_slice(id, rel)
                );
            }
            let a: Vec<&Edge> = GraphView::top_intents(&mapped, id, 5);
            let b: Vec<&Edge> = GraphView::top_intents(&snap, id, 5);
            assert_eq!(a, b);
        }
        assert_eq!(mapped.find_node(NodeKind::Query, "no such node"), None);
    }

    #[test]
    fn empty_graph_roundtrips_v2() {
        let snap = KnowledgeGraph::new().freeze();
        let mapped = MappedSnapshot::from_bytes(snap.to_bytes_v2(), Verify::Full).unwrap();
        assert_eq!(mapped.num_nodes(), 0);
        assert_eq!(mapped.num_edges(), 0);
        assert_eq!(mapped.to_owned_snapshot(), snap);
    }

    #[test]
    fn view_opens_both_formats_and_migrates_v1() {
        let snap = build_graph(10, 4).freeze();
        let dir = std::env::temp_dir();
        let v1_path = dir.join(format!("cosmo_v2_test_v1_{}.snap", std::process::id()));
        let v2_path = dir.join(format!("cosmo_v2_test_v2_{}.snap", std::process::id()));
        snap.save(&v1_path).unwrap();
        snap.save_v2(&v2_path).unwrap();

        let v1_view = KgSnapshotView::open(&v1_path).unwrap();
        let v2_view = KgSnapshotView::open_verified(&v2_path).unwrap();
        assert_eq!(v1_view.format_version(), 1);
        assert_eq!(v2_view.format_version(), 2);
        assert_eq!(v1_view.num_nodes(), v2_view.num_nodes());
        assert_eq!(v1_view.num_edges(), v2_view.num_edges());
        for i in 0..snap.num_nodes() {
            let id = NodeId(i as u32);
            assert_eq!(v1_view.node_text(id), v2_view.node_text(id));
            assert_eq!(v1_view.out_slice(id), v2_view.out_slice(id));
        }
        // migrating the v1 view re-encodes to the exact v2 bytes
        assert_eq!(v1_view.to_bytes_v2(), v2_view.to_bytes_v2());

        // and KgSnapshot::load reads the v2 file transparently
        let reloaded = KgSnapshot::load(&v2_path).unwrap();
        assert_eq!(reloaded, snap);

        std::fs::remove_file(&v1_path).ok();
        std::fs::remove_file(&v2_path).ok();
    }

    #[test]
    fn crafted_header_overflows_are_clean_errors() {
        // v2: section lengths computed from near-u64::MAX counts must not
        // panic or wrap.
        let snap = KnowledgeGraph::new().freeze();
        let mut bytes = snap.to_bytes_v2();
        bytes[32..40].copy_from_slice(&u64::MAX.to_le_bytes()); // arena_len
        assert!(matches!(
            MappedSnapshot::from_bytes(bytes, Verify::Full),
            Err(SnapshotError::Corrupt(_))
        ));

        let mut bytes = snap.to_bytes_v2();
        bytes[16..24].copy_from_slice(&(u64::MAX / 2).to_le_bytes()); // n
        assert!(matches!(
            MappedSnapshot::from_bytes(bytes, Verify::Full),
            Err(SnapshotError::Corrupt(_))
        ));
    }

    #[test]
    fn structural_verify_rejects_bad_tags_and_bounds() {
        let snap = build_graph(6, 3).freeze();
        let good = snap.to_bytes_v2();
        let edges_off = {
            let t = TABLE_OFF + SEC_EDGES * 16;
            u64::from_le_bytes(good[t..t + 8].try_into().unwrap()) as usize
        };

        let mut bad = good.clone();
        bad[edges_off + 4] = 200; // relation tag
        assert!(matches!(
            MappedSnapshot::from_bytes(bad, Verify::Structural),
            Err(SnapshotError::Corrupt("bad relation tag"))
        ));

        let mut bad = good.clone();
        bad[edges_off + 12] = 9; // behavior tag
        assert!(matches!(
            MappedSnapshot::from_bytes(bad, Verify::Structural),
            Err(SnapshotError::Corrupt("bad behavior tag"))
        ));

        let mut bad = good.clone();
        bad[edges_off..edges_off + 4].copy_from_slice(&u32::MAX.to_le_bytes()); // head
        assert!(matches!(
            MappedSnapshot::from_bytes(bad, Verify::Structural),
            Err(SnapshotError::Corrupt(_))
        ));

        let kinds_off = {
            let t = TABLE_OFF + SEC_KINDS * 16;
            u64::from_le_bytes(good[t..t + 8].try_into().unwrap()) as usize
        };
        let mut bad = good.clone();
        bad[kinds_off] = 7;
        assert!(matches!(
            MappedSnapshot::from_bytes(bad, Verify::Structural),
            Err(SnapshotError::Corrupt("bad node kind"))
        ));
    }
}
