//! Per-category knowledge-graph statistics — the machinery behind Table 3
//! ("Statistics of COSMO knowledge graph") and Table 1 (the KG comparison).

use crate::schema::{BehaviorKind, Relation};
use crate::store::KnowledgeGraph;
use serde::{Deserialize, Serialize};

/// The 18 product categories of Table 3, in paper order ("Others" last).
pub const CATEGORIES: [&str; 18] = [
    "Clothing, Shoes & Jewelry",
    "Sports & Outdoors",
    "Home & Kitchen",
    "Patio, Lawn & Garden",
    "Tools & Home Improvement",
    "Musical Instruments",
    "Industrial & Scientific",
    "Automotive",
    "Electronics",
    "Baby Products",
    "Arts, Crafts & Sewing",
    "Health & Household",
    "Toys & Games",
    "Video Games",
    "Grocery & Gourmet Food",
    "Office Products",
    "Pet Supplies",
    "Others",
];

/// One row of Table 3 (for one behaviour type).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CategoryRow {
    /// Sampled behaviour pairs feeding the pipeline.
    pub behavior_pairs: u64,
    /// Knowledge candidates sent to annotation.
    pub annotations: u64,
    /// Edges surviving refinement.
    pub edges: u64,
}

/// Table 3: per-category, per-behaviour statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KgStats {
    /// Rows indexed by category (0..18).
    pub cobuy: Vec<CategoryRow>,
    /// Rows indexed by category (0..18).
    pub searchbuy: Vec<CategoryRow>,
}

impl Default for KgStats {
    fn default() -> Self {
        KgStats {
            cobuy: vec![CategoryRow::default(); CATEGORIES.len()],
            searchbuy: vec![CategoryRow::default(); CATEGORIES.len()],
        }
    }
}

impl KgStats {
    /// Empty stats.
    pub fn new() -> Self {
        Self::default()
    }

    fn row_mut(&mut self, behavior: BehaviorKind, category: u8) -> &mut CategoryRow {
        let rows = match behavior {
            BehaviorKind::CoBuy => &mut self.cobuy,
            BehaviorKind::SearchBuy => &mut self.searchbuy,
        };
        &mut rows[category as usize % CATEGORIES.len()]
    }

    /// Record sampled behaviour pairs.
    pub fn add_behavior_pairs(&mut self, behavior: BehaviorKind, category: u8, n: u64) {
        self.row_mut(behavior, category).behavior_pairs += n;
    }

    /// Record annotated candidates.
    pub fn add_annotations(&mut self, behavior: BehaviorKind, category: u8, n: u64) {
        self.row_mut(behavior, category).annotations += n;
    }

    /// Recount the edge column from a graph.
    pub fn count_edges(&mut self, kg: &KnowledgeGraph) {
        for r in self.cobuy.iter_mut().chain(self.searchbuy.iter_mut()) {
            r.edges = 0;
        }
        for (_, e) in kg.edges() {
            self.row_mut(e.behavior, e.category).edges += 1;
        }
    }

    /// Column totals `(behavior_pairs, annotations, edges)` for a behaviour.
    pub fn totals(&self, behavior: BehaviorKind) -> (u64, u64, u64) {
        let rows = match behavior {
            BehaviorKind::CoBuy => &self.cobuy,
            BehaviorKind::SearchBuy => &self.searchbuy,
        };
        rows.iter().fold((0, 0, 0), |acc, r| {
            (
                acc.0 + r.behavior_pairs,
                acc.1 + r.annotations,
                acc.2 + r.edges,
            )
        })
    }

    /// Render the Table 3 layout as text (one row per category, both
    /// behaviours side by side, totals last).
    pub fn render_table3(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<28} {:>12} {:>12} {:>12} | {:>12} {:>12} {:>12}\n",
            "Category", "CB pairs", "CB annot", "CB edges", "SB pairs", "SB annot", "SB edges"
        ));
        for (i, name) in CATEGORIES.iter().enumerate() {
            let c = &self.cobuy[i];
            let s = &self.searchbuy[i];
            out.push_str(&format!(
                "{:<28} {:>12} {:>12} {:>12} | {:>12} {:>12} {:>12}\n",
                name,
                c.behavior_pairs,
                c.annotations,
                c.edges,
                s.behavior_pairs,
                s.annotations,
                s.edges
            ));
        }
        let ct = self.totals(BehaviorKind::CoBuy);
        let st = self.totals(BehaviorKind::SearchBuy);
        out.push_str(&format!(
            "{:<28} {:>12} {:>12} {:>12} | {:>12} {:>12} {:>12}\n",
            "Total", ct.0, ct.1, ct.2, st.0, st.1, st.2
        ));
        out
    }
}

/// One row of Table 1 (KG comparison).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KgComparisonRow {
    /// Graph name.
    pub name: &'static str,
    /// Node count (approximate, as reported).
    pub nodes: &'static str,
    /// Edge count.
    pub edges: &'static str,
    /// Relation-type count.
    pub rels: &'static str,
    /// Construction source.
    pub source: &'static str,
    /// Covers e-commerce?
    pub ecommerce: &'static str,
    /// Models intentions?
    pub intention: &'static str,
    /// Grounded in user behaviours?
    pub behavior: &'static str,
}

/// The literature rows of Table 1 (constants from the paper).
pub fn table1_literature() -> Vec<KgComparisonRow> {
    vec![
        KgComparisonRow {
            name: "ConceptNet",
            nodes: "8M",
            edges: "21M",
            rels: "36",
            source: "Crowdsource",
            ecommerce: "no",
            intention: "yes",
            behavior: "no",
        },
        KgComparisonRow {
            name: "ATOMIC",
            nodes: "300K",
            edges: "870K",
            rels: "9",
            source: "Crowdsource",
            ecommerce: "no",
            intention: "yes",
            behavior: "no",
        },
        KgComparisonRow {
            name: "AliCoCo",
            nodes: "163K",
            edges: "813K",
            rels: "91",
            source: "Extraction",
            ecommerce: "yes",
            intention: "no",
            behavior: "search logs",
        },
        KgComparisonRow {
            name: "AliCG",
            nodes: "5M",
            edges: "13.5M",
            rels: "1",
            source: "Extraction",
            ecommerce: "no",
            intention: "no",
            behavior: "search logs",
        },
        KgComparisonRow {
            name: "FolkScope",
            nodes: "1.2M",
            edges: "12M",
            rels: "19",
            source: "LLM Generation",
            ecommerce: "2 domains",
            intention: "yes",
            behavior: "co-buy",
        },
        KgComparisonRow {
            name: "COSMO (paper)",
            nodes: "6.3M",
            edges: "29M",
            rels: "15",
            source: "LLM Generation",
            ecommerce: "18 domains",
            intention: "yes",
            behavior: "co-buy&search-buy",
        },
    ]
}

/// Summary of our built KG for the Table 1 "ours" row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KgSummary {
    /// Node count.
    pub nodes: usize,
    /// Edge count.
    pub edges: usize,
    /// Distinct relations present.
    pub rels: usize,
    /// Distinct categories present on edges.
    pub domains: usize,
    /// Per-relation edge histogram (index = [`Relation::index`]).
    pub relation_histogram: Vec<usize>,
}

/// Summarise a graph.
pub fn summarize(kg: &KnowledgeGraph) -> KgSummary {
    let mut relation_histogram = vec![0usize; Relation::ALL.len()];
    let mut cats = [false; CATEGORIES.len()];
    for (_, e) in kg.edges() {
        relation_histogram[e.relation.index()] += 1;
        cats[e.category as usize % CATEGORIES.len()] = true;
    }
    KgSummary {
        nodes: kg.num_nodes(),
        edges: kg.num_edges(),
        rels: kg.num_relations(),
        domains: cats.iter().filter(|&&b| b).count(),
        relation_histogram,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::NodeKind;
    use crate::store::Edge;

    #[test]
    fn eighteen_categories() {
        assert_eq!(CATEGORIES.len(), 18);
        assert_eq!(CATEGORIES[17], "Others");
    }

    #[test]
    fn totals_accumulate() {
        let mut s = KgStats::new();
        s.add_behavior_pairs(BehaviorKind::CoBuy, 0, 10);
        s.add_behavior_pairs(BehaviorKind::CoBuy, 3, 5);
        s.add_annotations(BehaviorKind::SearchBuy, 0, 7);
        assert_eq!(s.totals(BehaviorKind::CoBuy), (15, 0, 0));
        assert_eq!(s.totals(BehaviorKind::SearchBuy), (0, 7, 0));
    }

    #[test]
    fn count_edges_splits_by_behavior_and_category() {
        let mut kg = KnowledgeGraph::new();
        let h = kg.intern_node(NodeKind::Product, "p");
        for (i, b) in [
            BehaviorKind::CoBuy,
            BehaviorKind::SearchBuy,
            BehaviorKind::CoBuy,
        ]
        .iter()
        .enumerate()
        {
            let t = kg.intern_node(NodeKind::Intention, &format!("t{i}"));
            kg.add_edge(Edge {
                head: h,
                relation: Relation::CapableOf,
                tail: t,
                behavior: *b,
                category: (i % 2) as u8,
                plausibility: 0.9,
                typicality: 0.5,
                support: 1,
            });
        }
        let mut s = KgStats::new();
        s.count_edges(&kg);
        assert_eq!(s.cobuy[0].edges, 2);
        assert_eq!(s.searchbuy[1].edges, 1);
        // recounting is idempotent
        s.count_edges(&kg);
        assert_eq!(s.cobuy[0].edges, 2);
    }

    #[test]
    fn render_includes_all_rows() {
        let s = KgStats::new();
        let table = s.render_table3();
        for c in CATEGORIES {
            assert!(table.contains(c), "missing category {c}");
        }
        assert!(table.contains("Total"));
    }

    #[test]
    fn summary_counts_relations_and_domains() {
        let mut kg = KnowledgeGraph::new();
        let h = kg.intern_node(NodeKind::Query, "q");
        let t = kg.intern_node(NodeKind::Intention, "i");
        kg.add_edge(Edge {
            head: h,
            relation: Relation::XWant,
            tail: t,
            behavior: BehaviorKind::SearchBuy,
            category: 4,
            plausibility: 1.0,
            typicality: 1.0,
            support: 1,
        });
        let sum = summarize(&kg);
        assert_eq!(sum.nodes, 2);
        assert_eq!(sum.edges, 1);
        assert_eq!(sum.rels, 1);
        assert_eq!(sum.domains, 1);
        assert_eq!(sum.relation_histogram[Relation::XWant.index()], 1);
    }

    #[test]
    fn literature_table_has_six_rows() {
        assert_eq!(table1_literature().len(), 6);
    }
}
