//! Hierarchical organisation of intention tails (Figure 8).
//!
//! §4.3: "COSMO intention knowledge can be further organized into
//! hierarchies that expand coarse-grained ones (*camping*) to fine-grained
//! ones (*winter camping*), and intention concepts are further linked to
//! product concepts such as *winter boots*."
//!
//! The builder derives the hierarchy from the tail strings themselves: an
//! intention A is a parent of intention B when A's token set is a strict
//! subset of B's (so "camping" ⊃-specialises into "winter camping" and
//! "lakeside camping"). Each hierarchy node is then linked to the product
//! heads that express it in the graph, which is what the multi-turn
//! navigation engine in `cosmo-nav` walks.

use crate::schema::NodeKind;
use crate::store::NodeId;
use crate::view::GraphView;
use cosmo_text::{tokenize, FxHashMap, FxHashSet};
use serde::{Deserialize, Serialize};

/// A node in the intent hierarchy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HierNode {
    /// The KG intention node.
    pub intent: NodeId,
    /// Surface text of the intention tail.
    pub text: String,
    /// Child hierarchy-node indices (more specific intents).
    pub children: Vec<usize>,
    /// Parent hierarchy-node indices (more general intents).
    pub parents: Vec<usize>,
    /// Product nodes linked to this intention in the KG.
    pub products: Vec<NodeId>,
    /// Total support of the intention's edges (popularity proxy).
    pub support: u32,
}

/// The intent hierarchy: a DAG over intention tails.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct IntentHierarchy {
    /// All hierarchy nodes.
    pub nodes: Vec<HierNode>,
    /// Indices of root nodes (no parents).
    pub roots: Vec<usize>,
    /// Node indices sorted by tail text — the binary-searched index behind
    /// [`IntentHierarchy::find`]. Serialised (it is plain data), so lookups
    /// survive deserialisation without a rebuild step.
    by_text: Vec<u32>,
}

impl IntentHierarchy {
    /// Build the hierarchy from every intention node in the graph. Works
    /// over any [`GraphView`] backend — the mutable store or a frozen
    /// snapshot — and produces identical hierarchies for equal graphs.
    pub fn build<G: GraphView>(kg: &G) -> Self {
        // Collect intention nodes with their token sets.
        let mut items: Vec<(NodeId, String, FxHashSet<String>)> = Vec::new();
        for i in 0..kg.num_nodes() {
            let id = NodeId(i as u32);
            if kg.node_kind(id) == NodeKind::Intention {
                let text = kg.node_text(id);
                let toks: FxHashSet<String> = tokenize(text).into_iter().collect();
                if !toks.is_empty() {
                    items.push((id, text.to_string(), toks));
                }
            }
        }
        // Index tokens -> items containing them, to avoid O(n²) subset checks.
        let mut token_index: FxHashMap<&str, Vec<usize>> = FxHashMap::default();
        for (i, (_, _, toks)) in items.iter().enumerate() {
            // DETERMINISM: each distinct token is pushed once per item, and
            // the outer loop visits items in ascending order, so every
            // posting list ends sorted ascending whatever the set order.
            for t in toks {
                token_index.entry(t.as_str()).or_default().push(i);
            }
        }
        let mut nodes: Vec<HierNode> = items
            .iter()
            .map(|(id, text, _)| {
                let mut products = Vec::new();
                let mut support = 0;
                for e in kg.heads_of(*id) {
                    support += e.support;
                    if kg.node_kind(e.head) == NodeKind::Product {
                        products.push(e.head);
                    }
                }
                products.sort_unstable();
                products.dedup();
                HierNode {
                    intent: *id,
                    text: text.clone(),
                    children: Vec::new(),
                    parents: Vec::new(),
                    products,
                    support,
                }
            })
            .collect();

        // A is parent of B iff tokens(A) ⊊ tokens(B). We only link
        // *immediate* parents (no grandparent shortcuts) to keep the DAG
        // navigable one refinement at a time.
        //
        // Enumerate candidates from the *parent* side: every child of A
        // contains ALL of A's tokens, in particular A's rarest one — so
        // scanning the rarest token's posting list finds every child, and
        // its length bounds the work. (The child-side union of items
        // sharing *any* token blows up quadratically once common tokens
        // dominate: at the paper-scale world's 2.5M intentions it made
        // the build effectively unbounded.)
        let mut parent_sets: Vec<Vec<usize>> = vec![Vec::new(); items.len()];
        for (a, (_, _, atoks)) in items.iter().enumerate() {
            let rare = atoks
                .iter()
                .min_by_key(|t| token_index.get(t.as_str()).map_or(0, |v| v.len()))
                .unwrap(); // PANIC: atoks is non-empty (filtered at insertion)
            for &b in token_index.get(rare.as_str()).into_iter().flatten() {
                if a == b {
                    continue;
                }
                let btoks = &items[b].2;
                if atoks.len() < btoks.len() && atoks.is_subset(btoks) {
                    parent_sets[b].push(a);
                }
            }
        }
        // Keep only maximal parents (immediate): drop a parent P when some
        // other parent Q of the same child has tokens(P) ⊂ tokens(Q).
        for b in 0..items.len() {
            let ps = parent_sets[b].clone();
            let immediate: Vec<usize> = ps
                .iter()
                .copied()
                .filter(|&p| {
                    !ps.iter().any(|&q| {
                        q != p
                            && items[p].2.len() < items[q].2.len()
                            && items[p].2.is_subset(&items[q].2)
                    })
                })
                .collect();
            for p in immediate {
                nodes[b].parents.push(p);
                nodes[p].children.push(b);
            }
        }
        let roots = (0..nodes.len())
            .filter(|&i| nodes[i].parents.is_empty() && !nodes[i].children.is_empty())
            .collect();
        let mut by_text: Vec<u32> = (0..nodes.len() as u32).collect();
        by_text.sort_unstable_by(|&a, &b| nodes[a as usize].text.cmp(&nodes[b as usize].text));
        IntentHierarchy {
            nodes,
            roots,
            by_text,
        }
    }

    /// Binary search the sorted text index; intention texts are unique
    /// (nodes are interned per `(kind, text)`), so at most one node matches.
    fn find_index(&self, text: &str) -> Option<usize> {
        self.by_text
            .binary_search_by(|&i| self.nodes[i as usize].text.as_str().cmp(text))
            .ok()
            .map(|pos| self.by_text[pos] as usize)
    }

    /// Find a hierarchy node by exact tail text.
    pub fn find(&self, text: &str) -> Option<&HierNode> {
        self.find_index(text).map(|i| &self.nodes[i])
    }

    /// Refinements (child intents) of a tail text, ranked by support.
    pub fn refinements_of(&self, text: &str) -> Vec<&HierNode> {
        let Some(i) = self.find_index(text) else {
            return Vec::new();
        };
        let mut children: Vec<&HierNode> = self.nodes[i]
            .children
            .iter()
            .map(|&c| &self.nodes[c])
            .collect();
        children.sort_by(|a, b| b.support.cmp(&a.support).then(a.text.cmp(&b.text)));
        children
    }

    /// Depth of the hierarchy (longest root-to-leaf chain; 0 when empty).
    pub fn depth(&self) -> usize {
        fn dfs(h: &IntentHierarchy, i: usize, memo: &mut [Option<usize>]) -> usize {
            if let Some(d) = memo[i] {
                return d;
            }
            // The parent links are acyclic (strict subset ordering), so this
            // recursion terminates.
            let d = 1 + h.nodes[i]
                .children
                .iter()
                .map(|&c| dfs(h, c, memo))
                .max()
                .unwrap_or(0);
            memo[i] = Some(d);
            d
        }
        let mut memo = vec![None; self.nodes.len()];
        self.roots
            .iter()
            .map(|&r| dfs(self, r, &mut memo))
            .max()
            .unwrap_or(0)
    }

    /// Number of hierarchy nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no intents were found.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{BehaviorKind, Relation};
    use crate::store::{Edge, KnowledgeGraph};

    fn graph_with_intents(tails: &[&str]) -> KnowledgeGraph {
        let mut kg = KnowledgeGraph::new();
        let p = kg.intern_node(NodeKind::Product, "air mattress");
        for (i, t) in tails.iter().enumerate() {
            let tail = kg.intern_node(NodeKind::Intention, t);
            kg.add_edge(Edge {
                head: p,
                relation: Relation::UsedForEve,
                tail,
                behavior: BehaviorKind::SearchBuy,
                category: 1,
                plausibility: 0.9,
                typicality: 0.8,
                support: (tails.len() - i) as u32,
            });
        }
        kg
    }

    #[test]
    fn camping_expands_to_specialisations() {
        let kg = graph_with_intents(&[
            "camping",
            "winter camping",
            "lakeside camping",
            "4-person camping",
            "hiking",
        ]);
        let h = IntentHierarchy::build(&kg);
        let refs = h.refinements_of("camping");
        let texts: Vec<&str> = refs.iter().map(|n| n.text.as_str()).collect();
        assert_eq!(texts.len(), 3);
        assert!(texts.contains(&"winter camping"));
        assert!(texts.contains(&"lakeside camping"));
        assert!(texts.contains(&"4-person camping"));
        assert!(h.refinements_of("hiking").is_empty());
    }

    #[test]
    fn immediate_parents_only() {
        let kg = graph_with_intents(&["camping", "winter camping", "cold winter camping"]);
        let h = IntentHierarchy::build(&kg);
        // "cold winter camping" should hang off "winter camping", not "camping"
        let grand = h.find("cold winter camping").unwrap();
        assert_eq!(grand.parents.len(), 1);
        assert_eq!(h.nodes[grand.parents[0]].text, "winter camping");
        let refs = h.refinements_of("camping");
        assert_eq!(refs.len(), 1);
        assert_eq!(refs[0].text, "winter camping");
    }

    #[test]
    fn products_linked() {
        let kg = graph_with_intents(&["camping"]);
        let h = IntentHierarchy::build(&kg);
        let node = h.find("camping").unwrap();
        assert_eq!(node.products.len(), 1);
        assert_eq!(kg.node(node.products[0]).text, "air mattress");
    }

    #[test]
    fn depth_counts_chain() {
        let kg = graph_with_intents(&["camping", "winter camping", "cold winter camping"]);
        let h = IntentHierarchy::build(&kg);
        assert_eq!(h.depth(), 3);
    }

    #[test]
    fn refinements_ranked_by_support() {
        let kg = graph_with_intents(&["camping", "winter camping", "lakeside camping"]);
        let h = IntentHierarchy::build(&kg);
        let refs = h.refinements_of("camping");
        // "winter camping" was inserted earlier → higher support
        assert_eq!(refs[0].text, "winter camping");
    }

    #[test]
    fn empty_graph_empty_hierarchy() {
        let kg = KnowledgeGraph::new();
        let h = IntentHierarchy::build(&kg);
        assert!(h.is_empty());
        assert_eq!(h.depth(), 0);
    }

    #[test]
    fn build_over_snapshot_matches_store() {
        let kg = graph_with_intents(&[
            "camping",
            "winter camping",
            "lakeside camping",
            "cold winter camping",
            "hiking",
        ]);
        let snap = kg.freeze();
        let from_store = IntentHierarchy::build(&kg);
        let from_snap = IntentHierarchy::build(&snap);
        assert_eq!(from_store.len(), from_snap.len());
        assert_eq!(from_store.roots, from_snap.roots);
        for (a, b) in from_store.nodes.iter().zip(&from_snap.nodes) {
            assert_eq!(a.intent, b.intent);
            assert_eq!(a.text, b.text);
            assert_eq!(a.children, b.children);
            assert_eq!(a.parents, b.parents);
            assert_eq!(a.products, b.products);
            assert_eq!(a.support, b.support);
        }
    }

    #[test]
    fn find_scales_to_ten_thousand_intents() {
        // Regression test for the sorted-index lookup: 10k intents, every
        // one findable, refinements correct, unknown texts rejected —
        // exercising the binary search far beyond the toy fixtures.
        let mut tails: Vec<String> = Vec::new();
        for i in 0..5000 {
            tails.push(format!("activity{i}"));
            tails.push(format!("outdoor{i} activity{i}"));
        }
        let refs: Vec<&str> = tails.iter().map(|s| s.as_str()).collect();
        let kg = graph_with_intents(&refs);
        let h = IntentHierarchy::build(&kg);
        assert_eq!(h.len(), 10_000);
        for i in (0..5000).step_by(97) {
            let base = format!("activity{i}");
            let node = h.find(&base).expect("base intent must be found");
            assert_eq!(node.text, base);
            let fine = h.refinements_of(&base);
            assert_eq!(fine.len(), 1, "refinements of {base}");
            assert_eq!(fine[0].text, format!("outdoor{i} activity{i}"));
        }
        assert!(h.find("activity5000").is_none());
        assert!(h.find("").is_none());
        assert!(h.refinements_of("no such intent").is_empty());
    }
}
