//! Read-only graph abstraction shared by the mutable store and the frozen
//! snapshot.
//!
//! The serving tier (feature computation, navigation, hierarchy building)
//! only ever *reads* the graph, so it is written against [`GraphView`] and
//! works identically over the append-oriented [`KnowledgeGraph`] builder and
//! the read-optimised [`crate::snapshot::KgSnapshot`]. Both implementations
//! enumerate adjacency in the same content-determined order — out-edges by
//! (relation, tail), in-edges by (head, relation) — so every answer,
//! including float-ranked ones, is bitwise-identical across the two backends
//! (locked by the snapshot property tests).

use crate::schema::{NodeKind, Relation};
use crate::store::{Edge, KnowledgeGraph, NodeId};

/// Read-only queries over a knowledge graph with dense node ids `0..n`.
pub trait GraphView {
    /// Number of nodes (ids are dense: `0..num_nodes`).
    fn num_nodes(&self) -> usize;
    /// Number of (merged) edges.
    fn num_edges(&self) -> usize;
    /// Look up a node by kind and exact text.
    fn find_node(&self, kind: NodeKind, text: &str) -> Option<NodeId>;
    /// Kind of a node.
    fn node_kind(&self, id: NodeId) -> NodeKind;
    /// Surface text of a node.
    fn node_text(&self, id: NodeId) -> &str;
    /// Out-degree of a node.
    fn out_degree(&self, id: NodeId) -> usize;
    /// In-degree of a node.
    fn in_degree(&self, id: NodeId) -> usize;
    /// Outgoing edges of `head`, ordered by (relation, tail).
    fn tails_of(&self, head: NodeId) -> impl Iterator<Item = &Edge>;
    /// Outgoing edges of `head` restricted to one relation.
    fn tails_of_rel(&self, head: NodeId, relation: Relation) -> impl Iterator<Item = &Edge>;
    /// Incoming edges of `tail`, ordered by (head, relation).
    fn heads_of(&self, tail: NodeId) -> impl Iterator<Item = &Edge>;

    /// Top-`k` intention tails for `head` ranked by
    /// `typicality · ln(1 + support)` — the serving-time ranking.
    fn top_intents(&self, head: NodeId, k: usize) -> Vec<&Edge> {
        rank_intents(self.tails_of(head).collect(), k)
    }
}

/// Serving-time intent ranking: score descending with a total-order tiebreak
/// on (tail, relation) — `(head, relation, tail)` is unique, so for a fixed
/// head the result order is fully determined by edge content.
pub(crate) fn rank_intents(mut edges: Vec<&Edge>, k: usize) -> Vec<&Edge> {
    edges.sort_by(|a, b| {
        let sa = a.typicality * (1.0 + a.support as f32).ln();
        let sb = b.typicality * (1.0 + b.support as f32).ln();
        sb.total_cmp(&sa)
            .then(a.tail.cmp(&b.tail))
            .then(a.relation.index().cmp(&b.relation.index()))
    });
    edges.truncate(k);
    edges
}

impl GraphView for KnowledgeGraph {
    fn num_nodes(&self) -> usize {
        KnowledgeGraph::num_nodes(self)
    }

    fn num_edges(&self) -> usize {
        KnowledgeGraph::num_edges(self)
    }

    fn find_node(&self, kind: NodeKind, text: &str) -> Option<NodeId> {
        KnowledgeGraph::find_node(self, kind, text)
    }

    fn node_kind(&self, id: NodeId) -> NodeKind {
        self.node(id).kind
    }

    fn node_text(&self, id: NodeId) -> &str {
        &self.node(id).text
    }

    fn out_degree(&self, id: NodeId) -> usize {
        KnowledgeGraph::out_degree(self, id)
    }

    fn in_degree(&self, id: NodeId) -> usize {
        KnowledgeGraph::in_degree(self, id)
    }

    fn tails_of(&self, head: NodeId) -> impl Iterator<Item = &Edge> {
        KnowledgeGraph::tails_of(self, head)
    }

    fn tails_of_rel(&self, head: NodeId, relation: Relation) -> impl Iterator<Item = &Edge> {
        KnowledgeGraph::tails_of_rel(self, head, relation)
    }

    fn heads_of(&self, tail: NodeId) -> impl Iterator<Item = &Edge> {
        KnowledgeGraph::heads_of(self, tail)
    }

    fn top_intents(&self, head: NodeId, k: usize) -> Vec<&Edge> {
        KnowledgeGraph::top_intents(self, head, k)
    }
}

/// Shared-ownership views serve like their referent: the HTTP front end
/// and other long-lived services hold `Arc<KgSnapshot>` and want to pass
/// it straight to `GraphView`-generic consumers (navigation, feature
/// computation) without re-borrowing games.
impl<G: GraphView> GraphView for std::sync::Arc<G> {
    fn num_nodes(&self) -> usize {
        (**self).num_nodes()
    }

    fn num_edges(&self) -> usize {
        (**self).num_edges()
    }

    fn find_node(&self, kind: NodeKind, text: &str) -> Option<NodeId> {
        (**self).find_node(kind, text)
    }

    fn node_kind(&self, id: NodeId) -> NodeKind {
        (**self).node_kind(id)
    }

    fn node_text(&self, id: NodeId) -> &str {
        (**self).node_text(id)
    }

    fn out_degree(&self, id: NodeId) -> usize {
        (**self).out_degree(id)
    }

    fn in_degree(&self, id: NodeId) -> usize {
        (**self).in_degree(id)
    }

    fn tails_of(&self, head: NodeId) -> impl Iterator<Item = &Edge> {
        (**self).tails_of(head)
    }

    fn tails_of_rel(&self, head: NodeId, relation: Relation) -> impl Iterator<Item = &Edge> {
        (**self).tails_of_rel(head, relation)
    }

    fn heads_of(&self, tail: NodeId) -> impl Iterator<Item = &Edge> {
        (**self).heads_of(tail)
    }

    fn top_intents(&self, head: NodeId, k: usize) -> Vec<&Edge> {
        (**self).top_intents(head, k)
    }
}
