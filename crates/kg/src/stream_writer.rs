//! Streaming v2 snapshot writer: freeze a paper-magnitude graph to disk
//! without ever holding the merged edge list and the CSR arrays in memory
//! at the same time.
//!
//! [`KgSnapshot::freeze`](crate::snapshot::KgSnapshot::freeze) +
//! [`to_bytes_v2`](crate::snapshot::KgSnapshot::to_bytes_v2) need the whole
//! mutable store, the sorted edge vector, *and* the serialised buffer
//! resident at once — at COSMO scale (29M edges ≈ 800 MB of `Edge` plus the
//! store's per-edge index entries) that multiplies into many gigabytes. The
//! streaming pair in this module caps the resident set:
//!
//! * [`StreamInterner`] — node interning straight into the final arena
//!   layout (kinds + text offsets + one concatenated `String`), indexed by
//!   a `u64` key hash instead of owned `(kind, String)` keys.
//! * [`SnapshotStreamWriter`] — accepts edges in arrival order, buffers a
//!   bounded window, and spills each window to a temp file as a run sorted
//!   by the CSR key `(head, relation, tail)` (stable, so arrival order
//!   survives within equal keys). `finish` then k-way-merges the runs
//!   **twice**: pass 1 counts merged edges and per-node degrees (giving the
//!   exact section layout), pass 2 re-merges while the file is written
//!   strictly front to back through a checksumming writer. Duplicate keys
//!   are folded exactly like `KnowledgeGraph::add_edge` (first arrival kept,
//!   `support += max(s,1)`, score maxima), so the emitted file is
//!   **byte-identical** to `freeze().to_bytes_v2()` of a store fed the same
//!   intern/edge sequence — locked by the unit and property tests below.
//!
//! Peak memory is `O(buffer + n)` — the edge buffer window, the interner
//! arena, the two `(n+1)` offset arrays, the `m × u32` in-edge permutation
//! and the lookup records — but never the merged `m × Edge` vector, which
//! only ever exists on disk. The checksum is produced *while streaming* by
//! [`HashingWriter`], which replicates `FxHasher::write`'s 8-byte word
//! walk (and its tail rule) across arbitrarily chunked writes, so the
//! header checksum equals `hash_bytes(&file[64..])` without a second read.

use crate::schema::{NodeKind, Relation};
use crate::snapshot::{behavior_from_u8, behavior_to_u8, kind_to_u8, SnapshotError, MAGIC};
use crate::snapshot_v2::{
    align_up, section_lens, EDGE_SIZE, FIRST_SECTION_OFF, FORMAT_VERSION_V2, HEADER_LEN_V2,
    LOOKUP_SIZE, SECTION_COUNT, TABLE_OFF,
};
use crate::store::{Edge, NodeId};
use cosmo_text::hash::{hash_bytes, hash_bytes_ns, FxHasher};
use cosmo_text::FxHashMap;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fs::File;
use std::hash::Hasher;
use std::io::{BufReader, BufWriter, ErrorKind, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Tuning knobs for [`SnapshotStreamWriter`].
#[derive(Debug, Clone)]
pub struct StreamOptions {
    /// Edges buffered in memory before a sorted run is spilled to disk.
    /// The default (2M edges ≈ 56 MB) keeps paper-scale freezes well under
    /// a laptop budget; tests shrink it to force multi-run merges.
    pub buffer_edges: usize,
    /// Directory for spill runs; defaults to `std::env::temp_dir()`. The
    /// writer creates (and removes) a unique subdirectory underneath.
    pub spill_dir: Option<PathBuf>,
}

impl Default for StreamOptions {
    fn default() -> Self {
        StreamOptions {
            buffer_edges: 2_000_000,
            spill_dir: None,
        }
    }
}

/// What a finished streaming freeze produced.
#[derive(Debug, Clone)]
pub struct StreamStats {
    /// Interned nodes.
    pub nodes: usize,
    /// Merged (deduplicated) edges in the snapshot.
    pub edges: usize,
    /// Edges pushed before merging.
    pub raw_edges: u64,
    /// Sorted runs spilled to disk (the in-memory tail run is not counted).
    pub spill_runs: usize,
    /// Total bytes written to spill files.
    pub spilled_bytes: u64,
    /// Final snapshot file size in bytes.
    pub file_bytes: u64,
}

/// Monotonic tag so concurrent writers in one process never share a spill
/// directory.
static SPILL_SEQ: AtomicU64 = AtomicU64::new(0);

/// Node interning directly into the frozen arena layout.
///
/// Ids are assigned densely in first-intern order — feeding the same
/// `(kind, text)` sequence to this and to `KnowledgeGraph::intern_node`
/// yields identical ids, which is what keeps the streamed snapshot
/// byte-identical to the in-memory freeze. The index maps a 64-bit key
/// hash to the id; genuine hash collisions (vanishingly rare at u64 width,
/// but checked — never assumed away) fall back to a linear side list.
#[derive(Debug, Default)]
pub struct StreamInterner {
    kinds: Vec<NodeKind>,
    /// `n+1` arena byte offsets, exactly the frozen `text_offsets` section.
    text_offsets: Vec<u32>,
    arena: String,
    index: FxHashMap<u64, u32>,
    /// `(key hash, id)` pairs for nodes whose key hash collided with an
    /// earlier, different `(kind, text)`.
    collisions: Vec<(u64, u32)>,
}

impl StreamInterner {
    /// Empty interner.
    pub fn new() -> Self {
        StreamInterner {
            text_offsets: vec![0],
            ..StreamInterner::default()
        }
    }

    fn key_hash(kind: NodeKind, text: &str) -> u64 {
        hash_bytes_ns(text.as_bytes(), kind_to_u8(kind) as u32)
    }

    fn matches(&self, id: u32, kind: NodeKind, text: &str) -> bool {
        self.kinds[id as usize] == kind && self.node_text(id) == text
    }

    fn push_node(&mut self, kind: NodeKind, text: &str) -> u32 {
        // PANIC: u32 ids/offsets are the snapshot format's hard capacity;
        // overflowing them is unrepresentable on disk, so the writer stops
        // here rather than emitting a snapshot that cannot round-trip.
        let id = u32::try_from(self.kinds.len()).expect("node count exceeds u32 id space");
        self.kinds.push(kind);
        self.arena.push_str(text);
        // PANIC: same u32 format capacity as the id space above
        let end = u32::try_from(self.arena.len()).expect("arena exceeds u32 offset space");
        self.text_offsets.push(end);
        id
    }

    /// Intern a node, returning its id (idempotent per `(kind, text)`).
    pub fn intern(&mut self, kind: NodeKind, text: &str) -> NodeId {
        let key = Self::key_hash(kind, text);
        if let Some(&id) = self.index.get(&key) {
            if self.matches(id, kind, text) {
                return NodeId(id);
            }
            for &(h, cid) in &self.collisions {
                if h == key && self.matches(cid, kind, text) {
                    return NodeId(cid);
                }
            }
            let id = self.push_node(kind, text);
            self.collisions.push((key, id));
            return NodeId(id);
        }
        let id = self.push_node(kind, text);
        self.index.insert(key, id);
        NodeId(id)
    }

    /// Look up an already-interned node.
    pub fn find(&self, kind: NodeKind, text: &str) -> Option<NodeId> {
        let key = Self::key_hash(kind, text);
        if let Some(&id) = self.index.get(&key) {
            if self.matches(id, kind, text) {
                return Some(NodeId(id));
            }
            return self
                .collisions
                .iter()
                .find(|&&(h, cid)| h == key && self.matches(cid, kind, text))
                .map(|&(_, cid)| NodeId(cid));
        }
        None
    }

    /// Number of interned nodes.
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// Text of node `id`.
    pub fn node_text(&self, id: u32) -> &str {
        let s = self.text_offsets[id as usize] as usize;
        let e = self.text_offsets[id as usize + 1] as usize;
        &self.arena[s..e]
    }

    /// Kind of node `id`.
    pub fn node_kind(&self, id: u32) -> NodeKind {
        self.kinds[id as usize]
    }

    /// Arena length in bytes.
    pub fn arena_len(&self) -> usize {
        self.arena.len()
    }
}

/// CSR sort key of an edge — must match `KgSnapshot::freeze`'s sort.
#[inline]
fn edge_key(e: &Edge) -> (u32, u8, u32) {
    (e.head.0, e.relation.index() as u8, e.tail.0)
}

/// Stable sort by CSR key: arrival order survives within equal keys, which
/// is what gives the external merge `add_edge`'s first-arrival semantics.
fn sort_run(run: &mut [Edge]) {
    run.sort_by_key(edge_key);
}

fn encode_edge(e: &Edge) -> [u8; EDGE_SIZE] {
    let mut rec = [0u8; EDGE_SIZE];
    rec[0..4].copy_from_slice(&e.head.0.to_le_bytes());
    rec[4] = e.relation.index() as u8;
    rec[8..12].copy_from_slice(&e.tail.0.to_le_bytes());
    rec[12] = behavior_to_u8(e.behavior);
    rec[13] = e.category;
    rec[16..20].copy_from_slice(&e.plausibility.to_bits().to_le_bytes());
    rec[20..24].copy_from_slice(&e.typicality.to_bits().to_le_bytes());
    rec[24..28].copy_from_slice(&e.support.to_le_bytes());
    rec
}

/// Decode a spill record this process wrote; tags are still validated so a
/// torn or foreign file surfaces as `Corrupt`, not as a bad enum cast.
fn decode_edge(rec: &[u8; EDGE_SIZE]) -> Result<Edge, SnapshotError> {
    // Little-endian u32 at `at`; the record is a fixed-size array, so the
    // 4-byte slices below are statically in bounds.
    fn le32(rec: &[u8; EDGE_SIZE], at: usize) -> u32 {
        // PANIC: 4-byte slice of the fixed 28-byte spill record
        u32::from_le_bytes(rec[at..at + 4].try_into().unwrap())
    }
    let rel = *Relation::ALL
        .get(rec[4] as usize)
        .ok_or(SnapshotError::Corrupt("spill run: bad relation tag"))?;
    let behavior =
        behavior_from_u8(rec[12]).ok_or(SnapshotError::Corrupt("spill run: bad behavior tag"))?;
    Ok(Edge {
        head: NodeId(le32(rec, 0)),
        relation: rel,
        tail: NodeId(le32(rec, 8)),
        behavior,
        category: rec[13],
        plausibility: f32::from_bits(le32(rec, 16)),
        typicality: f32::from_bits(le32(rec, 20)),
        support: le32(rec, 24),
    })
}

/// One source feeding the k-way merge: a spilled run file or the in-memory
/// tail run.
enum RunCursor<'a> {
    Mem { edges: &'a [Edge], pos: usize },
    File { reader: BufReader<File> },
}

impl RunCursor<'_> {
    fn next_edge(&mut self) -> Result<Option<Edge>, SnapshotError> {
        match self {
            RunCursor::Mem { edges, pos } => {
                let e = edges.get(*pos).cloned();
                *pos += e.is_some() as usize;
                Ok(e)
            }
            RunCursor::File { reader } => {
                let mut rec = [0u8; EDGE_SIZE];
                match reader.read_exact(&mut rec) {
                    Ok(()) => decode_edge(&rec).map(Some),
                    Err(e) if e.kind() == ErrorKind::UnexpectedEof => Ok(None),
                    Err(e) => Err(e.into()),
                }
            }
        }
    }
}

/// K-way merge of sorted runs with `add_edge`-equivalent duplicate folding.
///
/// Ties on the CSR key pop lowest run index first; runs are in spill
/// (= arrival) order and each run is stable-sorted, so equal keys replay in
/// global arrival order: the first occurrence keeps its payload verbatim
/// and every later one folds in as `support += max(s,1)` + score maxima —
/// exactly what a sequential `KnowledgeGraph::add_edge` feed produces.
type HeapEntry = Reverse<((u32, u8, u32), usize)>;

fn merge_runs(
    cursors: &mut [RunCursor<'_>],
    mut emit: impl FnMut(Edge) -> Result<(), SnapshotError>,
) -> Result<(), SnapshotError> {
    let mut heads: Vec<Option<Edge>> = Vec::with_capacity(cursors.len());
    let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::new();
    for (i, c) in cursors.iter_mut().enumerate() {
        let head = c.next_edge()?;
        if let Some(e) = &head {
            heap.push(Reverse((edge_key(e), i)));
        }
        heads.push(head);
    }
    let mut pending: Option<Edge> = None;
    while let Some(Reverse((key, idx))) = heap.pop() {
        // PANIC: heads[idx] is refilled whenever its key is re-pushed
        let e = heads[idx].take().expect("heap entry has a buffered edge");
        if let Some(next) = cursors[idx].next_edge()? {
            heap.push(Reverse((edge_key(&next), idx)));
            heads[idx] = Some(next);
        }
        match &mut pending {
            Some(p) if edge_key(p) == key => {
                p.support += e.support.max(1);
                p.plausibility = p.plausibility.max(e.plausibility);
                p.typicality = p.typicality.max(e.typicality);
            }
            _ => {
                if let Some(done) = pending.take() {
                    emit(done)?;
                }
                pending = Some(e);
            }
        }
    }
    if let Some(done) = pending.take() {
        emit(done)?;
    }
    Ok(())
}

/// A `Write` wrapper that feeds every byte to an [`FxHasher`] in the exact
/// word walk `FxHasher::write` performs on a single contiguous slice: full
/// 8-byte little-endian words in stream order (an internal carry joins
/// words across write boundaries), with the `<8`-byte tail folded in under
/// the same length-tagged rule at [`finish_hash`](Self::finish_hash). The
/// resulting digest equals `hash_bytes` of the concatenated stream.
struct HashingWriter<W: Write> {
    inner: W,
    hasher: FxHasher,
    carry: [u8; 8],
    carry_len: usize,
    /// Bytes written through this wrapper (hashed or not).
    written: u64,
}

impl<W: Write> HashingWriter<W> {
    fn new(inner: W) -> Self {
        HashingWriter {
            inner,
            hasher: FxHasher::default(),
            carry: [0; 8],
            carry_len: 0,
            written: 0,
        }
    }

    /// Write without hashing — only for the header, which the checksum
    /// excludes.
    fn write_unhashed(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        self.inner.write_all(bytes)?;
        self.written += bytes.len() as u64;
        Ok(())
    }

    fn write(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        self.inner.write_all(bytes)?;
        self.written += bytes.len() as u64;
        self.feed(bytes);
        Ok(())
    }

    fn feed(&mut self, mut bytes: &[u8]) {
        if self.carry_len > 0 {
            let take = (8 - self.carry_len).min(bytes.len());
            self.carry[self.carry_len..self.carry_len + take].copy_from_slice(&bytes[..take]);
            self.carry_len += take;
            bytes = &bytes[take..];
            if self.carry_len < 8 {
                return;
            }
            self.hasher.write(&self.carry);
            self.carry_len = 0;
        }
        let full = bytes.len() & !7;
        let (words, rest) = bytes.split_at(full);
        if !words.is_empty() {
            // Exact multiple of 8: FxHasher::write takes only the word path.
            self.hasher.write(words);
        }
        self.carry[..rest.len()].copy_from_slice(rest);
        self.carry_len = rest.len();
    }

    /// Zero-fill up to absolute stream offset `target` (section padding).
    fn pad_to(&mut self, target: u64) -> Result<(), SnapshotError> {
        debug_assert!(target >= self.written && target - self.written < 64);
        let zeros = [0u8; 64];
        let pad = (target - self.written) as usize;
        if pad > 0 {
            self.write(&zeros[..pad])?;
        }
        Ok(())
    }

    /// Fold the tail carry exactly as `FxHasher::write` folds a `<8`-byte
    /// remainder, and return the digest.
    fn finish_hash(&mut self) -> u64 {
        if self.carry_len > 0 {
            let mut buf = [0u8; 8];
            buf[..self.carry_len].copy_from_slice(&self.carry[..self.carry_len]);
            buf[7] = self.carry_len as u8;
            self.hasher.write(&buf);
            self.carry_len = 0;
        }
        self.hasher.finish()
    }
}

/// Streaming writer for the v2 snapshot format. See the module docs for the
/// spill/merge layout and the byte-identity contract.
pub struct SnapshotStreamWriter {
    buffer_edges: usize,
    spill_dir: PathBuf,
    spill_dir_created: bool,
    buffer: Vec<Edge>,
    runs: Vec<PathBuf>,
    raw_edges: u64,
    spilled_bytes: u64,
}

impl SnapshotStreamWriter {
    /// New writer with the given options.
    pub fn new(opts: StreamOptions) -> SnapshotStreamWriter {
        let base = opts
            .spill_dir
            .unwrap_or_else(std::env::temp_dir)
            .join(format!(
                "cosmo-stream-{}-{}",
                std::process::id(),
                SPILL_SEQ.fetch_add(1, Ordering::Relaxed)
            ));
        SnapshotStreamWriter {
            buffer_edges: opts.buffer_edges.max(1),
            spill_dir: base,
            spill_dir_created: false,
            buffer: Vec::new(),
            runs: Vec::new(),
            raw_edges: 0,
            spilled_bytes: 0,
        }
    }

    /// Add one edge (node ids from the companion [`StreamInterner`]).
    /// Arrival order is observable only through duplicate folding, which
    /// mirrors `KnowledgeGraph::add_edge`.
    pub fn push(&mut self, edge: Edge) -> Result<(), SnapshotError> {
        self.buffer.push(edge);
        self.raw_edges += 1;
        if self.buffer.len() >= self.buffer_edges {
            self.spill()?;
        }
        Ok(())
    }

    /// Edges pushed so far (before duplicate folding).
    pub fn raw_edges(&self) -> u64 {
        self.raw_edges
    }

    fn spill(&mut self) -> Result<(), SnapshotError> {
        if !self.spill_dir_created {
            std::fs::create_dir_all(&self.spill_dir)?;
            self.spill_dir_created = true;
        }
        sort_run(&mut self.buffer);
        let path = self
            .spill_dir
            .join(format!("run-{:05}.edges", self.runs.len()));
        let mut w = BufWriter::new(File::create(&path)?);
        for e in &self.buffer {
            w.write_all(&encode_edge(e))?;
        }
        w.flush()?;
        self.spilled_bytes += (self.buffer.len() * EDGE_SIZE) as u64;
        self.runs.push(path);
        self.buffer.clear();
        Ok(())
    }

    fn cursors(&self) -> Result<Vec<RunCursor<'_>>, SnapshotError> {
        let mut cursors = Vec::with_capacity(self.runs.len() + 1);
        for path in &self.runs {
            cursors.push(RunCursor::File {
                reader: BufReader::with_capacity(1 << 20, File::open(path)?),
            });
        }
        // The in-memory tail run holds the latest arrivals, so it merges
        // after every spilled run on key ties.
        cursors.push(RunCursor::Mem {
            edges: &self.buffer,
            pos: 0,
        });
        Ok(cursors)
    }

    /// Merge the runs and write the finished v2 snapshot to `path`,
    /// byte-identical to `freeze().to_bytes_v2()` over the same sequence.
    pub fn finish(
        mut self,
        nodes: &StreamInterner,
        path: &Path,
    ) -> Result<StreamStats, SnapshotError> {
        let n = nodes.len();
        sort_run(&mut self.buffer);

        // Pass 1: merged edge count and per-node degrees → exact layout.
        let mut out_offsets = vec![0u32; n + 1];
        let mut in_offsets = vec![0u32; n + 1];
        let mut merged: u64 = 0;
        {
            let mut cursors = self.cursors()?;
            merge_runs(&mut cursors, |e| {
                let (h, t) = (e.head.0 as usize, e.tail.0 as usize);
                if h >= n || t >= n {
                    return Err(SnapshotError::Corrupt("stream edge endpoint out of range"));
                }
                if merged >= u32::MAX as u64 {
                    return Err(SnapshotError::Corrupt("counts exceed u32 id space"));
                }
                out_offsets[h + 1] += 1;
                in_offsets[t + 1] += 1;
                merged += 1;
                Ok(())
            })?;
        }
        let m = merged as usize;
        for i in 1..=n {
            out_offsets[i] += out_offsets[i - 1];
            in_offsets[i] += in_offsets[i - 1];
        }

        // Layout, exactly as `to_bytes_v2` computes it.
        let lens = section_lens(n, m, nodes.arena.len())?;
        let mut offsets = [0usize; SECTION_COUNT];
        let mut cursor = FIRST_SECTION_OFF;
        for (off, len) in offsets.iter_mut().zip(lens) {
            *off = cursor;
            cursor = align_up(cursor + len)
                .ok_or(SnapshotError::Corrupt("section sizes overflow layout"))?;
        }
        let total_len = offsets[SECTION_COUNT - 1] + lens[SECTION_COUNT - 1];

        let mut lookup: Vec<(u8, u64, u32)> = (0..n)
            .map(|i| {
                let s = nodes.text_offsets[i] as usize;
                let e = nodes.text_offsets[i + 1] as usize;
                (
                    kind_to_u8(nodes.kinds[i]),
                    hash_bytes(&nodes.arena.as_bytes()[s..e]),
                    i as u32,
                )
            })
            .collect();
        lookup.sort_unstable();

        let file = File::create(path)?;
        let mut w = HashingWriter::new(BufWriter::with_capacity(1 << 20, file));

        // Header — excluded from the checksum, which is patched in last.
        let mut header = [0u8; HEADER_LEN_V2];
        header[..8].copy_from_slice(&MAGIC);
        header[8..12].copy_from_slice(&FORMAT_VERSION_V2.to_le_bytes());
        header[16..24].copy_from_slice(&(n as u64).to_le_bytes());
        header[24..32].copy_from_slice(&(m as u64).to_le_bytes());
        header[32..40].copy_from_slice(&(nodes.arena.len() as u64).to_le_bytes());
        header[48..56].copy_from_slice(&(total_len as u64).to_le_bytes());
        w.write_unhashed(&header)?;

        let mut table = [0u8; SECTION_COUNT * 16];
        for i in 0..SECTION_COUNT {
            table[i * 16..i * 16 + 8].copy_from_slice(&(offsets[i] as u64).to_le_bytes());
            table[i * 16 + 8..i * 16 + 16].copy_from_slice(&(lens[i] as u64).to_le_bytes());
        }
        debug_assert_eq!(TABLE_OFF as u64, w.written);
        w.write(&table)?;

        // Section 0: kinds, chunked through a small scratch buffer.
        let mut scratch = [0u8; 4096];
        for chunk in nodes.kinds.chunks(scratch.len()) {
            for (d, &k) in scratch.iter_mut().zip(chunk) {
                *d = kind_to_u8(k);
            }
            w.write(&scratch[..chunk.len()])?;
        }
        w.pad_to(offsets[1] as u64)?;

        // Section 1: text offsets. Section 2: arena.
        write_u32s_chunked(&mut w, &nodes.text_offsets)?;
        w.pad_to(offsets[2] as u64)?;
        w.write(nodes.arena.as_bytes())?;
        w.pad_to(offsets[3] as u64)?;

        // Section 3: edges — pass 2 re-merges the runs, writing each merged
        // record straight to the file while the in-edge permutation (the
        // only m-sized array this pass materialises) fills via the cursor
        // counting sort `freeze` uses.
        let mut in_edges = vec![0u32; m];
        let mut in_cursor = in_offsets.clone();
        let mut next_index: u64 = 0;
        {
            let mut cursors = self.cursors()?;
            merge_runs(&mut cursors, |e| {
                if next_index >= merged {
                    return Err(SnapshotError::Corrupt("spill runs changed between passes"));
                }
                w.write(&encode_edge(&e))?;
                let c = &mut in_cursor[e.tail.0 as usize];
                in_edges[*c as usize] = next_index as u32;
                *c += 1;
                next_index += 1;
                Ok(())
            })?;
        }
        if next_index != merged {
            return Err(SnapshotError::Corrupt("spill runs changed between passes"));
        }
        w.pad_to(offsets[4] as u64)?;

        // Sections 4–7: offset arrays, in-edges, lookup records.
        write_u32s_chunked(&mut w, &out_offsets)?;
        w.pad_to(offsets[5] as u64)?;
        write_u32s_chunked(&mut w, &in_offsets)?;
        w.pad_to(offsets[6] as u64)?;
        write_u32s_chunked(&mut w, &in_edges)?;
        w.pad_to(offsets[7] as u64)?;
        for &(k, h, id) in &lookup {
            let mut rec = [0u8; LOOKUP_SIZE];
            rec[..8].copy_from_slice(&h.to_le_bytes());
            rec[8..12].copy_from_slice(&id.to_le_bytes());
            rec[12] = k;
            w.write(&rec)?;
        }

        if w.written != total_len as u64 {
            return Err(SnapshotError::Corrupt("streamed section sizes drifted"));
        }
        let checksum = w.finish_hash();
        let mut file = w
            .inner
            .into_inner()
            .map_err(|e| SnapshotError::Io(e.into_error()))?;
        file.seek(SeekFrom::Start(40))?;
        file.write_all(&checksum.to_le_bytes())?;
        file.sync_all()?;

        Ok(StreamStats {
            nodes: n,
            edges: m,
            raw_edges: self.raw_edges,
            spill_runs: self.runs.len(),
            spilled_bytes: self.spilled_bytes,
            file_bytes: total_len as u64,
        })
    }
}

impl Drop for SnapshotStreamWriter {
    fn drop(&mut self) {
        // Best-effort spill cleanup; the files are in a writer-unique dir.
        if self.spill_dir_created {
            let _ = std::fs::remove_dir_all(&self.spill_dir);
        }
    }
}

fn write_u32s_chunked<W: Write>(
    w: &mut HashingWriter<W>,
    values: &[u32],
) -> Result<(), SnapshotError> {
    let mut scratch = [0u8; 4096];
    for chunk in values.chunks(scratch.len() / 4) {
        for (i, v) in chunk.iter().enumerate() {
            scratch[i * 4..i * 4 + 4].copy_from_slice(&v.to_le_bytes());
        }
        w.write(&scratch[..chunk.len() * 4])?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::BehaviorKind;
    use crate::snapshot_v2::{MappedSnapshot, Verify};
    use crate::store::KnowledgeGraph;
    use proptest::prelude::*;

    /// One intern-and-edge op replayed identically into the store and the
    /// streaming pair.
    #[derive(Debug, Clone)]
    struct Op {
        head_kind: NodeKind,
        head: String,
        relation: Relation,
        tail: String,
        plausibility: f32,
        typicality: f32,
        support: u32,
        category: u8,
    }

    fn unique_out_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "cosmo-streamed-{}-{}-{}.kg2",
            tag,
            std::process::id(),
            SPILL_SEQ.fetch_add(1, Ordering::Relaxed)
        ))
    }

    /// Feed `ops` to both freeze paths and assert byte identity.
    fn assert_byte_identical(tag: &str, ops: &[Op], buffer_edges: usize) {
        let mut kg = KnowledgeGraph::new();
        let mut interner = StreamInterner::new();
        let mut writer = SnapshotStreamWriter::new(StreamOptions {
            buffer_edges,
            spill_dir: None,
        });
        for op in ops {
            let h = kg.intern_node(op.head_kind, &op.head);
            let hs = interner.intern(op.head_kind, &op.head);
            assert_eq!(h, hs, "intern id drift on head {:?}", op.head);
            let t = kg.intern_node(NodeKind::Intention, &op.tail);
            let ts = interner.intern(NodeKind::Intention, &op.tail);
            assert_eq!(t, ts, "intern id drift on tail {:?}", op.tail);
            let edge = Edge {
                head: h,
                relation: op.relation,
                tail: t,
                behavior: BehaviorKind::SearchBuy,
                category: op.category,
                plausibility: op.plausibility,
                typicality: op.typicality,
                support: op.support,
            };
            kg.add_edge(edge.clone());
            writer.push(edge).unwrap();
        }
        let out = unique_out_path(tag);
        let stats = writer.finish(&interner, &out).unwrap();
        let streamed = std::fs::read(&out).unwrap();
        let _ = std::fs::remove_file(&out);
        let expect = kg.freeze().to_bytes_v2();
        assert_eq!(stats.edges, kg.num_edges());
        assert_eq!(stats.nodes, kg.num_nodes());
        assert_eq!(stats.file_bytes as usize, expect.len());
        if streamed != expect {
            let at = streamed
                .iter()
                .zip(&expect)
                .position(|(a, b)| a != b)
                .unwrap_or(streamed.len().min(expect.len()));
            panic!(
                "streamed snapshot differs from to_bytes_v2: lens {} vs {}, first diff at byte {}",
                streamed.len(),
                expect.len(),
                at
            );
        }
        // And the streamed file must hold up under the strictest decoder.
        MappedSnapshot::from_bytes(streamed, Verify::Full).unwrap();
    }

    fn op(head_kind: NodeKind, head: &str, rel: usize, tail: &str, p: f32, ty: f32) -> Op {
        Op {
            head_kind,
            head: head.to_string(),
            relation: Relation::ALL[rel % Relation::ALL.len()],
            tail: tail.to_string(),
            plausibility: p,
            typicality: ty,
            support: 1,
            category: (rel % 18) as u8,
        }
    }

    #[test]
    fn empty_graph_byte_identical() {
        assert_byte_identical("empty", &[], 4);
    }

    #[test]
    fn nodes_without_edges_byte_identical() {
        // Interned nodes but zero pushed edges: n > 0, m = 0.
        let mut kg = KnowledgeGraph::new();
        let mut interner = StreamInterner::new();
        for (k, t) in [
            (NodeKind::Query, "tent"),
            (NodeKind::Product, "tent"),
            (NodeKind::Intention, "camping trip"),
        ] {
            assert_eq!(kg.intern_node(k, t), interner.intern(k, t));
        }
        let out = unique_out_path("no-edges");
        let writer = SnapshotStreamWriter::new(StreamOptions {
            buffer_edges: 4,
            spill_dir: None,
        });
        let stats = writer.finish(&interner, &out).unwrap();
        let streamed = std::fs::read(&out).unwrap();
        let _ = std::fs::remove_file(&out);
        assert_eq!(stats.edges, 0);
        assert_eq!(streamed, kg.freeze().to_bytes_v2());
    }

    #[test]
    fn small_graph_no_spill_byte_identical() {
        let ops = vec![
            op(
                NodeKind::Query,
                "camping tent",
                2,
                "sleeping outdoors",
                0.9,
                0.7,
            ),
            op(
                NodeKind::Product,
                "air mattress",
                2,
                "sleeping outdoors",
                0.8,
                0.6,
            ),
            op(
                NodeKind::Query,
                "camping tent",
                5,
                "lakeside trip",
                0.7,
                0.4,
            ),
            op(NodeKind::Query, "rain jacket", 1, "staying dry", 0.95, 0.9),
        ];
        assert_byte_identical("no-spill", &ops, 1 << 20);
    }

    #[test]
    fn spilled_runs_byte_identical() {
        // Tiny buffer forces many runs; tails shared across heads exercise
        // the in-edge counting sort, and out-of-order heads the merge.
        let mut ops = Vec::new();
        for i in 0..97u32 {
            let h = (i * 37) % 23;
            ops.push(op(
                if h % 2 == 0 {
                    NodeKind::Query
                } else {
                    NodeKind::Product
                },
                &format!("head {h}"),
                (i % 7) as usize,
                &format!("intent {}", (i * 13) % 11),
                0.5 + (i % 5) as f32 * 0.1,
                (i % 10) as f32 * 0.1,
            ));
        }
        assert_byte_identical("spill", &ops, 8);
    }

    #[test]
    fn duplicate_merge_across_runs_byte_identical() {
        // The same (head, rel, tail) key recurs in different spill runs
        // with different scores/support: folding must replay arrival order.
        let mut ops = Vec::new();
        for round in 0..6u32 {
            for (i, p) in [(0u32, 0.3f32), (1, 0.9), (2, 0.5)] {
                let mut o = op(
                    NodeKind::Query,
                    &format!("head {i}"),
                    3,
                    "shared intent",
                    p + round as f32 * 0.05,
                    0.1 * round as f32,
                );
                o.support = 1 + (round + i) % 3;
                ops.push(o);
            }
        }
        assert_byte_identical("dups", &ops, 4);
    }

    #[test]
    fn multibyte_text_byte_identical() {
        let ops = vec![
            op(
                NodeKind::Query,
                "zelt für camping",
                0,
                "übernachtung draußen",
                0.8,
                0.5,
            ),
            op(NodeKind::Product, "帐篷", 4, "野营之旅", 0.9, 0.6),
        ];
        assert_byte_identical("utf8", &ops, 1);
    }

    #[test]
    fn hashing_writer_matches_one_shot_hash() {
        // Chunk the same payload through the writer in awkward sizes; the
        // digest must equal hash_bytes of the whole slice.
        let payload: Vec<u8> = (0..1013u32).map(|i| (i * 131 + 7) as u8).collect();
        for chunks in [&[1usize, 7, 8, 3, 64, 930][..], &[1013], &[512, 501]] {
            let mut w = HashingWriter::new(Vec::new());
            let mut at = 0;
            for &c in chunks {
                w.write(&payload[at..at + c]).unwrap();
                at += c;
            }
            assert_eq!(at, payload.len());
            assert_eq!(w.finish_hash(), hash_bytes(&payload), "chunks {chunks:?}");
            assert_eq!(w.inner, payload);
        }
    }

    #[test]
    fn interner_matches_store_on_collision_probe() {
        // Dense short strings sweep the index paths (including repeated
        // interning); ids must track KnowledgeGraph::intern_node exactly.
        let mut kg = KnowledgeGraph::new();
        let mut interner = StreamInterner::new();
        for i in 0..500u32 {
            let text = format!("t{}", i % 170);
            let kind = match i % 3 {
                0 => NodeKind::Product,
                1 => NodeKind::Query,
                _ => NodeKind::Intention,
            };
            assert_eq!(kg.intern_node(kind, &text), interner.intern(kind, &text));
            assert_eq!(
                interner.find(kind, &text),
                Some(kg.find_node(kind, &text).unwrap())
            );
        }
        assert_eq!(interner.len(), kg.num_nodes());
        assert!(interner.find(NodeKind::Query, "never interned").is_none());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn random_graphs_byte_identical(
            raw in proptest::collection::vec(
                ((0u8..3, 0u8..6, 0usize..15), (0u8..8, 0u32..1000, 0u32..1000, 1u32..3)),
                0..60,
            ),
            buffer_choice in 0usize..3,
        ) {
            let buffer = [2usize, 7, 1024][buffer_choice];
            let ops: Vec<Op> = raw
                .into_iter()
                .map(|((hk, hid, rel), (tid, p, ty, support))| {
                    let mut o = op(
                        match hk { 0 => NodeKind::Product, 1 => NodeKind::Query, _ => NodeKind::Intention },
                        &format!("h{hid}"),
                        rel,
                        &format!("t{tid}"),
                        p as f32 / 1000.0,
                        ty as f32 / 1000.0,
                    );
                    o.support = support;
                    o
                })
                .collect();
            assert_byte_identical("prop", &ops, buffer);
        }
    }
}
