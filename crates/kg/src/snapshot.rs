//! Frozen, read-optimised knowledge-graph snapshot.
//!
//! The paper's online system (Figure 5) serves a 6.3M-node / 29M-edge graph
//! that is materialised *offline* and only ever read at serving time. This
//! module adopts the same split: [`KgSnapshot::freeze`] turns the
//! append-oriented [`KnowledgeGraph`] builder into a compact immutable
//! layout —
//!
//! * **CSR adjacency**: all edges sorted by `(head, relation, tail)` in one
//!   contiguous array, with a prefix-offset `u32` array per node. `tails_of`
//!   is a contiguous slice; `tails_of_rel` binary-searches the relation run
//!   inside it. The in-direction is a second offset array over edge indices
//!   sorted by `(tail, edge index)`.
//! * **Text arena**: all node text in one `String` plus an `n+1` offset
//!   table, replacing one heap allocation per node.
//! * **Sorted lookup index**: `(kind, text hash, id)` records sorted for
//!   binary-searched `find_node` without a hashmap.
//!
//! The layout round-trips through a versioned little-endian binary format
//! ([`KgSnapshot::save`] / [`KgSnapshot::load`]) with header magic, counts
//! and an FxHash checksum, so serving starts from a file without
//! re-interning. Adjacency order matches the mutable store's sorted
//! adjacency exactly, making every read answer bitwise-identical across the
//! two backends.

use crate::schema::{BehaviorKind, NodeKind, Relation};
use crate::store::{Edge, KnowledgeGraph, NodeId};
use crate::view::GraphView;
use cosmo_text::hash::hash_bytes;
use std::path::Path;

/// File magic: "COSMOKG" + NUL.
pub const MAGIC: [u8; 8] = *b"COSMOKG\0";
/// Current format version.
pub const FORMAT_VERSION: u32 = 1;
/// Header size in bytes: magic + version + node/edge counts + arena length
/// + payload checksum.
pub const HEADER_LEN: usize = 8 + 4 + 4 + 4 + 8 + 8;

const EDGE_RECORD_LEN: usize = 4 + 4 + 1 + 1 + 1 + 4 + 4 + 4;
const LOOKUP_RECORD_LEN: usize = 1 + 8 + 4;

/// Errors from snapshot (de)serialisation.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying file I/O failed.
    Io(std::io::Error),
    /// The buffer does not start with [`MAGIC`].
    BadMagic,
    /// The format version is not [`FORMAT_VERSION`].
    UnsupportedVersion(u32),
    /// The payload checksum does not match the header.
    ChecksumMismatch,
    /// Structural validation failed (truncation, bad enum tag, unsorted
    /// arrays, inconsistent offsets, non-UTF-8 arena, …).
    Corrupt(&'static str),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot io error: {e}"),
            SnapshotError::BadMagic => write!(f, "not a COSMO KG snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported snapshot version {v} (expected {FORMAT_VERSION})"
                )
            }
            SnapshotError::ChecksumMismatch => write!(f, "snapshot payload checksum mismatch"),
            SnapshotError::Corrupt(what) => write!(f, "corrupt snapshot: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

pub(crate) fn kind_to_u8(k: NodeKind) -> u8 {
    match k {
        NodeKind::Product => 0,
        NodeKind::Query => 1,
        NodeKind::Intention => 2,
    }
}

pub(crate) fn kind_from_u8(b: u8) -> Option<NodeKind> {
    match b {
        0 => Some(NodeKind::Product),
        1 => Some(NodeKind::Query),
        2 => Some(NodeKind::Intention),
        _ => None,
    }
}

pub(crate) fn behavior_to_u8(b: BehaviorKind) -> u8 {
    match b {
        BehaviorKind::SearchBuy => 0,
        BehaviorKind::CoBuy => 1,
    }
}

pub(crate) fn behavior_from_u8(b: u8) -> Option<BehaviorKind> {
    match b {
        0 => Some(BehaviorKind::SearchBuy),
        1 => Some(BehaviorKind::CoBuy),
        _ => None,
    }
}

/// A frozen knowledge graph in CSR layout. See the module docs.
///
/// Fields are `pub(crate)` so the v2 encoder/decoder
/// ([`crate::snapshot_v2`]) can stream them without copies.
#[derive(Debug, Clone, PartialEq)]
pub struct KgSnapshot {
    /// Kind of node `i`.
    pub(crate) kinds: Vec<NodeKind>,
    /// `n+1` byte offsets into `arena`; node `i`'s text is
    /// `arena[text_offsets[i]..text_offsets[i+1]]`.
    pub(crate) text_offsets: Vec<u32>,
    /// All node text, concatenated.
    pub(crate) arena: String,
    /// All edges, sorted by `(head, relation, tail)`.
    pub(crate) edges: Vec<Edge>,
    /// `n+1` prefix offsets into `edges`: out-edges of node `i` are
    /// `edges[out_offsets[i]..out_offsets[i+1]]`.
    pub(crate) out_offsets: Vec<u32>,
    /// `n+1` prefix offsets into `in_edges`.
    pub(crate) in_offsets: Vec<u32>,
    /// Edge indices sorted by `(tail, edge index)` — i.e. for each tail, by
    /// `(head, relation)`.
    pub(crate) in_edges: Vec<u32>,
    /// `(kind, text hash, id)` sorted ascending; binary-searched by
    /// `find_node` with text verification on hash hits.
    pub(crate) lookup: Vec<(u8, u64, u32)>,
}

impl KgSnapshot {
    /// Freeze a built graph into the read-optimised layout.
    pub fn freeze(kg: &KnowledgeGraph) -> KgSnapshot {
        let n = kg.num_nodes();
        let m = kg.num_edges();

        let mut kinds = Vec::with_capacity(n);
        let mut text_offsets = Vec::with_capacity(n + 1);
        let mut arena = String::new();
        text_offsets.push(0);
        for (_, node) in kg.nodes() {
            kinds.push(node.kind);
            arena.push_str(&node.text);
            text_offsets.push(arena.len() as u32);
        }

        let mut edges: Vec<Edge> = kg.edges().map(|(_, e)| e.clone()).collect();
        edges.sort_unstable_by_key(|e| (e.head, e.relation.index(), e.tail));

        let out_offsets = prefix_offsets(n, edges.iter().map(|e| e.head.0));

        // Counting-sort edge indices by tail: stable in edge index, giving
        // the (tail, index) order that matches the store's in-adjacency.
        let mut in_offsets = prefix_offsets(n, edges.iter().map(|e| e.tail.0));
        let mut cursor: Vec<u32> = in_offsets.clone();
        let mut in_edges = vec![0u32; m];
        for (i, e) in edges.iter().enumerate() {
            let c = &mut cursor[e.tail.0 as usize];
            in_edges[*c as usize] = i as u32;
            *c += 1;
        }
        debug_assert_eq!(cursor[..n.saturating_sub(1)], in_offsets[1..n.max(1)]);

        let mut lookup: Vec<(u8, u64, u32)> = (0..n)
            .map(|i| {
                let s = text_offsets[i] as usize;
                let e = text_offsets[i + 1] as usize;
                (
                    kind_to_u8(kinds[i]),
                    hash_bytes(&arena.as_bytes()[s..e]),
                    i as u32,
                )
            })
            .collect();
        lookup.sort_unstable();

        in_offsets.shrink_to_fit();
        KgSnapshot {
            kinds,
            text_offsets,
            arena,
            edges,
            out_offsets,
            in_offsets,
            in_edges,
            lookup,
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.kinds.len()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Number of distinct relation types present.
    pub fn num_relations(&self) -> usize {
        let mut seen = [false; Relation::ALL.len()];
        for e in &self.edges {
            seen[e.relation.index()] = true;
        }
        seen.iter().filter(|&&b| b).count()
    }

    /// All edges, sorted by `(head, relation, tail)`.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Kind of a node.
    pub fn node_kind(&self, id: NodeId) -> NodeKind {
        self.kinds[id.0 as usize]
    }

    /// Text of a node (borrowed from the arena).
    pub fn node_text(&self, id: NodeId) -> &str {
        let s = self.text_offsets[id.0 as usize] as usize;
        let e = self.text_offsets[id.0 as usize + 1] as usize;
        &self.arena[s..e]
    }

    /// Binary-searched node lookup; hash collisions are resolved by
    /// comparing the actual text.
    pub fn find_node(&self, kind: NodeKind, text: &str) -> Option<NodeId> {
        let key = (kind_to_u8(kind), hash_bytes(text.as_bytes()));
        let start = self.lookup.partition_point(|&(k, h, _)| (k, h) < key);
        self.lookup[start..]
            .iter()
            .take_while(|&&(k, h, _)| (k, h) == key)
            .map(|&(_, _, id)| NodeId(id))
            .find(|&id| self.node_text(id) == text)
    }

    /// Out-edges of `head` as one contiguous slice, sorted by
    /// `(relation, tail)`.
    pub fn out_slice(&self, head: NodeId) -> &[Edge] {
        let s = self.out_offsets[head.0 as usize] as usize;
        let e = self.out_offsets[head.0 as usize + 1] as usize;
        &self.edges[s..e]
    }

    /// Out-edges of `head` restricted to `relation`, as a contiguous slice
    /// found by binary-searching the relation run inside [`Self::out_slice`].
    pub fn tails_of_rel_slice(&self, head: NodeId, relation: Relation) -> &[Edge] {
        let out = self.out_slice(head);
        let r = relation.index();
        let lo = out.partition_point(|e| e.relation.index() < r);
        let hi = lo + out[lo..].partition_point(|e| e.relation.index() == r);
        &out[lo..hi]
    }

    /// Indices (into [`Self::edges`]) of the in-edges of `tail`.
    pub fn in_slice(&self, tail: NodeId) -> &[u32] {
        let s = self.in_offsets[tail.0 as usize] as usize;
        let e = self.in_offsets[tail.0 as usize + 1] as usize;
        &self.in_edges[s..e]
    }

    /// Total bytes of node text in the arena.
    pub fn arena_len(&self) -> usize {
        self.arena.len()
    }

    // ---- binary serialisation -------------------------------------------

    /// Serialise to the versioned little-endian binary format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let n = self.num_nodes();
        let m = self.num_edges();
        let payload_len = n
            + 4 * (n + 1)
            + self.arena.len()
            + EDGE_RECORD_LEN * m
            + 4 * (n + 1)
            + 4 * (n + 1)
            + 4 * m
            + LOOKUP_RECORD_LEN * n;
        let mut payload = Vec::with_capacity(payload_len);
        payload.extend(self.kinds.iter().map(|&k| kind_to_u8(k)));
        for &off in &self.text_offsets {
            payload.extend_from_slice(&off.to_le_bytes());
        }
        payload.extend_from_slice(self.arena.as_bytes());
        for e in &self.edges {
            payload.extend_from_slice(&e.head.0.to_le_bytes());
            payload.extend_from_slice(&e.tail.0.to_le_bytes());
            payload.push(e.relation.index() as u8);
            payload.push(behavior_to_u8(e.behavior));
            payload.push(e.category);
            payload.extend_from_slice(&e.plausibility.to_bits().to_le_bytes());
            payload.extend_from_slice(&e.typicality.to_bits().to_le_bytes());
            payload.extend_from_slice(&e.support.to_le_bytes());
        }
        for &off in &self.out_offsets {
            payload.extend_from_slice(&off.to_le_bytes());
        }
        for &off in &self.in_offsets {
            payload.extend_from_slice(&off.to_le_bytes());
        }
        for &idx in &self.in_edges {
            payload.extend_from_slice(&idx.to_le_bytes());
        }
        for &(k, h, id) in &self.lookup {
            payload.push(k);
            payload.extend_from_slice(&h.to_le_bytes());
            payload.extend_from_slice(&id.to_le_bytes());
        }
        debug_assert_eq!(payload.len(), payload_len);

        let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&(n as u32).to_le_bytes());
        out.extend_from_slice(&(m as u32).to_le_bytes());
        out.extend_from_slice(&(self.arena.len() as u64).to_le_bytes());
        out.extend_from_slice(&hash_bytes(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Deserialise from [`Self::to_bytes`] output, validating magic,
    /// version, checksum and structural invariants.
    ///
    /// Buffers in the v2 format ([`crate::snapshot_v2`]) are accepted and
    /// decoded into an owned snapshot — the inverse of the v1→v2
    /// migration `load` performs, so both entry points read both formats.
    pub fn from_bytes(buf: &[u8]) -> Result<KgSnapshot, SnapshotError> {
        if buf.len() < HEADER_LEN {
            return Err(SnapshotError::Corrupt("buffer shorter than header"));
        }
        if buf[..8] != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        // PANIC: 4-byte slice after the HEADER_LEN guard
        let version = u32::from_le_bytes(buf[8..12].try_into().unwrap());
        if version == crate::snapshot_v2::FORMAT_VERSION_V2 {
            let mapped = crate::snapshot_v2::MappedSnapshot::from_bytes(
                buf.to_vec(),
                crate::snapshot_v2::Verify::Full,
            )?;
            return Ok(mapped.to_owned_snapshot());
        }
        if version != FORMAT_VERSION {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        let n = u32::from_le_bytes(buf[12..16].try_into().unwrap()) as usize; // PANIC: 4 bytes
        let m = u32::from_le_bytes(buf[16..20].try_into().unwrap()) as usize; // PANIC: 4 bytes
        let arena_words = u64::from_le_bytes(buf[20..28].try_into().unwrap()); // PANIC: 8 bytes
        let arena_len = usize::try_from(arena_words)
            .map_err(|_| SnapshotError::Corrupt("arena length overflows usize"))?;
        let checksum = u64::from_le_bytes(buf[28..36].try_into().unwrap()); // PANIC: 8 bytes

        // The header fields are untrusted: the expected payload length is
        // computed with checked arithmetic so a crafted header (e.g.
        // `arena_len` near `u64::MAX`) is a clean Corrupt, not an
        // overflow panic (debug) or a wrapped bogus length (release).
        let per_node = n
            .checked_add(1)
            .and_then(|n1| n1.checked_mul(4))
            .and_then(|o| o.checked_mul(3)) // text + out + in offset arrays
            .ok_or(SnapshotError::Corrupt("node count overflows layout"))?;
        let per_edge = EDGE_RECORD_LEN
            .checked_add(4) // edge record + in-edge index
            .and_then(|b| b.checked_mul(m))
            .ok_or(SnapshotError::Corrupt("edge count overflows layout"))?;
        let expected = n
            .checked_mul(1 + LOOKUP_RECORD_LEN) // kind byte + lookup record
            .and_then(|b| b.checked_add(per_node))
            .and_then(|b| b.checked_add(per_edge))
            .and_then(|b| b.checked_add(arena_len))
            .ok_or(SnapshotError::Corrupt("header sizes overflow layout"))?;
        let payload = &buf[HEADER_LEN..];
        if payload.len() != expected {
            return Err(SnapshotError::Corrupt("payload length mismatch"));
        }
        if hash_bytes(payload) != checksum {
            return Err(SnapshotError::ChecksumMismatch);
        }

        let mut r = Reader {
            buf: payload,
            pos: 0,
        };
        let mut kinds = Vec::with_capacity(n);
        for _ in 0..n {
            kinds.push(kind_from_u8(r.u8()).ok_or(SnapshotError::Corrupt("bad node kind"))?);
        }
        let text_offsets: Vec<u32> = (0..=n).map(|_| r.u32()).collect();
        let arena = String::from_utf8(r.take(arena_len).to_vec())
            .map_err(|_| SnapshotError::Corrupt("arena is not UTF-8"))?;
        if text_offsets[0] != 0 || text_offsets[n] as usize != arena_len {
            return Err(SnapshotError::Corrupt("text offsets do not span arena"));
        }
        for w in text_offsets.windows(2) {
            if w[0] > w[1] {
                return Err(SnapshotError::Corrupt("text offsets not monotone"));
            }
        }
        if !text_offsets
            .iter()
            .all(|&o| arena.is_char_boundary(o as usize))
        {
            return Err(SnapshotError::Corrupt("text offset splits a UTF-8 char"));
        }

        let mut edges = Vec::with_capacity(m);
        for _ in 0..m {
            let head = NodeId(r.u32());
            let tail = NodeId(r.u32());
            let relation = Relation::from_index(r.u8() as usize)
                .ok_or(SnapshotError::Corrupt("bad relation tag"))?;
            let behavior =
                behavior_from_u8(r.u8()).ok_or(SnapshotError::Corrupt("bad behavior tag"))?;
            let category = r.u8();
            let plausibility = f32::from_bits(r.u32());
            let typicality = f32::from_bits(r.u32());
            let support = r.u32();
            if head.0 as usize >= n || tail.0 as usize >= n {
                return Err(SnapshotError::Corrupt("edge endpoint out of range"));
            }
            edges.push(Edge {
                head,
                relation,
                tail,
                behavior,
                category,
                plausibility,
                typicality,
                support,
            });
        }
        for w in edges.windows(2) {
            let ka = (w[0].head, w[0].relation.index(), w[0].tail);
            let kb = (w[1].head, w[1].relation.index(), w[1].tail);
            if ka >= kb {
                return Err(SnapshotError::Corrupt("edges not strictly sorted"));
            }
        }

        let out_offsets: Vec<u32> = (0..=n).map(|_| r.u32()).collect();
        let in_offsets: Vec<u32> = (0..=n).map(|_| r.u32()).collect();
        let in_edges: Vec<u32> = (0..m).map(|_| r.u32()).collect();
        if out_offsets != prefix_offsets(n, edges.iter().map(|e| e.head.0)) {
            return Err(SnapshotError::Corrupt(
                "out offsets inconsistent with edges",
            ));
        }
        if in_offsets != prefix_offsets(n, edges.iter().map(|e| e.tail.0)) {
            return Err(SnapshotError::Corrupt("in offsets inconsistent with edges"));
        }
        {
            // in_edges must be edge indices grouped by tail (per in_offsets),
            // ascending within each group — the (tail, index) sort order.
            let mut prev: Option<(u32, u32)> = None;
            for (j, &idx) in in_edges.iter().enumerate() {
                if idx as usize >= m {
                    return Err(SnapshotError::Corrupt("in-edge index out of range"));
                }
                let tail = edges[idx as usize].tail.0;
                let s = in_offsets[tail as usize] as usize;
                let e = in_offsets[tail as usize + 1] as usize;
                if j < s || j >= e {
                    return Err(SnapshotError::Corrupt("in-edge in wrong tail group"));
                }
                if let Some(p) = prev {
                    if p >= (tail, idx) {
                        return Err(SnapshotError::Corrupt("in-edges not sorted"));
                    }
                }
                prev = Some((tail, idx));
            }
        }

        let mut lookup = Vec::with_capacity(n);
        for _ in 0..n {
            let k = r.u8();
            let h = r.u64();
            let id = r.u32();
            lookup.push((k, h, id));
        }
        debug_assert_eq!(r.pos, payload.len());
        let mut seen = vec![false; n];
        let mut prev: Option<(u8, u64, u32)> = None;
        for &(k, h, id) in &lookup {
            let i = id as usize;
            if i >= n || seen[i] {
                return Err(SnapshotError::Corrupt(
                    "lookup id out of range or duplicated",
                ));
            }
            seen[i] = true;
            let s = text_offsets[i] as usize;
            let e = text_offsets[i + 1] as usize;
            if k != kind_to_u8(kinds[i]) || h != hash_bytes(&arena.as_bytes()[s..e]) {
                return Err(SnapshotError::Corrupt("lookup record does not match node"));
            }
            if let Some(p) = prev {
                if p >= (k, h, id) {
                    return Err(SnapshotError::Corrupt("lookup not sorted"));
                }
            }
            prev = Some((k, h, id));
        }

        Ok(KgSnapshot {
            kinds,
            text_offsets,
            arena,
            edges,
            out_offsets,
            in_offsets,
            in_edges,
            lookup,
        })
    }

    /// Write the snapshot to a file.
    pub fn save(&self, path: &Path) -> Result<(), SnapshotError> {
        std::fs::write(path, self.to_bytes())?;
        Ok(())
    }

    /// Load a snapshot from a file written by [`Self::save`].
    pub fn load(path: &Path) -> Result<KgSnapshot, SnapshotError> {
        let buf = std::fs::read(path)?;
        KgSnapshot::from_bytes(&buf)
    }
}

/// `n+1` prefix offsets from per-node counts of `keys` (which must be
/// node ids in `0..n`, in any order).
fn prefix_offsets(n: usize, keys: impl Iterator<Item = u32>) -> Vec<u32> {
    let mut offsets = vec![0u32; n + 1];
    for k in keys {
        offsets[k as usize + 1] += 1;
    }
    for i in 0..n {
        offsets[i + 1] += offsets[i];
    }
    offsets
}

impl GraphView for KgSnapshot {
    fn num_nodes(&self) -> usize {
        KgSnapshot::num_nodes(self)
    }

    fn num_edges(&self) -> usize {
        KgSnapshot::num_edges(self)
    }

    fn find_node(&self, kind: NodeKind, text: &str) -> Option<NodeId> {
        KgSnapshot::find_node(self, kind, text)
    }

    fn node_kind(&self, id: NodeId) -> NodeKind {
        KgSnapshot::node_kind(self, id)
    }

    fn node_text(&self, id: NodeId) -> &str {
        KgSnapshot::node_text(self, id)
    }

    fn out_degree(&self, id: NodeId) -> usize {
        self.out_slice(id).len()
    }

    fn in_degree(&self, id: NodeId) -> usize {
        self.in_slice(id).len()
    }

    fn tails_of(&self, head: NodeId) -> impl Iterator<Item = &Edge> {
        self.out_slice(head).iter()
    }

    fn tails_of_rel(&self, head: NodeId, relation: Relation) -> impl Iterator<Item = &Edge> {
        self.tails_of_rel_slice(head, relation).iter()
    }

    fn heads_of(&self, tail: NodeId) -> impl Iterator<Item = &Edge> {
        self.in_slice(tail).iter().map(|&i| &self.edges[i as usize])
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Length checks happened up front (payload length is fully determined
    /// by the header counts), so takes cannot run past the end.
    fn take(&mut self, len: usize) -> &'a [u8] {
        let s = &self.buf[self.pos..self.pos + len];
        self.pos += len;
        s
    }

    fn u8(&mut self) -> u8 {
        self.take(1)[0]
    }

    fn u32(&mut self) -> u32 {
        // PANIC: take returns exactly the requested length
        u32::from_le_bytes(self.take(4).try_into().unwrap())
    }

    fn u64(&mut self) -> u64 {
        // PANIC: take returns exactly the requested length
        u64::from_le_bytes(self.take(8).try_into().unwrap())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build_graph(heads: usize, tails_per_head: usize) -> KnowledgeGraph {
        let mut kg = KnowledgeGraph::new();
        for h in 0..heads {
            let kind = if h % 2 == 0 {
                NodeKind::Query
            } else {
                NodeKind::Product
            };
            let head = kg.intern_node(kind, &format!("head {h}"));
            for t in 0..tails_per_head {
                // Share tails across heads so in-degrees exceed one.
                let tail = kg.intern_node(
                    NodeKind::Intention,
                    &format!("intent {}", (h + t) % (heads / 2 + 1)),
                );
                let relation = Relation::ALL[(h * 7 + t * 3) % Relation::ALL.len()];
                kg.add_edge(Edge {
                    head,
                    relation,
                    tail,
                    behavior: if t % 2 == 0 {
                        BehaviorKind::SearchBuy
                    } else {
                        BehaviorKind::CoBuy
                    },
                    category: (t % 18) as u8,
                    plausibility: 0.5 + 0.4 * (h as f32 / heads.max(1) as f32),
                    typicality: 0.1 + 0.05 * (t as f32),
                    support: 1 + (h % 3) as u32,
                });
            }
        }
        kg
    }

    #[test]
    fn freeze_preserves_counts_and_nodes() {
        let kg = build_graph(20, 6);
        let snap = kg.freeze();
        assert_eq!(snap.num_nodes(), kg.num_nodes());
        assert_eq!(snap.num_edges(), kg.num_edges());
        assert_eq!(snap.num_relations(), kg.num_relations());
        for (id, node) in kg.nodes() {
            assert_eq!(snap.node_kind(id), node.kind);
            assert_eq!(snap.node_text(id), node.text);
            assert_eq!(snap.find_node(node.kind, &node.text), Some(id));
        }
        assert_eq!(snap.find_node(NodeKind::Query, "no such node"), None);
        assert_eq!(snap.find_node(NodeKind::Product, "head 0"), None);
    }

    #[test]
    fn adjacency_matches_store_in_order() {
        let kg = build_graph(30, 8);
        let snap = kg.freeze();
        for i in 0..kg.num_nodes() {
            let id = NodeId(i as u32);
            let store_out: Vec<&Edge> = kg.tails_of(id).collect();
            let snap_out: Vec<&Edge> = snap.out_slice(id).iter().collect();
            assert_eq!(store_out, snap_out, "out-edges of node {i}");
            let store_in: Vec<&Edge> = kg.heads_of(id).collect();
            let snap_in: Vec<&Edge> = GraphView::heads_of(&snap, id).collect();
            assert_eq!(store_in, snap_in, "in-edges of node {i}");
            assert_eq!(kg.out_degree(id), GraphView::out_degree(&snap, id));
            assert_eq!(kg.in_degree(id), GraphView::in_degree(&snap, id));
            for rel in Relation::ALL {
                let store_rel: Vec<&Edge> = kg.tails_of_rel(id, rel).collect();
                let snap_rel: Vec<&Edge> = snap.tails_of_rel_slice(id, rel).iter().collect();
                assert_eq!(store_rel, snap_rel, "rel {rel:?} of node {i}");
            }
        }
    }

    #[test]
    fn top_intents_identical_to_store() {
        let kg = build_graph(25, 10);
        let snap = kg.freeze();
        for i in 0..kg.num_nodes() {
            let id = NodeId(i as u32);
            for k in [1, 5, 100] {
                let a: Vec<&Edge> = kg.top_intents(id, k);
                let b: Vec<&Edge> = GraphView::top_intents(&snap, id, k);
                assert_eq!(a, b, "top_intents({i}, {k})");
            }
        }
    }

    #[test]
    fn binary_roundtrip_is_lossless_and_byte_stable() {
        let kg = build_graph(15, 5);
        let snap = kg.freeze();
        let bytes = snap.to_bytes();
        assert_eq!(bytes[..8], MAGIC);
        let loaded = KgSnapshot::from_bytes(&bytes).unwrap();
        assert_eq!(loaded, snap);
        assert_eq!(
            loaded.to_bytes(),
            bytes,
            "save→load→save must be byte-stable"
        );
    }

    #[test]
    fn empty_graph_roundtrips() {
        let snap = KnowledgeGraph::new().freeze();
        assert_eq!(snap.num_nodes(), 0);
        assert_eq!(snap.num_edges(), 0);
        let loaded = KgSnapshot::from_bytes(&snap.to_bytes()).unwrap();
        assert_eq!(loaded, snap);
    }

    #[test]
    fn corruption_is_detected() {
        let kg = build_graph(8, 4);
        let bytes = kg.freeze().to_bytes();

        assert!(matches!(
            KgSnapshot::from_bytes(&bytes[..HEADER_LEN - 1]),
            Err(SnapshotError::Corrupt(_))
        ));

        let mut bad = bytes.clone();
        bad[0] ^= 0xff;
        assert!(matches!(
            KgSnapshot::from_bytes(&bad),
            Err(SnapshotError::BadMagic)
        ));

        let mut bad = bytes.clone();
        bad[8] = 99;
        assert!(matches!(
            KgSnapshot::from_bytes(&bad),
            Err(SnapshotError::UnsupportedVersion(99))
        ));

        // Flip a payload byte: the checksum must catch it.
        let mut bad = bytes.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x01;
        assert!(matches!(
            KgSnapshot::from_bytes(&bad),
            Err(SnapshotError::ChecksumMismatch)
        ));

        // Truncate the payload.
        assert!(matches!(
            KgSnapshot::from_bytes(&bytes[..bytes.len() - 4]),
            Err(SnapshotError::Corrupt(_))
        ));
    }

    #[test]
    fn save_load_file_roundtrip() {
        let kg = build_graph(10, 3);
        let snap = kg.freeze();
        let path = std::env::temp_dir().join("cosmo_kg_snapshot_test.bin");
        snap.save(&path).unwrap();
        let loaded = KgSnapshot::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded, snap);
    }

    #[test]
    fn load_missing_file_is_io_error() {
        let err = KgSnapshot::load(Path::new("/nonexistent/cosmo.snapshot")).unwrap_err();
        assert!(matches!(err, SnapshotError::Io(_)));
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn hash_collisions_resolved_by_text() {
        // Different texts, same kind: even if hashes collided the lookup
        // verifies text. We can't force a collision cheaply, but equal-hash
        // adjacency in the sorted index is exercised by duplicate kinds.
        let mut kg = KnowledgeGraph::new();
        for i in 0..100 {
            kg.intern_node(NodeKind::Intention, &format!("intent {i}"));
        }
        let snap = kg.freeze();
        for i in 0..100 {
            let text = format!("intent {i}");
            let id = snap.find_node(NodeKind::Intention, &text).unwrap();
            assert_eq!(snap.node_text(id), text);
        }
    }
}
