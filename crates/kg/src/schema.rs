//! Knowledge-graph schema: node kinds, relation types and tail types.
//!
//! Table 2 of the paper lists the 15 e-commerce commonsense relations mined
//! from large-scale generations (seeded from ConceptNet's usedFor,
//! capableOf, isA and cause). Each relation constrains its tail to a
//! semantic type; the last three (prefixed `x`) describe the *customer*
//! rather than the product, following ATOMIC's person-centric convention.

use serde::{Deserialize, Serialize};

/// The 15 COSMO relation types (Table 2).
///
/// `repr(u8)` with declaration-order discriminants `0..15`: the v2
/// snapshot stores the discriminant byte directly and casts validated
/// buffers back to `&[Edge]`, so the representation is part of the
/// on-disk format (pinned by `index_roundtrip` and the snapshot layout
/// tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[repr(u8)]
pub enum Relation {
    /// Product is used for a function/usage ("dry face").
    UsedForFunc,
    /// Product is used for an event/activity ("walk the dog").
    UsedForEve,
    /// Product is used for an audience ("daycare worker").
    UsedForAud,
    /// Product is capable of a function ("hold snacks").
    CapableOf,
    /// Product is used to accomplish something ("build a fence").
    UsedTo,
    /// Product is used as a concept/product type ("smart watch").
    UsedAs,
    /// Product is a concept/product type ("normal suit").
    IsA,
    /// Product is used on a time/season/event ("late winter").
    UsedOn,
    /// Product is used in a location/facility ("bedroom").
    UsedInLoc,
    /// Product is used on a body part ("sensitive skin").
    UsedInBody,
    /// Product is used with a complementary product ("surface cover").
    UsedWith,
    /// Product is used by an audience ("cat owner").
    UsedBy,
    /// Customer is interested in a topic ("herbal medicine").
    XInterestedIn,
    /// Customer is a kind of audience ("pregnant women").
    XIsA,
    /// Customer wants to do an activity ("play tennis").
    XWant,
}

/// Semantic type of a relation's tail (Table 2, middle column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TailType {
    /// Function / usage.
    Function,
    /// Event / activity.
    Event,
    /// Audience.
    Audience,
    /// Concept / product type.
    Concept,
    /// Time / season / event.
    Time,
    /// Location / facility.
    Location,
    /// Body part.
    BodyPart,
    /// Complementary product.
    Complementary,
    /// Interest.
    Interest,
    /// Activity.
    Activity,
}

impl Relation {
    /// All 15 relations, in Table 2 order.
    pub const ALL: [Relation; 15] = [
        Relation::UsedForFunc,
        Relation::UsedForEve,
        Relation::UsedForAud,
        Relation::CapableOf,
        Relation::UsedTo,
        Relation::UsedAs,
        Relation::IsA,
        Relation::UsedOn,
        Relation::UsedInLoc,
        Relation::UsedInBody,
        Relation::UsedWith,
        Relation::UsedBy,
        Relation::XInterestedIn,
        Relation::XIsA,
        Relation::XWant,
    ];

    /// The four ConceptNet seed relations the mining starts from (§3.1).
    pub const SEEDS: [&'static str; 4] = ["usedFor", "capableOf", "isA", "cause"];

    /// Canonical upper-snake name as printed in Table 2.
    pub fn name(self) -> &'static str {
        match self {
            Relation::UsedForFunc => "USED_FOR_FUNC",
            Relation::UsedForEve => "USED_FOR_EVE",
            Relation::UsedForAud => "USED_FOR_AUD",
            Relation::CapableOf => "CAPABLE_OF",
            Relation::UsedTo => "USED_TO",
            Relation::UsedAs => "USED_AS",
            Relation::IsA => "IS_A",
            Relation::UsedOn => "USED_ON",
            Relation::UsedInLoc => "USED_IN_LOC",
            Relation::UsedInBody => "USED_IN_BODY",
            Relation::UsedWith => "USED_WITH",
            Relation::UsedBy => "USED_BY",
            Relation::XInterestedIn => "xIntersted_in", // sic — as printed in Table 2
            Relation::XIsA => "xIs_A",
            Relation::XWant => "xWant",
        }
    }

    /// Semantic tail type (Table 2).
    pub fn tail_type(self) -> TailType {
        match self {
            Relation::UsedForFunc | Relation::CapableOf | Relation::UsedTo => TailType::Function,
            Relation::UsedForEve => TailType::Event,
            Relation::UsedForAud => TailType::Audience,
            Relation::UsedAs | Relation::IsA => TailType::Concept,
            Relation::UsedOn => TailType::Time,
            Relation::UsedInLoc => TailType::Location,
            Relation::UsedInBody => TailType::BodyPart,
            Relation::UsedWith => TailType::Complementary,
            Relation::UsedBy | Relation::XIsA => TailType::Audience,
            Relation::XInterestedIn => TailType::Interest,
            Relation::XWant => TailType::Activity,
        }
    }

    /// Surface predicate used when verbalising a triple into a sentence
    /// ("`<head> <predicate> <tail>`") — the inverse of the pattern mining.
    pub fn predicate(self) -> &'static str {
        match self {
            Relation::UsedForFunc | Relation::UsedForEve | Relation::UsedForAud => "is used for",
            Relation::CapableOf => "is capable of",
            Relation::UsedTo => "is used to",
            Relation::UsedAs => "is used as",
            Relation::IsA => "is a",
            Relation::UsedOn => "is used on",
            Relation::UsedInLoc => "is used in",
            Relation::UsedInBody => "is used on",
            Relation::UsedWith => "is used with",
            Relation::UsedBy => "is used by",
            Relation::XInterestedIn => "shows the customer is interested in",
            Relation::XIsA => "shows the customer is",
            Relation::XWant => "shows the customer wants to",
        }
    }

    /// Example tail from Table 2 (used by the Table 2 repro binary).
    pub fn example(self) -> &'static str {
        match self {
            Relation::UsedForFunc => "dry face",
            Relation::UsedForEve => "walk the dog",
            Relation::UsedForAud => "daycare worker",
            Relation::CapableOf => "hold snacks",
            Relation::UsedTo => "build a fence",
            Relation::UsedAs => "smart watch",
            Relation::IsA => "normal suit",
            Relation::UsedOn => "late winter",
            Relation::UsedInLoc => "bedroom",
            Relation::UsedInBody => "sensitive skin",
            Relation::UsedWith => "surface cover",
            Relation::UsedBy => "cat owner",
            Relation::XInterestedIn => "herbal medicine",
            Relation::XIsA => "pregnant women",
            Relation::XWant => "play tennis",
        }
    }

    /// Stable small integer id (index into [`Relation::ALL`]).
    ///
    /// `ALL` lists the variants in declaration order, so the index is the
    /// enum discriminant — `index_roundtrip` pins this. Constant-time
    /// because adjacency binary searches key on it.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Inverse of [`Relation::index`].
    pub fn from_index(i: usize) -> Option<Relation> {
        Relation::ALL.get(i).copied()
    }
}

impl TailType {
    /// Human-readable name as printed in Table 2.
    pub fn name(self) -> &'static str {
        match self {
            TailType::Function => "Function / Usage",
            TailType::Event => "Event / Activity",
            TailType::Audience => "Audience",
            TailType::Concept => "Concept / Product Type",
            TailType::Time => "Time / Season / Event",
            TailType::Location => "Location / Facility",
            TailType::BodyPart => "Body Part",
            TailType::Complementary => "Complementary",
            TailType::Interest => "Interest",
            TailType::Activity => "Activity",
        }
    }
}

/// Kind of a node in the COSMO KG (§3.1: products, queries and intentions).
///
/// `repr(u8)` discriminants (`Product = 0`, `Query = 1`, `Intention = 2`)
/// are part of the snapshot binary format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum NodeKind {
    /// A product (head of co-buy knowledge).
    Product,
    /// A search query (head of search-buy knowledge).
    Query,
    /// An intention tail (canonicalised generation).
    Intention,
}

/// Which user behaviour produced an edge (§3.1).
///
/// `repr(u8)` discriminants (`SearchBuy = 0`, `CoBuy = 1`) are part of
/// the snapshot binary format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum BehaviorKind {
    /// Query–purchase pair within a short session.
    SearchBuy,
    /// Co-purchased product pair.
    CoBuy,
}

impl BehaviorKind {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            BehaviorKind::SearchBuy => "search-buy",
            BehaviorKind::CoBuy => "co-buy",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifteen_relations() {
        assert_eq!(Relation::ALL.len(), 15);
        let mut names: Vec<&str> = Relation::ALL.iter().map(|r| r.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 15, "relation names must be unique");
    }

    #[test]
    fn index_roundtrip() {
        for (i, r) in Relation::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
            assert_eq!(Relation::from_index(i), Some(*r));
        }
        assert_eq!(Relation::from_index(15), None);
    }

    #[test]
    fn tail_types_match_table2() {
        assert_eq!(Relation::UsedForFunc.tail_type(), TailType::Function);
        assert_eq!(Relation::UsedOn.tail_type(), TailType::Time);
        assert_eq!(Relation::XWant.tail_type(), TailType::Activity);
        assert_eq!(Relation::UsedBy.tail_type(), TailType::Audience);
    }

    #[test]
    fn examples_are_nonempty() {
        for r in Relation::ALL {
            assert!(!r.example().is_empty());
            assert!(!r.predicate().is_empty());
        }
    }
}
