//! The one `unsafe` seam in cosmo-kg: reinterpreting *validated* snapshot
//! bytes as typed slices.
//!
//! Every cast in this module is a plain pointer reinterpretation — no
//! copies, no allocation — which is what makes the v2 mapped snapshot
//! O(pages touched) to open. Safety rests on two layers:
//!
//! 1. **Mechanical checks here**: alignment and length-divisibility are
//!    verified on every call; a misaligned or ragged buffer returns
//!    `None` instead of casting.
//! 2. **Semantic validation at load time** (`crate::snapshot_v2`): for
//!    types with invalid bit patterns (`Edge`'s enums, the arena's UTF-8)
//!    the decoder scans the raw bytes *before* the first typed access and
//!    refuses the snapshot otherwise. The `Pod` impls below document the
//!    exact invariant each type relies on.
//!
//! Everything else in cosmo-kg remains `unsafe`-free; the workspace audit
//! (`cosmo-audit` lint A02) pins `unsafe` to this file.

use crate::schema::NodeKind;
use crate::store::Edge;

/// Marker for types that may be viewed over snapshot bytes.
///
/// # Safety
/// Implementors must be `repr(C)`/`repr(transparent)`/primitive with a
/// stable layout, contain no pointers, and — when the type has invalid
/// bit patterns (field-less enums) — may only be cast over buffers whose
/// enum bytes were validated beforehand, as `snapshot_v2` does during
/// its load-time scans.
// SAFETY: implementors uphold the contract in the doc comment above.
pub(crate) unsafe trait Pod: Sized {}

// SAFETY: primitives — every bit pattern is valid.
unsafe impl Pod for u8 {}
// SAFETY: primitives — every bit pattern is valid (LE byte order is part
// of the on-disk contract, checked by the format's layout tests).
unsafe impl Pod for u32 {}
// SAFETY: primitives — every bit pattern is valid.
unsafe impl Pod for u64 {}
// SAFETY: repr(u8) with discriminants 0..3; the v2 decoder scans the
// kinds section and rejects any byte >= 3 before this cast is reachable.
unsafe impl Pod for NodeKind {}
// SAFETY: repr(C) (28 bytes, align 4); its enum fields are repr(u8) with
// discriminants 0..15 (Relation) and 0..2 (BehaviorKind), and the v2
// decoder scans both tag bytes of every record before the cast. Padding
// bytes are never read through the typed view.
unsafe impl Pod for Edge {}

/// Compile-time layout pins for [`LookupRec`] (see `snapshot_v2`).
#[repr(C)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct LookupRec {
    /// FxHash of the node text.
    pub hash: u64,
    /// Node id (validated `< n` at load).
    pub id: u32,
    /// Node kind byte (as [`crate::snapshot::kind_to_u8`]).
    pub kind: u8,
    /// Explicit padding, always written as zero.
    pub pad: [u8; 3],
}

// SAFETY: repr(C) of u64/u32/u8/[u8;3] — 16 bytes, align 8, every bit
// pattern valid (kind is a raw byte here, not the NodeKind enum).
unsafe impl Pod for LookupRec {}

/// View `bytes` as `&[T]`. Returns `None` when the base pointer is not
/// aligned for `T` or the length is not a whole number of records — the
/// decoder maps that to a corrupt-snapshot error.
pub(crate) fn cast_slice<T: Pod>(bytes: &[u8]) -> Option<&[T]> {
    let size = std::mem::size_of::<T>();
    if size == 0 || !bytes.len().is_multiple_of(size) {
        return None;
    }
    let ptr = bytes.as_ptr();
    if !(ptr as usize).is_multiple_of(std::mem::align_of::<T>()) {
        return None;
    }
    // SAFETY: ptr is aligned for T and the region holds exactly
    // len/size T-sized records; T: Pod guarantees (with the load-time
    // tag scans documented on each impl) that those bytes are valid T
    // values, and the borrow ties the result to `bytes`' lifetime.
    Some(unsafe { std::slice::from_raw_parts(ptr.cast::<T>(), bytes.len() / size) })
}

/// View UTF-8-validated arena bytes as `&str` without re-validating.
///
/// The caller must have run `std::str::from_utf8` over the *whole* arena
/// at load time (as `snapshot_v2` does); per-access re-validation is what
/// this path exists to avoid. Debug builds re-check.
pub(crate) fn str_from_validated(bytes: &[u8]) -> &str {
    debug_assert!(std::str::from_utf8(bytes).is_ok());
    // SAFETY: the v2 decoder validates the full arena as UTF-8 (and every
    // text offset as a char boundary) before constructing the view, so
    // any slice taken at those offsets is valid UTF-8.
    unsafe { std::str::from_utf8_unchecked(bytes) }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cast_slice_roundtrips_u32() {
        let values: Vec<u32> = (0..16).map(|i| i * 0x01010101).collect();
        let mut bytes = Vec::new();
        for v in &values {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        // Vec<u8> may be under-aligned for u32; go through an aligned buffer.
        let mut aligned = vec![0u64; bytes.len().div_ceil(8)];
        let dst = aligned.as_mut_ptr().cast::<u8>();
        // SAFETY: test-only copy into the aligned backing store.
        unsafe { std::ptr::copy_nonoverlapping(bytes.as_ptr(), dst, bytes.len()) };
        // SAFETY: same region, shared borrow for the duration of the test.
        let view = unsafe { std::slice::from_raw_parts(dst, bytes.len()) };
        assert_eq!(cast_slice::<u32>(view), Some(&values[..]));
    }

    #[test]
    fn ragged_length_is_rejected() {
        let aligned = [0u64; 2];
        // SAFETY: in-bounds sub-view of a live array.
        let view = unsafe { std::slice::from_raw_parts(aligned.as_ptr().cast::<u8>(), 7) };
        assert_eq!(cast_slice::<u32>(view), None);
    }

    #[test]
    fn misaligned_base_is_rejected() {
        let aligned = [0u64; 2];
        // SAFETY: in-bounds sub-view of a live array, deliberately offset.
        let view = unsafe { std::slice::from_raw_parts(aligned.as_ptr().cast::<u8>().add(1), 8) };
        assert_eq!(cast_slice::<u32>(view), None);
    }

    #[test]
    fn validated_str_matches() {
        assert_eq!(str_from_validated("caméra".as_bytes()), "caméra");
    }
}
