//! # cosmo-kg
//!
//! The COSMO knowledge graph: schema (15 relations of Table 2, node and
//! behaviour kinds), an interned in-memory store with adjacency indexes and
//! JSON snapshots, per-category statistics (Tables 1 & 3), and the intent
//! hierarchy of Figure 8 that powers search navigation.
//!
//! The pipeline in `cosmo-core` writes refined knowledge into a
//! [`KnowledgeGraph`]; `cosmo-serving` reads it at request time; `cosmo-nav`
//! walks the [`IntentHierarchy`] for multi-turn navigation.

pub mod algo;
pub mod hierarchy;
pub mod schema;
pub mod stats;
pub mod store;

pub use algo::{
    connected_components, degree_histogram, giant_component_size, pagerank, top_intents_global,
};
pub use hierarchy::IntentHierarchy;
pub use schema::{BehaviorKind, NodeKind, Relation, TailType};
pub use stats::{summarize, CategoryRow, KgStats, KgSummary, CATEGORIES};
pub use store::{Edge, EdgeId, KnowledgeGraph, Node, NodeId};
