//! # cosmo-kg
//!
//! The COSMO knowledge graph: schema (15 relations of Table 2, node and
//! behaviour kinds), an interned mutable store for the offline pipeline,
//! a frozen CSR snapshot with a versioned binary format for the read side,
//! per-category statistics (Tables 1 & 3), and the intent hierarchy of
//! Figure 8 that powers search navigation.
//!
//! The pipeline in `cosmo-core` writes refined knowledge into a
//! [`KnowledgeGraph`]; freezing it yields a [`KgSnapshot`] that
//! `cosmo-serving` reads at request time and `cosmo-nav` walks via the
//! [`IntentHierarchy`] for multi-turn navigation — both through the
//! [`GraphView`] trait, which the mutable store also implements (and
//! answers bitwise-identically). JSON (de)serialisation of the mutable
//! store remains for offline interchange.
//!
//! Snapshot files come in two format versions: the compact parse-on-load
//! v1 ([`snapshot`]) and the 64-byte-aligned zero-copy v2
//! ([`snapshot_v2`]) that [`MappedSnapshot`] serves straight out of
//! memory-mapped file bytes. [`KgSnapshotView`] abstracts over both so
//! the serving tier can hot-swap either kind.
//!
//! `unsafe` is confined to the [`zerocopy`] cast seam (enforced by the
//! workspace audit); the rest of the crate is `unsafe`-free.

pub mod algo;
pub mod hierarchy;
pub mod schema;
pub mod snapshot;
pub mod snapshot_v2;
pub mod stats;
pub mod store;
pub mod stream_writer;
pub mod view;
pub(crate) mod zerocopy;

pub use algo::{
    connected_components, degree_histogram, giant_component_size, pagerank, top_intents_global,
};
pub use hierarchy::IntentHierarchy;
pub use schema::{BehaviorKind, NodeKind, Relation, TailType};
pub use snapshot::{KgSnapshot, SnapshotError};
pub use snapshot_v2::{KgSnapshotView, MappedSnapshot, Verify};
pub use stats::{summarize, CategoryRow, KgStats, KgSummary, CATEGORIES};
pub use store::{Edge, EdgeId, KnowledgeGraph, Node, NodeId};
pub use stream_writer::{SnapshotStreamWriter, StreamInterner, StreamOptions, StreamStats};
pub use view::GraphView;
