//! The COSMO knowledge-graph store.
//!
//! Nodes are interned `(kind, text)` pairs — products, queries, and
//! canonicalised intention tails (§3.1). Edges are typed by one of the 15
//! relations, tagged with the behaviour that produced them, the product
//! category, and the critic scores that survived refinement (§3.3).
//!
//! The store is append-oriented (the pipeline only ever adds knowledge) with
//! duplicate-edge merging, and maintains adjacency indexes for the serving
//! path: `tails_of` powers intent lookup for a query/product, `heads_of`
//! powers reverse navigation from an intention to products.

use crate::schema::{BehaviorKind, NodeKind, Relation};
use cosmo_text::FxHashMap;
use serde::{Deserialize, Serialize};

/// Dense node handle. `repr(transparent)` over `u32` so edge records in
/// the v2 snapshot can be cast directly from validated file bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[repr(transparent)]
pub struct NodeId(pub u32);

/// Dense edge handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct EdgeId(pub u32);

/// A node: product, query, or intention tail.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Node {
    /// Node kind.
    pub kind: NodeKind,
    /// Surface text (canonicalised for intentions).
    pub text: String,
}

/// A knowledge edge `(head, relation, tail)` with provenance and scores.
///
/// `repr(C)` pins the field layout (28 bytes, align 4, with padding at
/// offsets 5..8 and 14..16): the v2 snapshot writes this exact layout to
/// disk and reads edges back as a borrowed `&[Edge]` over the mapped
/// file, with no per-edge decode. The layout is locked by compile-time
/// offset assertions in `cosmo_kg::snapshot_v2`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[repr(C)]
pub struct Edge {
    /// Head node (product or query).
    pub head: NodeId,
    /// Relation type.
    pub relation: Relation,
    /// Tail node (intention, concept, …).
    pub tail: NodeId,
    /// Behaviour that produced this edge.
    pub behavior: BehaviorKind,
    /// Product category index (0..18, Table 3 rows).
    pub category: u8,
    /// Critic plausibility score in `[0,1]`.
    pub plausibility: f32,
    /// Critic typicality score in `[0,1]`.
    pub typicality: f32,
    /// How many generations merged into this edge.
    pub support: u32,
}

/// The knowledge graph.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct KnowledgeGraph {
    nodes: Vec<Node>,
    edges: Vec<Edge>,
    #[serde(skip)]
    node_index: FxHashMap<(NodeKind, String), NodeId>,
    #[serde(skip)]
    edge_index: FxHashMap<(NodeId, Relation, NodeId), EdgeId>,
    #[serde(skip)]
    out_adj: FxHashMap<NodeId, Vec<EdgeId>>,
    #[serde(skip)]
    in_adj: FxHashMap<NodeId, Vec<EdgeId>>,
}

impl KnowledgeGraph {
    /// Empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a node, returning its id (idempotent per `(kind, text)`).
    pub fn intern_node(&mut self, kind: NodeKind, text: &str) -> NodeId {
        if let Some(&id) = self.node_index.get(&(kind, text.to_string())) {
            return id;
        }
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            kind,
            text: text.to_string(),
        });
        self.node_index.insert((kind, text.to_string()), id);
        id
    }

    /// Look up an existing node.
    pub fn find_node(&self, kind: NodeKind, text: &str) -> Option<NodeId> {
        self.node_index.get(&(kind, text.to_string())).copied()
    }

    /// Node payload.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0 as usize]
    }

    /// Edge payload.
    pub fn edge(&self, id: EdgeId) -> &Edge {
        &self.edges[id.0 as usize]
    }

    /// Add (or merge into an existing) edge. On merge, `support` is
    /// incremented and the scores keep the running maximum — repeated
    /// generation of the same knowledge is evidence for it.
    pub fn add_edge(&mut self, edge: Edge) -> EdgeId {
        let key = (edge.head, edge.relation, edge.tail);
        if let Some(&eid) = self.edge_index.get(&key) {
            let e = &mut self.edges[eid.0 as usize];
            e.support += edge.support.max(1);
            e.plausibility = e.plausibility.max(edge.plausibility);
            e.typicality = e.typicality.max(edge.typicality);
            return eid;
        }
        let eid = EdgeId(self.edges.len() as u32);
        // Adjacency lists are kept sorted — out by (relation, tail), in by
        // (head, relation) — so iteration order is a function of graph
        // *content*, not insertion history, and matches the frozen
        // [`crate::snapshot::KgSnapshot`] CSR order exactly.
        let out = self.out_adj.entry(edge.head).or_default();
        let out_key = (edge.relation.index(), edge.tail);
        let pos = out.partition_point(|&e| {
            let o = &self.edges[e.0 as usize];
            (o.relation.index(), o.tail) < out_key
        });
        out.insert(pos, eid);
        let inl = self.in_adj.entry(edge.tail).or_default();
        let in_key = (edge.head, edge.relation.index());
        let pos = inl.partition_point(|&e| {
            let i = &self.edges[e.0 as usize];
            (i.head, i.relation.index()) < in_key
        });
        inl.insert(pos, eid);
        self.edge_index.insert(key, eid);
        self.edges.push(edge);
        eid
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of (merged) edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Number of distinct relation types present.
    pub fn num_relations(&self) -> usize {
        let mut seen = [false; Relation::ALL.len()];
        for e in &self.edges {
            seen[e.relation.index()] = true;
        }
        seen.iter().filter(|&&b| b).count()
    }

    /// Iterate all edges.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, &Edge)> {
        self.edges
            .iter()
            .enumerate()
            .map(|(i, e)| (EdgeId(i as u32), e))
    }

    /// Iterate all nodes.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId(i as u32), n))
    }

    /// Outgoing edges of `head` (knowledge about a product/query).
    pub fn tails_of(&self, head: NodeId) -> impl Iterator<Item = &Edge> {
        self.out_adj
            .get(&head)
            .into_iter()
            .flatten()
            .map(move |eid| &self.edges[eid.0 as usize])
    }

    /// Outgoing edges of `head` restricted to one relation.
    pub fn tails_of_rel<'a>(
        &'a self,
        head: NodeId,
        relation: Relation,
    ) -> impl Iterator<Item = &'a Edge> + 'a {
        self.tails_of(head).filter(move |e| e.relation == relation)
    }

    /// Incoming edges of `tail` (which heads express this intention).
    pub fn heads_of(&self, tail: NodeId) -> impl Iterator<Item = &Edge> {
        self.in_adj
            .get(&tail)
            .into_iter()
            .flatten()
            .map(move |eid| &self.edges[eid.0 as usize])
    }

    /// Out-degree of a node.
    pub fn out_degree(&self, id: NodeId) -> usize {
        self.out_adj.get(&id).map_or(0, |v| v.len())
    }

    /// In-degree of a node.
    pub fn in_degree(&self, id: NodeId) -> usize {
        self.in_adj.get(&id).map_or(0, |v| v.len())
    }

    /// Top-`k` intention tails for `head` ranked by
    /// `typicality · ln(1 + support)` — the serving-time ranking.
    pub fn top_intents(&self, head: NodeId, k: usize) -> Vec<&Edge> {
        crate::view::rank_intents(self.tails_of(head).collect(), k)
    }

    /// Freeze into a read-optimised [`crate::snapshot::KgSnapshot`].
    pub fn freeze(&self) -> crate::snapshot::KgSnapshot {
        crate::snapshot::KgSnapshot::freeze(self)
    }

    /// Rebuild the skipped (non-serialised) indexes after deserialisation.
    pub fn rebuild_indexes(&mut self) {
        self.node_index.clear();
        self.edge_index.clear();
        self.out_adj.clear();
        self.in_adj.clear();
        for (i, n) in self.nodes.iter().enumerate() {
            self.node_index
                .insert((n.kind, n.text.clone()), NodeId(i as u32));
        }
        for (i, e) in self.edges.iter().enumerate() {
            let eid = EdgeId(i as u32);
            self.edge_index.insert((e.head, e.relation, e.tail), eid);
            self.out_adj.entry(e.head).or_default().push(eid);
            self.in_adj.entry(e.tail).or_default().push(eid);
        }
        // Restore the sorted-adjacency invariant maintained by `add_edge`.
        // DETERMINISM: each list is sorted in place independently; the
        // visit order across map entries is not observable.
        for list in self.out_adj.values_mut() {
            list.sort_unstable_by_key(|&e| {
                let o = &self.edges[e.0 as usize];
                (o.relation.index(), o.tail)
            });
        }
        // DETERMINISM: per-entry in-place sort, as above.
        for list in self.in_adj.values_mut() {
            list.sort_unstable_by_key(|&e| {
                let i = &self.edges[e.0 as usize];
                (i.head, i.relation.index())
            });
        }
    }

    /// Serialize to JSON.
    pub fn to_json(&self) -> String {
        // PANIC: serialising plain in-memory data never errors
        serde_json::to_string(self).expect("KG serialisation cannot fail")
    }

    /// Deserialize from JSON produced by [`KnowledgeGraph::to_json`] and
    /// rebuild indexes.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        let mut kg: KnowledgeGraph = serde_json::from_str(s)?;
        kg.rebuild_indexes();
        Ok(kg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_graph() -> KnowledgeGraph {
        let mut kg = KnowledgeGraph::new();
        let q = kg.intern_node(NodeKind::Query, "camping");
        let p = kg.intern_node(NodeKind::Product, "air mattress");
        let t1 = kg.intern_node(NodeKind::Intention, "sleeping outdoors");
        let t2 = kg.intern_node(NodeKind::Intention, "lakeside camping");
        kg.add_edge(Edge {
            head: q,
            relation: Relation::UsedForEve,
            tail: t1,
            behavior: BehaviorKind::SearchBuy,
            category: 1,
            plausibility: 0.9,
            typicality: 0.8,
            support: 1,
        });
        kg.add_edge(Edge {
            head: p,
            relation: Relation::UsedForEve,
            tail: t2,
            behavior: BehaviorKind::CoBuy,
            category: 1,
            plausibility: 0.7,
            typicality: 0.3,
            support: 1,
        });
        kg
    }

    #[test]
    fn interning_is_idempotent() {
        let mut kg = KnowledgeGraph::new();
        let a = kg.intern_node(NodeKind::Product, "tent");
        let b = kg.intern_node(NodeKind::Product, "tent");
        let c = kg.intern_node(NodeKind::Query, "tent");
        assert_eq!(a, b);
        assert_ne!(a, c, "same text, different kind → different node");
        assert_eq!(kg.num_nodes(), 2);
    }

    #[test]
    fn duplicate_edges_merge() {
        let mut kg = KnowledgeGraph::new();
        let h = kg.intern_node(NodeKind::Product, "leash");
        let t = kg.intern_node(NodeKind::Intention, "walking the dog");
        let mk = |p: f32, ty: f32| Edge {
            head: h,
            relation: Relation::UsedForEve,
            tail: t,
            behavior: BehaviorKind::CoBuy,
            category: 0,
            plausibility: p,
            typicality: ty,
            support: 1,
        };
        let e1 = kg.add_edge(mk(0.6, 0.2));
        let e2 = kg.add_edge(mk(0.9, 0.1));
        assert_eq!(e1, e2);
        assert_eq!(kg.num_edges(), 1);
        let e = kg.edge(e1);
        assert_eq!(e.support, 2);
        assert!((e.plausibility - 0.9).abs() < 1e-6);
        assert!((e.typicality - 0.2).abs() < 1e-6);
    }

    #[test]
    fn adjacency_queries() {
        let kg = tiny_graph();
        let q = kg.find_node(NodeKind::Query, "camping").unwrap();
        let t1 = kg
            .find_node(NodeKind::Intention, "sleeping outdoors")
            .unwrap();
        assert_eq!(kg.out_degree(q), 1);
        assert_eq!(kg.in_degree(t1), 1);
        assert_eq!(kg.tails_of(q).count(), 1);
        assert_eq!(kg.heads_of(t1).next().unwrap().head, q);
        assert_eq!(kg.tails_of_rel(q, Relation::IsA).count(), 0);
    }

    #[test]
    fn top_intents_ranked_by_typicality() {
        let mut kg = KnowledgeGraph::new();
        let h = kg.intern_node(NodeKind::Query, "winter clothes");
        for (i, (tail, ty)) in [("keep warm", 0.9f32), ("fashion", 0.2), ("gift", 0.5)]
            .iter()
            .enumerate()
        {
            let t = kg.intern_node(NodeKind::Intention, tail);
            kg.add_edge(Edge {
                head: h,
                relation: Relation::CapableOf,
                tail: t,
                behavior: BehaviorKind::SearchBuy,
                category: i as u8,
                plausibility: 0.9,
                typicality: *ty,
                support: 1,
            });
        }
        let top = kg.top_intents(h, 2);
        assert_eq!(top.len(), 2);
        assert_eq!(kg.node(top[0].tail).text, "keep warm");
        assert_eq!(kg.node(top[1].tail).text, "gift");
    }

    #[test]
    fn top_intents_survives_nan_typicality() {
        // A NaN score must neither panic the sort nor destabilise the
        // ranking of the finite-scored edges.
        let mut kg = KnowledgeGraph::new();
        let h = kg.intern_node(NodeKind::Query, "winter clothes");
        for (i, (tail, ty)) in [("keep warm", 0.9f32), ("broken", f32::NAN), ("gift", 0.5)]
            .iter()
            .enumerate()
        {
            let t = kg.intern_node(NodeKind::Intention, tail);
            kg.add_edge(Edge {
                head: h,
                relation: Relation::CapableOf,
                tail: t,
                behavior: BehaviorKind::SearchBuy,
                category: i as u8,
                plausibility: 0.9,
                typicality: *ty,
                support: 1,
            });
        }
        let top = kg.top_intents(h, 3);
        assert_eq!(top.len(), 3);
        // total_cmp orders NaN above every finite float, so the NaN edge
        // ranks first under the descending sort — deterministically.
        assert_eq!(kg.node(top[0].tail).text, "broken");
        assert_eq!(kg.node(top[1].tail).text, "keep warm");
        assert_eq!(kg.node(top[2].tail).text, "gift");
    }

    #[test]
    fn json_roundtrip_rebuilds_indexes() {
        let kg = tiny_graph();
        let json = kg.to_json();
        let kg2 = KnowledgeGraph::from_json(&json).unwrap();
        assert_eq!(kg2.num_nodes(), kg.num_nodes());
        assert_eq!(kg2.num_edges(), kg.num_edges());
        let q = kg2.find_node(NodeKind::Query, "camping").unwrap();
        assert_eq!(kg2.out_degree(q), 1);
    }

    #[test]
    fn num_relations_counts_distinct() {
        let kg = tiny_graph();
        assert_eq!(kg.num_relations(), 1);
    }

    #[test]
    fn adjacency_order_independent_of_insertion() {
        // Two graphs with the same edges added in opposite orders must
        // enumerate adjacency identically — the invariant that makes store
        // and snapshot read paths bitwise-interchangeable.
        let mk_edge = |head, relation, tail| Edge {
            head,
            relation,
            tail,
            behavior: BehaviorKind::SearchBuy,
            category: 0,
            plausibility: 0.5,
            typicality: 0.5,
            support: 1,
        };
        let mut fwd = KnowledgeGraph::new();
        let mut rev = KnowledgeGraph::new();
        for kg in [&mut fwd, &mut rev] {
            kg.intern_node(NodeKind::Query, "q");
            for i in 0..6 {
                kg.intern_node(NodeKind::Intention, &format!("t{i}"));
            }
        }
        let q = NodeId(0);
        let edges: Vec<Edge> = (0..6)
            .map(|i| {
                mk_edge(
                    q,
                    Relation::ALL[(5 - (i % 3)) % Relation::ALL.len()],
                    NodeId(1 + i as u32),
                )
            })
            .collect();
        for e in &edges {
            fwd.add_edge(e.clone());
        }
        for e in edges.iter().rev() {
            rev.add_edge(e.clone());
        }
        let a: Vec<&Edge> = fwd.tails_of(q).collect();
        let b: Vec<&Edge> = rev.tails_of(q).collect();
        assert_eq!(a, b);
        assert!(a
            .windows(2)
            .all(|w| (w[0].relation.index(), w[0].tail) < (w[1].relation.index(), w[1].tail)));
        for i in 1..7 {
            let t = NodeId(i);
            let ia: Vec<&Edge> = fwd.heads_of(t).collect();
            let ib: Vec<&Edge> = rev.heads_of(t).collect();
            assert_eq!(ia, ib);
        }
    }
}
