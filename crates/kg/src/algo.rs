//! Graph algorithms over the frozen knowledge-graph snapshot.
//!
//! Used by the serving/navigation stack beyond plain adjacency lookups:
//!
//! * **intent importance** — a PageRank-style score over the bipartite
//!   head↔intention structure, ranking intentions by how much behavioural
//!   mass flows into them (navigation uses it to order root suggestions);
//! * **connected components** — diagnostics for KG fragmentation (a
//!   healthy pipeline run yields one giant component per domain cluster);
//! * **degree distribution** — the long-tail shape reports of the KG
//!   statistics pages.
//!
//! All algorithms take a [`KgSnapshot`] and iterate its CSR slices directly
//! — no temporary per-node adjacency vectors are materialised. Freeze a
//! [`crate::store::KnowledgeGraph`] first (`kg.freeze()`); the freeze cost
//! is amortised across every traversal that follows.

use crate::snapshot::KgSnapshot;
use crate::store::NodeId;
use cosmo_text::FxHashMap;

/// PageRank over the undirected view of the KG.
///
/// Damping `d`, `iterations` rounds of synchronous updates; returns a score
/// per node id (dense, indexed by `NodeId.0`). Deterministic.
pub fn pagerank(snap: &KgSnapshot, d: f64, iterations: usize) -> Vec<f64> {
    let n = snap.num_nodes();
    if n == 0 {
        return Vec::new();
    }
    let edges = snap.edges();
    // Undirected weighted degree (edge weight = support): out-edges plus
    // in-edges, both read straight from the CSR slices.
    let out_weight: Vec<f64> = (0..n)
        .map(|i| {
            let id = NodeId(i as u32);
            let out: f64 = snap.out_slice(id).iter().map(|e| e.support as f64).sum();
            let inw: f64 = snap
                .in_slice(id)
                .iter()
                .map(|&j| edges[j as usize].support as f64)
                .sum();
            out + inw
        })
        .collect();
    let mut rank = vec![1.0 / n as f64; n];
    let mut next = vec![0.0f64; n];
    for _ in 0..iterations {
        next.iter_mut().for_each(|x| *x = (1.0 - d) / n as f64);
        let mut dangling = 0.0;
        for i in 0..n {
            if out_weight[i] == 0.0 {
                dangling += rank[i];
                continue;
            }
            let id = NodeId(i as u32);
            let share = d * rank[i] / out_weight[i];
            for e in snap.out_slice(id) {
                next[e.tail.0 as usize] += share * e.support as f64;
            }
            for &j in snap.in_slice(id) {
                let e = &edges[j as usize];
                next[e.head.0 as usize] += share * e.support as f64;
            }
        }
        // dangling mass is redistributed uniformly
        let dangling_share = d * dangling / n as f64;
        for x in next.iter_mut() {
            *x += dangling_share;
        }
        std::mem::swap(&mut rank, &mut next);
    }
    rank
}

/// Connected components over the undirected view: returns
/// `(component id per node, number of components)`.
pub fn connected_components(snap: &KgSnapshot) -> (Vec<usize>, usize) {
    let n = snap.num_nodes();
    let edges = snap.edges();
    let mut comp = vec![usize::MAX; n];
    let mut count = 0;
    let mut stack = Vec::new();
    for start in 0..n {
        if comp[start] != usize::MAX {
            continue;
        }
        comp[start] = count;
        stack.push(start as u32);
        while let Some(v) = stack.pop() {
            let id = NodeId(v);
            for e in snap.out_slice(id) {
                let u = e.tail.0;
                if comp[u as usize] == usize::MAX {
                    comp[u as usize] = count;
                    stack.push(u);
                }
            }
            for &j in snap.in_slice(id) {
                let u = edges[j as usize].head.0;
                if comp[u as usize] == usize::MAX {
                    comp[u as usize] = count;
                    stack.push(u);
                }
            }
        }
        count += 1;
    }
    (comp, count)
}

/// Size of the largest connected component.
pub fn giant_component_size(snap: &KgSnapshot) -> usize {
    let (comp, count) = connected_components(snap);
    let mut sizes = vec![0usize; count];
    for &c in &comp {
        sizes[c] += 1;
    }
    sizes.into_iter().max().unwrap_or(0)
}

/// Degree histogram of the KG (`degree → node count`), for the long-tail
/// shape diagnostics.
pub fn degree_histogram(snap: &KgSnapshot) -> FxHashMap<usize, usize> {
    let mut hist: FxHashMap<usize, usize> = FxHashMap::default();
    for i in 0..snap.num_nodes() {
        let id = NodeId(i as u32);
        let deg = snap.out_slice(id).len() + snap.in_slice(id).len();
        *hist.entry(deg).or_insert(0) += 1;
    }
    hist
}

/// Top-`k` intention nodes by PageRank, with scores.
pub fn top_intents_global(snap: &KgSnapshot, k: usize) -> Vec<(NodeId, f64)> {
    use crate::schema::NodeKind;
    let rank = pagerank(snap, 0.85, 30);
    let mut scored: Vec<(NodeId, f64)> = (0..snap.num_nodes())
        .map(|i| NodeId(i as u32))
        .filter(|&id| snap.node_kind(id) == NodeKind::Intention)
        .map(|id| (id, rank[id.0 as usize]))
        .collect();
    scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    scored.truncate(k);
    scored
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{BehaviorKind, NodeKind, Relation};
    use crate::store::{Edge, KnowledgeGraph};

    fn star_graph(leaves: usize) -> KnowledgeGraph {
        // one hub intention fed by `leaves` products
        let mut kg = KnowledgeGraph::new();
        let hub = kg.intern_node(NodeKind::Intention, "hub intent");
        let rare = kg.intern_node(NodeKind::Intention, "rare intent");
        for i in 0..leaves {
            let p = kg.intern_node(NodeKind::Product, &format!("product {i}"));
            kg.add_edge(Edge {
                head: p,
                relation: Relation::CapableOf,
                tail: hub,
                behavior: BehaviorKind::CoBuy,
                category: 0,
                plausibility: 0.9,
                typicality: 0.9,
                support: 1,
            });
            if i == 0 {
                kg.add_edge(Edge {
                    head: p,
                    relation: Relation::UsedForEve,
                    tail: rare,
                    behavior: BehaviorKind::CoBuy,
                    category: 0,
                    plausibility: 0.9,
                    typicality: 0.9,
                    support: 1,
                });
            }
        }
        kg
    }

    #[test]
    fn pagerank_sums_to_one_and_ranks_hub_highest() {
        let kg = star_graph(8);
        let snap = kg.freeze();
        let rank = pagerank(&snap, 0.85, 40);
        let sum: f64 = rank.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "sum={sum}");
        let hub = kg.find_node(NodeKind::Intention, "hub intent").unwrap();
        let max_idx = rank
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(max_idx, hub.0 as usize, "hub must dominate");
    }

    #[test]
    fn pagerank_empty_graph() {
        let snap = KnowledgeGraph::new().freeze();
        assert!(pagerank(&snap, 0.85, 10).is_empty());
    }

    #[test]
    fn components_of_star_is_one() {
        let kg = star_graph(5);
        let snap = kg.freeze();
        let (_, count) = connected_components(&snap);
        assert_eq!(count, 1);
        assert_eq!(giant_component_size(&snap), kg.num_nodes());
    }

    #[test]
    fn disconnected_subgraphs_counted() {
        let mut kg = star_graph(3);
        // isolated pair
        let a = kg.intern_node(NodeKind::Query, "island query");
        let b = kg.intern_node(NodeKind::Intention, "island intent");
        kg.add_edge(Edge {
            head: a,
            relation: Relation::XWant,
            tail: b,
            behavior: BehaviorKind::SearchBuy,
            category: 1,
            plausibility: 0.9,
            typicality: 0.9,
            support: 1,
        });
        let snap = kg.freeze();
        let (_, count) = connected_components(&snap);
        assert_eq!(count, 2);
        assert_eq!(giant_component_size(&snap), kg.num_nodes() - 2);
    }

    #[test]
    fn degree_histogram_counts_everything() {
        let kg = star_graph(4);
        let snap = kg.freeze();
        let hist = degree_histogram(&snap);
        let total: usize = hist.values().sum();
        assert_eq!(total, kg.num_nodes());
        // the hub has degree 4
        assert_eq!(hist.get(&4), Some(&1));
    }

    #[test]
    fn top_global_intents_prefers_hub() {
        let kg = star_graph(6);
        let snap = kg.freeze();
        let top = top_intents_global(&snap, 2);
        assert_eq!(kg.node(top[0].0).text, "hub intent");
        assert!(top[0].1 > top[1].1);
    }
}
