//! The end-to-end offline knowledge-generation pipeline (Figure 2).
//!
//! world → behaviour logs → fine-grained sampling (§3.2.1) → QA-prompted
//! teacher generation (§3.2.2) → coarse filtering (§3.3.1) → human-in-the-
//! loop annotation (§3.3.2) → critic training and scoring → knowledge graph
//! (plausibility > 0.5) with Table 3 statistics.
//!
//! The output bundles everything downstream stages need: the KG for
//! serving/navigation, the annotations for instruction-data construction
//! (§3.4), the kept candidates with critic scores, and a stage-by-stage
//! report used by the repro binaries and ablations.
//!
//! The expensive stages — teacher generation, per-candidate filter
//! decisions, feature extraction, critic scoring, and edge
//! materialisation — fan out over a [`cosmo_exec::WorkerPool`]. Every
//! fan-out merges index-ordered and every teacher task owns an RNG stream
//! derived from its `(behaviour, generation)` coordinates, so the output is
//! identical at any thread count; `threads = 1` runs inline on the caller
//! thread with no worker threads at all.

use crate::annotation::{annotate, AnnotationConfig, AnnotationOutput};
use crate::critic::{features, Critic, CriticConfig, CriticExample, CriticReport};
use crate::filter::{CoarseFilter, FilterConfig, FilterReport, FilteredCandidate};
use crate::sampling::{sample_behaviors, SamplingConfig, SamplingReport};
use cosmo_exec::WorkerPool;
use cosmo_kg::{BehaviorKind, Edge, KgStats, KnowledgeGraph, NodeKind, Relation};
use cosmo_synth::{BehaviorConfig, BehaviorLog, SpecificityService, World, WorldConfig};
use cosmo_teacher::{BehaviorRef, Candidate, CostMeter, Teacher, TeacherConfig};
use serde::{Deserialize, Serialize};

/// Full pipeline configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// World generation.
    pub world: WorldConfig,
    /// Behaviour-log generation.
    pub behavior: BehaviorConfig,
    /// Behaviour sampling strategies.
    pub sampling: SamplingConfig,
    /// Teacher LLM simulation.
    pub teacher: TeacherConfig,
    /// Coarse filtering thresholds.
    pub filter: FilterConfig,
    /// Annotation process.
    pub annotation: AnnotationConfig,
    /// Critic training.
    pub critic: CriticConfig,
    /// Generations prompted per sampled search-buy pair.
    pub gens_per_searchbuy: usize,
    /// Generations prompted per sampled co-buy pair.
    pub gens_per_cobuy: usize,
    /// Keep candidates with critic plausibility above this (§3.3.2: 0.5).
    pub plausibility_threshold: f32,
    /// Worker threads for the parallel stages. `0` = auto-detect the
    /// available parallelism; `1` = run everything inline on the caller
    /// thread. Any value produces byte-identical output.
    #[serde(default)]
    pub threads: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            world: WorldConfig::default(),
            behavior: BehaviorConfig::default(),
            sampling: SamplingConfig::default(),
            teacher: TeacherConfig::default(),
            filter: FilterConfig::default(),
            annotation: AnnotationConfig::default(),
            critic: CriticConfig::default(),
            gens_per_searchbuy: 4,
            gens_per_cobuy: 6,
            plausibility_threshold: 0.5,
            threads: 0,
        }
    }
}

impl PipelineConfig {
    /// Resolve the `threads` knob: `0` means every available core.
    pub fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            WorkerPool::available_parallelism()
        } else {
            self.threads
        }
    }

    /// A fast configuration for tests.
    pub fn tiny(seed: u64) -> Self {
        PipelineConfig {
            world: WorldConfig::tiny(seed),
            behavior: BehaviorConfig::tiny(seed ^ 1),
            annotation: AnnotationConfig {
                budget_per_behavior: 400,
                ..Default::default()
            },
            critic: CriticConfig {
                epochs: 6,
                ..Default::default()
            },
            gens_per_searchbuy: 2,
            gens_per_cobuy: 2,
            ..Default::default()
        }
    }
}

/// Per-stage counters of one pipeline run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PipelineReport {
    /// Behaviour-sampling funnel.
    pub sampling: SamplingReport,
    /// Candidates generated.
    pub candidates: usize,
    /// Candidates surviving coarse filtering.
    pub kept_after_filter: usize,
    /// Filter quality vs hidden provenance.
    pub filter: FilterReport,
    /// Annotations collected.
    pub annotations: usize,
    /// Annotator disagreement rate.
    pub disagreement_rate: f64,
    /// Audit accuracy.
    pub audit_accuracy: f64,
    /// Critic metrics.
    pub critic: CriticReport,
    /// Candidates admitted to the KG.
    pub edges_admitted: usize,
    /// Simulated teacher FLOPs spent on generation.
    pub teacher_flops: f64,
}

/// Everything the pipeline produces.
pub struct PipelineOutput {
    /// The world it ran over (downstream tasks reuse it).
    pub world: World,
    /// The raw behaviour log.
    pub log: BehaviorLog,
    /// Filtered candidates (all, with decisions).
    pub filtered: Vec<FilteredCandidate>,
    /// Annotation output (instruction-data source).
    pub annotation: AnnotationOutput,
    /// Trained critic.
    pub critic: Critic,
    /// Critic scores for kept candidates, indexed like `filtered`
    /// (`None` for dropped candidates).
    pub scores: Vec<Option<(f32, f32)>>,
    /// The knowledge graph.
    pub kg: KnowledgeGraph,
    /// Table 3 statistics.
    pub stats: KgStats,
    /// Stage report.
    pub report: PipelineReport,
}

/// Run the full pipeline.
pub fn run(cfg: PipelineConfig) -> PipelineOutput {
    let world = World::generate(cfg.world.clone());
    let log = BehaviorLog::generate(&world, &cfg.behavior);
    run_over(world, log, &cfg)
}

/// Everything needed to add one admitted candidate's edges to the KG,
/// computed in parallel and merged sequentially in candidate order.
struct EdgeSpec {
    /// Head nodes in intern order.
    heads: Vec<(NodeKind, String)>,
    /// Relation type.
    relation: Relation,
    /// Canonicalised tail text.
    tail: String,
    /// Source behaviour kind.
    behavior: BehaviorKind,
    /// Product category index.
    category: u8,
    /// Critic plausibility.
    plausibility: f32,
    /// Critic typicality.
    typicality: f32,
}

/// Run the pipeline over a pre-built world and log (used by ablations that
/// share the same world across configurations).
pub fn run_over(world: World, log: BehaviorLog, cfg: &PipelineConfig) -> PipelineOutput {
    let mut report = PipelineReport::default();
    let specificity = SpecificityService::new(cfg.world.seed ^ 0x5FEC, 0.05);
    let pool = WorkerPool::new(cfg.effective_threads());

    // §3.2.1 sampling
    let sampled = sample_behaviors(&world, &log, &specificity, &cfg.sampling);
    report.sampling = sampled.report.clone();

    // §3.2.2 generation. Each (behaviour, generation) pair is one task
    // whose RNG stream is derived from its coordinates, not from a shared
    // sequential stream — so the fan-out cannot change what is generated.
    let mut tasks: Vec<(u64, u64, BehaviorRef)> = Vec::new();
    for (bi, &(q, p)) in sampled.search_buys.iter().enumerate() {
        for gi in 0..cfg.gens_per_searchbuy {
            tasks.push((bi as u64, gi as u64, BehaviorRef::SearchBuy(q, p)));
        }
    }
    let cobuy_base = sampled.search_buys.len() as u64;
    for (bi, &(p1, p2)) in sampled.cobuys.iter().enumerate() {
        for gi in 0..cfg.gens_per_cobuy {
            tasks.push((
                cobuy_base + bi as u64,
                gi as u64,
                BehaviorRef::CoBuy(p1, p2),
            ));
        }
    }
    let generated: Vec<(Candidate, CostMeter)> = pool.map(
        &tasks,
        pool.chunk_for(tasks.len()),
        |_, &(bi, gi, behavior)| {
            let mut teacher = Teacher::for_task(&world, cfg.teacher.clone(), bi, gi);
            let candidate = match behavior {
                BehaviorRef::SearchBuy(q, p) => teacher.generate_search_buy(q, p),
                BehaviorRef::CoBuy(p1, p2) => teacher.generate_cobuy(p1, p2),
            };
            (candidate, teacher.meter)
        },
    );
    let mut meter = CostMeter::new(cfg.teacher.model);
    let mut candidates = Vec::with_capacity(generated.len());
    for (c, m) in generated {
        meter.merge(&m);
        candidates.push(c);
    }
    report.candidates = candidates.len();
    report.teacher_flops = meter.total_flops();

    // Table 3: behaviour-pair counts per category
    let mut stats = KgStats::new();
    for &(q, _) in &sampled.search_buys {
        stats.add_behavior_pairs(BehaviorKind::SearchBuy, world.query(q).domain.0, 1);
    }
    for &(p1, _) in &sampled.cobuys {
        stats.add_behavior_pairs(BehaviorKind::CoBuy, world.ptype_of(p1).domain.0, 1);
    }

    // §3.3.1 coarse filtering (per-candidate decisions fan out)
    let filter = CoarseFilter::fit(&cosmo_synth::corpus(&world), cfg.filter.clone());
    let filtered = filter.filter_with(&world, candidates, &pool);
    report.kept_after_filter = filtered.iter().filter(|f| f.decision.kept()).count();
    report.filter = FilterReport::evaluate(&filtered);

    // §3.3.2 annotation
    let annotation = annotate(&world, &log, &filtered, &cfg.annotation);
    report.annotations = annotation.annotations.len();
    report.disagreement_rate = annotation.disagreement_rate;
    report.audit_accuracy = annotation.audit_accuracy;
    for a in &annotation.annotations {
        let c = &filtered[a.candidate_idx].candidate;
        stats.add_annotations(c.behavior.kind(), c.domain.0, 1);
    }

    // critic training (example construction fans out; training itself is
    // sequential SGD and stays on the caller thread)
    let mut critic = Critic::new(cfg.critic.clone());
    let examples: Vec<CriticExample> = pool.map(
        &annotation.annotations,
        pool.chunk_for(annotation.annotations.len()),
        |_, a| {
            let f = &filtered[a.candidate_idx];
            let tail = f.parsed.as_ref().map(|p| p.tail.as_str()).unwrap_or("");
            CriticExample {
                features: features(&world, &f.candidate, tail, cfg.critic.buckets),
                plausible: a.answers.plausible.as_bool(),
                typical: a.answers.typical.as_bool(),
            }
        },
    );
    report.critic = critic.train(&examples);

    // critic scoring of every kept candidate
    let kept_idx: Vec<usize> = filtered
        .iter()
        .enumerate()
        .filter(|(_, f)| f.decision.kept())
        .map(|(i, _)| i)
        .collect();
    let feats: Vec<Vec<usize>> = pool.map(&kept_idx, pool.chunk_for(kept_idx.len()), |_, &i| {
        let f = &filtered[i];
        let tail = f.parsed.as_ref().map(|p| p.tail.as_str()).unwrap_or("");
        features(&world, &f.candidate, tail, cfg.critic.buckets)
    });
    // score in fixed chunks to bound scratch size; each chunk is one
    // batched tape-free forward (`Critic::score_batch` packs the whole
    // chunk into a single matmul per head), chunks fan out across the
    // pool, and the merge is index-ordered
    const SCORE_CHUNK: usize = 512;
    let starts: Vec<usize> = (0..feats.len()).step_by(SCORE_CHUNK).collect();
    let chunk_scores: Vec<Vec<(f32, f32)>> = pool.map(&starts, 1, |_, &start| {
        let end = (start + SCORE_CHUNK).min(feats.len());
        critic.score_batch(&feats[start..end])
    });
    let mut scores: Vec<Option<(f32, f32)>> = vec![None; filtered.len()];
    for (&start, chunk) in starts.iter().zip(chunk_scores) {
        for (j, s) in chunk.into_iter().enumerate() {
            scores[kept_idx[start + j]] = Some(s);
        }
    }

    // §3.3.2: keep plausibility > threshold, build the KG. The string
    // materialisation per admitted candidate fans out; the merge interns
    // nodes sequentially in candidate order (tail first, then heads) so
    // node-id assignment matches the sequential run exactly.
    let specs: Vec<Option<EdgeSpec>> = pool.map(
        &filtered,
        pool.chunk_for(filtered.len()),
        |i, f: &FilteredCandidate| -> Option<EdgeSpec> {
            let (plausibility, typicality) = scores[i]?;
            if plausibility <= cfg.plausibility_threshold {
                return None;
            }
            let parsed = f.parsed.as_ref()?;
            if parsed.tail.is_empty() {
                return None;
            }
            let heads = match f.candidate.behavior {
                BehaviorRef::SearchBuy(q, p) => vec![
                    (NodeKind::Query, world.query(q).text.clone()),
                    (NodeKind::Product, world.product(p).title.clone()),
                ],
                BehaviorRef::CoBuy(p1, p2) => vec![
                    (NodeKind::Product, world.product(p1).title.clone()),
                    (NodeKind::Product, world.product(p2).title.clone()),
                ],
            };
            Some(EdgeSpec {
                heads,
                relation: f.candidate.relation,
                tail: parsed.tail.clone(),
                behavior: f.candidate.behavior.kind(),
                category: f.candidate.domain.0,
                plausibility,
                typicality,
            })
        },
    );
    let mut kg = KnowledgeGraph::new();
    for spec in specs.into_iter().flatten() {
        let tail_node = kg.intern_node(NodeKind::Intention, &spec.tail);
        for (kind, text) in &spec.heads {
            let head = kg.intern_node(*kind, text);
            kg.add_edge(Edge {
                head,
                relation: spec.relation,
                tail: tail_node,
                behavior: spec.behavior,
                category: spec.category,
                plausibility: spec.plausibility,
                typicality: spec.typicality,
                support: 1,
            });
            report.edges_admitted += 1;
        }
    }
    stats.count_edges(&kg);

    PipelineOutput {
        world,
        log,
        filtered,
        annotation,
        critic,
        scores,
        kg,
        stats,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosmo_teacher::Provenance;

    fn output() -> PipelineOutput {
        run(PipelineConfig::tiny(61))
    }

    #[test]
    fn pipeline_produces_a_graph() {
        let out = output();
        assert!(out.kg.num_nodes() > 50, "nodes: {}", out.kg.num_nodes());
        assert!(out.kg.num_edges() > 100, "edges: {}", out.kg.num_edges());
        assert!(
            out.kg.num_relations() >= 8,
            "relations: {}",
            out.kg.num_relations()
        );
    }

    #[test]
    fn funnel_is_monotone() {
        let out = output();
        let r = &out.report;
        assert!(r.kept_after_filter <= r.candidates);
        assert!(r.annotations <= r.kept_after_filter);
        assert!(r.edges_admitted <= 2 * r.kept_after_filter);
        assert!(r.teacher_flops > 0.0);
    }

    #[test]
    fn admitted_edges_are_mostly_plausible_truth() {
        let out = output();
        // Of the candidates the critic admitted, most should genuinely be
        // in-profile knowledge (typical / atypical / shared co-buy).
        let mut good = 0;
        let mut total = 0;
        for (i, f) in out.filtered.iter().enumerate() {
            if let Some((p, _)) = out.scores[i] {
                if p > 0.5 {
                    total += 1;
                    if matches!(
                        f.candidate.provenance,
                        Provenance::Typical | Provenance::PlausibleAtypical
                    ) {
                        good += 1;
                    }
                }
            }
        }
        assert!(total > 50);
        let precision = good as f64 / total as f64;
        assert!(precision > 0.5, "KG precision {precision} too low");
    }

    #[test]
    fn stats_totals_match_graph() {
        let out = output();
        let (_, _, cb_edges) = out.stats.totals(BehaviorKind::CoBuy);
        let (_, _, sb_edges) = out.stats.totals(BehaviorKind::SearchBuy);
        assert_eq!((cb_edges + sb_edges) as usize, out.kg.num_edges());
    }

    #[test]
    fn thread_count_does_not_change_output() {
        let mut sequential = PipelineConfig::tiny(61);
        sequential.threads = 1;
        let mut parallel = PipelineConfig::tiny(61);
        parallel.threads = 4;
        let a = run(sequential);
        let b = run(parallel);
        assert_eq!(a.report, b.report);
        assert_eq!(a.kg.num_nodes(), b.kg.num_nodes());
        assert_eq!(a.kg.num_edges(), b.kg.num_edges());
        assert_eq!(a.scores, b.scores);
        for (fa, fb) in a.filtered.iter().zip(&b.filtered) {
            assert_eq!(fa.candidate.raw, fb.candidate.raw);
            assert_eq!(fa.decision, fb.decision);
        }
    }

    #[test]
    fn table4_shape_holds_end_to_end() {
        let out = output();
        let (sp, st) = out.annotation.table4_ratios(BehaviorKind::SearchBuy);
        let (cp, ct) = out.annotation.table4_ratios(BehaviorKind::CoBuy);
        assert!(st > ct, "search-buy typicality {st} vs co-buy {ct}");
        assert!(sp > cp);
    }
}
