//! The end-to-end offline knowledge-generation pipeline (Figure 2).
//!
//! world → behaviour logs → fine-grained sampling (§3.2.1) → QA-prompted
//! teacher generation (§3.2.2) → coarse filtering (§3.3.1) → human-in-the-
//! loop annotation (§3.3.2) → critic training and scoring → knowledge graph
//! (plausibility > 0.5) with Table 3 statistics.
//!
//! The output bundles everything downstream stages need: the KG for
//! serving/navigation, the annotations for instruction-data construction
//! (§3.4), the kept candidates with critic scores, and a stage-by-stage
//! report used by the repro binaries and ablations.

use crate::annotation::{annotate, AnnotationConfig, AnnotationOutput};
use crate::critic::{features, Critic, CriticConfig, CriticExample, CriticReport};
use crate::filter::{CoarseFilter, FilterConfig, FilterReport, FilteredCandidate};
use crate::sampling::{sample_behaviors, SamplingConfig, SamplingReport};
use cosmo_kg::{BehaviorKind, Edge, KgStats, KnowledgeGraph, NodeKind};
use cosmo_synth::{BehaviorConfig, BehaviorLog, SpecificityService, World, WorldConfig};
use cosmo_teacher::{BehaviorRef, Teacher, TeacherConfig};
use serde::{Deserialize, Serialize};

/// Full pipeline configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// World generation.
    pub world: WorldConfig,
    /// Behaviour-log generation.
    pub behavior: BehaviorConfig,
    /// Behaviour sampling strategies.
    pub sampling: SamplingConfig,
    /// Teacher LLM simulation.
    pub teacher: TeacherConfig,
    /// Coarse filtering thresholds.
    pub filter: FilterConfig,
    /// Annotation process.
    pub annotation: AnnotationConfig,
    /// Critic training.
    pub critic: CriticConfig,
    /// Generations prompted per sampled search-buy pair.
    pub gens_per_searchbuy: usize,
    /// Generations prompted per sampled co-buy pair.
    pub gens_per_cobuy: usize,
    /// Keep candidates with critic plausibility above this (§3.3.2: 0.5).
    pub plausibility_threshold: f32,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            world: WorldConfig::default(),
            behavior: BehaviorConfig::default(),
            sampling: SamplingConfig::default(),
            teacher: TeacherConfig::default(),
            filter: FilterConfig::default(),
            annotation: AnnotationConfig::default(),
            critic: CriticConfig::default(),
            gens_per_searchbuy: 4,
            gens_per_cobuy: 6,
            plausibility_threshold: 0.5,
        }
    }
}

impl PipelineConfig {
    /// A fast configuration for tests.
    pub fn tiny(seed: u64) -> Self {
        PipelineConfig {
            world: WorldConfig::tiny(seed),
            behavior: BehaviorConfig::tiny(seed ^ 1),
            annotation: AnnotationConfig {
                budget_per_behavior: 400,
                ..Default::default()
            },
            critic: CriticConfig {
                epochs: 6,
                ..Default::default()
            },
            gens_per_searchbuy: 2,
            gens_per_cobuy: 2,
            ..Default::default()
        }
    }
}

/// Per-stage counters of one pipeline run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PipelineReport {
    /// Behaviour-sampling funnel.
    pub sampling: SamplingReport,
    /// Candidates generated.
    pub candidates: usize,
    /// Candidates surviving coarse filtering.
    pub kept_after_filter: usize,
    /// Filter quality vs hidden provenance.
    pub filter: FilterReport,
    /// Annotations collected.
    pub annotations: usize,
    /// Annotator disagreement rate.
    pub disagreement_rate: f64,
    /// Audit accuracy.
    pub audit_accuracy: f64,
    /// Critic metrics.
    pub critic: CriticReport,
    /// Candidates admitted to the KG.
    pub edges_admitted: usize,
    /// Simulated teacher FLOPs spent on generation.
    pub teacher_flops: f64,
}

/// Everything the pipeline produces.
pub struct PipelineOutput {
    /// The world it ran over (downstream tasks reuse it).
    pub world: World,
    /// The raw behaviour log.
    pub log: BehaviorLog,
    /// Filtered candidates (all, with decisions).
    pub filtered: Vec<FilteredCandidate>,
    /// Annotation output (instruction-data source).
    pub annotation: AnnotationOutput,
    /// Trained critic.
    pub critic: Critic,
    /// Critic scores for kept candidates, indexed like `filtered`
    /// (`None` for dropped candidates).
    pub scores: Vec<Option<(f32, f32)>>,
    /// The knowledge graph.
    pub kg: KnowledgeGraph,
    /// Table 3 statistics.
    pub stats: KgStats,
    /// Stage report.
    pub report: PipelineReport,
}

/// Run the full pipeline.
pub fn run(cfg: PipelineConfig) -> PipelineOutput {
    let world = World::generate(cfg.world.clone());
    let log = BehaviorLog::generate(&world, &cfg.behavior);
    run_over(world, log, &cfg)
}

/// Run the pipeline over a pre-built world and log (used by ablations that
/// share the same world across configurations).
pub fn run_over(world: World, log: BehaviorLog, cfg: &PipelineConfig) -> PipelineOutput {
    let mut report = PipelineReport::default();
    let specificity = SpecificityService::new(cfg.world.seed ^ 0x5FEC, 0.05);

    // §3.2.1 sampling
    let sampled = sample_behaviors(&world, &log, &specificity, &cfg.sampling);
    report.sampling = sampled.report.clone();

    // §3.2.2 generation
    let mut teacher = Teacher::new(&world, cfg.teacher.clone());
    let mut candidates = Vec::new();
    for &(q, p) in &sampled.search_buys {
        for _ in 0..cfg.gens_per_searchbuy {
            candidates.push(teacher.generate_search_buy(q, p));
        }
    }
    for &(p1, p2) in &sampled.cobuys {
        for _ in 0..cfg.gens_per_cobuy {
            candidates.push(teacher.generate_cobuy(p1, p2));
        }
    }
    report.candidates = candidates.len();
    report.teacher_flops = teacher.meter.total_flops();

    // Table 3: behaviour-pair counts per category
    let mut stats = KgStats::new();
    for &(q, _) in &sampled.search_buys {
        stats.add_behavior_pairs(BehaviorKind::SearchBuy, world.query(q).domain.0, 1);
    }
    for &(p1, _) in &sampled.cobuys {
        stats.add_behavior_pairs(BehaviorKind::CoBuy, world.ptype_of(p1).domain.0, 1);
    }

    // §3.3.1 coarse filtering
    let filter = CoarseFilter::fit(&cosmo_synth::corpus(&world), cfg.filter.clone());
    let filtered = filter.filter(&world, candidates);
    report.kept_after_filter = filtered.iter().filter(|f| f.decision.kept()).count();
    report.filter = FilterReport::evaluate(&filtered);

    // §3.3.2 annotation
    let annotation = annotate(&world, &log, &filtered, &cfg.annotation);
    report.annotations = annotation.annotations.len();
    report.disagreement_rate = annotation.disagreement_rate;
    report.audit_accuracy = annotation.audit_accuracy;
    for a in &annotation.annotations {
        let c = &filtered[a.candidate_idx].candidate;
        stats.add_annotations(c.behavior.kind(), c.domain.0, 1);
    }

    // critic training
    let mut critic = Critic::new(cfg.critic.clone());
    let examples: Vec<CriticExample> = annotation
        .annotations
        .iter()
        .map(|a| {
            let f = &filtered[a.candidate_idx];
            let tail = f.parsed.as_ref().map(|p| p.tail.as_str()).unwrap_or("");
            CriticExample {
                features: features(&world, &f.candidate, tail, cfg.critic.buckets),
                plausible: a.answers.plausible.as_bool(),
                typical: a.answers.typical.as_bool(),
            }
        })
        .collect();
    report.critic = critic.train(&examples);

    // critic scoring of every kept candidate
    let kept_idx: Vec<usize> = filtered
        .iter()
        .enumerate()
        .filter(|(_, f)| f.decision.kept())
        .map(|(i, _)| i)
        .collect();
    let feats: Vec<Vec<usize>> = kept_idx
        .iter()
        .map(|&i| {
            let f = &filtered[i];
            let tail = f.parsed.as_ref().map(|p| p.tail.as_str()).unwrap_or("");
            features(&world, &f.candidate, tail, cfg.critic.buckets)
        })
        .collect();
    let mut scores: Vec<Option<(f32, f32)>> = vec![None; filtered.len()];
    // score in chunks to bound tape size
    let mut offset = 0;
    for chunk in feats.chunks(512) {
        for (j, s) in critic.score_batch(chunk).into_iter().enumerate() {
            scores[kept_idx[offset + j]] = Some(s);
        }
        offset += chunk.len();
    }

    // §3.3.2: keep plausibility > threshold, build the KG
    let mut kg = KnowledgeGraph::new();
    for (i, f) in filtered.iter().enumerate() {
        let Some((plaus, typ)) = scores[i] else {
            continue;
        };
        if plaus <= cfg.plausibility_threshold {
            continue;
        }
        let Some(parsed) = &f.parsed else { continue };
        if parsed.tail.is_empty() {
            continue;
        }
        let tail_node = kg.intern_node(NodeKind::Intention, &parsed.tail);
        let relation = f.candidate.relation;
        let category = f.candidate.domain.0;
        match f.candidate.behavior {
            BehaviorRef::SearchBuy(q, p) => {
                let qn = kg.intern_node(NodeKind::Query, &world.query(q).text);
                let pn = kg.intern_node(NodeKind::Product, &world.product(p).title);
                for head in [qn, pn] {
                    kg.add_edge(Edge {
                        head,
                        relation,
                        tail: tail_node,
                        behavior: BehaviorKind::SearchBuy,
                        category,
                        plausibility: plaus,
                        typicality: typ,
                        support: 1,
                    });
                    report.edges_admitted += 1;
                }
            }
            BehaviorRef::CoBuy(p1, p2) => {
                for p in [p1, p2] {
                    let pn = kg.intern_node(NodeKind::Product, &world.product(p).title);
                    kg.add_edge(Edge {
                        head: pn,
                        relation,
                        tail: tail_node,
                        behavior: BehaviorKind::CoBuy,
                        category,
                        plausibility: plaus,
                        typicality: typ,
                        support: 1,
                    });
                    report.edges_admitted += 1;
                }
            }
        }
    }
    stats.count_edges(&kg);

    PipelineOutput {
        world,
        log,
        filtered,
        annotation,
        critic,
        scores,
        kg,
        stats,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosmo_teacher::Provenance;

    fn output() -> PipelineOutput {
        run(PipelineConfig::tiny(61))
    }

    #[test]
    fn pipeline_produces_a_graph() {
        let out = output();
        assert!(out.kg.num_nodes() > 50, "nodes: {}", out.kg.num_nodes());
        assert!(out.kg.num_edges() > 100, "edges: {}", out.kg.num_edges());
        assert!(
            out.kg.num_relations() >= 8,
            "relations: {}",
            out.kg.num_relations()
        );
    }

    #[test]
    fn funnel_is_monotone() {
        let out = output();
        let r = &out.report;
        assert!(r.kept_after_filter <= r.candidates);
        assert!(r.annotations <= r.kept_after_filter);
        assert!(r.edges_admitted <= 2 * r.kept_after_filter);
        assert!(r.teacher_flops > 0.0);
    }

    #[test]
    fn admitted_edges_are_mostly_plausible_truth() {
        let out = output();
        // Of the candidates the critic admitted, most should genuinely be
        // in-profile knowledge (typical / atypical / shared co-buy).
        let mut good = 0;
        let mut total = 0;
        for (i, f) in out.filtered.iter().enumerate() {
            if let Some((p, _)) = out.scores[i] {
                if p > 0.5 {
                    total += 1;
                    if matches!(
                        f.candidate.provenance,
                        Provenance::Typical | Provenance::PlausibleAtypical
                    ) {
                        good += 1;
                    }
                }
            }
        }
        assert!(total > 50);
        let precision = good as f64 / total as f64;
        assert!(precision > 0.5, "KG precision {precision} too low");
    }

    #[test]
    fn stats_totals_match_graph() {
        let out = output();
        let (_, _, cb_edges) = out.stats.totals(BehaviorKind::CoBuy);
        let (_, _, sb_edges) = out.stats.totals(BehaviorKind::SearchBuy);
        assert_eq!((cb_edges + sb_edges) as usize, out.kg.num_edges());
    }

    #[test]
    fn table4_shape_holds_end_to_end() {
        let out = output();
        let (sp, st) = out.annotation.table4_ratios(BehaviorKind::SearchBuy);
        let (cp, ct) = out.annotation.table4_ratios(BehaviorKind::CoBuy);
        assert!(st > ct, "search-buy typicality {st} vs co-buy {ct}");
        assert!(sp > cp);
    }
}
