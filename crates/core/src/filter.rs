//! Coarse-grained knowledge refinement (§3.3.1).
//!
//! Two stages, exactly as the paper describes:
//!
//! **Rule-based filtering** — extract the first sentence (nltk →
//! [`cosmo_text::segment`]), drop incomplete sentences via a perplexity
//! threshold (GPT-2 → [`cosmo_text::NgramLm`]), drop generations that echo
//! the query / product type / product title (exact or small edit distance),
//! and drop *generic* knowledge ("used for the same reason") identified by
//! combining tail frequency with the entropy of its head distribution —
//! generic tails "co-occur with many products or queries rather than
//! specific ones".
//!
//! **Similarity filtering** — embed the knowledge tail and the behaviour
//! context with the e-commerce embedder and drop tails whose cosine
//! similarity is above a threshold (Eq. 1): those are "essentially
//! paraphrases of original user behavior contexts".

use cosmo_exec::WorkerPool;
use cosmo_synth::World;
use cosmo_teacher::{parse_candidate, BehaviorRef, Candidate, Parsed};
use cosmo_text::distance::edit_distance_bounded;
use cosmo_text::{segment, FxHashMap, HashedEmbedder, NgramLm, Vocab};
use serde::{Deserialize, Serialize};

/// Why a candidate was dropped (or kept).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FilterDecision {
    /// Survived all filters.
    Keep,
    /// Unparseable or incomplete sentence.
    Incomplete,
    /// Perplexity above threshold.
    HighPerplexity,
    /// Echoes the query / product type / product title.
    Echo,
    /// Generic platitude (frequency × entropy rule).
    Generic,
    /// Paraphrase of the behaviour context (similarity filter).
    Paraphrase,
}

impl FilterDecision {
    /// Did the candidate survive?
    pub fn kept(self) -> bool {
        self == FilterDecision::Keep
    }
}

/// Filter thresholds.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FilterConfig {
    /// N-gram LM order.
    pub lm_order: usize,
    /// Drop sentences whose per-token perplexity exceeds this.
    pub perplexity_threshold: f64,
    /// Max edit distance for the echo rule.
    pub echo_edit_distance: usize,
    /// A tail is generic when it appears at least this often …
    pub generic_min_freq: u32,
    /// … across heads with at least this entropy (nats) …
    pub generic_min_entropy: f64,
    /// … spanning at least this many distinct product domains. Genuine
    /// intents are domain-specific; platitudes appear everywhere. The
    /// domain-spread test keeps the rule scale-free (raw frequency grows
    /// with corpus size, but legitimate popular intents stay in-domain).
    pub generic_min_domains: usize,
    /// Drop tails whose cosine similarity with the context exceeds this.
    pub similarity_threshold: f32,
    /// Embedding dimensionality.
    pub embed_dim: usize,
}

impl Default for FilterConfig {
    fn default() -> Self {
        FilterConfig {
            lm_order: 3,
            perplexity_threshold: 320.0,
            echo_edit_distance: 3,
            generic_min_freq: 12,
            generic_min_entropy: 2.3,
            generic_min_domains: 12,
            similarity_threshold: 0.82,
            embed_dim: 256,
        }
    }
}

/// A candidate with its parse and filter outcome.
#[derive(Debug, Clone)]
pub struct FilteredCandidate {
    /// The raw candidate.
    pub candidate: Candidate,
    /// Parsed tail + relation hint (`None` when unparseable).
    pub parsed: Option<Parsed>,
    /// Filter decision.
    pub decision: FilterDecision,
}

/// The fitted coarse filter (LM + embedder trained on the world corpus).
pub struct CoarseFilter {
    vocab: Vocab,
    lm: NgramLm,
    embedder: HashedEmbedder,
    cfg: FilterConfig,
}

impl CoarseFilter {
    /// Fit the LM and embedder on the e-commerce corpus.
    pub fn fit(corpus: &[String], cfg: FilterConfig) -> Self {
        let (vocab, lm) = cosmo_text::ngram::train_lm(corpus, cfg.lm_order);
        let embedder = HashedEmbedder::fit(corpus, cfg.embed_dim);
        CoarseFilter {
            vocab,
            lm,
            embedder,
            cfg,
        }
    }

    /// Access the fitted embedder (reused by serving/feature extraction).
    pub fn embedder(&self) -> &HashedEmbedder {
        &self.embedder
    }

    /// Perplexity of a raw sentence under the corpus LM.
    pub fn perplexity(&self, text: &str) -> f64 {
        self.lm.perplexity_str(text, &self.vocab)
    }

    /// Run both filter stages over a candidate batch. Generic detection is
    /// corpus-level (frequency + head entropy), hence the batch interface.
    pub fn filter(&self, world: &World, candidates: Vec<Candidate>) -> Vec<FilteredCandidate> {
        self.filter_with(world, candidates, &WorkerPool::new(1))
    }

    /// [`CoarseFilter::filter`], fanning the per-candidate decisions out
    /// over a worker pool. Pass 1 (corpus-level generic-tail statistics)
    /// stays sequential; pass 2 decisions are independent per candidate, so
    /// the index-ordered map yields output identical to the sequential run.
    pub fn filter_with(
        &self,
        world: &World,
        candidates: Vec<Candidate>,
        pool: &WorkerPool,
    ) -> Vec<FilteredCandidate> {
        // Pass 1: parse everything and build tail → head-count stats.
        let parses: Vec<Option<Parsed>> =
            candidates.iter().map(|c| parse_candidate(&c.raw)).collect();
        let mut tail_heads: FxHashMap<&str, FxHashMap<u64, u64>> = FxHashMap::default();
        let mut tail_domains: FxHashMap<&str, std::collections::HashSet<u8>> = FxHashMap::default();
        for (c, p) in candidates.iter().zip(parses.iter()) {
            if let Some(p) = p {
                if !p.tail.is_empty() {
                    let head_key = match c.behavior {
                        BehaviorRef::SearchBuy(q, _) => q.0 as u64,
                        BehaviorRef::CoBuy(p1, _) => (1u64 << 32) | p1.0 as u64,
                    };
                    *tail_heads
                        .entry(p.tail.as_str())
                        .or_default()
                        .entry(head_key)
                        .or_insert(0) += 1;
                    tail_domains
                        .entry(p.tail.as_str())
                        .or_default()
                        .insert(c.domain.0);
                }
            }
        }
        let generic_tails: std::collections::HashSet<String> = tail_heads
            .iter()
            .filter(|(tail, heads)| {
                let freq: u64 = heads.values().sum();
                if freq < self.cfg.generic_min_freq as u64 {
                    return false;
                }
                let spread = tail_domains.get(*tail).map_or(0, |d| d.len());
                if spread < self.cfg.generic_min_domains {
                    return false;
                }
                let counts: Vec<u64> = heads.values().copied().collect();
                cosmo_text::entropy(&counts) >= self.cfg.generic_min_entropy
            })
            .map(|(t, _)| t.to_string())
            .collect();

        // Pass 2: per-candidate decisions, fanned out over the pool.
        let pairs: Vec<(Candidate, Option<Parsed>)> = candidates.into_iter().zip(parses).collect();
        let decisions: Vec<FilterDecision> =
            pool.map(&pairs, pool.chunk_for(pairs.len()), |_, (c, p)| {
                self.decide(world, c, p.as_ref(), &generic_tails)
            });
        pairs
            .into_iter()
            .zip(decisions)
            .map(|((candidate, parsed), decision)| FilteredCandidate {
                candidate,
                parsed,
                decision,
            })
            .collect()
    }

    fn decide(
        &self,
        world: &World,
        c: &Candidate,
        parsed: Option<&Parsed>,
        generic_tails: &std::collections::HashSet<String>,
    ) -> FilterDecision {
        // rule 1: completeness
        let Some(parsed) = parsed else {
            return FilterDecision::Incomplete;
        };
        let Some(sentence) = segment::first_sentence(&c.raw) else {
            return FilterDecision::Incomplete;
        };
        if parsed.tail.is_empty() || !segment::looks_complete(sentence.trim_end_matches('.')) {
            return FilterDecision::Incomplete;
        }
        // rule 2: perplexity
        if self.perplexity(&sentence) > self.cfg.perplexity_threshold {
            return FilterDecision::HighPerplexity;
        }
        // rule 3: echo of query / product type / title
        let contexts = self.contexts(world, c);
        for ctx in &contexts {
            let close = parsed.tail == *ctx
                || edit_distance_bounded(&parsed.tail, ctx, self.cfg.echo_edit_distance).is_some();
            if close {
                return FilterDecision::Echo;
            }
        }
        // rule 4: generic (frequency × entropy)
        if generic_tails.contains(&parsed.tail) {
            return FilterDecision::Generic;
        }
        // similarity filter (Eq. 1) — batched: the tail is embedded once and
        // the context embeddings reuse one scratch buffer (no per-context
        // allocation), producing the same cosines bitwise.
        let sims = self.embedder.similarity_many(&parsed.tail, &contexts);
        if sims.iter().any(|&sim| sim > self.cfg.similarity_threshold) {
            return FilterDecision::Paraphrase;
        }
        FilterDecision::Keep
    }

    /// Behaviour context strings: query text, product titles, type names.
    fn contexts(&self, world: &World, c: &Candidate) -> Vec<String> {
        match c.behavior {
            BehaviorRef::SearchBuy(q, p) => vec![
                world.query(q).text.clone(),
                world.product(p).title.clone(),
                world.ptype_of(p).name.clone(),
            ],
            BehaviorRef::CoBuy(p1, p2) => vec![
                world.product(p1).title.clone(),
                world.product(p2).title.clone(),
                world.ptype_of(p1).name.clone(),
                world.ptype_of(p2).name.clone(),
            ],
        }
    }
}

/// Filter-quality report against the hidden provenance labels
/// (**evaluation only** — the filter itself never sees provenance).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FilterReport {
    /// Candidates in.
    pub total: usize,
    /// Candidates kept.
    pub kept: usize,
    /// Of the dropped, how many were genuinely junk
    /// (generic/paraphrase/incomplete provenance).
    pub true_drops: usize,
    /// Of the dropped, how many were typical knowledge (collateral damage).
    pub typical_dropped: usize,
    /// Of the kept, how many are junk that leaked through.
    pub junk_kept: usize,
    /// Drop counts per decision: (incomplete, perplexity, echo, generic,
    /// paraphrase).
    pub drops_by_rule: [usize; 5],
}

impl FilterReport {
    /// Evaluate filter decisions against provenance.
    pub fn evaluate(filtered: &[FilteredCandidate]) -> Self {
        use cosmo_teacher::Provenance as P;
        let mut r = FilterReport {
            total: filtered.len(),
            ..Default::default()
        };
        for f in filtered {
            match f.decision {
                FilterDecision::Incomplete => r.drops_by_rule[0] += 1,
                FilterDecision::HighPerplexity => r.drops_by_rule[1] += 1,
                FilterDecision::Echo => r.drops_by_rule[2] += 1,
                FilterDecision::Generic => r.drops_by_rule[3] += 1,
                FilterDecision::Paraphrase => r.drops_by_rule[4] += 1,
                FilterDecision::Keep => {}
            }
            let junk = matches!(
                f.candidate.provenance,
                P::Generic | P::Paraphrase | P::Incomplete
            );
            if f.decision.kept() {
                r.kept += 1;
                if junk {
                    r.junk_kept += 1;
                }
            } else {
                if junk {
                    r.true_drops += 1;
                }
                if f.candidate.provenance == P::Typical {
                    r.typical_dropped += 1;
                }
            }
        }
        r
    }

    /// Precision of drops: dropped-junk / dropped.
    pub fn drop_precision(&self) -> f64 {
        let dropped = self.total - self.kept;
        if dropped == 0 {
            1.0
        } else {
            self.true_drops as f64 / dropped as f64
        }
    }

    /// Recall of junk removal: dropped-junk / total-junk.
    pub fn junk_recall(&self) -> f64 {
        let junk = self.true_drops + self.junk_kept;
        if junk == 0 {
            1.0
        } else {
            self.true_drops as f64 / junk as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosmo_synth::{BehaviorConfig, BehaviorLog, WorldConfig};
    use cosmo_teacher::{Provenance, Teacher, TeacherConfig};

    fn filtered_batch() -> Vec<FilteredCandidate> {
        let w = World::generate(WorldConfig::tiny(41));
        let log = BehaviorLog::generate(&w, &BehaviorConfig::tiny(42));
        let mut teacher = Teacher::new(&w, TeacherConfig::default());
        let mut cands = Vec::new();
        for sb in log.search_buys.iter().take(900) {
            cands.push(teacher.generate_search_buy(sb.query, sb.product));
        }
        for cb in log.cobuys.iter().take(900) {
            cands.push(teacher.generate_cobuy(cb.p1, cb.p2));
        }
        let filter = CoarseFilter::fit(&cosmo_synth::corpus(&w), FilterConfig::default());
        filter.filter(&w, cands)
    }

    #[test]
    fn incomplete_candidates_are_dropped() {
        let batch = filtered_batch();
        for f in &batch {
            if f.candidate.provenance == Provenance::Incomplete {
                assert!(
                    !f.decision.kept(),
                    "incomplete candidate kept: {:?}",
                    f.candidate.raw
                );
            }
        }
    }

    #[test]
    fn generic_candidates_are_mostly_dropped() {
        let batch = filtered_batch();
        let (mut dropped, mut total) = (0, 0);
        for f in &batch {
            if f.candidate.provenance == Provenance::Generic {
                total += 1;
                if !f.decision.kept() {
                    dropped += 1;
                }
            }
        }
        assert!(total > 30, "need generic candidates to test against");
        let frac = dropped as f64 / total as f64;
        assert!(frac > 0.7, "generic drop rate {frac} too low");
    }

    #[test]
    fn paraphrases_are_mostly_dropped() {
        let batch = filtered_batch();
        let (mut dropped, mut total) = (0, 0);
        for f in &batch {
            if f.candidate.provenance == Provenance::Paraphrase {
                total += 1;
                if !f.decision.kept() {
                    dropped += 1;
                }
            }
        }
        assert!(total > 20);
        let frac = dropped as f64 / total as f64;
        assert!(frac > 0.6, "paraphrase drop rate {frac} too low");
    }

    #[test]
    fn typical_knowledge_mostly_survives() {
        let batch = filtered_batch();
        let (mut kept, mut total) = (0, 0);
        for f in &batch {
            if f.candidate.provenance == Provenance::Typical {
                total += 1;
                if f.decision.kept() {
                    kept += 1;
                }
            }
        }
        assert!(total > 30);
        let frac = kept as f64 / total as f64;
        assert!(frac > 0.75, "typical survival rate {frac} too low");
    }

    #[test]
    fn report_metrics_consistent() {
        let batch = filtered_batch();
        let r = FilterReport::evaluate(&batch);
        assert_eq!(r.total, batch.len());
        assert!(r.kept <= r.total);
        assert!(
            r.drop_precision() > 0.5,
            "drop precision {}",
            r.drop_precision()
        );
        assert!(r.junk_recall() > 0.6, "junk recall {}", r.junk_recall());
    }
}
