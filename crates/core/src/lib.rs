//! # cosmo-core
//!
//! The COSMO offline knowledge-generation pipeline (Figure 2 of the paper):
//! fine-grained behaviour sampling, QA-prompted teacher generation, coarse
//! filtering (rules + perplexity + similarity), human-in-the-loop
//! annotation with Eq. 2 re-weighted sampling, critic classifiers, and the
//! final knowledge-graph construction at plausibility > 0.5.
//!
//! Run the whole thing with [`pipeline::run`]; each stage is also usable on
//! its own (the ablation benches toggle stages individually).

#![forbid(unsafe_code)]

pub mod annotation;
pub mod critic;
pub mod feedback;
pub mod filter;
pub mod pipeline;
pub mod sampling;
pub mod scale;

pub use annotation::{
    annotate, render_annotation_task, Annotation, AnnotationConfig, AnnotationOutput, Ans, Answers,
    QUESTION_INSTRUCTIONS,
};
pub use critic::{auc, features, Critic, CriticConfig, CriticExample, CriticReport};
pub use feedback::{apply_feedback, IncrementalUpdate};
pub use filter::{CoarseFilter, FilterConfig, FilterDecision, FilterReport, FilteredCandidate};
pub use pipeline::{run, run_over, PipelineConfig, PipelineOutput, PipelineReport};
pub use sampling::{sample_behaviors, SampledBehaviors, SamplingConfig, SamplingReport};
pub use scale::{generate_and_freeze, ScaleFreezeReport};
