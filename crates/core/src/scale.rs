//! Paper-scale graph production: wave-parallel shard generation merged
//! through the streaming snapshot writer.
//!
//! [`cosmo_synth::scale`] cuts the head space into a fixed shard grid and
//! makes each shard a pure function of `(config, shard index)`; this module
//! fans shard generation out over the [`cosmo_exec::WorkerPool`] in waves
//! and merges the outputs **in shard order** through a global
//! [`StreamInterner`] + [`SnapshotStreamWriter`] — the same sequential-
//! intern pattern the Figure-2 pipeline uses, so the bytes on disk are
//! identical for any `threads` value (locked by a test below). The writer
//! spills sorted edge runs as it goes, which is what keeps a 29M-edge
//! freeze inside a laptop memory budget; see
//! [`cosmo_kg::stream_writer`] for the layout and the RSS argument.

use cosmo_exec::WorkerPool;
use cosmo_kg::stream_writer::{SnapshotStreamWriter, StreamInterner, StreamOptions, StreamStats};
use cosmo_kg::{Edge, NodeId, SnapshotError};
use cosmo_synth::scale::{generate_shard, ScaleConfig};
use std::path::Path;

/// Outcome of a streaming freeze, for bench reporting.
#[derive(Debug, Clone)]
pub struct ScaleFreezeReport {
    /// Writer-side stats (nodes, merged edges, spill volume, file size).
    pub stats: StreamStats,
    /// Shards generated.
    pub shards: usize,
    /// Worker threads the pool actually ran.
    pub threads: usize,
}

/// Generate the configured world shard-by-shard on `threads` workers and
/// stream-freeze it to a v2 snapshot at `path`.
///
/// Output bytes depend only on `(cfg, opts.buffer_edges)` — never on
/// `threads` (scheduling) or on how shards interleave in time: waves are
/// merged in shard order, and within a shard the local intern table fixes
/// the id assignment.
pub fn generate_and_freeze(
    cfg: &ScaleConfig,
    threads: usize,
    path: &Path,
    opts: StreamOptions,
) -> Result<ScaleFreezeReport, SnapshotError> {
    let pool = WorkerPool::new(threads);
    let shards = cfg.num_shards();
    let mut interner = StreamInterner::new();
    let mut writer = SnapshotStreamWriter::new(opts);
    // Wave size bounds how many shard outputs are resident at once. It
    // scales with the pool (keeping workers busy) but only affects
    // scheduling: the merge below always walks shards in index order.
    let wave = pool.threads().saturating_mul(2).max(1);
    let mut scratch: Vec<NodeId> = Vec::new();

    let mut next = 0usize;
    while next < shards {
        let batch: Vec<usize> = (next..shards.min(next + wave)).collect();
        next += batch.len();
        let outputs = pool.map(&batch, 1, |_, &shard| generate_shard(cfg, shard));
        for out in outputs {
            scratch.clear();
            scratch.extend(
                out.nodes
                    .iter()
                    .map(|(kind, text)| interner.intern(*kind, text)),
            );
            for e in &out.edges {
                writer.push(Edge {
                    head: scratch[e.head as usize],
                    relation: e.relation,
                    tail: scratch[e.tail as usize],
                    behavior: e.behavior,
                    category: e.category,
                    plausibility: e.plausibility,
                    typicality: e.typicality,
                    support: e.support,
                })?;
            }
        }
    }

    let stats = writer.finish(&interner, path)?;
    Ok(ScaleFreezeReport {
        stats,
        shards,
        threads: pool.threads(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosmo_kg::{KnowledgeGraph, MappedSnapshot, Verify};

    fn tmp(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("cosmo-scale-{tag}-{}.kg2", std::process::id()))
    }

    #[test]
    fn thread_count_does_not_change_snapshot_bytes() {
        let cfg = ScaleConfig::tiny(42);
        let mut baseline: Option<Vec<u8>> = None;
        for threads in [1usize, 2, 4] {
            let path = tmp(&format!("threads-{threads}"));
            let report = generate_and_freeze(
                &cfg,
                threads,
                &path,
                StreamOptions {
                    buffer_edges: 1_000, // force spills even at tiny scale
                    spill_dir: None,
                },
            )
            .unwrap();
            let bytes = std::fs::read(&path).unwrap();
            let _ = std::fs::remove_file(&path);
            assert_eq!(report.stats.file_bytes as usize, bytes.len());
            assert!(report.stats.spill_runs > 0, "tiny config must spill");
            match &baseline {
                None => baseline = Some(bytes),
                Some(b) => assert_eq!(b, &bytes, "threads={threads} changed the snapshot bytes"),
            }
        }
    }

    #[test]
    fn streamed_freeze_matches_store_freeze() {
        // Replaying the same shard sequence through the mutable store must
        // produce the identical file — the store is the semantics oracle.
        let cfg = ScaleConfig::tiny(9);
        let path = tmp("vs-store");
        generate_and_freeze(
            &cfg,
            2,
            &path,
            StreamOptions {
                buffer_edges: 777,
                spill_dir: None,
            },
        )
        .unwrap();
        let streamed = std::fs::read(&path).unwrap();
        let _ = std::fs::remove_file(&path);

        let mut kg = KnowledgeGraph::new();
        for shard in 0..cfg.num_shards() {
            let out = generate_shard(&cfg, shard);
            let ids: Vec<_> = out
                .nodes
                .iter()
                .map(|(kind, text)| kg.intern_node(*kind, text))
                .collect();
            for e in &out.edges {
                kg.add_edge(Edge {
                    head: ids[e.head as usize],
                    relation: e.relation,
                    tail: ids[e.tail as usize],
                    behavior: e.behavior,
                    category: e.category,
                    plausibility: e.plausibility,
                    typicality: e.typicality,
                    support: e.support,
                });
            }
        }
        assert_eq!(streamed, kg.freeze().to_bytes_v2());
        MappedSnapshot::from_bytes(streamed, Verify::Full).unwrap();
    }
}
