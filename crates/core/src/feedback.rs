//! The feedback loop (Figure 5, §3.5.2): "continuous model refinement is
//! achieved by feeding back user interactions into COSMO-LM, ensuring
//! up-to-date responsiveness to evolving user behaviors."
//!
//! [`apply_feedback`] closes the loop offline-side: interactions recorded
//! by the serving stack (`(query text, purchased product title)` pairs)
//! are resolved back to behaviour pairs, prompted through the teacher,
//! passed through the *already fitted* coarse filter and critic, and the
//! surviving knowledge is appended to the existing KG — an incremental
//! daily refresh rather than a full rebuild.

use crate::critic::features;
use crate::filter::CoarseFilter;
use crate::pipeline::{PipelineConfig, PipelineOutput};
use cosmo_kg::{BehaviorKind, Edge, NodeKind};
use cosmo_synth::{ProductId, QueryId};
use cosmo_teacher::{BehaviorRef, Teacher, TeacherConfig};
use cosmo_text::FxHashMap;
use serde::{Deserialize, Serialize};

/// Counters from one incremental refresh.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IncrementalUpdate {
    /// Feedback events that resolved to known (query, product) pairs.
    pub resolved_pairs: usize,
    /// Feedback events that could not be resolved (logged and skipped).
    pub unresolved: usize,
    /// Teacher candidates generated.
    pub candidates: usize,
    /// Candidates surviving the coarse filter.
    pub kept: usize,
    /// New or reinforced KG edges.
    pub edges: usize,
}

/// Apply serving feedback to an existing pipeline output, growing its KG.
///
/// Deterministic per `refresh_seed` (use e.g. the day number), so repeated
/// daily refreshes are reproducible.
pub fn apply_feedback(
    out: &mut PipelineOutput,
    cfg: &PipelineConfig,
    feedback: &[(String, String)],
    refresh_seed: u64,
) -> IncrementalUpdate {
    let mut update = IncrementalUpdate::default();

    // resolve surface forms back to world entities
    let query_index: FxHashMap<&str, QueryId> = out
        .world
        .queries
        .iter()
        .enumerate()
        .map(|(i, q)| (q.text.as_str(), QueryId(i as u32)))
        .collect();
    let product_index: FxHashMap<&str, ProductId> = out
        .world
        .products
        .iter()
        .enumerate()
        .map(|(i, p)| (p.title.as_str(), ProductId(i as u32)))
        .collect();
    let mut pairs: Vec<(QueryId, ProductId)> = Vec::new();
    for (q, p) in feedback {
        match (query_index.get(q.as_str()), product_index.get(p.as_str())) {
            (Some(&qid), Some(&pid)) => pairs.push((qid, pid)),
            _ => update.unresolved += 1,
        }
    }
    pairs.sort_unstable();
    pairs.dedup();
    update.resolved_pairs = pairs.len();
    if pairs.is_empty() {
        return update;
    }

    // generate fresh candidates for the fed-back behaviours
    let teacher_cfg = TeacherConfig {
        seed: cfg.teacher.seed ^ refresh_seed.wrapping_mul(0x9E37_79B9),
        ..cfg.teacher.clone()
    };
    let mut teacher = Teacher::new(&out.world, teacher_cfg);
    let mut candidates = Vec::new();
    for &(q, p) in &pairs {
        for _ in 0..cfg.gens_per_searchbuy {
            candidates.push(teacher.generate_search_buy(q, p));
        }
    }
    update.candidates = candidates.len();

    // coarse filter (re-fit on the world corpus — the corpus is stable, so
    // this reproduces the production filter exactly)
    let filter = CoarseFilter::fit(&cosmo_synth::corpus(&out.world), cfg.filter.clone());
    let filtered = filter.filter(&out.world, candidates);
    update.kept = filtered.iter().filter(|f| f.decision.kept()).count();

    // score with the *existing* critic and admit above threshold
    for f in &filtered {
        if !f.decision.kept() {
            continue;
        }
        let Some(parsed) = &f.parsed else { continue };
        if parsed.tail.is_empty() {
            continue;
        }
        let feats = features(&out.world, &f.candidate, &parsed.tail, out.critic.buckets());
        let (plaus, typ) = out.critic.score(&feats);
        if plaus <= cfg.plausibility_threshold {
            continue;
        }
        let BehaviorRef::SearchBuy(q, p) = f.candidate.behavior else {
            continue;
        };
        let tail = out.kg.intern_node(NodeKind::Intention, &parsed.tail);
        let qn = out
            .kg
            .intern_node(NodeKind::Query, &out.world.query(q).text);
        let pn = out
            .kg
            .intern_node(NodeKind::Product, &out.world.product(p).title);
        for head in [qn, pn] {
            out.kg.add_edge(Edge {
                head,
                relation: f.candidate.relation,
                tail,
                behavior: BehaviorKind::SearchBuy,
                category: f.candidate.domain.0,
                plausibility: plaus,
                typicality: typ,
                support: 1,
            });
            update.edges += 1;
        }
        out.stats
            .add_behavior_pairs(BehaviorKind::SearchBuy, f.candidate.domain.0, 0);
    }
    out.stats.count_edges(&out.kg);
    update
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::run;

    fn setup() -> (PipelineOutput, PipelineConfig) {
        let cfg = PipelineConfig::tiny(0xFEED);
        (run(cfg.clone()), cfg)
    }

    /// A (query, product) pair the KG has no knowledge for yet.
    fn novel_pair(out: &PipelineOutput) -> (String, String) {
        for q in &out.world.queries {
            if out.kg.find_node(NodeKind::Query, &q.text).is_none() && !q.target_types.is_empty() {
                let p = out.world.products_of_type(q.target_types[0])[0];
                return (q.text.clone(), out.world.product(p).title.clone());
            }
        }
        panic!("no novel query found");
    }

    #[test]
    fn feedback_grows_the_graph() {
        let (mut out, cfg) = setup();
        let before_edges = out.kg.num_edges();
        let (q, p) = novel_pair(&out);
        let feedback: Vec<(String, String)> = vec![(q.clone(), p)];
        let update = apply_feedback(&mut out, &cfg, &feedback, 1);
        assert_eq!(update.resolved_pairs, 1);
        assert_eq!(update.unresolved, 0);
        assert!(update.candidates > 0);
        assert!(out.kg.num_edges() >= before_edges);
        if update.edges > 0 {
            // the fed-back query is now servable from the KG
            assert!(out.kg.find_node(NodeKind::Query, &q).is_some());
        }
    }

    #[test]
    fn unresolvable_feedback_is_counted_not_fatal() {
        let (mut out, cfg) = setup();
        let feedback = vec![("no such query".to_string(), "no such product".to_string())];
        let update = apply_feedback(&mut out, &cfg, &feedback, 2);
        assert_eq!(update.unresolved, 1);
        assert_eq!(update.resolved_pairs, 0);
        assert_eq!(update.edges, 0);
    }

    #[test]
    fn refresh_is_deterministic_per_seed() {
        let (out0, cfg) = setup();
        let (q, p) = novel_pair(&out0);
        let feedback = vec![(q, p)];
        let mut a = run(cfg.clone());
        let mut b = run(cfg.clone());
        let ua = apply_feedback(&mut a, &cfg, &feedback, 7);
        let ub = apply_feedback(&mut b, &cfg, &feedback, 7);
        assert_eq!(ua, ub);
        assert_eq!(a.kg.num_edges(), b.kg.num_edges());
    }

    #[test]
    fn repeated_feedback_reinforces_support() {
        let (mut out, cfg) = setup();
        let (q, p) = novel_pair(&out);
        let feedback = vec![(q.clone(), p.clone())];
        let u1 = apply_feedback(&mut out, &cfg, &feedback, 1);
        let edges_after_first = out.kg.num_edges();
        // a second refresh with the same feedback re-generates the same
        // candidates (same derived seed per day) or merges duplicates
        let u2 = apply_feedback(&mut out, &cfg, &feedback, 1);
        assert_eq!(u1.resolved_pairs, u2.resolved_pairs);
        assert_eq!(
            out.kg.num_edges(),
            edges_after_first,
            "identical refresh must merge into existing edges"
        );
    }
}
