//! Human-in-the-loop annotation simulation (§3.3.2, Appendix B).
//!
//! The paper annotates 30k knowledge candidates through a vendor: each
//! candidate is judged on five yes/no/not-sure questions (complete,
//! relevant, informative, plausible, typical) by two annotators, with a
//! third adjudicating disagreements; 5% of annotations are audited
//! internally (accuracy > 90%).
//!
//! Candidates are *not* sampled uniformly: Eq. 2 re-weights by
//! `log(f(t)) / (pop(q) × pop(p))` — frequent knowledge over unpopular
//! heads — so long-tail knowledge is represented and critics trained on
//! the annotations generalise beyond head products.
//!
//! Offline, the two annotators are the world [`Oracle`] corrupted by a
//! per-annotator noise model (random flips + "not sure" abstentions).

use crate::filter::FilteredCandidate;
use cosmo_kg::BehaviorKind;
use cosmo_synth::{BehaviorLog, Oracle, World};
use cosmo_teacher::BehaviorRef;
use cosmo_text::{segment, FxHashMap};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One answer to an annotation question.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Ans {
    /// Yes.
    Yes,
    /// No.
    No,
    /// Not sure.
    NotSure,
}

impl Ans {
    fn from_bool(b: bool) -> Self {
        if b {
            Ans::Yes
        } else {
            Ans::No
        }
    }

    /// Yes → `Some(true)`, No → `Some(false)`, NotSure → `None`.
    pub fn as_bool(self) -> Option<bool> {
        match self {
            Ans::Yes => Some(true),
            Ans::No => Some(false),
            Ans::NotSure => None,
        }
    }
}

/// The five annotation questions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Answers {
    /// Q1: is the explanation a complete sentence?
    pub complete: Ans,
    /// Q2: is it relevant?
    pub relevant: Ans,
    /// Q3: is it informative?
    pub informative: Ans,
    /// Q4: is it plausible?
    pub plausible: Ans,
    /// Q5: is it typical?
    pub typical: Ans,
}

/// One adjudicated annotation.
#[derive(Debug, Clone)]
pub struct Annotation {
    /// Index into the filtered-candidate batch.
    pub candidate_idx: usize,
    /// Final adjudicated answers.
    pub answers: Answers,
    /// How many of the five questions the annotators disagreed on.
    pub disagreements: u8,
    /// The candidate's behaviour kind (for Table 4 splits).
    pub behavior: BehaviorKind,
}

/// Annotation process parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AnnotationConfig {
    /// RNG seed.
    pub seed: u64,
    /// Annotation budget per behaviour kind (the paper uses 15k + 15k).
    pub budget_per_behavior: usize,
    /// Per-question probability an annotator flips the true answer.
    pub annotator_error: f64,
    /// Per-question probability an annotator abstains ("not sure").
    pub not_sure_rate: f64,
    /// Audit sample fraction (the paper audits 5%).
    pub audit_fraction: f64,
}

impl Default for AnnotationConfig {
    fn default() -> Self {
        AnnotationConfig {
            seed: 0xA0_0A7E,
            budget_per_behavior: 1_500,
            annotator_error: 0.06,
            not_sure_rate: 0.03,
            audit_fraction: 0.05,
        }
    }
}

/// Output of the annotation stage.
#[derive(Debug)]
pub struct AnnotationOutput {
    /// All adjudicated annotations.
    pub annotations: Vec<Annotation>,
    /// Per-question disagreement rate (disagreed questions / all
    /// questions) — the quantity the paper's pilot study tracks.
    pub disagreement_rate: f64,
    /// Audit accuracy (adjudicated vs ground truth over the audit sample).
    pub audit_accuracy: f64,
}

impl AnnotationOutput {
    /// Table 4: `(plausibility ratio, typicality ratio)` among annotations
    /// of one behaviour kind (Yes / (Yes + No), NotSure excluded).
    pub fn table4_ratios(&self, behavior: BehaviorKind) -> (f64, f64) {
        let mut p_yes = 0u32;
        let mut p_tot = 0u32;
        let mut t_yes = 0u32;
        let mut t_tot = 0u32;
        for a in self.annotations.iter().filter(|a| a.behavior == behavior) {
            if let Some(b) = a.answers.plausible.as_bool() {
                p_tot += 1;
                p_yes += u32::from(b);
            }
            if let Some(b) = a.answers.typical.as_bool() {
                t_tot += 1;
                t_yes += u32::from(b);
            }
        }
        (
            p_yes as f64 / p_tot.max(1) as f64,
            t_yes as f64 / t_tot.max(1) as f64,
        )
    }
}

/// Eq. 2: `w = log(f(t)) / (pop(q) × pop(p))`.
fn eq2_weight(tail_freq: u64, pop_head1: u32, pop_head2: u32) -> f64 {
    let num = (1.0 + tail_freq as f64).ln();
    num / (pop_head1 as f64 * pop_head2 as f64)
}

/// Run the annotation stage over the *kept* candidates of a filtered batch.
pub fn annotate(
    world: &World,
    log: &BehaviorLog,
    filtered: &[FilteredCandidate],
    cfg: &AnnotationConfig,
) -> AnnotationOutput {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let oracle = Oracle::new(world);

    // tail frequency for Eq. 2
    let mut tail_freq: FxHashMap<&str, u64> = FxHashMap::default();
    for f in filtered {
        if let Some(p) = &f.parsed {
            if f.decision.kept() {
                *tail_freq.entry(p.tail.as_str()).or_insert(0) += 1;
            }
        }
    }

    // candidate pools per behaviour with Eq. 2 weights
    let mut pools: [Vec<(usize, f64)>; 2] = [Vec::new(), Vec::new()];
    for (i, f) in filtered.iter().enumerate() {
        if !f.decision.kept() {
            continue;
        }
        let Some(parsed) = &f.parsed else { continue };
        let freq = tail_freq.get(parsed.tail.as_str()).copied().unwrap_or(1);
        let (pool, weight) = match f.candidate.behavior {
            BehaviorRef::SearchBuy(q, p) => {
                (0, eq2_weight(freq, log.pop_query(q), log.pop_product(p)))
            }
            BehaviorRef::CoBuy(p1, p2) => (
                1,
                eq2_weight(freq, log.pop_product(p1), log.pop_product(p2)),
            ),
        };
        pools[pool].push((i, weight));
    }

    let mut annotations = Vec::new();
    let mut disagreements = 0usize;
    let mut audit_correct = 0usize;
    let mut audit_total = 0usize;

    for pool in pools.iter_mut() {
        // weighted sampling without replacement (exponential sort trick)
        let mut keyed: Vec<(f64, usize)> = pool
            .iter()
            .map(|&(i, w)| {
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                // key = -ln(u)/w; smallest keys win
                ((-u.ln()) / w.max(1e-12), i)
            })
            .collect();
        keyed.sort_by(|a, b| a.0.total_cmp(&b.0));
        for &(_, idx) in keyed.iter().take(cfg.budget_per_behavior) {
            let f = &filtered[idx];
            let parsed = f.parsed.as_ref().expect("kept candidates are parsed");
            // ground truth
            let truth_complete = segment::first_sentence(&f.candidate.raw)
                .map(|s| segment::looks_complete(s.trim_end_matches('.')))
                .unwrap_or(false);
            let j = match f.candidate.behavior {
                BehaviorRef::SearchBuy(q, p) => {
                    oracle.judge_search_buy(q, p, f.candidate.relation, &parsed.tail)
                }
                BehaviorRef::CoBuy(p1, p2) => {
                    oracle.judge_cobuy(p1, p2, f.candidate.relation, &parsed.tail)
                }
            };
            let truth = [
                truth_complete,
                j.relevant,
                j.informative,
                j.plausible,
                j.typical,
            ];
            // two noisy annotators
            let a1 = noisy_answers(&truth, cfg, &mut rng);
            let a2 = noisy_answers(&truth, cfg, &mut rng);
            let mut final_ans = [Ans::NotSure; 5];
            let mut disagreed_q = 0u8;
            for k in 0..5 {
                if a1[k] == a2[k] && a1[k] != Ans::NotSure {
                    final_ans[k] = a1[k];
                } else {
                    // third person checks: resolves to the truth
                    disagreed_q += 1;
                    final_ans[k] = Ans::from_bool(truth[k]);
                }
            }
            disagreements += disagreed_q as usize;
            // audit sample
            if rng.gen_bool(cfg.audit_fraction) {
                for k in 0..5 {
                    audit_total += 1;
                    if final_ans[k].as_bool() == Some(truth[k]) {
                        audit_correct += 1;
                    }
                }
            }
            annotations.push(Annotation {
                candidate_idx: idx,
                answers: Answers {
                    complete: final_ans[0],
                    relevant: final_ans[1],
                    informative: final_ans[2],
                    plausible: final_ans[3],
                    typical: final_ans[4],
                },
                disagreements: disagreed_q,
                behavior: f.candidate.behavior.kind(),
            });
        }
    }

    AnnotationOutput {
        disagreement_rate: disagreements as f64 / (5 * annotations.len().max(1)) as f64,
        audit_accuracy: if audit_total == 0 {
            1.0
        } else {
            audit_correct as f64 / audit_total as f64
        },
        annotations,
    }
}

fn noisy_answers(truth: &[bool; 5], cfg: &AnnotationConfig, rng: &mut StdRng) -> [Ans; 5] {
    let mut out = [Ans::NotSure; 5];
    for k in 0..5 {
        out[k] = if rng.gen_bool(cfg.not_sure_rate) {
            Ans::NotSure
        } else if rng.gen_bool(cfg.annotator_error) {
            Ans::from_bool(!truth[k])
        } else {
            Ans::from_bool(truth[k])
        };
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::{CoarseFilter, FilterConfig};
    use cosmo_synth::{BehaviorConfig, WorldConfig};
    use cosmo_teacher::{Teacher, TeacherConfig};

    fn setup() -> (World, BehaviorLog, Vec<FilteredCandidate>) {
        let w = World::generate(WorldConfig::tiny(51));
        let log = BehaviorLog::generate(&w, &BehaviorConfig::tiny(52));
        let mut teacher = Teacher::new(&w, TeacherConfig::default());
        let mut cands = Vec::new();
        for sb in log.search_buys.iter().take(1200) {
            cands.push(teacher.generate_search_buy(sb.query, sb.product));
        }
        for cb in log.cobuys.iter().take(1200) {
            cands.push(teacher.generate_cobuy(cb.p1, cb.p2));
        }
        let filter = CoarseFilter::fit(&cosmo_synth::corpus(&w), FilterConfig::default());
        let filtered = filter.filter(&w, cands);
        (w, log, filtered)
    }

    #[test]
    fn budget_respected_per_behavior() {
        let (w, log, filtered) = setup();
        let cfg = AnnotationConfig {
            budget_per_behavior: 200,
            ..Default::default()
        };
        let out = annotate(&w, &log, &filtered, &cfg);
        let sb = out
            .annotations
            .iter()
            .filter(|a| a.behavior == BehaviorKind::SearchBuy)
            .count();
        let cb = out.annotations.len() - sb;
        assert!(sb <= 200 && cb <= 200);
        assert!(
            sb > 150 && cb > 150,
            "pools should be large enough: sb={sb} cb={cb}"
        );
    }

    #[test]
    fn audit_accuracy_above_90_percent() {
        let (w, log, filtered) = setup();
        let out = annotate(&w, &log, &filtered, &AnnotationConfig::default());
        assert!(
            out.audit_accuracy > 0.9,
            "audit accuracy {} (paper reports >90%)",
            out.audit_accuracy
        );
    }

    #[test]
    fn searchbuy_more_typical_than_cobuy() {
        let (w, log, filtered) = setup();
        let out = annotate(&w, &log, &filtered, &AnnotationConfig::default());
        let (sp, st) = out.table4_ratios(BehaviorKind::SearchBuy);
        let (cp, ct) = out.table4_ratios(BehaviorKind::CoBuy);
        assert!(
            st > ct,
            "search-buy typicality ({st:.2}) must exceed co-buy ({ct:.2}) — Table 4"
        );
        assert!(
            sp > cp,
            "search-buy plausibility ({sp:.2}) vs co-buy ({cp:.2})"
        );
        // search-buy typicality should land in the Table 4 ballpark (~35%)
        assert!((0.2..=0.55).contains(&st), "search-buy typicality {st}");
    }

    #[test]
    fn adjudication_reduces_disagreement_errors() {
        let (w, log, filtered) = setup();
        let noisy = AnnotationConfig {
            annotator_error: 0.25,
            ..Default::default()
        };
        let out = annotate(&w, &log, &filtered, &noisy);
        assert!(
            out.disagreement_rate > 0.2,
            "high noise must cause disagreement"
        );
        // adjudication resolves to truth, so audits stay accurate even with
        // noisy annotators (only agreeing-but-both-wrong survives)
        assert!(out.audit_accuracy > 0.85, "audit {}", out.audit_accuracy);
    }

    #[test]
    fn deterministic() {
        let (w, log, filtered) = setup();
        let a = annotate(&w, &log, &filtered, &AnnotationConfig::default());
        let b = annotate(&w, &log, &filtered, &AnnotationConfig::default());
        assert_eq!(a.annotations.len(), b.annotations.len());
        assert_eq!(
            a.annotations[0].candidate_idx,
            b.annotations[0].candidate_idx
        );
    }

    #[test]
    fn eq2_prefers_frequent_tails_on_unpopular_heads() {
        let frequent_unpopular = eq2_weight(50, 2, 2);
        let rare_popular = eq2_weight(2, 20, 20);
        assert!(frequent_unpopular > rare_popular * 10.0);
    }
}

/// The Appendix-B instruction text shown to annotators for each question.
pub const QUESTION_INSTRUCTIONS: [(&str, &str); 5] = [
    (
        "Completeness",
        "the explanation must be a complete, meaningful sentence.",
    ),
    (
        "Relevance",
        "the explanation should be relevant i.e., very closely connected in \
         meaning to the products it refers to.",
    ),
    (
        "Informativeness",
        "each explanation describes the shopping behavior of a customer, and \
         in so doing, it should also specify what the user may be looking for \
         in terms of a product's functional requirements.",
    ),
    (
        "Plausibility",
        "the explanation should describe the user's shopping behavior in a \
         way that is accurate, reasonable and appropriate in the particular \
         context determined by the query.",
    ),
    (
        "Typicality",
        "although we may have equally valid inferences about a customer's \
         shopping intention, those statements can be ranked differently with \
         regard to how representative they are of typical user shopping \
         behavior given what is known about the queried product.",
    ),
];

/// Render one annotation task the way the vendor interface of Figure 11
/// presents it: the behaviour context, the candidate explanation, and the
/// five yes/no/not-sure questions with their Appendix-B instructions.
pub fn render_annotation_task(
    world: &World,
    candidate: &crate::filter::FilteredCandidate,
) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "=== Annotation task ===");
    match candidate.candidate.behavior {
        BehaviorRef::SearchBuy(q, p) => {
            let _ = writeln!(out, "Behavior: search-buy");
            let _ = writeln!(out, "  Query:   {}", world.query(q).text);
            let _ = writeln!(out, "  Product: {}", world.product(p).title);
        }
        BehaviorRef::CoBuy(p1, p2) => {
            let _ = writeln!(out, "Behavior: co-buy");
            let _ = writeln!(out, "  Product A: {}", world.product(p1).title);
            let _ = writeln!(out, "  Product B: {}", world.product(p2).title);
        }
    }
    let _ = writeln!(
        out,
        "Candidate explanation: {}",
        candidate.candidate.raw.trim()
    );
    if let Some(parsed) = &candidate.parsed {
        let _ = writeln!(
            out,
            "Parsed knowledge: [{}] {}",
            candidate.candidate.relation.name(),
            parsed.tail
        );
    }
    let _ = writeln!(out, "\nAnswer yes / no / not sure:");
    for (i, (name, instruction)) in QUESTION_INSTRUCTIONS.iter().enumerate() {
        let _ = writeln!(out, "  Q{}. {name}: {instruction}", i + 1);
    }
    out
}

#[cfg(test)]
mod render_tests {
    use super::*;
    use crate::filter::{CoarseFilter, FilterConfig};
    use cosmo_synth::WorldConfig;
    use cosmo_teacher::{Teacher, TeacherConfig};

    #[test]
    fn annotation_task_renders_all_five_questions() {
        let w = World::generate(WorldConfig::tiny(501));
        let log = cosmo_synth::BehaviorLog::generate(&w, &cosmo_synth::BehaviorConfig::tiny(502));
        let mut teacher = Teacher::new(&w, TeacherConfig::default());
        let sb = log.search_buys[0];
        let cand = teacher.generate_search_buy(sb.query, sb.product);
        let filter = CoarseFilter::fit(&cosmo_synth::corpus(&w), FilterConfig::default());
        let filtered = filter.filter(&w, vec![cand]);
        let rendered = render_annotation_task(&w, &filtered[0]);
        for q in [
            "Completeness",
            "Relevance",
            "Informativeness",
            "Plausibility",
            "Typicality",
        ] {
            assert!(rendered.contains(q), "missing question {q}");
        }
        assert!(rendered.contains("Query:"));
        assert!(rendered.contains("Candidate explanation:"));
    }

    #[test]
    fn cobuy_task_shows_both_products() {
        let w = World::generate(WorldConfig::tiny(501));
        let log = cosmo_synth::BehaviorLog::generate(&w, &cosmo_synth::BehaviorConfig::tiny(502));
        let mut teacher = Teacher::new(&w, TeacherConfig::default());
        let cb = log.cobuys[0];
        let cand = teacher.generate_cobuy(cb.p1, cb.p2);
        let filter = CoarseFilter::fit(&cosmo_synth::corpus(&w), FilterConfig::default());
        let filtered = filter.filter(&w, vec![cand]);
        let rendered = render_annotation_task(&w, &filtered[0]);
        assert!(rendered.contains("Product A:"));
        assert!(rendered.contains("Product B:"));
    }
}
