//! Critic classifiers (§3.3.2).
//!
//! "We then build a classification model using this data to score all the
//! knowledge candidates after coarse-grained filtering. We fine-tuned both
//! DeBERTa-large and our in-house language model to populate the human
//! judgements to the whole knowledge candidates … knowledge candidates
//! whose plausibility score is above 0.5 are left."
//!
//! Offline stand-in: a shared hashed-feature embedding bag with two
//! sigmoid heads (plausibility, typicality), trained with Adam on the
//! simulated annotations and applied to every surviving candidate. The
//! feature map includes head/tail unigrams, tail bigrams, head-base ×
//! tail-token cross features (the signal that lets plausibility generalise
//! across products of the same type), relation and domain ids.

use cosmo_nn::infer::{self, ScratchPool};
use cosmo_nn::layers::{Embedding, Linear};
use cosmo_nn::opt::Adam;
use cosmo_nn::train::{shard_ranges, ShardRunner};
use cosmo_nn::ParamStore;
use cosmo_synth::World;
use cosmo_teacher::{BehaviorRef, Candidate};
use cosmo_text::hash::hash_str_ns;
use cosmo_text::tokenize;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Feature namespaces.
const NS_TAIL_UNI: u32 = 11;
const NS_TAIL_BI: u32 = 12;
const NS_HEAD_UNI: u32 = 13;
const NS_CROSS: u32 = 14;
const NS_RELATION: u32 = 15;
const NS_DOMAIN: u32 = 16;
const NS_BEHAVIOR: u32 = 17;
const NS_DOMAIN_TAIL: u32 = 18;
const NS_REL_TAIL: u32 = 19;

/// Critic hyperparameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CriticConfig {
    /// RNG seed.
    pub seed: u64,
    /// Hash-bucket count (feature vocabulary).
    pub buckets: usize,
    /// Embedding width.
    pub dim: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Minibatch size.
    pub batch: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Worker threads for sharded gradient steps (`0` = all cores,
    /// `1` = inline). Thread count never changes the result — see
    /// `cosmo_nn::train`.
    #[serde(default = "default_threads")]
    pub threads: usize,
    /// Shard size for data-parallel gradient steps. `0` keeps each batch
    /// on a single tape — the exact whole-batch formulation; any other
    /// value fixes the shard structure independently of `threads`.
    #[serde(default)]
    pub microbatch: usize,
}

fn default_threads() -> usize {
    1
}

impl Default for CriticConfig {
    fn default() -> Self {
        CriticConfig {
            seed: 0xC417,
            buckets: 1 << 13,
            dim: 32,
            epochs: 14,
            batch: 64,
            lr: 0.01,
            threads: 1,
            microbatch: 0,
        }
    }
}

/// One training example: hashed features + the two labels (when decided).
#[derive(Debug, Clone)]
pub struct CriticExample {
    /// Hashed feature ids.
    pub features: Vec<usize>,
    /// Plausibility label (None = annotator not sure).
    pub plausible: Option<bool>,
    /// Typicality label.
    pub typical: Option<bool>,
}

/// Hash a candidate's text into critic features.
pub fn features(world: &World, c: &Candidate, tail: &str, buckets: usize) -> Vec<usize> {
    let mut out = Vec::with_capacity(48);
    let mut push = |h: u64| out.push((h % buckets as u64) as usize);
    let tail_toks = tokenize(tail);
    for t in &tail_toks {
        push(hash_str_ns(t, NS_TAIL_UNI));
    }
    for w in tail_toks.windows(2) {
        push(hash_str_ns(&format!("{} {}", w[0], w[1]), NS_TAIL_BI));
    }
    let heads: Vec<String> = match c.behavior {
        BehaviorRef::SearchBuy(q, p) => {
            vec![world.query(q).text.clone(), world.ptype_of(p).base.clone()]
        }
        BehaviorRef::CoBuy(p1, p2) => {
            vec![
                world.ptype_of(p1).base.clone(),
                world.ptype_of(p2).base.clone(),
            ]
        }
    };
    for h in &heads {
        for t in tokenize(h) {
            push(hash_str_ns(&t, NS_HEAD_UNI));
        }
        // cross features: head base × tail token
        for t in &tail_toks {
            push(hash_str_ns(&format!("{h}|{t}"), NS_CROSS));
        }
    }
    push(hash_str_ns(c.relation.name(), NS_RELATION));
    push(hash_str_ns(c.domain.name(), NS_DOMAIN));
    push(hash_str_ns(c.behavior.kind().name(), NS_BEHAVIOR));
    // domain × tail and relation × tail crosses: catch cross-domain
    // hallucinations and relation-incompatible tails, which generalise far
    // beyond the annotated (head, tail) pairs
    for t in &tail_toks {
        push(hash_str_ns(
            &format!("{}|{t}", c.domain.name()),
            NS_DOMAIN_TAIL,
        ));
        push(hash_str_ns(
            &format!("{}|{t}", c.relation.name()),
            NS_REL_TAIL,
        ));
    }
    out
}

/// The trained critic: shared embedding + two heads.
pub struct Critic {
    store: ParamStore,
    emb: Embedding,
    head_plausible: Linear,
    head_typical: Linear,
    cfg: CriticConfig,
    /// Recycled tape-free scratch buffers for the scoring entry points.
    scratch_pool: ScratchPool,
}

/// Training metrics.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CriticReport {
    /// Examples with a plausibility label.
    pub n_plausible: usize,
    /// Examples with a typicality label.
    pub n_typical: usize,
    /// Final-epoch mean loss.
    pub final_loss: f32,
    /// Held-out plausibility accuracy.
    pub plausible_accuracy: f64,
    /// Held-out typicality accuracy.
    pub typical_accuracy: f64,
    /// Held-out plausibility AUC.
    pub plausible_auc: f64,
}

impl Critic {
    /// Fresh, untrained critic.
    pub fn new(cfg: CriticConfig) -> Self {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let emb = Embedding::new(&mut store, "critic.emb", cfg.buckets, cfg.dim, &mut rng);
        let head_plausible = Linear::new(&mut store, "critic.plaus", cfg.dim, 1, &mut rng);
        let head_typical = Linear::new(&mut store, "critic.typ", cfg.dim, 1, &mut rng);
        Critic {
            store,
            emb,
            head_plausible,
            head_typical,
            cfg,
            scratch_pool: ScratchPool::new(),
        }
    }

    /// Train on annotated examples; the last 15% (by shuffled order) are
    /// held out for the accuracy/AUC report.
    pub fn train(&mut self, examples: &[CriticExample]) -> CriticReport {
        let mut rng = StdRng::seed_from_u64(self.cfg.seed ^ 0x5EED);
        let mut order: Vec<usize> = (0..examples.len()).collect();
        order.shuffle(&mut rng);
        let split = (examples.len() as f64 * 0.85) as usize;
        let (train_idx, test_idx) = order.split_at(split.max(1).min(examples.len()));

        let mut opt = Adam::new(self.cfg.lr);
        let mut runner = ShardRunner::new(self.cfg.threads);
        let mut report = CriticReport::default();
        for e in examples {
            report.n_plausible += usize::from(e.plausible.is_some());
            report.n_typical += usize::from(e.typical.is_some());
        }

        for _epoch in 0..self.cfg.epochs {
            let mut idx = train_idx.to_vec();
            idx.shuffle(&mut rng);
            let mut epoch_loss = 0.0f32;
            let mut steps = 0;
            for chunk in idx.chunks(self.cfg.batch) {
                let batch: Vec<&CriticExample> = chunk.iter().map(|&i| &examples[i]).collect();
                let loss = self.train_step(&batch, &mut opt, &mut runner);
                epoch_loss += loss;
                steps += 1;
            }
            report.final_loss = epoch_loss / steps.max(1) as f32;
        }

        // held-out evaluation
        let mut p_correct = 0usize;
        let mut p_total = 0usize;
        let mut t_correct = 0usize;
        let mut t_total = 0usize;
        let mut scored: Vec<(f32, bool)> = Vec::new();
        for &i in test_idx {
            let e = &examples[i];
            let (p, t) = self.score(&e.features);
            if let Some(lbl) = e.plausible {
                p_total += 1;
                p_correct += usize::from((p > 0.5) == lbl);
                scored.push((p, lbl));
            }
            if let Some(lbl) = e.typical {
                t_total += 1;
                t_correct += usize::from((t > 0.5) == lbl);
            }
        }
        report.plausible_accuracy = p_correct as f64 / p_total.max(1) as f64;
        report.typical_accuracy = t_correct as f64 / t_total.max(1) as f64;
        report.plausible_auc = auc(&scored);
        report
    }

    /// One sharded gradient step. Each shard records the same graph the
    /// whole-batch formulation would, scaled by `shard_len / batch_len` so
    /// shard losses (and gradients) sum to the batch mean; with one shard
    /// the scale is `1.0` and the step is the exact legacy computation.
    fn train_step(
        &mut self,
        batch: &[&CriticExample],
        opt: &mut Adam,
        runner: &mut ShardRunner,
    ) -> f32 {
        let shards = shard_ranges(batch.len(), self.cfg.microbatch);
        let batch_len = batch.len();
        let Critic {
            store,
            emb,
            head_plausible,
            head_typical,
            ..
        } = self;
        let losses = runner.grad_step(store, shards.len(), |tape, s, shard_i| {
            let range = shards[shard_i].clone();
            let shard = &batch[range.start..range.end];
            // build one flat gather with segment ids
            let mut ids = Vec::new();
            let mut segments = Vec::new();
            for (seg, e) in shard.iter().enumerate() {
                for &f in &e.features {
                    ids.push(f);
                    segments.push(seg);
                }
            }
            let table = emb.table(tape, s);
            let rows = tape.gather(table, &ids);
            let pooled = tape.segment_mean(rows, &segments, shard.len());
            let logit_p = head_plausible.forward(tape, s, pooled);
            let logit_t = head_typical.forward(tape, s, pooled);

            // mask missing labels by zero-weighting: build target vectors
            // with the predicted value substituted (gradient = 0)
            let vp = tape.value(logit_p);
            let targets_p: Vec<f32> = shard
                .iter()
                .enumerate()
                .map(|(i, e)| match e.plausible {
                    Some(b) => f32::from(b),
                    None => sigmoid(vp.get(i, 0)),
                })
                .collect();
            let vt = tape.value(logit_t);
            let targets_t: Vec<f32> = shard
                .iter()
                .enumerate()
                .map(|(i, e)| match e.typical {
                    Some(b) => f32::from(b),
                    None => sigmoid(vt.get(i, 0)),
                })
                .collect();
            let loss_p = tape.bce_with_logits(logit_p, &targets_p);
            let loss_t = tape.bce_with_logits(logit_t, &targets_t);
            let loss = tape.add(loss_p, loss_t);
            tape.scale(loss, range.len() as f32 / batch_len as f32)
        });
        opt.step(store);
        losses.iter().sum()
    }

    /// Score features → `(plausibility, typicality)` probabilities.
    ///
    /// Runs tape-free through pooled scratch buffers (no parameter copies,
    /// no autodiff bookkeeping, no steady-state allocation); outputs are
    /// bitwise identical to the historical fresh-tape formulation, locked
    /// by a test below. Empty feature lists mean-pool to a zero row, which
    /// matches the old explicit zeros input exactly.
    pub fn score(&self, feats: &[usize]) -> (f32, f32) {
        let mut s = self.scratch_pool.take();
        s.clear_ids();
        s.ids.extend_from_slice(feats);
        s.segments.resize(feats.len(), 0);
        let out = {
            self.forward_scratch(&mut s, 1);
            (sigmoid(s.hidden.get(0, 0)), sigmoid(s.out.get(0, 0)))
        };
        self.scratch_pool.put(s);
        out
    }

    /// Score a whole batch at once: one flat embedding-bag encode and one
    /// matmul per head over the `[batch×dim]` pooled block. Bitwise
    /// identical to scoring each row alone (the per-element reduction
    /// chains depend only on the inner dimension, never the batch size).
    pub fn score_batch(&self, batch: &[Vec<usize>]) -> Vec<(f32, f32)> {
        if batch.is_empty() {
            return Vec::new();
        }
        let mut s = self.scratch_pool.take();
        s.clear_ids();
        for (seg, feats) in batch.iter().enumerate() {
            for &f in feats {
                s.ids.push(f);
                s.segments.push(seg);
            }
        }
        self.forward_scratch(&mut s, batch.len());
        let out = (0..batch.len())
            .map(|i| (sigmoid(s.hidden.get(i, 0)), sigmoid(s.out.get(i, 0))))
            .collect();
        self.scratch_pool.put(s);
        out
    }

    /// Shared scoring forward: mean-pool the staged ids/segments into
    /// `[batch×dim]`, then run both heads (plausibility logits land in
    /// `scratch.hidden`, typicality in `scratch.out`).
    fn forward_scratch(&self, s: &mut infer::InferScratch, batch: usize) {
        infer::embed_bag_into(
            self.emb.table_value(&self.store),
            &s.ids,
            &s.segments,
            batch,
            &mut s.counts,
            &mut s.pooled,
        );
        let (wp, bp) = self.head_plausible.params(&self.store);
        infer::linear_into(&s.pooled, wp, bp, &mut s.hidden);
        let (wt, bt) = self.head_typical.params(&self.store);
        infer::linear_into(&s.pooled, wt, bt, &mut s.out);
    }

    /// Hash-bucket count this critic was built with.
    pub fn buckets(&self) -> usize {
        self.cfg.buckets
    }
}

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Area under the ROC curve of `(score, label)` pairs.
pub fn auc(scored: &[(f32, bool)]) -> f64 {
    let mut pos = 0u64;
    let mut neg = 0u64;
    let mut sorted: Vec<(f32, bool)> = scored.to_vec();
    sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut rank_sum = 0.0f64;
    for (rank, (_, label)) in sorted.iter().enumerate() {
        if *label {
            pos += 1;
            rank_sum += (rank + 1) as f64;
        } else {
            neg += 1;
        }
    }
    if pos == 0 || neg == 0 {
        return 0.5;
    }
    (rank_sum - (pos * (pos + 1)) as f64 / 2.0) / (pos as f64 * neg as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auc_of_perfect_separation_is_one() {
        let scored = vec![(0.9, true), (0.8, true), (0.2, false), (0.1, false)];
        assert!((auc(&scored) - 1.0).abs() < 1e-9);
        let reversed = vec![(0.1, true), (0.2, true), (0.8, false), (0.9, false)];
        assert!(auc(&reversed) < 1e-9);
        assert_eq!(auc(&[(0.5, true)]), 0.5);
    }

    #[test]
    fn critic_learns_separable_features() {
        // Synthetic task: feature 7 present → plausible, feature 13 → typical.
        let mut rng = StdRng::seed_from_u64(99);
        let mut examples = Vec::new();
        for i in 0..600 {
            let plaus = i % 2 == 0;
            let typ = i % 3 == 0;
            let mut feats = vec![(i * 31) % 4096 + 100];
            if plaus {
                feats.push(7);
            }
            if typ {
                feats.push(13);
            }
            feats.shuffle(&mut rng);
            examples.push(CriticExample {
                features: feats,
                plausible: Some(plaus),
                typical: Some(typ),
            });
        }
        let mut critic = Critic::new(CriticConfig {
            epochs: 16,
            ..Default::default()
        });
        let report = critic.train(&examples);
        assert!(
            report.plausible_accuracy > 0.85,
            "plausible acc {}",
            report.plausible_accuracy
        );
        assert!(
            report.typical_accuracy > 0.8,
            "typical acc {}",
            report.typical_accuracy
        );
        assert!(report.plausible_auc > 0.95, "auc {}", report.plausible_auc);
    }

    #[test]
    fn missing_labels_are_ignored() {
        let examples: Vec<CriticExample> = (0..100)
            .map(|i| CriticExample {
                features: vec![i % 50],
                plausible: None,
                typical: Some(i % 2 == 0),
            })
            .collect();
        let mut critic = Critic::new(CriticConfig {
            epochs: 3,
            ..Default::default()
        });
        let report = critic.train(&examples);
        assert_eq!(report.n_plausible, 0);
        assert_eq!(report.n_typical, 100);
    }

    #[test]
    fn score_batch_matches_single_scores() {
        let mut critic = Critic::new(CriticConfig::default());
        let examples: Vec<CriticExample> = (0..50)
            .map(|i| CriticExample {
                features: vec![i, i + 1, 7 * i % 100],
                plausible: Some(i % 2 == 0),
                typical: Some(i % 2 == 1),
            })
            .collect();
        critic.train(&examples);
        let batch: Vec<Vec<usize>> = vec![vec![1, 2, 3], vec![40, 50]];
        let b = critic.score_batch(&batch);
        for (i, feats) in batch.iter().enumerate() {
            let s = critic.score(feats);
            assert!((s.0 - b[i].0).abs() < 1e-5);
            assert!((s.1 - b[i].1).abs() < 1e-5);
        }
    }

    #[test]
    fn empty_features_scored_safely() {
        let critic = Critic::new(CriticConfig::default());
        let (p, t) = critic.score(&[]);
        assert!((0.0..=1.0).contains(&p) && (0.0..=1.0).contains(&t));
    }

    /// The tape-free scoring path must reproduce the historical tape
    /// formulation (param copy → gather → segment_mean → head forwards)
    /// bit for bit, including the empty-features zeros-input special case
    /// and repeated calls on recycled scratch buffers.
    #[test]
    fn direct_scoring_is_bitwise_identical_to_tape_formulation() {
        use cosmo_nn::Tape;
        let mut critic = Critic::new(CriticConfig {
            epochs: 2,
            ..Default::default()
        });
        let examples: Vec<CriticExample> = (0..60)
            .map(|i| CriticExample {
                features: vec![i % 37, (i * 13) % 200],
                plausible: Some(i % 2 == 0),
                typical: Some(i % 3 == 0),
            })
            .collect();
        critic.train(&examples);

        let tape_score = |feats: &[usize]| -> (f32, f32) {
            let mut tape = Tape::new();
            let table = critic.emb.table(&mut tape, &critic.store);
            let segments = vec![0usize; feats.len()];
            let pooled = if feats.is_empty() {
                tape.input(cosmo_nn::Tensor::zeros(1, critic.emb.dim()))
            } else {
                let rows = tape.gather(table, feats);
                tape.segment_mean(rows, &segments, 1)
            };
            let lp = critic
                .head_plausible
                .forward(&mut tape, &critic.store, pooled);
            let lt = critic
                .head_typical
                .forward(&mut tape, &critic.store, pooled);
            (
                sigmoid(tape.value(lp).item()),
                sigmoid(tape.value(lt).item()),
            )
        };

        let probes: &[&[usize]] = &[&[], &[7], &[1, 2, 3], &[5, 5, 5, 40], &[199, 0, 36]];
        for &feats in probes {
            let want = tape_score(feats);
            // twice: the second call runs on the recycled scratch
            for round in 0..2 {
                let got = critic.score(feats);
                assert_eq!(
                    (got.0.to_bits(), got.1.to_bits()),
                    (want.0.to_bits(), want.1.to_bits()),
                    "feats {feats:?} round {round}"
                );
            }
        }
        let batch: Vec<Vec<usize>> = probes.iter().map(|f| f.to_vec()).collect();
        for (feats, got) in probes.iter().zip(critic.score_batch(&batch)) {
            let want = tape_score(feats);
            assert_eq!(
                (got.0.to_bits(), got.1.to_bits()),
                (want.0.to_bits(), want.1.to_bits()),
                "batched feats {feats:?}"
            );
        }
    }

    /// Data-parallel training must be a pure function of the data and the
    /// shard structure: with sharding engaged (`microbatch`), `threads = 1`
    /// and `threads = 4` must produce byte-identical reports and scores.
    #[test]
    fn critic_training_is_thread_count_invariant() {
        let examples: Vec<CriticExample> = (0..200)
            .map(|i| CriticExample {
                features: vec![i % 97, (i * 31) % 4096 + 100, 7 + (i % 2) * 6],
                plausible: Some(i % 2 == 0),
                typical: (i % 5 != 0).then_some(i % 3 == 0),
            })
            .collect();
        let train_with = |threads: usize| {
            let mut critic = Critic::new(CriticConfig {
                epochs: 2,
                microbatch: 16,
                threads,
                ..Default::default()
            });
            let report = critic.train(&examples);
            let probe = critic.score(&[7, 13, 150]);
            (report, probe)
        };
        let (r1, p1) = train_with(1);
        let (r4, p4) = train_with(4);
        assert_eq!(r1, r4, "critic reports diverged across thread counts");
        assert_eq!(p1, p4, "critic scores diverged across thread counts");
    }
}
