//! User-behaviour sampling (§3.2.1).
//!
//! "Huge-volume behaviors contain noises or are non-intentional random
//! ones" — so COSMO performs fine-grained sampling before prompting the
//! teacher. This module implements each strategy the paper lists:
//!
//! * **Product sampling**: top-tier products with relatively large
//!   interaction volume, covering the popular categories; product-type
//!   labels are used to de-duplicate at the abstract level.
//! * **Co-buy pair sampling**: each edge must cover at least one selected
//!   product; product types are cross-checked and per-type-pair quotas
//!   avoid duplicated sampling "from the abstract level"; singleton
//!   cross-domain pairs are dropped as likely random.
//! * **Search-buy pair sampling**: thresholds on click/purchase engagement;
//!   the in-house specificity service is used to *prefer broad queries*
//!   (the semantic-gap case where generated knowledge is most valuable),
//!   while also keeping a slice of low-engagement queries to probe the LLM
//!   directly.

use cosmo_synth::{BehaviorLog, ProductId, ProductTypeId, QueryId, SpecificityService, World};
use cosmo_text::{FxHashMap, FxHashSet};
use serde::{Deserialize, Serialize};

/// Sampling strategy parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SamplingConfig {
    /// Keep products whose interaction degree is in the top fraction
    /// (e.g. 0.6 keeps the most-interacted 60%).
    pub top_product_fraction: f64,
    /// Max sampled co-buy pairs per product-type pair (abstract dedup).
    pub max_pairs_per_type_pair: usize,
    /// Drop cross-domain co-buy pairs observed only once.
    pub drop_singleton_cross_domain: bool,
    /// Minimum query engagement to pass the engagement threshold.
    pub min_engagement: f32,
    /// Queries at or below this specificity count as broad.
    pub broad_specificity: f32,
    /// Fraction of the search-buy sample reserved for broad queries.
    pub broad_fraction: f64,
    /// Fraction reserved for low-engagement probe queries.
    pub probe_fraction: f64,
}

impl Default for SamplingConfig {
    fn default() -> Self {
        SamplingConfig {
            top_product_fraction: 0.7,
            max_pairs_per_type_pair: 40,
            drop_singleton_cross_domain: true,
            min_engagement: 0.3,
            broad_specificity: 0.45,
            broad_fraction: 0.6,
            probe_fraction: 0.1,
        }
    }
}

/// The selected behaviour pairs that will be prompted to the teacher.
#[derive(Debug)]
pub struct SampledBehaviors {
    /// Selected co-buy pairs (`p1 <= p2`).
    pub cobuys: Vec<(ProductId, ProductId)>,
    /// Selected search-buy pairs.
    pub search_buys: Vec<(QueryId, ProductId)>,
    /// Stage-by-stage counts for reporting.
    pub report: SamplingReport,
}

/// Funnel counts per stage.
#[derive(Debug, Default, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SamplingReport {
    /// Distinct co-buy pairs in the raw log.
    pub cobuy_pairs_in: usize,
    /// After top-product coverage check.
    pub cobuy_after_product: usize,
    /// After cross-domain singleton rule.
    pub cobuy_after_random_rule: usize,
    /// After abstract-level (type-pair) dedup quotas.
    pub cobuy_selected: usize,
    /// Distinct search-buy pairs in the raw log.
    pub searchbuy_pairs_in: usize,
    /// After engagement thresholds.
    pub searchbuy_after_engagement: usize,
    /// Selected (broad-preferred) pairs.
    pub searchbuy_selected: usize,
    /// How many selected search-buy pairs have broad queries.
    pub broad_selected: usize,
}

/// Run the sampling strategies over a behaviour log.
pub fn sample_behaviors(
    world: &World,
    log: &BehaviorLog,
    specificity: &SpecificityService,
    cfg: &SamplingConfig,
) -> SampledBehaviors {
    let mut report = SamplingReport::default();

    // ---- product sampling: top-tier by interaction degree
    let mut degrees: Vec<u32> = log.product_degree.values().copied().collect();
    degrees.sort_unstable_by(|a, b| b.cmp(a));
    let cut_idx = ((degrees.len() as f64) * cfg.top_product_fraction).ceil() as usize;
    let min_degree = degrees
        .get(
            cut_idx
                .saturating_sub(1)
                .min(degrees.len().saturating_sub(1)),
        )
        .copied()
        .unwrap_or(0);
    let selected_products: FxHashSet<ProductId> = log
        .product_degree
        .iter()
        .filter(|(_, &d)| d >= min_degree.max(1))
        .map(|(&p, _)| p)
        .collect();

    // ---- co-buy pair sampling
    let mut cobuy_pairs: Vec<(ProductId, ProductId, u32)> = log
        .cobuy_counts
        .iter()
        .map(|(&(a, b), &c)| (a, b, c))
        .collect();
    report.cobuy_pairs_in = cobuy_pairs.len();
    // deterministic order: by count desc then ids
    cobuy_pairs.sort_by(|x, y| y.2.cmp(&x.2).then((x.0, x.1).cmp(&(y.0, y.1))));

    // coverage: at least one selected product
    cobuy_pairs.retain(|(a, b, _)| selected_products.contains(a) || selected_products.contains(b));
    report.cobuy_after_product = cobuy_pairs.len();

    // heuristic: singleton cross-domain pairs are likely random
    if cfg.drop_singleton_cross_domain {
        cobuy_pairs
            .retain(|(a, b, c)| *c > 1 || world.ptype_of(*a).domain == world.ptype_of(*b).domain);
    }
    report.cobuy_after_random_rule = cobuy_pairs.len();

    // abstract-level dedup: quota per product-type pair
    let mut type_pair_counts: FxHashMap<(ProductTypeId, ProductTypeId), usize> =
        FxHashMap::default();
    let mut cobuys = Vec::new();
    for (a, b, _) in cobuy_pairs {
        let (t1, t2) = (world.product(a).ptype, world.product(b).ptype);
        let key = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        let slot = type_pair_counts.entry(key).or_insert(0);
        if *slot < cfg.max_pairs_per_type_pair {
            *slot += 1;
            cobuys.push((a, b));
        }
    }
    report.cobuy_selected = cobuys.len();

    // ---- search-buy pair sampling
    let mut sb_pairs: Vec<(QueryId, ProductId, u32)> = log
        .searchbuy_counts
        .iter()
        .map(|(&(q, p), &c)| (q, p, c))
        .collect();
    report.searchbuy_pairs_in = sb_pairs.len();
    sb_pairs.sort_by(|x, y| y.2.cmp(&x.2).then((x.0, x.1).cmp(&(y.0, y.1))));

    let engaged: Vec<(QueryId, ProductId, u32)> = sb_pairs
        .iter()
        .copied()
        .filter(|(q, _, _)| world.query(*q).engagement >= cfg.min_engagement)
        .collect();
    report.searchbuy_after_engagement = engaged.len();

    // broad-query preference via the specificity service
    let mut broad: Vec<(QueryId, ProductId)> = Vec::new();
    let mut specific: Vec<(QueryId, ProductId)> = Vec::new();
    for (q, p, _) in &engaged {
        if specificity.score(world, *q) <= cfg.broad_specificity {
            broad.push((*q, *p));
        } else {
            specific.push((*q, *p));
        }
    }
    // probe slice: low-engagement queries, sampled even below the threshold
    let probes: Vec<(QueryId, ProductId)> = sb_pairs
        .iter()
        .filter(|(q, _, _)| world.query(*q).engagement < cfg.min_engagement)
        .map(|(q, p, _)| (*q, *p))
        .collect();

    let budget = engaged.len();
    let broad_budget = ((budget as f64) * cfg.broad_fraction) as usize;
    let probe_budget = ((budget as f64) * cfg.probe_fraction) as usize;
    let mut search_buys: Vec<(QueryId, ProductId)> = Vec::new();
    search_buys.extend(
        broad
            .iter()
            .copied()
            .take(broad_budget.max(broad.len().min(broad_budget))),
    );
    let taken_broad = search_buys.len();
    search_buys.extend(
        specific
            .iter()
            .copied()
            .take(budget.saturating_sub(taken_broad)),
    );
    search_buys.extend(probes.iter().copied().take(probe_budget));
    // dedup while preserving order
    let mut seen: FxHashSet<(QueryId, ProductId)> = FxHashSet::default();
    search_buys.retain(|pair| seen.insert(*pair));
    report.broad_selected = search_buys
        .iter()
        .filter(|(q, _)| specificity.score(world, *q) <= cfg.broad_specificity)
        .count();
    report.searchbuy_selected = search_buys.len();

    SampledBehaviors {
        cobuys,
        search_buys,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosmo_synth::{BehaviorConfig, WorldConfig};

    fn setup() -> (World, BehaviorLog) {
        let w = World::generate(WorldConfig::tiny(31));
        let log = BehaviorLog::generate(&w, &BehaviorConfig::tiny(32));
        (w, log)
    }

    #[test]
    fn sampling_shrinks_the_log() {
        let (w, log) = setup();
        let svc = SpecificityService::new(33, 0.05);
        let s = sample_behaviors(&w, &log, &svc, &SamplingConfig::default());
        assert!(s.report.cobuy_selected <= s.report.cobuy_pairs_in);
        assert!(s.report.searchbuy_selected <= s.report.searchbuy_pairs_in);
        assert!(!s.cobuys.is_empty());
        assert!(!s.search_buys.is_empty());
    }

    #[test]
    fn type_pair_quota_enforced() {
        let (w, log) = setup();
        let svc = SpecificityService::new(33, 0.05);
        let cfg = SamplingConfig {
            max_pairs_per_type_pair: 3,
            ..Default::default()
        };
        let s = sample_behaviors(&w, &log, &svc, &cfg);
        let mut counts: FxHashMap<(ProductTypeId, ProductTypeId), usize> = FxHashMap::default();
        for (a, b) in &s.cobuys {
            let (t1, t2) = (w.product(*a).ptype, w.product(*b).ptype);
            let key = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
            *counts.entry(key).or_insert(0) += 1;
        }
        assert!(counts.values().all(|&c| c <= 3));
    }

    #[test]
    fn broad_queries_preferred() {
        let (w, log) = setup();
        let svc = SpecificityService::new(33, 0.05);
        let s = sample_behaviors(&w, &log, &svc, &SamplingConfig::default());
        let frac = s.report.broad_selected as f64 / s.report.searchbuy_selected.max(1) as f64;
        assert!(frac > 0.3, "broad fraction {frac} too low");
    }

    #[test]
    fn no_duplicate_searchbuy_pairs() {
        let (w, log) = setup();
        let svc = SpecificityService::new(33, 0.05);
        let s = sample_behaviors(&w, &log, &svc, &SamplingConfig::default());
        let set: FxHashSet<_> = s.search_buys.iter().collect();
        assert_eq!(set.len(), s.search_buys.len());
    }

    #[test]
    fn deterministic() {
        let (w, log) = setup();
        let svc = SpecificityService::new(33, 0.05);
        let a = sample_behaviors(&w, &log, &svc, &SamplingConfig::default());
        let b = sample_behaviors(&w, &log, &svc, &SamplingConfig::default());
        assert_eq!(a.cobuys, b.cobuys);
        assert_eq!(a.search_buys, b.search_buys);
    }
}
