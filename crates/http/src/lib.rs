//! cosmo-http: the std-only HTTP/1.1 network front end for the COSMO
//! serving system (the paper's Figure 5 "online serving" edge, made a
//! real network service).
//!
//! Four routes, all speaking the typed wire protocol from
//! [`cosmo_serving::protocol`]:
//!
//! | route                      | body in            | body out            |
//! |----------------------------|--------------------|---------------------|
//! | `POST /v1/serve-intents`   | `ServeRequest`     | `ServeResponse`     |
//! | `POST /v1/navigate`        | `NavigateRequest`  | `NavigateResponse`  |
//! | `POST /ops/reload`         | `ReloadRequest`    | `ReloadResponse`    |
//! | `GET /v1/snapshot-version` | —                  | `SnapshotVersion`   |
//! | `GET /ops/stats`           | —                  | `OpsStats`          |
//!
//! Design invariants:
//!
//! - **Byte identity.** The `200`/`503` body for `/v1/serve-intents` is
//!   exactly `ServingSystem::handle(&req).to_json()` — the network layer
//!   adds headers, never rewrites the answer. The integration suite
//!   proves this request-by-request.
//! - **Bounded everything.** Header section, body size, connection queue
//!   depth, and keep-alive request count all have hard caps; overload is
//!   answered (`503` + `Retry-After`, or a deliberate shed under
//!   `DropOldest`), never buffered unboundedly.
//! - **No new dependencies.** `std::net` + the existing workspace crates;
//!   the accept/worker jobs run on [`cosmo_exec::WorkerPool`].

#![forbid(unsafe_code)]

pub mod client;
pub mod loadgen;
pub mod server;
pub mod wire;

pub use client::{ClientResponse, HttpClient};
pub use loadgen::{run_load, sweep_to_saturation, LoadConfig, LoadReport};
pub use server::{HttpServer, HttpStats, Router, ServerConfig, ServerHandle};
pub use wire::{read_request, write_response, ReadError, Request, Response, Status};
