//! Closed-loop load generation against a running server.
//!
//! Each client thread drives one keep-alive connection as fast as the
//! server answers — classic closed-loop load, where offered concurrency
//! (not an open-loop arrival rate) is the independent variable. Sweeping
//! concurrency upward until throughput stops improving locates the
//! saturation knee the serving paper's capacity numbers are quoted at.

use crate::client::HttpClient;
use cosmo_serving::LatencyRecorder;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One load run's shape.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Concurrent closed-loop clients.
    pub concurrency: usize,
    /// Wall-clock duration of the measurement window.
    pub duration: Duration,
    /// Request bodies (`POST /v1/serve-intents` payloads), cycled
    /// round-robin per client.
    pub bodies: Vec<String>,
}

/// Aggregated result of one load run at a fixed concurrency.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Concurrency this run used.
    pub concurrency: usize,
    /// Completed requests.
    pub requests: u64,
    /// Requests answered `200`.
    pub ok: u64,
    /// Requests answered `503` (admission or serve-path rejection).
    pub rejected: u64,
    /// Requests answered any other non-200 status.
    pub other_errors: u64,
    /// Transport errors (resets from connection shedding, timeouts).
    pub transport_errors: u64,
    /// Measured wall-clock seconds.
    pub elapsed_secs: f64,
    /// Completed requests per second.
    pub throughput_rps: f64,
    /// Client-observed p50 latency (µs).
    pub p50_us: u64,
    /// Client-observed p99 latency (µs).
    pub p99_us: u64,
}

impl LoadReport {
    /// JSON object for `BENCH_serve.json` rows.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"concurrency\":{},\"requests\":{},\"ok\":{},\"rejected\":{},\
             \"other_errors\":{},\"transport_errors\":{},\"elapsed_secs\":{:.3},\
             \"throughput_rps\":{:.1},\"p50_us\":{},\"p99_us\":{}}}",
            self.concurrency,
            self.requests,
            self.ok,
            self.rejected,
            self.other_errors,
            self.transport_errors,
            self.elapsed_secs,
            self.throughput_rps,
            self.p50_us,
            self.p99_us
        )
    }
}

/// Run one closed-loop load window against `addr`.
///
/// Clients are plain OS threads (not [`cosmo_exec::WorkerPool`] jobs) so
/// the generator's scheduling cannot interfere with the server's pool —
/// the thing under measurement.
pub fn run_load(addr: SocketAddr, config: &LoadConfig) -> LoadReport {
    assert!(config.concurrency > 0, "need at least one client");
    assert!(!config.bodies.is_empty(), "need at least one request body");

    let stop = Arc::new(AtomicBool::new(false));
    let latencies = Arc::new(LatencyRecorder::default());
    let ok = Arc::new(AtomicU64::new(0));
    let rejected = Arc::new(AtomicU64::new(0));
    let other_errors = Arc::new(AtomicU64::new(0));
    let transport_errors = Arc::new(AtomicU64::new(0));

    let start = Instant::now();
    let mut handles = Vec::with_capacity(config.concurrency);
    for client_idx in 0..config.concurrency {
        let stop = Arc::clone(&stop);
        let latencies = Arc::clone(&latencies);
        let ok = Arc::clone(&ok);
        let rejected = Arc::clone(&rejected);
        let other_errors = Arc::clone(&other_errors);
        let transport_errors = Arc::clone(&transport_errors);
        let bodies = config.bodies.clone();
        handles.push(std::thread::spawn(move || {
            let mut client = match HttpClient::connect(addr) {
                Ok(c) => c,
                Err(_) => {
                    transport_errors.fetch_add(1, Ordering::Relaxed);
                    return;
                }
            };
            // stagger the cycle start per client so concurrent clients
            // don't all hammer the same query at the same instant
            let mut next = client_idx;
            while !stop.load(Ordering::Relaxed) {
                // PANIC: next % len is in range; bodies is asserted
                // non-empty before the clients spawn
                let body = &bodies[next % bodies.len()];
                next += 1;
                let sent = Instant::now();
                match client.request("POST", "/v1/serve-intents", body) {
                    Ok(resp) => {
                        latencies.record(sent.elapsed().as_micros() as u64);
                        match resp.status {
                            200 => ok.fetch_add(1, Ordering::Relaxed),
                            503 => rejected.fetch_add(1, Ordering::Relaxed),
                            _ => other_errors.fetch_add(1, Ordering::Relaxed),
                        };
                    }
                    Err(_) => {
                        transport_errors.fetch_add(1, Ordering::Relaxed);
                        // reconnect after a reset (e.g. the connection
                        // was shed under DropOldest admission)
                        match HttpClient::connect(addr) {
                            Ok(c) => client = c,
                            Err(_) => return,
                        }
                    }
                }
            }
        }));
    }

    std::thread::sleep(config.duration);
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        let _ = h.join();
    }
    let elapsed = start.elapsed().as_secs_f64();

    let ok = ok.load(Ordering::Relaxed);
    let rejected = rejected.load(Ordering::Relaxed);
    let other_errors = other_errors.load(Ordering::Relaxed);
    let requests = ok + rejected + other_errors;
    LoadReport {
        concurrency: config.concurrency,
        requests,
        ok,
        rejected,
        other_errors,
        transport_errors: transport_errors.load(Ordering::Relaxed),
        elapsed_secs: elapsed,
        throughput_rps: requests as f64 / elapsed.max(1e-9),
        p50_us: latencies.percentile(0.50),
        p99_us: latencies.percentile(0.99),
    }
}

/// Sweep concurrency upward (doubling) until throughput stops improving
/// by at least `min_gain` (e.g. `0.05` = 5%), or `max_concurrency` is
/// reached. Returns every run, in sweep order.
pub fn sweep_to_saturation(
    addr: SocketAddr,
    bodies: Vec<String>,
    window: Duration,
    max_concurrency: usize,
    min_gain: f64,
) -> Vec<LoadReport> {
    let mut reports: Vec<LoadReport> = Vec::new();
    let mut concurrency = 1;
    while concurrency <= max_concurrency {
        let report = run_load(
            addr,
            &LoadConfig {
                concurrency,
                duration: window,
                bodies: bodies.clone(),
            },
        );
        let saturated = reports
            .last()
            .is_some_and(|prev| report.throughput_rps < prev.throughput_rps * (1.0 + min_gain));
        reports.push(report);
        if saturated {
            break;
        }
        concurrency *= 2;
    }
    reports
}
