//! The HTTP/1.1 server: thread-per-core accept loops scheduled on the
//! [`cosmo_exec::WorkerPool`], keep-alive connection handling, and
//! bounded connection backpressure that reuses the serving crate's
//! [`AdmissionPolicy`].
//!
//! Topology (COSMO Figure 5's "serving endpoint" made concrete):
//!
//! ```text
//!             ┌───────────── supervisor thread ─────────────┐
//!   TCP ───▶  │ acceptors (N jobs)  ─▶ queue ─▶ workers (M) │ ─▶ ServingSystem
//!             │        nonblocking      bounded, admission-  │     (frozen
//!             │        accept loop      policed VecDeque     │    KgSnapshot)
//!             └─────────────────────────────────────────────┘
//! ```
//!
//! When the connection queue is full, [`AdmissionPolicy::RejectNew`]
//! answers the *new* connection `503` with `Retry-After` and closes it,
//! while [`AdmissionPolicy::DropOldest`] sheds the oldest queued (not yet
//! served) connection to make room — the same two strategies the cache's
//! pending queue applies to queries, lifted to the transport layer.

use crate::wire::{read_request, write_response, ReadError, Request, Response};
use cosmo_exec::WorkerPool;
use cosmo_kg::KgSnapshotView;
use cosmo_nav::{NavigationEngine, Suggestion};
use cosmo_serving::{
    AdmissionPolicy, ErrorBody, NavigateItem, NavigateRequest, NavigateResponse, ReloadRequest,
    ReloadResponse, ServeRequest, ServeStatus, ServingSystem, SnapshotGeneration, SnapshotVersion,
    PROTOCOL_VERSION,
};
use std::collections::VecDeque;
use std::io::{self, BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Server tuning knobs. The defaults favour test determinism over raw
/// throughput; the load harness overrides them per experiment.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Accept-loop jobs on the pool.
    pub acceptors: usize,
    /// Connection-serving jobs on the pool.
    pub conn_workers: usize,
    /// Max connections queued between acceptors and workers.
    pub conn_backlog: usize,
    /// What to do when the connection queue is full.
    pub admission: AdmissionPolicy,
    /// Request body cap → `413`.
    pub max_body_bytes: usize,
    /// Request-line + header cap → `431`.
    pub max_header_bytes: usize,
    /// Keep-alive requests served per connection before a polite close.
    pub max_requests_per_conn: usize,
    /// Per-read socket timeout; an idle keep-alive connection is closed
    /// after this long.
    pub read_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            acceptors: 1,
            conn_workers: 4,
            conn_backlog: 64,
            admission: AdmissionPolicy::RejectNew,
            max_body_bytes: 64 * 1024,
            max_header_bytes: 8 * 1024,
            max_requests_per_conn: 1024,
            read_timeout: Duration::from_millis(2000),
        }
    }
}

/// Monotonic counters for the HTTP layer itself (the serving-layer
/// counters live in [`cosmo_serving::OpsStats`]).
#[derive(Debug, Default)]
struct Counters {
    accepted: AtomicU64,
    requests: AtomicU64,
    rejected_conns: AtomicU64,
    shed_conns: AtomicU64,
    bad_requests: AtomicU64,
    oversized: AtomicU64,
}

/// A point-in-time copy of the HTTP layer counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HttpStats {
    /// Connections accepted (including later-shed ones).
    pub accepted: u64,
    /// Requests answered (any status).
    pub requests: u64,
    /// Connections answered `503` at admission ([`AdmissionPolicy::RejectNew`]).
    pub rejected_conns: u64,
    /// Queued connections dropped to make room ([`AdmissionPolicy::DropOldest`]).
    pub shed_conns: u64,
    /// Requests answered `400`.
    pub bad_requests: u64,
    /// Requests answered `413`/`431`.
    pub oversized: u64,
}

/// State shared between the handle, acceptors, and workers.
struct Shared {
    router: Router,
    config: ServerConfig,
    queue: Mutex<VecDeque<TcpStream>>,
    queue_signal: Condvar,
    shutdown: AtomicBool,
    counters: Counters,
}

/// The running server. Dropping the handle without calling
/// [`ServerHandle::shutdown`] detaches the supervisor thread.
pub struct HttpServer;

/// Controls a started server: its bound address and shutdown.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    supervisor: Option<std::thread::JoinHandle<()>>,
}

impl HttpServer {
    /// Bind `config.addr` and start serving `system` in the background.
    ///
    /// The navigation engine is built per snapshot generation, over the
    /// same frozen view the serving system answers from, so
    /// `/v1/navigate` and `/v1/serve-intents` can never disagree about
    /// graph contents — including across a hot swap.
    pub fn start(system: Arc<ServingSystem>, config: ServerConfig) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            router: Router::new(system),
            config,
            queue: Mutex::new(VecDeque::new()),
            queue_signal: Condvar::new(),
            shutdown: AtomicBool::new(false),
            counters: Counters::default(),
        });

        let sup_shared = Arc::clone(&shared);
        let supervisor = std::thread::Builder::new()
            .name("cosmo-http-supervisor".to_string())
            .spawn(move || supervise(listener, sup_shared))?;

        Ok(ServerHandle {
            addr,
            shared,
            supervisor: Some(supervisor),
        })
    }
}

impl ServerHandle {
    /// The bound address (resolved ephemeral port included).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// HTTP-layer counters so far.
    pub fn stats(&self) -> HttpStats {
        let c = &self.shared.counters;
        HttpStats {
            accepted: c.accepted.load(Ordering::Relaxed),
            requests: c.requests.load(Ordering::Relaxed),
            rejected_conns: c.rejected_conns.load(Ordering::Relaxed),
            shed_conns: c.shed_conns.load(Ordering::Relaxed),
            bad_requests: c.bad_requests.load(Ordering::Relaxed),
            oversized: c.oversized.load(Ordering::Relaxed),
        }
    }

    /// Stop accepting, drain every queued and in-flight connection, and
    /// join the supervisor. In-flight keep-alive connections finish their
    /// current request and are then closed.
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.queue_signal.notify_all();
        if let Some(handle) = self.supervisor.take() {
            let _ = handle.join();
        }
    }
}

/// Runs on the supervisor thread: owns the worker pool for the server's
/// lifetime. `scope` blocks until every acceptor and worker job returns,
/// which is exactly the drain semantics `shutdown` needs.
fn supervise(listener: TcpListener, shared: Arc<Shared>) {
    let jobs = shared.config.acceptors + shared.config.conn_workers;
    let pool = WorkerPool::new(jobs.max(1));
    pool.scope(|s| {
        for _ in 0..shared.config.acceptors.max(1) {
            let shared = Arc::clone(&shared);
            let listener = &listener;
            s.spawn(move || accept_loop(listener, &shared));
        }
        for _ in 0..shared.config.conn_workers.max(1) {
            let shared = Arc::clone(&shared);
            s.spawn(move || worker_loop(&shared));
        }
    });
}

/// Poll-accept until shutdown, applying the admission policy at the
/// connection queue.
fn accept_loop(listener: &TcpListener, shared: &Shared) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                shared.counters.accepted.fetch_add(1, Ordering::Relaxed);
                admit(stream, shared);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

/// Enqueue an accepted connection, applying [`AdmissionPolicy`] when the
/// queue is at capacity.
fn admit(stream: TcpStream, shared: &Shared) {
    let mut queue = match shared.queue.lock() {
        Ok(q) => q,
        Err(_) => {
            // A worker panicked while holding the queue lock. Shed this
            // connection with a 503 instead of tearing down the acceptor.
            shared
                .counters
                .rejected_conns
                .fetch_add(1, Ordering::Relaxed);
            reject_connection(stream, shared);
            return;
        }
    };
    if queue.len() >= shared.config.conn_backlog.max(1) {
        match shared.config.admission {
            AdmissionPolicy::RejectNew => {
                drop(queue);
                shared
                    .counters
                    .rejected_conns
                    .fetch_add(1, Ordering::Relaxed);
                reject_connection(stream, shared);
                return;
            }
            AdmissionPolicy::DropOldest => {
                // the popped stream drops here, closing the socket before
                // the peer was ever read — a deliberate shed
                let _ = queue.pop_front();
                shared.counters.shed_conns.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
    queue.push_back(stream);
    drop(queue);
    shared.queue_signal.notify_one();
}

/// Answer one over-capacity connection `503` + `Retry-After` and close it.
fn reject_connection(stream: TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(shared.config.read_timeout));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    // read (and discard) the request so the peer sees the 503 as the
    // answer to what it sent, not a connection reset mid-write
    let _ = read_request(
        &mut reader,
        shared.config.max_header_bytes,
        shared.config.max_body_bytes,
    );
    let body = ErrorBody::new("overloaded", "connection queue full; retry shortly").to_json();
    let resp = Response::json(503, body).with_header("retry-after", "1");
    let mut writer = BufWriter::new(stream);
    let _ = write_response(&mut writer, &resp, false);
}

/// Serve queued connections until shutdown *and* the queue is empty —
/// shutdown drains rather than abandons.
fn worker_loop(shared: &Shared) {
    loop {
        let stream = {
            // Recover the guard on poison: a sibling worker panicked, but
            // the queue itself (a VecDeque of sockets) stays structurally
            // sound, and exiting here would strand queued connections.
            let mut queue = shared
                .queue
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            loop {
                if let Some(s) = queue.pop_front() {
                    break Some(s);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                queue = match shared
                    .queue_signal
                    .wait_timeout(queue, Duration::from_millis(50))
                {
                    Ok((guard, _)) => guard,
                    Err(poisoned) => poisoned.into_inner().0,
                };
            }
        };
        match stream {
            Some(s) => serve_connection(s, shared),
            None => return,
        }
    }
}

/// The keep-alive loop for one connection.
fn serve_connection(stream: TcpStream, shared: &Shared) {
    if stream
        .set_read_timeout(Some(shared.config.read_timeout))
        .is_err()
    {
        return;
    }
    let reader_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut reader = BufReader::new(reader_stream);
    let mut writer = BufWriter::new(stream);

    let max_requests = shared.config.max_requests_per_conn.max(1);
    for served in 1..=max_requests {
        let req = match read_request(
            &mut reader,
            shared.config.max_header_bytes,
            shared.config.max_body_bytes,
        ) {
            Ok(req) => req,
            Err(ReadError::Eof) | Err(ReadError::Io(_)) => return,
            Err(ReadError::Malformed(detail)) => {
                shared.counters.bad_requests.fetch_add(1, Ordering::Relaxed);
                shared.counters.requests.fetch_add(1, Ordering::Relaxed);
                let body = ErrorBody::new("bad_request", detail).to_json();
                let _ = write_response(&mut writer, &Response::json(400, body), false);
                return;
            }
            Err(ReadError::TooLarge(detail)) => {
                shared.counters.oversized.fetch_add(1, Ordering::Relaxed);
                shared.counters.requests.fetch_add(1, Ordering::Relaxed);
                let status = if detail.contains("header") { 431 } else { 413 };
                let body = ErrorBody::new("too_large", detail).to_json();
                let _ = write_response(&mut writer, &Response::json(status, body), false);
                return;
            }
            // Valid HTTP we refuse on purpose (Transfer-Encoding): answer
            // 501 and close so no unread body bytes can desync the
            // connection into a smuggled second request.
            Err(ReadError::Unsupported(detail)) => {
                shared.counters.bad_requests.fetch_add(1, Ordering::Relaxed);
                shared.counters.requests.fetch_add(1, Ordering::Relaxed);
                let body = ErrorBody::new("not_implemented", detail).to_json();
                let _ = write_response(&mut writer, &Response::json(501, body), false);
                return;
            }
        };

        let draining = shared.shutdown.load(Ordering::SeqCst);
        let keep_alive = !req.close && served < max_requests && !draining;
        let resp = shared.router.route(&req);
        shared.counters.requests.fetch_add(1, Ordering::Relaxed);
        match resp.status.0 {
            400 => {
                shared.counters.bad_requests.fetch_add(1, Ordering::Relaxed);
            }
            413 | 431 => {
                shared.counters.oversized.fetch_add(1, Ordering::Relaxed);
            }
            _ => {}
        }
        if write_response(&mut writer, &resp, keep_alive).is_err() || !keep_alive {
            return;
        }
    }
}

/// Maps parsed requests to responses. Pure routing — no socket I/O — so
/// the integration tests can prove the HTTP body is byte-identical to
/// the in-process [`ServingSystem::handle`] answer.
///
/// The navigation engine is generation-scoped: it is rebuilt lazily the
/// first time a request lands on a freshly swapped snapshot, so
/// `/v1/navigate` always answers from the same graph the response's
/// `snapshot_generation` tag names.
pub struct Router {
    system: Arc<ServingSystem>,
    nav: Mutex<(u64, Arc<NavigationEngine<Arc<KgSnapshotView>>>)>,
}

impl Router {
    /// Build a router over `system`, with the navigation engine primed
    /// for the current generation.
    pub fn new(system: Arc<ServingSystem>) -> Router {
        let generation = system.current();
        let nav = Arc::new(NavigationEngine::new(Arc::clone(&generation.view)));
        Router {
            system,
            nav: Mutex::new((generation.generation, nav)),
        }
    }

    /// The serving system this router answers from.
    pub fn system(&self) -> &Arc<ServingSystem> {
        &self.system
    }

    /// Map one parsed request to a response.
    pub fn route(&self, req: &Request) -> Response {
        match (req.method.as_str(), req.path.as_str()) {
            ("POST", "/v1/serve-intents") => self.serve_intents(&req.body),
            ("POST", "/v1/navigate") => self.navigate(&req.body),
            ("POST", "/ops/reload") => self.reload(&req.body),
            ("GET", "/v1/snapshot-version") => {
                Response::json(200, self.snapshot_version().to_json())
            }
            ("GET", "/ops/stats") => Response::json(200, self.system.ops().to_json()),
            ("GET", "/v1/serve-intents") | ("GET", "/v1/navigate") | ("GET", "/ops/reload") => {
                Response::json(
                    405,
                    ErrorBody::new("method_not_allowed", "use POST").to_json(),
                )
            }
            ("POST", "/v1/snapshot-version") | ("POST", "/ops/stats") => Response::json(
                405,
                ErrorBody::new("method_not_allowed", "use GET").to_json(),
            ),
            _ => Response::json(404, ErrorBody::new("not_found", "unknown route").to_json()),
        }
    }

    /// The navigation engine for `generation`, rebuilding it if the
    /// snapshot was swapped since the last navigate request.
    /// Returns a ready `500` response when the cache mutex is poisoned —
    /// the request degrades instead of panicking the worker.
    fn nav_for(
        &self,
        generation: &SnapshotGeneration,
    ) -> Result<Arc<NavigationEngine<Arc<KgSnapshotView>>>, Response> {
        let mut cached = self.nav.lock().map_err(|_| {
            Response::json(
                500,
                ErrorBody::new("internal", "navigation cache unavailable").to_json(),
            )
        })?;
        if cached.0 != generation.generation {
            *cached = (
                generation.generation,
                Arc::new(NavigationEngine::new(Arc::clone(&generation.view))),
            );
        }
        Ok(Arc::clone(&cached.1))
    }

    /// `POST /v1/serve-intents`: decode, delegate to the serving read
    /// path, and map [`ServeStatus::Rejected`] to `503` + `Retry-After`
    /// — with the *same* body bytes `handle` would return in-process.
    fn serve_intents(&self, body: &[u8]) -> Response {
        let req = match decode_body(body, ServeRequest::from_json) {
            Ok(req) => req,
            Err(resp) => return resp,
        };
        let resp = self.system.handle(&req);
        if resp.status == ServeStatus::Rejected {
            Response::json(503, resp.to_json()).with_header("retry-after", "1")
        } else {
            Response::json(200, resp.to_json())
        }
    }

    /// `POST /v1/navigate`: interpret a broad query against the frozen
    /// KG of the current generation.
    fn navigate(&self, body: &[u8]) -> Response {
        let req = match decode_body(body, NavigateRequest::from_json) {
            Ok(req) => req,
            Err(resp) => return resp,
        };
        let generation = self.system.current();
        let nav = match self.nav_for(&generation) {
            Ok(nav) => nav,
            Err(resp) => return resp,
        };
        let suggestions = nav
            .interpret(&req.query, req.k)
            .into_iter()
            .map(|s| NavigateItem {
                kind: match s {
                    Suggestion::Intent(_) => "intent",
                    Suggestion::ProductType(_) => "product_type",
                    Suggestion::Attribute(_) => "attribute",
                }
                .to_string(),
                label: s.label().to_string(),
            })
            .collect();
        let resp = NavigateResponse {
            protocol_version: PROTOCOL_VERSION,
            query: req.query,
            suggestions,
        };
        Response::json(200, resp.to_json())
    }

    /// `POST /ops/reload`: open + fully verify the snapshot file named in
    /// the body, then atomically publish it as the next generation. The
    /// new generation is visible to every request that starts after the
    /// swap; in-flight requests finish on the old one. A snapshot that
    /// fails verification is refused with `400` and the server keeps
    /// serving the current generation untouched.
    fn reload(&self, body: &[u8]) -> Response {
        let req = match decode_body(body, ReloadRequest::from_json) {
            Ok(req) => req,
            Err(resp) => return resp,
        };
        match KgSnapshotView::open_verified(std::path::Path::new(&req.path)) {
            Ok(view) => {
                let (format_version, nodes, edges) = (
                    view.format_version(),
                    view.num_nodes() as u64,
                    view.num_edges() as u64,
                );
                let generation = self.system.swap_snapshot(view);
                let resp = ReloadResponse {
                    protocol_version: PROTOCOL_VERSION,
                    generation,
                    format_version,
                    nodes,
                    edges,
                };
                Response::json(200, resp.to_json())
            }
            Err(e) => Response::json(
                400,
                ErrorBody::new("reload_failed", e.to_string()).to_json(),
            ),
        }
    }

    /// The identity of the snapshot the current generation answers from.
    fn snapshot_version(&self) -> SnapshotVersion {
        let generation = self.system.current();
        let view = &generation.view;
        SnapshotVersion {
            protocol_version: PROTOCOL_VERSION,
            format_version: view.format_version(),
            nodes: view.num_nodes() as u64,
            edges: view.num_edges() as u64,
            relations: view.num_relations() as u64,
            arena_bytes: view.arena_len() as u64,
            model_version: self.system.model_version(),
            generation: generation.generation,
        }
    }
}

/// UTF-8 + typed-JSON decode with a `400` [`ErrorBody`] on failure.
fn decode_body<T>(
    body: &[u8],
    parse: impl FnOnce(&str) -> Result<T, cosmo_serving::ProtocolError>,
) -> Result<T, Response> {
    let text = std::str::from_utf8(body).map_err(|_| {
        Response::json(
            400,
            ErrorBody::new("bad_request", "body is not UTF-8").to_json(),
        )
    })?;
    parse(text)
        .map_err(|e| Response::json(400, ErrorBody::new("bad_request", e.to_string()).to_json()))
}
