//! A minimal blocking HTTP/1.1 client with keep-alive, used by the load
//! harness and the integration tests. Speaks exactly the dialect the
//! server emits (lower-case headers, `content-length` bodies).

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Largest response body the client will buffer. The server's JSON
/// responses are far below this; a bogus `content-length` from a broken
/// or hostile peer must not turn into an unbounded allocation.
pub const MAX_RESPONSE_BODY_BYTES: usize = 1 << 20;

/// One received response.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// Status code.
    pub status: u16,
    /// Header pairs, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: String,
}

impl ClientResponse {
    /// First value of a header, by lower-case name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// A keep-alive connection to one server.
pub struct HttpClient {
    addr: SocketAddr,
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl HttpClient {
    /// Connect, with a read timeout so tests cannot hang.
    pub fn connect(addr: SocketAddr) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(10)))?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(HttpClient {
            addr,
            reader,
            writer: stream,
        })
    }

    /// The server address this client talks to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Send one request and read its response on the persistent
    /// connection. If the server answered `connection: close`, the next
    /// call reconnects transparently.
    pub fn request(&mut self, method: &str, path: &str, body: &str) -> io::Result<ClientResponse> {
        self.send(method, path, body)?;
        let resp = self.read_response()?;
        if resp.header("connection") == Some("close") {
            let fresh = HttpClient::connect(self.addr)?;
            self.reader = fresh.reader;
            self.writer = fresh.writer;
        }
        Ok(resp)
    }

    /// Write one request without reading the response (for pipelining
    /// tests — production callers should use [`HttpClient::request`]).
    pub fn send(&mut self, method: &str, path: &str, body: &str) -> io::Result<()> {
        let msg = format!(
            "{method} {path} HTTP/1.1\r\nhost: cosmo\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        );
        self.writer.write_all(msg.as_bytes())?;
        self.writer.flush()
    }

    /// Read one response off the wire.
    pub fn read_response(&mut self) -> io::Result<ClientResponse> {
        let mut status_line = String::new();
        if self.reader.read_line(&mut status_line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed connection",
            ));
        }
        let status = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse::<u16>().ok())
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;

        let mut headers = Vec::new();
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "eof in headers",
                ));
            }
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                let name = name.to_ascii_lowercase();
                let value = value.trim().to_string();
                if name == "content-length" {
                    content_length = value.parse().map_err(|_| {
                        io::Error::new(io::ErrorKind::InvalidData, "bad content-length")
                    })?;
                }
                headers.push((name, value));
            }
        }
        if content_length > MAX_RESPONSE_BODY_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "response body over client limit",
            ));
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        let body = String::from_utf8(body)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-utf8 body"))?;
        Ok(ClientResponse {
            status,
            headers,
            body,
        })
    }
}
