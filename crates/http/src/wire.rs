//! HTTP/1.1 wire handling: bounded request parsing and response writing
//! over any `Read`/`Write` pair.
//!
//! The parser accepts the subset of HTTP/1.1 a JSON API needs — request
//! line, `\r\n`-terminated headers, `Content-Length` bodies — and
//! enforces hard caps on the header section and body before buffering
//! them, so a misbehaving peer cannot make the server allocate without
//! bound. Pipelined requests work naturally: the reader consumes exactly
//! one request's bytes per call and leaves the rest buffered.

use std::io::{self, BufRead, Write};

/// One parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, …).
    pub method: String,
    /// Path component of the request target (query strings kept verbatim).
    pub path: String,
    /// Header pairs, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Request body (empty when no `Content-Length`).
    pub body: Vec<u8>,
    /// True when the client asked for the connection to close after this
    /// exchange (`Connection: close`, or an HTTP/1.0 request without
    /// `keep-alive`).
    pub close: bool,
}

impl Request {
    /// First value of a header, by lower-case name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum ReadError {
    /// Clean end-of-stream before the first request byte.
    Eof,
    /// Transport error (including read timeouts).
    Io(io::Error),
    /// Syntactically invalid request → 400, close.
    Malformed(&'static str),
    /// Header section or body over the configured cap → 431/413, close.
    TooLarge(&'static str),
    /// Valid HTTP the server deliberately does not implement (e.g. any
    /// `Transfer-Encoding`) → 501, close. Closing matters: the framing of
    /// the unread body is unknown, so the connection cannot be reused.
    Unsupported(&'static str),
}

impl From<io::Error> for ReadError {
    fn from(e: io::Error) -> Self {
        ReadError::Io(e)
    }
}

/// Read one request from `reader`, enforcing `max_header_bytes` over the
/// request line + headers and `max_body_bytes` over the body.
pub fn read_request<R: BufRead>(
    reader: &mut R,
    max_header_bytes: usize,
    max_body_bytes: usize,
) -> Result<Request, ReadError> {
    let mut line = Vec::new();
    let mut header_bytes = 0usize;

    read_crlf_line(reader, &mut line, max_header_bytes, &mut header_bytes)?;
    if line.is_empty() {
        return Err(ReadError::Eof);
    }
    let request_line =
        std::str::from_utf8(&line).map_err(|_| ReadError::Malformed("non-utf8 request line"))?;
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or(ReadError::Malformed("missing method"))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .filter(|t| !t.is_empty())
        .ok_or(ReadError::Malformed("missing request target"))?;
    let version = parts
        .next()
        .ok_or(ReadError::Malformed("missing HTTP version"))?;
    if parts.next().is_some() {
        return Err(ReadError::Malformed("extra tokens in request line"));
    }
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        _ => return Err(ReadError::Malformed("unsupported HTTP version")),
    };
    let path = target.split('?').next().unwrap_or(target).to_string();

    let mut headers: Vec<(String, String)> = Vec::new();
    loop {
        let mut hline = Vec::new();
        read_crlf_line(reader, &mut hline, max_header_bytes, &mut header_bytes)?;
        if hline.is_empty() {
            break;
        }
        let text =
            std::str::from_utf8(&hline).map_err(|_| ReadError::Malformed("non-utf8 header"))?;
        let (name, value) = text
            .split_once(':')
            .ok_or(ReadError::Malformed("header without colon"))?;
        if name.is_empty() || name.contains(' ') {
            return Err(ReadError::Malformed("invalid header name"));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    // Request smuggling hardening: a front proxy and this parser must
    // never disagree about where the body ends. We implement no transfer
    // codings, so *any* Transfer-Encoding header is refused outright
    // rather than ignored (ignoring it is the classic TE.CL desync), and
    // duplicate Content-Length headers are only accepted when every copy
    // agrees (RFC 9112 §6.3).
    if headers.iter().any(|(k, _)| k == "transfer-encoding") {
        return Err(ReadError::Unsupported("transfer-encoding not supported"));
    }
    let mut content_length = None;
    for (_, v) in headers.iter().filter(|(k, _)| k == "content-length") {
        let parsed = v
            .parse::<usize>()
            .map_err(|_| ReadError::Malformed("invalid content-length"))?;
        if content_length.is_some_and(|prev| prev != parsed) {
            return Err(ReadError::Malformed("conflicting content-length"));
        }
        content_length = Some(parsed);
    }
    let content_length = content_length.unwrap_or(0);
    if content_length > max_body_bytes {
        // drain nothing: the connection is closed after an over-limit
        // request, so the unread body bytes die with it
        return Err(ReadError::TooLarge("body over limit"));
    }
    let mut body = vec![0u8; content_length];
    io::Read::read_exact(reader, &mut body)?;

    let connection = headers
        .iter()
        .find(|(k, _)| k == "connection")
        .map(|(_, v)| v.to_ascii_lowercase());
    let close = match connection.as_deref() {
        Some("close") => true,
        Some("keep-alive") => false,
        _ => !http11, // 1.1 defaults to keep-alive, 1.0 to close
    };

    Ok(Request {
        method,
        path,
        headers,
        body,
        close,
    })
}

/// Read one `\r\n`-terminated line (LF alone accepted), without the
/// terminator, charging its bytes against the shared header budget.
fn read_crlf_line<R: BufRead>(
    reader: &mut R,
    out: &mut Vec<u8>,
    max: usize,
    used: &mut usize,
) -> Result<(), ReadError> {
    let n = reader.read_until(b'\n', out)?;
    if n == 0 {
        // caller distinguishes EOF-before-request from EOF-mid-request
        return Ok(());
    }
    *used += n;
    if *used > max {
        return Err(ReadError::TooLarge("header section over limit"));
    }
    if out.last() == Some(&b'\n') {
        out.pop();
        if out.last() == Some(&b'\r') {
            out.pop();
        }
    } else {
        return Err(ReadError::Malformed("truncated line"));
    }
    Ok(())
}

/// An HTTP status code with its canonical reason phrase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Status(pub u16);

impl Status {
    /// Canonical reason phrase.
    pub fn reason(self) -> &'static str {
        match self.0 {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            413 => "Payload Too Large",
            431 => "Request Header Fields Too Large",
            500 => "Internal Server Error",
            501 => "Not Implemented",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }
}

/// One response ready for serialisation.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: Status,
    /// Extra headers beyond the always-present set.
    pub extra_headers: Vec<(&'static str, String)>,
    /// JSON body.
    pub body: String,
}

impl Response {
    /// A JSON response with no extra headers.
    pub fn json(status: u16, body: String) -> Self {
        Response {
            status: Status(status),
            extra_headers: Vec::new(),
            body,
        }
    }

    /// Attach a header.
    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Self {
        self.extra_headers.push((name, value.into()));
        self
    }
}

/// Serialise `resp` onto `writer`. `keep_alive` decides the `Connection`
/// header; the caller must actually honour it.
pub fn write_response<W: Write>(
    writer: &mut W,
    resp: &Response,
    keep_alive: bool,
) -> io::Result<()> {
    let mut out = String::with_capacity(resp.body.len() + 128);
    out.push_str("HTTP/1.1 ");
    out.push_str(&resp.status.0.to_string());
    out.push(' ');
    out.push_str(resp.status.reason());
    out.push_str("\r\ncontent-type: application/json\r\ncontent-length: ");
    out.push_str(&resp.body.len().to_string());
    out.push_str("\r\nconnection: ");
    out.push_str(if keep_alive { "keep-alive" } else { "close" });
    out.push_str("\r\n");
    for (name, value) in &resp.extra_headers {
        out.push_str(name);
        out.push_str(": ");
        out.push_str(value);
        out.push_str("\r\n");
    }
    out.push_str("\r\n");
    out.push_str(&resp.body);
    writer.write_all(out.as_bytes())?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(input: &str) -> Result<Request, ReadError> {
        read_request(&mut BufReader::new(input.as_bytes()), 8192, 1 << 20)
    }

    #[test]
    fn parses_post_with_body() {
        let req =
            parse("POST /v1/serve-intents HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd")
                .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/serve-intents");
        assert_eq!(req.body, b"abcd");
        assert!(!req.close);
        assert_eq!(req.header("host"), Some("x"));
    }

    #[test]
    fn connection_semantics() {
        assert!(
            parse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
                .unwrap()
                .close
        );
        assert!(parse("GET / HTTP/1.0\r\n\r\n").unwrap().close);
        assert!(
            !parse("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
                .unwrap()
                .close
        );
        assert!(!parse("GET / HTTP/1.1\r\n\r\n").unwrap().close);
    }

    #[test]
    fn malformed_lines_are_rejected() {
        for bad in [
            "GET\r\n\r\n",
            "GET / HTTP/2\r\n\r\n",
            "GET / HTTP/1.1 extra\r\n\r\n",
            "GET / HTTP/1.1\r\nNoColonHere\r\n\r\n",
            "GET / HTTP/1.1\r\nBad Name: x\r\n\r\n",
            "GET / HTTP/1.1\r\nContent-Length: two\r\n\r\n",
        ] {
            assert!(
                matches!(parse(bad), Err(ReadError::Malformed(_))),
                "{bad:?} should be malformed"
            );
        }
    }

    #[test]
    fn limits_are_enforced() {
        let huge_header = format!("GET / HTTP/1.1\r\nx-pad: {}\r\n\r\n", "a".repeat(10_000));
        assert!(matches!(
            parse(&huge_header),
            Err(ReadError::TooLarge("header section over limit"))
        ));
        let huge_body = "POST / HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n";
        assert!(matches!(
            parse(huge_body),
            Err(ReadError::TooLarge("body over limit"))
        ));
    }

    #[test]
    fn transfer_encoding_is_refused() {
        // Any TE value — not just "chunked" — must be refused: ignoring
        // it would let a front proxy and this parser frame the body
        // differently (TE.CL request smuggling).
        for te in ["chunked", "identity", "gzip, chunked"] {
            let req = format!(
                "POST / HTTP/1.1\r\nTransfer-Encoding: {te}\r\nContent-Length: 4\r\n\r\nabcd"
            );
            assert!(
                matches!(parse(&req), Err(ReadError::Unsupported(_))),
                "TE {te:?} should be unsupported"
            );
        }
    }

    #[test]
    fn duplicate_content_length_must_agree() {
        // Conflicting copies are the CL.CL smuggling vector → reject.
        let conflicting = "POST / HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 5\r\n\r\nabcde";
        assert!(matches!(
            parse(conflicting),
            Err(ReadError::Malformed("conflicting content-length"))
        ));
        // Identical copies are legal per RFC 9112 §6.3.
        let agreeing = "POST / HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 4\r\n\r\nabcd";
        let req = parse(agreeing).unwrap();
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn eof_before_request_is_clean() {
        assert!(matches!(parse(""), Err(ReadError::Eof)));
    }

    #[test]
    fn pipelined_requests_parse_sequentially() {
        let two = "GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\nConnection: close\r\n\r\n";
        let mut r = BufReader::new(two.as_bytes());
        let first = read_request(&mut r, 8192, 1 << 20).unwrap();
        let second = read_request(&mut r, 8192, 1 << 20).unwrap();
        assert_eq!(first.path, "/a");
        assert_eq!(second.path, "/b");
        assert!(second.close);
    }

    #[test]
    fn response_bytes_are_exact() {
        let mut out = Vec::new();
        let resp = Response::json(503, "{\"error\":\"x\"}".into()).with_header("retry-after", "1");
        write_response(&mut out, &resp, false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("\r\nconnection: close\r\n"));
        assert!(text.contains("\r\nretry-after: 1\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"error\":\"x\"}"));
    }
}
