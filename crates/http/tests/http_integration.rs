//! End-to-end tests for the HTTP front end: keep-alive, pipelining,
//! malformed/oversized input, connection backpressure, byte-identity
//! with the in-process serving path, and clean shutdown draining.

use cosmo_http::{HttpClient, HttpServer, ServerConfig};
use cosmo_kg::{BehaviorKind, Edge, KnowledgeGraph, NodeKind, Relation};
use cosmo_lm::{CosmoLm, StudentConfig};
use cosmo_serving::{
    AdmissionPolicy, NavigateResponse, OpsStats, ServeRequest, ServeResponse, ServingConfig,
    ServingSystem, SnapshotVersion,
};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

/// A small KG with real intent edges so `/v1/serve-intents` can hit and
/// `/v1/navigate` has something to suggest.
fn test_kg() -> KnowledgeGraph {
    let mut kg = KnowledgeGraph::new();
    let pairs = [
        ("sleeping bag", "sleeping outdoors", Relation::UsedForFunc),
        ("sleeping bag", "keeping warm", Relation::CapableOf),
        ("tent", "sleeping outdoors", Relation::UsedForFunc),
        ("air mattress", "sleeping outdoors", Relation::UsedForFunc),
    ];
    for (i, (product, intent, relation)) in pairs.iter().enumerate() {
        let head = kg.intern_node(NodeKind::Product, product);
        let tail = kg.intern_node(NodeKind::Intention, intent);
        kg.add_edge(Edge {
            head,
            relation: *relation,
            tail,
            behavior: BehaviorKind::SearchBuy,
            category: 0,
            plausibility: 0.9,
            typicality: 0.5 + (i as f32) * 0.05,
            support: 3,
        });
    }
    kg
}

fn test_system(cfg: ServingConfig, preload: &[&str]) -> Arc<ServingSystem> {
    let lm = Arc::new(CosmoLm::new(
        StudentConfig::default(),
        vec![
            ("sleeping outdoors".into(), Some(Relation::UsedForFunc)),
            ("keeping warm".into(), Some(Relation::CapableOf)),
        ],
    ));
    Arc::new(
        ServingSystem::builder()
            .snapshot(Arc::new(test_kg().freeze()))
            .lm(lm)
            .preload(preload.iter().copied())
            .config(cfg)
            .build()
            .expect("test serving config is valid"),
    )
}

fn start_default() -> (Arc<ServingSystem>, cosmo_http::ServerHandle) {
    let system = test_system(ServingConfig::default(), &["sleeping bag", "tent"]);
    let handle =
        HttpServer::start(Arc::clone(&system), ServerConfig::default()).expect("bind ephemeral");
    (system, handle)
}

#[test]
fn keep_alive_serves_many_requests_on_one_connection() {
    let (_system, handle) = start_default();
    let mut client = HttpClient::connect(handle.addr()).unwrap();
    for _ in 0..5 {
        let resp = client
            .request("GET", "/v1/snapshot-version", "")
            .expect("keep-alive request");
        assert_eq!(resp.status, 200);
        assert_eq!(resp.header("connection"), Some("keep-alive"));
        let version = SnapshotVersion::from_json(&resp.body).expect("typed body");
        assert_eq!(version.nodes, 5); // 3 products + 2 intentions interned above
        assert!(version.edges >= 4);
    }
    let stats = handle.stats();
    assert_eq!(stats.accepted, 1, "one connection served every request");
    assert_eq!(stats.requests, 5);
    handle.shutdown();
}

#[test]
fn pipelined_requests_are_answered_in_order() {
    let (_system, handle) = start_default();
    let mut client = HttpClient::connect(handle.addr()).unwrap();
    // write both requests before reading either response
    client.send("GET", "/v1/snapshot-version", "").unwrap();
    client
        .send(
            "POST",
            "/v1/serve-intents",
            &ServeRequest::new("sleeping bag").to_json(),
        )
        .unwrap();
    let first = client.read_response().unwrap();
    let second = client.read_response().unwrap();
    assert_eq!(first.status, 200);
    assert!(SnapshotVersion::from_json(&first.body).is_ok());
    assert_eq!(second.status, 200);
    let served = ServeResponse::from_json(&second.body).unwrap();
    assert_eq!(served.query, "sleeping bag");
    handle.shutdown();
}

#[test]
fn malformed_requests_get_400_and_close() {
    let (_system, handle) = start_default();
    for raw in [
        "BOGUS\r\n\r\n",
        "GET / HTTP/2\r\n\r\n",
        "POST /v1/serve-intents HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
    ] {
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        stream.write_all(raw.as_bytes()).unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap(); // server closes → EOF
        assert!(out.starts_with("HTTP/1.1 400 "), "got {out:?} for {raw:?}");
        assert!(out.contains("\r\nconnection: close\r\n"));
    }
    // bad JSON in a well-formed request is also a 400, but keep-alive
    let mut client = HttpClient::connect(handle.addr()).unwrap();
    let resp = client
        .request("POST", "/v1/serve-intents", "{\"no_query\":1}")
        .unwrap();
    assert_eq!(resp.status, 400);
    assert!(resp.body.contains("bad_request"));
    assert!(handle.stats().bad_requests >= 4);
    handle.shutdown();
}

#[test]
fn oversized_requests_get_413_or_431_without_panicking() {
    let system = test_system(ServingConfig::default(), &[]);
    let config = ServerConfig {
        max_body_bytes: 256,
        max_header_bytes: 512,
        ..ServerConfig::default()
    };
    let handle = HttpServer::start(system, config).expect("bind ephemeral");

    let mut client = HttpClient::connect(handle.addr()).unwrap();
    let huge = format!(
        "{{\"query\":\"{}\"}}",
        "sleeping bag ".repeat(64) // > 256 bytes of body
    );
    let resp = client.request("POST", "/v1/serve-intents", &huge).unwrap();
    assert_eq!(resp.status, 413);

    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let raw = format!(
        "GET /v1/snapshot-version HTTP/1.1\r\nx-pad: {}\r\n\r\n",
        "a".repeat(1024)
    );
    stream.write_all(raw.as_bytes()).unwrap();
    let mut out = String::new();
    stream.read_to_string(&mut out).unwrap();
    assert!(out.starts_with("HTTP/1.1 431 "), "got {out:?}");

    assert_eq!(handle.stats().oversized, 2);
    // the server survived both: a normal request still works
    let mut client = HttpClient::connect(handle.addr()).unwrap();
    let ok = client.request("GET", "/v1/snapshot-version", "").unwrap();
    assert_eq!(ok.status, 200);
    handle.shutdown();
}

/// With a single worker pinned by an idle connection, a one-deep queue,
/// and `RejectNew`, the third connection must be answered `503` with
/// `Retry-After` at admission.
#[test]
fn connection_backpressure_rejects_with_503() {
    let system = test_system(ServingConfig::default(), &["sleeping bag"]);
    let config = ServerConfig {
        acceptors: 1,
        conn_workers: 1,
        conn_backlog: 1,
        admission: AdmissionPolicy::RejectNew,
        read_timeout: Duration::from_millis(500),
        ..ServerConfig::default()
    };
    let handle = HttpServer::start(system, config).expect("bind ephemeral");

    // _pinned occupies the single worker (idle until its read times out);
    // _queued fills the one-deep queue.
    let _pinned = TcpStream::connect(handle.addr()).unwrap();
    std::thread::sleep(Duration::from_millis(150));
    let _queued = TcpStream::connect(handle.addr()).unwrap();
    std::thread::sleep(Duration::from_millis(150));

    let mut client = HttpClient::connect(handle.addr()).unwrap();
    let resp = client
        .request(
            "POST",
            "/v1/serve-intents",
            &ServeRequest::new("tent").to_json(),
        )
        .unwrap();
    assert_eq!(resp.status, 503);
    assert_eq!(resp.header("retry-after"), Some("1"));
    assert!(resp.body.contains("overloaded"));
    assert_eq!(handle.stats().rejected_conns, 1);
    handle.shutdown();
}

/// Same overload under `DropOldest`: the queued-but-unserved connection
/// is shed (closed without a response) and the new one takes its place.
#[test]
fn connection_backpressure_sheds_oldest() {
    let system = test_system(ServingConfig::default(), &["sleeping bag"]);
    let config = ServerConfig {
        acceptors: 1,
        conn_workers: 1,
        conn_backlog: 1,
        admission: AdmissionPolicy::DropOldest,
        read_timeout: Duration::from_millis(500),
        ..ServerConfig::default()
    };
    let handle = HttpServer::start(system, config).expect("bind ephemeral");

    let _pinned = TcpStream::connect(handle.addr()).unwrap();
    std::thread::sleep(Duration::from_millis(150));
    let mut shed_victim = TcpStream::connect(handle.addr()).unwrap();
    shed_victim
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    std::thread::sleep(Duration::from_millis(150));

    let mut client = HttpClient::connect(handle.addr()).unwrap();
    let resp = client
        .request(
            "POST",
            "/v1/serve-intents",
            &ServeRequest::new("sleeping bag").to_json(),
        )
        .unwrap();
    assert_eq!(resp.status, 200, "newest connection is served");
    // the shed connection sees EOF, never a response
    let mut buf = Vec::new();
    let shed_read = shed_victim.read_to_end(&mut buf);
    assert!(
        shed_read.is_ok() && buf.is_empty(),
        "shed connection got {buf:?}"
    );
    assert_eq!(handle.stats().shed_conns, 1);
    handle.shutdown();
}

/// The acceptance bar for the whole front end: for hit, miss, and
/// repeat-miss traffic the HTTP response body equals
/// `ServingSystem::handle(&req).to_json()` byte for byte.
#[test]
fn http_bodies_are_byte_identical_to_in_process_handle() {
    let (system, handle) = start_default();
    let mut client = HttpClient::connect(handle.addr()).unwrap();

    let cases = [
        ServeRequest::new("sleeping bag"), // L1 hit
        ServeRequest {
            query: "tent".into(),
            top_k: 1,
        }, // hit, truncated
        ServeRequest::new("never seen before"), // miss → enqueued
        ServeRequest::new("never seen before"), // repeat miss → enqueued
        ServeRequest::new(""),             // empty query
    ];
    for req in &cases {
        let http = client
            .request("POST", "/v1/serve-intents", &req.to_json())
            .unwrap();
        // the HTTP call above already enqueued any miss, so this
        // in-process call observes the same cache state
        let in_process = system.handle(req);
        assert_eq!(
            http.body,
            in_process.to_json(),
            "HTTP and in-process bodies diverge for {:?}",
            req.query
        );
        let expected_status = if in_process.status == cosmo_serving::ServeStatus::Rejected {
            503
        } else {
            200
        };
        assert_eq!(http.status, expected_status);
    }
    handle.shutdown();
}

/// A serving-layer `Rejected` (pending queue full under `RejectNew`)
/// must surface as HTTP 503 + `Retry-After` while still carrying the
/// byte-identical `ServeResponse` body.
#[test]
fn serving_layer_rejection_maps_to_503_with_identical_body() {
    let system = test_system(
        ServingConfig {
            shards: 1,
            pending_bound: 1,
            admission: AdmissionPolicy::RejectNew,
            ..ServingConfig::default()
        },
        &[],
    );
    let handle =
        HttpServer::start(Arc::clone(&system), ServerConfig::default()).expect("bind ephemeral");
    let mut client = HttpClient::connect(handle.addr()).unwrap();

    let filler = ServeRequest::new("fills the only pending slot");
    let first = client
        .request("POST", "/v1/serve-intents", &filler.to_json())
        .unwrap();
    assert_eq!(first.status, 200); // enqueued

    let rejected = ServeRequest::new("no room for this one");
    let resp = client
        .request("POST", "/v1/serve-intents", &rejected.to_json())
        .unwrap();
    assert_eq!(resp.status, 503);
    assert_eq!(resp.header("retry-after"), Some("1"));
    let in_process = system.handle(&rejected);
    assert_eq!(in_process.status, cosmo_serving::ServeStatus::Rejected);
    assert_eq!(resp.body, in_process.to_json());
    handle.shutdown();
}

#[test]
fn navigate_and_ops_routes_answer_typed_bodies() {
    let (system, handle) = start_default();
    let mut client = HttpClient::connect(handle.addr()).unwrap();

    let resp = client
        .request(
            "POST",
            "/v1/navigate",
            "{\"query\":\"sleeping outdoors\",\"k\":3}",
        )
        .unwrap();
    assert_eq!(resp.status, 200);
    let nav = NavigateResponse::from_json(&resp.body).expect("typed navigate body");
    assert_eq!(nav.query, "sleeping outdoors");
    for item in &nav.suggestions {
        assert!(
            ["intent", "product_type", "attribute"].contains(&item.kind.as_str()),
            "unknown kind {:?}",
            item.kind
        );
    }

    let resp = client.request("GET", "/ops/stats", "").unwrap();
    assert_eq!(resp.status, 200);
    let ops = OpsStats::from_json(&resp.body).expect("typed ops body");
    assert_eq!(ops.to_json(), system.ops().to_json());

    // routing edges: wrong method and unknown path
    assert_eq!(
        client
            .request("GET", "/v1/serve-intents", "")
            .unwrap()
            .status,
        405
    );
    assert_eq!(
        client.request("POST", "/ops/stats", "{}").unwrap().status,
        405
    );
    assert_eq!(client.request("GET", "/nope", "").unwrap().status, 404);
    handle.shutdown();
}

/// Shutdown must drain: every connection queued before shutdown gets its
/// answer, and in-flight keep-alive connections are closed politely
/// (`connection: close` on the final response), not reset.
#[test]
fn shutdown_drains_queued_and_in_flight_connections() {
    let system = test_system(ServingConfig::default(), &["sleeping bag"]);
    let config = ServerConfig {
        conn_workers: 2,
        read_timeout: Duration::from_millis(500),
        ..ServerConfig::default()
    };
    let handle = HttpServer::start(system, config).expect("bind ephemeral");

    let mut clients: Vec<HttpClient> = (0..6)
        .map(|_| HttpClient::connect(handle.addr()).unwrap())
        .collect();
    // write all requests first so several sit queued when shutdown lands
    for c in &mut clients {
        c.send(
            "POST",
            "/v1/serve-intents",
            &ServeRequest::new("sleeping bag").to_json(),
        )
        .unwrap();
    }
    let shutdown = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(50));
        handle.shutdown();
    });
    let mut answered = 0;
    for c in &mut clients {
        if let Ok(resp) = c.read_response() {
            assert_eq!(resp.status, 200);
            answered += 1;
        }
    }
    shutdown.join().unwrap();
    assert_eq!(answered, 6, "every pre-shutdown request was answered");
}

/// Request-smuggling hardening over real sockets: conflicting duplicate
/// `Content-Length` headers are refused with `400`, any
/// `Transfer-Encoding` with `501`, and both close the connection so no
/// unread body bytes can desync the framing.
#[test]
fn smuggling_vectors_are_refused_and_closed() {
    let (_system, handle) = start_default();
    let cases = [
        (
            // CL.CL desync attempt: two disagreeing lengths
            "POST /v1/serve-intents HTTP/1.1\r\ncontent-length: 4\r\ncontent-length: 11\r\n\r\nabcd",
            "HTTP/1.1 400 ",
        ),
        (
            // TE.CL desync attempt: chunked framing we do not implement
            "POST /v1/serve-intents HTTP/1.1\r\ntransfer-encoding: chunked\r\ncontent-length: 4\r\n\r\n0\r\n\r\n",
            "HTTP/1.1 501 ",
        ),
        (
            // even a benign-looking TE is refused rather than half-implemented
            "GET /v1/snapshot-version HTTP/1.1\r\ntransfer-encoding: identity\r\n\r\n",
            "HTTP/1.1 501 ",
        ),
    ];
    for (raw, expected) in cases {
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        stream.write_all(raw.as_bytes()).unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap(); // server closes → EOF
        assert!(out.starts_with(expected), "got {out:?} for {raw:?}");
        assert!(out.contains("\r\nconnection: close\r\n"), "got {out:?}");
    }
    // agreeing duplicates are allowed (RFC 9112 §6.3) and served normally
    let raw = "GET /v1/snapshot-version HTTP/1.1\r\ncontent-length: 0\r\ncontent-length: 0\r\nconnection: close\r\n\r\n";
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream.write_all(raw.as_bytes()).unwrap();
    let mut out = String::new();
    stream.read_to_string(&mut out).unwrap();
    assert!(out.starts_with("HTTP/1.1 200 "), "got {out:?}");
    handle.shutdown();
}

/// The acceptance bar for the hot-swap tentpole: ten snapshot reloads
/// land under concurrent request traffic with **zero 5xx** responses,
/// and within any one snapshot generation the response body for a given
/// query is byte-identical across every thread that observed it.
#[test]
fn hot_swap_under_load_is_zero_downtime_and_generation_consistent() {
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Mutex;

    const SWAPS: u64 = 10;
    let queries = ["sleeping bag", "tent", "air mattress"];
    let system = test_system(ServingConfig::default(), &queries);
    let handle =
        HttpServer::start(Arc::clone(&system), ServerConfig::default()).expect("bind ephemeral");
    let addr = handle.addr();

    // Pre-write the snapshot files the swaps will load: the base graph
    // plus i extra edges, so every generation really is a different KG.
    let dir = std::env::temp_dir().join(format!("cosmo_swap_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let paths: Vec<_> = (1..=SWAPS)
        .map(|i| {
            let mut kg = test_kg();
            for j in 0..i {
                let head = kg.intern_node(NodeKind::Product, &format!("lantern mk{j}"));
                let tail = kg.intern_node(NodeKind::Intention, "lighting a campsite");
                kg.add_edge(Edge {
                    head,
                    relation: Relation::UsedForFunc,
                    tail,
                    behavior: BehaviorKind::SearchBuy,
                    category: 0,
                    plausibility: 0.8,
                    typicality: 0.4,
                    support: 2,
                });
            }
            let path = dir.join(format!("swap_{i}.kg2"));
            kg.freeze().save_v2(&path).unwrap();
            path
        })
        .collect();

    let stop = Arc::new(AtomicBool::new(false));
    // (query, generation) → body; any divergence within a generation is
    // a torn read across the swap boundary
    let seen: Arc<Mutex<HashMap<(String, u64), String>>> = Arc::new(Mutex::new(HashMap::new()));
    let readers: Vec<_> = (0..4)
        .map(|t| {
            let stop = Arc::clone(&stop);
            let seen = Arc::clone(&seen);
            std::thread::spawn(move || {
                let mut client = HttpClient::connect(addr).unwrap();
                let mut count = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let query = queries[(t + count as usize) % queries.len()];
                    let resp = client
                        .request(
                            "POST",
                            "/v1/serve-intents",
                            &ServeRequest::new(query).to_json(),
                        )
                        .unwrap();
                    assert!(
                        resp.status < 500,
                        "5xx under swap: {} {}",
                        resp.status,
                        resp.body
                    );
                    assert_eq!(resp.status, 200, "preloaded query must hit");
                    let body = ServeResponse::from_json(&resp.body).unwrap();
                    let mut seen = seen.lock().unwrap();
                    let prior = seen
                        .entry((query.to_string(), body.snapshot_generation))
                        .or_insert_with(|| resp.body.clone());
                    assert_eq!(
                        *prior, resp.body,
                        "bodies diverge within generation {} for {query:?}",
                        body.snapshot_generation
                    );
                    count += 1;
                }
                count
            })
        })
        .collect();

    let mut ops_client = HttpClient::connect(addr).unwrap();
    for (i, path) in paths.iter().enumerate() {
        std::thread::sleep(Duration::from_millis(30));
        let body = format!("{{\"path\":{:?}}}", path.display().to_string());
        let resp = ops_client.request("POST", "/ops/reload", &body).unwrap();
        assert_eq!(resp.status, 200, "reload failed: {}", resp.body);
        let reloaded = cosmo_serving::ReloadResponse::from_json(&resp.body).unwrap();
        assert_eq!(
            reloaded.generation,
            i as u64 + 2,
            "generations are sequential"
        );
        assert_eq!(reloaded.format_version, 2, "reload served the v2 mmap path");
    }
    std::thread::sleep(Duration::from_millis(30));
    stop.store(true, Ordering::Relaxed);
    let total: u64 = readers.into_iter().map(|r| r.join().unwrap()).sum();
    assert!(total > 0, "readers made progress");

    // the final generation is live and identifies the last snapshot
    let resp = ops_client
        .request("GET", "/v1/snapshot-version", "")
        .unwrap();
    let version = SnapshotVersion::from_json(&resp.body).unwrap();
    assert_eq!(version.generation, SWAPS + 1);
    assert_eq!(version.format_version, 2);
    // traffic really did span multiple generations
    let generations: std::collections::BTreeSet<u64> =
        seen.lock().unwrap().keys().map(|(_, g)| *g).collect();
    assert!(
        generations.len() >= 2,
        "expected traffic across generations, saw {generations:?}"
    );
    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
