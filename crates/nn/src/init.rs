//! Weight initialisation.

use crate::tensor::Tensor;
use rand::Rng;

/// Xavier/Glorot uniform initialisation: `U(−a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`. The default for affine maps.
pub fn xavier_uniform(rows: usize, cols: usize, rng: &mut impl Rng) -> Tensor {
    let a = (6.0 / (rows + cols) as f32).sqrt();
    uniform(rows, cols, -a, a, rng)
}

/// Uniform initialisation in `[lo, hi)`.
pub fn uniform(rows: usize, cols: usize, lo: f32, hi: f32, rng: &mut impl Rng) -> Tensor {
    let data = (0..rows * cols).map(|_| rng.gen_range(lo..hi)).collect();
    Tensor::from_vec(rows, cols, data)
}

/// Gaussian initialisation `N(0, std²)` via Box–Muller.
pub fn normal(rows: usize, cols: usize, std: f32, rng: &mut impl Rng) -> Tensor {
    let n = rows * cols;
    let mut data = Vec::with_capacity(n);
    while data.len() < n {
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        data.push(r * theta.cos() * std);
        if data.len() < n {
            data.push(r * theta.sin() * std);
        }
    }
    Tensor::from_vec(rows, cols, data)
}

/// Embedding-table initialisation: small uniform, standard for lookup
/// tables trained with sparse gradients.
pub fn embedding(rows: usize, cols: usize, rng: &mut impl Rng) -> Tensor {
    let a = 1.0 / (cols as f32).sqrt();
    uniform(rows, cols, -a, a, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn xavier_within_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = xavier_uniform(20, 30, &mut rng);
        let a = (6.0 / 50.0f32).sqrt();
        assert!(t.data().iter().all(|&x| x >= -a && x < a));
    }

    #[test]
    fn normal_mean_and_std_roughly_right() {
        let mut rng = StdRng::seed_from_u64(42);
        let t = normal(100, 100, 0.5, &mut rng);
        let n = t.len() as f32;
        let mean: f32 = t.data().iter().sum::<f32>() / n;
        let var: f32 = t
            .data()
            .iter()
            .map(|x| (x - mean) * (x - mean))
            .sum::<f32>()
            / n;
        assert!(mean.abs() < 0.02, "mean={mean}");
        assert!((var.sqrt() - 0.5).abs() < 0.02, "std={}", var.sqrt());
    }

    #[test]
    fn deterministic_with_seed() {
        let a = xavier_uniform(3, 3, &mut StdRng::seed_from_u64(1));
        let b = xavier_uniform(3, 3, &mut StdRng::seed_from_u64(1));
        assert_eq!(a, b);
    }
}
