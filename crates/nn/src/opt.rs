//! First-order optimizers over a [`ParamStore`].

use crate::params::ParamStore;
use crate::tensor::Tensor;

/// Stochastic gradient descent with optional momentum and weight decay.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (0 disables).
    pub momentum: f32,
    /// L2 weight decay added to gradients.
    pub weight_decay: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Plain SGD at learning rate `lr`.
    pub fn new(lr: f32) -> Self {
        Sgd {
            lr,
            momentum: 0.0,
            weight_decay: 0.0,
            velocity: Vec::new(),
        }
    }

    /// SGD with momentum.
    pub fn with_momentum(lr: f32, momentum: f32) -> Self {
        Sgd {
            lr,
            momentum,
            weight_decay: 0.0,
            velocity: Vec::new(),
        }
    }

    /// Apply one update from the store's current gradients.
    pub fn step(&mut self, store: &mut ParamStore) {
        let ids = store.ids();
        if self.velocity.len() < ids.len() {
            for id in ids.iter().skip(self.velocity.len()) {
                let (r, c) = store.value(*id).shape();
                self.velocity.push(Tensor::zeros(r, c));
            }
        }
        for (i, id) in ids.into_iter().enumerate() {
            if store.is_frozen(id) {
                continue;
            }
            let wd = self.weight_decay;
            let lr = self.lr;
            let mom = self.momentum;
            // grad + wd * value
            let mut g = store.grad(id).clone();
            if wd != 0.0 {
                g.add_scaled_assign(store.value(id), wd);
            }
            if mom != 0.0 {
                self.velocity[i].scale_assign(mom);
                self.velocity[i].add_assign(&g);
                store
                    .value_mut(id)
                    .add_scaled_assign(&self.velocity[i].clone(), -lr);
            } else {
                store.value_mut(id).add_scaled_assign(&g, -lr);
            }
        }
    }
}

/// Adam (Kingma & Ba, 2015) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical floor.
    pub eps: f32,
    /// L2 weight decay added to gradients.
    pub weight_decay: f32,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Adam with standard betas (0.9, 0.999).
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Step count so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Apply one update from the store's current gradients.
    pub fn step(&mut self, store: &mut ParamStore) {
        let ids = store.ids();
        while self.m.len() < ids.len() {
            let (r, c) = store.value(ids[self.m.len()]).shape();
            self.m.push(Tensor::zeros(r, c));
            self.v.push(Tensor::zeros(r, c));
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (i, id) in ids.into_iter().enumerate() {
            if store.is_frozen(id) {
                continue;
            }
            let mut g = store.grad(id).clone();
            if self.weight_decay != 0.0 {
                g.add_scaled_assign(store.value(id), self.weight_decay);
            }
            let m = &mut self.m[i];
            let v = &mut self.v[i];
            for ((mx, vx), &gx) in m
                .data_mut()
                .iter_mut()
                .zip(v.data_mut().iter_mut())
                .zip(g.data().iter())
            {
                *mx = self.beta1 * *mx + (1.0 - self.beta1) * gx;
                *vx = self.beta2 * *vx + (1.0 - self.beta2) * gx * gx;
            }
            let value = store.value_mut(id);
            for ((w, &mx), &vx) in value
                .data_mut()
                .iter_mut()
                .zip(m.data().iter())
                .zip(v.data().iter())
            {
                let mhat = mx / bc1;
                let vhat = vx / bc2;
                *w -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::Tape;

    /// Minimise f(w) = (w − 3)² with each optimizer.
    fn quadratic_descends(mut step: impl FnMut(&mut ParamStore)) -> f32 {
        let mut store = ParamStore::new();
        let p = store.add("w", Tensor::scalar(0.0));
        for _ in 0..200 {
            let mut tape = Tape::new();
            let w = tape.param(&store, p);
            let c = tape.add_scalar(w, -3.0);
            let sq = tape.mul(c, c);
            let loss = tape.sum_all(sq);
            tape.backward(loss);
            store.zero_grads();
            tape.accumulate_param_grads(&mut store);
            step(&mut store);
        }
        store.value(p).item()
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1);
        let w = quadratic_descends(move |s| opt.step(s));
        assert!((w - 3.0).abs() < 1e-3, "w={w}");
    }

    #[test]
    fn sgd_momentum_converges() {
        let mut opt = Sgd::with_momentum(0.05, 0.9);
        let w = quadratic_descends(move |s| opt.step(s));
        assert!((w - 3.0).abs() < 1e-2, "w={w}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.1);
        let w = quadratic_descends(move |s| opt.step(s));
        assert!((w - 3.0).abs() < 1e-2, "w={w}");
    }

    #[test]
    fn weight_decay_shrinks_solution() {
        let mut opt = Adam::new(0.1);
        opt.weight_decay = 0.5;
        let w = quadratic_descends(move |s| opt.step(s));
        assert!(
            w < 3.0 && w > 1.0,
            "decayed optimum should sit below 3, got {w}"
        );
    }

    #[test]
    fn adam_counts_steps() {
        let mut store = ParamStore::new();
        store.add("w", Tensor::scalar(1.0));
        let mut opt = Adam::new(0.01);
        opt.step(&mut store);
        opt.step(&mut store);
        assert_eq!(opt.steps(), 2);
    }
}

#[cfg(test)]
mod freeze_tests {
    use super::*;
    use crate::tape::Tape;

    #[test]
    fn frozen_params_do_not_move() {
        let mut store = ParamStore::new();
        let free = store.add("free", Tensor::scalar(0.0));
        let ice = store.add("ice", Tensor::scalar(0.0));
        store.freeze(ice);
        let mut opt = Adam::new(0.1);
        for _ in 0..30 {
            let mut tape = Tape::new();
            let a = tape.param(&store, free);
            let b = tape.param(&store, ice);
            let s = tape.add(a, b);
            let c = tape.add_scalar(s, -2.0);
            let sq = tape.mul(c, c);
            let loss = tape.sum_all(sq);
            tape.backward(loss);
            store.zero_grads();
            tape.accumulate_param_grads(&mut store);
            opt.step(&mut store);
        }
        assert_eq!(store.value(ice).item(), 0.0, "frozen param moved");
        assert!(store.value(free).item() > 0.5, "free param should train");
    }
}
