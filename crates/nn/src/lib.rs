//! # cosmo-nn
//!
//! A compact, dependency-free neural-network substrate: dense 2-D tensors,
//! tape-based reverse-mode automatic differentiation, common layers and
//! first-order optimizers.
//!
//! The COSMO paper fine-tunes DeBERTa critics (§3.3.2), instruction-tunes
//! LLaMA student models (§3.4), and trains cross-encoders, GRU/attention
//! session models and graph neural networks in its evaluation (§4). None of
//! those frameworks exist offline in Rust, so this crate provides the
//! training machinery that the rest of the workspace builds those models
//! from. Gradients for every operation are hand-derived and verified
//! against central finite differences (see `tape.rs` tests and the
//! proptest suite in `tests/`).
//!
//! ## Example
//!
//! ```
//! use cosmo_nn::{ParamStore, Tape, Tensor, layers::Mlp, opt::Adam};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut store = ParamStore::new();
//! let mut rng = StdRng::seed_from_u64(0);
//! let mlp = Mlp::new(&mut store, "clf", 2, 8, 2, &mut rng);
//! let mut opt = Adam::new(0.05);
//! for _ in 0..50 {
//!     let mut tape = Tape::new();
//!     let x = tape.input(Tensor::from_vec(2, 2, vec![0.0, 1.0, 1.0, 0.0]));
//!     let logits = mlp.forward(&mut tape, &store, x);
//!     let loss = tape.cross_entropy(logits, &[1, 0]);
//!     tape.backward(loss);
//!     store.zero_grads();
//!     tape.accumulate_param_grads(&mut store);
//!     opt.step(&mut store);
//! }
//! ```

pub mod infer;
pub mod init;
pub mod layers;
pub mod opt;
pub mod params;
pub mod tape;
pub mod tensor;
pub mod train;

pub use params::{ParamId, ParamStore};
pub use tape::{Tape, Var};
pub use tensor::Tensor;
pub use train::ShardRunner;
