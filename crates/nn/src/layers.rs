//! Reusable model components built on the autograd tape.

use crate::init;
use crate::params::{ParamId, ParamStore};
use crate::tape::{Tape, Var};
use crate::tensor::Tensor;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Affine map `x·W + b` with `W: [in×out]`, `b: [1×out]`.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Linear {
    w: ParamId,
    b: ParamId,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Register a new layer's parameters in `store`.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let w = store.add(
            &format!("{name}.w"),
            init::xavier_uniform(in_dim, out_dim, rng),
        );
        let b = store.add(
            &format!("{name}.b"),
            crate::tensor::Tensor::zeros(1, out_dim),
        );
        Linear {
            w,
            b,
            in_dim,
            out_dim,
        }
    }

    /// Apply to a `[n×in]` batch.
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, x: Var) -> Var {
        debug_assert_eq!(tape.value(x).cols(), self.in_dim, "Linear input width");
        let w = tape.param(store, self.w);
        let b = tape.param(store, self.b);
        let h = tape.matmul(x, w);
        tape.add_row(h, b)
    }

    /// The raw `(W, b)` tensors, for tape-free inference forwards
    /// ([`crate::infer::linear_into`]).
    pub fn params<'a>(&self, store: &'a ParamStore) -> (&'a Tensor, &'a Tensor) {
        (store.value(self.w), store.value(self.b))
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }
}

/// Token/item embedding table `[vocab×dim]` with row-gather lookup.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Embedding {
    table: ParamId,
    vocab: usize,
    dim: usize,
}

impl Embedding {
    /// Register a new table.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        vocab: usize,
        dim: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let table = store.add(name, init::embedding(vocab, dim, rng));
        Embedding { table, vocab, dim }
    }

    /// Look up a batch of ids → `[n×dim]`.
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, ids: &[usize]) -> Var {
        let t = tape.param(store, self.table);
        tape.gather(t, ids)
    }

    /// The whole table as a tape node (for full-vocabulary scoring).
    pub fn table(&self, tape: &mut Tape, store: &ParamStore) -> Var {
        tape.param(store, self.table)
    }

    /// Mean-pooled bag-of-ids embedding → `[1×dim]`; the workhorse text
    /// encoder of the critic and the student model.
    pub fn embed_bag(&self, tape: &mut Tape, store: &ParamStore, ids: &[usize]) -> Var {
        if ids.is_empty() {
            return tape.input(crate::tensor::Tensor::zeros(1, self.dim));
        }
        let g = self.forward(tape, store, ids);
        tape.mean_rows(g)
    }

    /// The raw table tensor, for tape-free inference forwards
    /// ([`crate::infer::embed_bag_into`]).
    pub fn table_value<'a>(&self, store: &'a ParamStore) -> &'a Tensor {
        store.value(self.table)
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Embedding width.
    pub fn dim(&self) -> usize {
        self.dim
    }
}

/// Gated recurrent unit cell (Cho et al. 2014), the building block of
/// GRU4Rec and of the session encoders.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct GruCell {
    wz: ParamId,
    uz: ParamId,
    bz: ParamId,
    wr: ParamId,
    ur: ParamId,
    br: ParamId,
    wh: ParamId,
    uh: ParamId,
    bh: ParamId,
    in_dim: usize,
    hidden: usize,
}

impl GruCell {
    /// Register a new cell's nine parameter tensors.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        hidden: usize,
        rng: &mut impl Rng,
    ) -> Self {
        fn weight(
            s: &mut ParamStore,
            name: &str,
            suffix: &str,
            r: usize,
            c: usize,
            rng: &mut impl Rng,
        ) -> ParamId {
            s.add(&format!("{name}.{suffix}"), init::xavier_uniform(r, c, rng))
        }
        let wz = weight(store, name, "wz", in_dim, hidden, rng);
        let uz = weight(store, name, "uz", hidden, hidden, rng);
        let bz = store.add(
            &format!("{name}.bz"),
            crate::tensor::Tensor::zeros(1, hidden),
        );
        let wr = weight(store, name, "wr", in_dim, hidden, rng);
        let ur = weight(store, name, "ur", hidden, hidden, rng);
        let br = store.add(
            &format!("{name}.br"),
            crate::tensor::Tensor::zeros(1, hidden),
        );
        let wh = weight(store, name, "wh", in_dim, hidden, rng);
        let uh = weight(store, name, "uh", hidden, hidden, rng);
        let bh = store.add(
            &format!("{name}.bh"),
            crate::tensor::Tensor::zeros(1, hidden),
        );
        GruCell {
            wz,
            uz,
            bz,
            wr,
            ur,
            br,
            wh,
            uh,
            bh,
            in_dim,
            hidden,
        }
    }

    /// One step: `h' = z⊙h + (1−z)⊙tanh(x·Wh + (r⊙h)·Uh + bh)`.
    pub fn step(&self, tape: &mut Tape, store: &ParamStore, x: Var, h: Var) -> Var {
        let wz = tape.param(store, self.wz);
        let uz = tape.param(store, self.uz);
        let bz = tape.param(store, self.bz);
        let wr = tape.param(store, self.wr);
        let ur = tape.param(store, self.ur);
        let br = tape.param(store, self.br);
        let wh = tape.param(store, self.wh);
        let uh = tape.param(store, self.uh);
        let bh = tape.param(store, self.bh);

        let xz = tape.matmul(x, wz);
        let hz = tape.matmul(h, uz);
        let zs = tape.add(xz, hz);
        let zs = tape.add_row(zs, bz);
        let z = tape.sigmoid(zs);

        let xr = tape.matmul(x, wr);
        let hr = tape.matmul(h, ur);
        let rs = tape.add(xr, hr);
        let rs = tape.add_row(rs, br);
        let r = tape.sigmoid(rs);

        let rh = tape.mul(r, h);
        let xh = tape.matmul(x, wh);
        let hh = tape.matmul(rh, uh);
        let cs = tape.add(xh, hh);
        let cs = tape.add_row(cs, bh);
        let c = tape.tanh(cs);

        let zh = tape.mul(z, h);
        let omz = tape.one_minus(z);
        let zc = tape.mul(omz, c);
        tape.add(zh, zc)
    }

    /// Run over a sequence of `[n×in]` steps, returning every hidden state.
    pub fn run(&self, tape: &mut Tape, store: &ParamStore, xs: &[Var], h0: Var) -> Vec<Var> {
        let mut h = h0;
        let mut out = Vec::with_capacity(xs.len());
        for &x in xs {
            h = self.step(tape, store, x, h);
            out.push(h);
        }
        out
    }

    /// Hidden width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }
}

/// Scaled-dot attention pooling of a sequence `[n×d]` with a query `[1×d]`:
/// `softmax(q·Kᵀ/√d)·K` → `[1×d]`. Used by STAMP and the GNN readouts.
pub fn attention_pool(tape: &mut Tape, query: Var, keys: Var) -> Var {
    let d = tape.value(keys).cols() as f32;
    let scores = tape.matmul_nt(query, keys); // [1×n]
    let scaled = tape.scale(scores, 1.0 / d.sqrt());
    let w = tape.softmax(scaled);
    tape.matmul(w, keys)
}

/// A feed-forward block: `relu(x·W1+b1)·W2+b2`.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Mlp {
    l1: Linear,
    l2: Linear,
}

impl Mlp {
    /// Register a two-layer MLP.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        hidden: usize,
        out_dim: usize,
        rng: &mut impl Rng,
    ) -> Self {
        Mlp {
            l1: Linear::new(store, &format!("{name}.l1"), in_dim, hidden, rng),
            l2: Linear::new(store, &format!("{name}.l2"), hidden, out_dim, rng),
        }
    }

    /// Apply to a `[n×in]` batch.
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, x: Var) -> Var {
        let h = self.l1.forward(tape, store, x);
        let h = tape.relu(h);
        self.l2.forward(tape, store, h)
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.l2.out_dim()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn linear_shapes() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let l = Linear::new(&mut store, "l", 4, 3, &mut rng);
        let mut tape = Tape::new();
        let x = tape.input(Tensor::zeros(5, 4));
        let y = l.forward(&mut tape, &store, x);
        assert_eq!(tape.value(y).shape(), (5, 3));
    }

    #[test]
    fn embedding_bag_of_empty_is_zero() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let e = Embedding::new(&mut store, "e", 10, 6, &mut rng);
        let mut tape = Tape::new();
        let v = e.embed_bag(&mut tape, &store, &[]);
        assert_eq!(tape.value(v).shape(), (1, 6));
        assert!(tape.value(v).data().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn gru_step_bounded() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(3);
        let g = GruCell::new(&mut store, "g", 4, 8, &mut rng);
        let mut tape = Tape::new();
        let x = tape.input(init::uniform(2, 4, -1.0, 1.0, &mut rng));
        let h0 = tape.input(Tensor::zeros(2, 8));
        let h1 = g.step(&mut tape, &store, x, h0);
        assert_eq!(tape.value(h1).shape(), (2, 8));
        // GRU output is a convex combination of h (0) and tanh (|.|<1)
        assert!(tape.value(h1).data().iter().all(|&v| v.abs() < 1.0));
    }

    #[test]
    fn gru_run_length() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(4);
        let g = GruCell::new(&mut store, "g", 2, 4, &mut rng);
        let mut tape = Tape::new();
        let xs: Vec<_> = (0..5)
            .map(|_| tape.input(init::uniform(1, 2, -1.0, 1.0, &mut rng)))
            .collect();
        let h0 = tape.input(Tensor::zeros(1, 4));
        let hs = g.run(&mut tape, &store, &xs, h0);
        assert_eq!(hs.len(), 5);
    }

    #[test]
    fn gru_is_trainable_end_to_end() {
        // Learn to output h with positive first component for input +1
        // and negative for input −1 — a sanity check that gradients flow
        // through all nine parameter tensors.
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(5);
        let g = GruCell::new(&mut store, "g", 1, 4, &mut rng);
        let head = Linear::new(&mut store, "head", 4, 1, &mut rng);
        let mut opt = crate::opt::Adam::new(0.05);
        let mut last_loss = f32::INFINITY;
        for _ in 0..120 {
            let mut tape = Tape::new();
            let x_pos = tape.input(Tensor::from_vec(1, 1, vec![1.0]));
            let x_neg = tape.input(Tensor::from_vec(1, 1, vec![-1.0]));
            let h0 = tape.input(Tensor::zeros(1, 4));
            let hp = g.step(&mut tape, &store, x_pos, h0);
            let hn = g.step(&mut tape, &store, x_neg, h0);
            let lp = head.forward(&mut tape, &store, hp);
            let ln = head.forward(&mut tape, &store, hn);
            let logits = tape.concat_cols(lp, ln);
            let t = tape.transpose(logits);
            let loss = tape.bce_with_logits(t, &[1.0, 0.0]);
            last_loss = tape.value(loss).item();
            tape.backward(loss);
            store.zero_grads();
            tape.accumulate_param_grads(&mut store);
            opt.step(&mut store);
        }
        assert!(
            last_loss < 0.1,
            "GRU failed to fit toy task: loss={last_loss}"
        );
    }

    #[test]
    fn attention_pool_shape_and_weights() {
        let mut tape = Tape::new();
        let q = tape.input(Tensor::row(vec![1.0, 0.0]));
        let k = tape.input(Tensor::from_vec(3, 2, vec![1.0, 0.0, 0.0, 1.0, -1.0, 0.0]));
        let out = attention_pool(&mut tape, q, k);
        assert_eq!(tape.value(out).shape(), (1, 2));
        // pooled vector leans towards the key most similar to q
        assert!(tape.value(out).get(0, 0) > 0.0);
    }

    #[test]
    fn mlp_learns_xor() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(11);
        let mlp = Mlp::new(&mut store, "m", 2, 8, 2, &mut rng);
        let mut opt = crate::opt::Adam::new(0.05);
        let xs = Tensor::from_vec(4, 2, vec![0., 0., 0., 1., 1., 0., 1., 1.]);
        let ys = [0usize, 1, 1, 0];
        let mut last = f32::INFINITY;
        for _ in 0..300 {
            let mut tape = Tape::new();
            let x = tape.input(xs.clone());
            let logits = mlp.forward(&mut tape, &store, x);
            let loss = tape.cross_entropy(logits, &ys);
            last = tape.value(loss).item();
            tape.backward(loss);
            store.zero_grads();
            tape.accumulate_param_grads(&mut store);
            opt.step(&mut store);
        }
        assert!(last < 0.1, "MLP failed to fit XOR: loss={last}");
    }
}
